//! Storage-cycle-budget exploration (the Table 3 workflow) on the BTPC
//! demonstrator: how many cycles can the memory organization give back
//! to the data path before its cost rises or the constraint becomes
//! infeasible?
//!
//! Run with `cargo run --release --example budget_sweep`.

use memexplore::btpc::spec::{btpc_app_spec, measure_profile};
use memexplore::core::explore::{evaluate, EvaluateOptions};
use memexplore::core::structuring::merge;
use memexplore::core::ExploreError;
use memexplore::memlib::MemLibrary;

const BUDGET: u64 = 20_000_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = measure_profile(96, 96, 7);
    let btpc = btpc_app_spec(&profile, 1024, 1024, BUDGET)?;
    let merged = merge(&btpc.spec, btpc.pyr, btpc.ridge)?;
    let lib = MemLibrary::default_07um();

    println!(
        "{:<12} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "extra", "budget", "used", "area", "on-chip", "off-chip"
    );
    let mut last_feasible = 0u64;
    for pct in (0..60).step_by(4) {
        let extra = BUDGET * pct / 100;
        let options = EvaluateOptions {
            cycle_budget: Some(BUDGET - extra),
            ..EvaluateOptions::default()
        };
        match evaluate(&merged.spec, &lib, &options) {
            Ok(r) => {
                last_feasible = extra;
                println!(
                    "{:<12} {:>12} {:>12} {:>10.1} {:>10.1} {:>10.1}",
                    format!("{pct}%"),
                    BUDGET - extra,
                    r.schedule.used_cycles,
                    r.cost.on_chip_area_mm2,
                    r.cost.on_chip_power_mw,
                    r.cost.off_chip_power_mw
                );
            }
            Err(ExploreError::BudgetTooTight { required, .. }) => {
                println!(
                    "{:<12} {:>12} infeasible (needs {required} cycles)",
                    format!("{pct}%"),
                    BUDGET - extra
                );
                break;
            }
            Err(ExploreError::NoFeasibleAssignment { .. }) => {
                // The off-chip accesses now overlap beyond what an
                // interleaved dual-bank DRAM can serve — the paper's
                // off-chip cost cliff.
                println!(
                    "{:<12} {:>12} infeasible (off-chip bandwidth exceeds 2 ports)",
                    format!("{pct}%"),
                    BUDGET - extra
                );
                break;
            }
            Err(e) => return Err(e.into()),
        }
    }
    println!(
        "\nUp to {:.1} M cycles ({:.0}%) can be reclaimed for data-path scheduling.",
        last_feasible as f64 / 1e6,
        last_feasible as f64 / BUDGET as f64 * 100.0
    );
    Ok(())
}
