//! A second application domain: a video motion-detection pipeline
//! (temporal difference + 3x3 spatial smoothing + threshold), explored
//! with the same methodology.
//!
//! This is the kind of workload the paper's introduction motivates:
//! data-dominated, frame-store-bound, with clear data reuse for a custom
//! hierarchy.
//!
//! Run with `cargo run --release --example video_filter`.

use memexplore::core::explore::{EvaluateOptions, Exploration};
use memexplore::core::hierarchy::{apply_hierarchy, HierarchyLayer};
use memexplore::ir::{AccessKind, AppSpec, AppSpecBuilder, BasicGroupId, Placement};
use memexplore::memlib::MemLibrary;

/// CIF frame (352x288) at 30 frames/s.
const W: u64 = 352;
const H: u64 = 288;
const PIXELS: u64 = W * H;

fn build_spec() -> Result<(AppSpec, BasicGroupId), Box<dyn std::error::Error>> {
    let mut b = AppSpecBuilder::new("motion_detect");
    // Frame stores are too large for on-chip memory.
    let current = b.basic_group_placed("current", PIXELS, 8, Placement::OffChip)?;
    let previous = b.basic_group_placed("previous", PIXELS, 8, Placement::OffChip)?;
    let diff = b.basic_group_placed("diff", PIXELS, 9, Placement::OffChip)?;
    // Small working arrays.
    let coeff = b.basic_group("coeff", 9, 8)?;
    let hist = b.basic_group("hist", 256, 20)?;
    let labels = b.basic_group("labels", 512, 12)?;

    // Nest 1: temporal difference, once per pixel.
    let delta = b.loop_nest("temporal_diff", PIXELS)?;
    let rc = b.access(delta, current, AccessKind::Read)?;
    let rp = b.access(delta, previous, AccessKind::Read)?;
    let wd = b.access(delta, diff, AccessKind::Write)?;
    let wh = b.access(delta, hist, AccessKind::Write)?;
    b.depend(delta, rc, wd)?;
    b.depend(delta, rp, wd)?;
    b.depend(delta, rc, wh)?;

    // Nest 2: 3x3 smoothing over the difference image: nine diff reads
    // and nine coefficient reads feed one write back.
    let smooth = b.loop_nest("smooth3x3", PIXELS)?;
    let mut inputs = Vec::new();
    for _ in 0..9 {
        inputs.push(b.access(smooth, diff, AccessKind::Read)?);
        inputs.push(b.access(smooth, coeff, AccessKind::Read)?);
    }
    let ws = b.access(smooth, diff, AccessKind::Write)?;
    for &i in &inputs {
        b.depend(smooth, i, ws)?;
    }

    // Nest 3: thresholding with a data-dependent label update (profiled
    // at 7 % of pixels).
    let thresh = b.loop_nest("threshold", PIXELS)?;
    let rd = b.access(thresh, diff, AccessKind::Read)?;
    let rh = b.access(thresh, hist, AccessKind::Read)?;
    let wl = b.access_weighted(thresh, labels, AccessKind::Write, 0.07)?;
    b.depend(thresh, rd, wl)?;
    b.depend(thresh, rh, wl)?;

    // 30 frames/s => 33.3 ms per frame; clock at ~200 MHz gives the
    // storage cycle budget.
    b.cycle_budget(6_500_000).real_time_seconds(1.0 / 30.0);
    Ok((b.build()?, diff))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (spec, diff) = build_spec()?;
    let lib = MemLibrary::default_07um();
    let mut exp = Exploration::new(&lib);
    let options = EvaluateOptions::default();

    exp.add("No hierarchy", &spec, &options)?;

    // The 3x3 window re-reads each diff pixel ~9 times; a 3-line buffer
    // captures that reuse entirely (reuse factor 9 with line-buffer
    // fills), a 9-register window only the horizontal part (factor 3).
    let window = HierarchyLayer::new("window", 9, 2, 3.0);
    let lines = HierarchyLayer::new("linebuf", 3 * W, 2, 9.0);
    let with_window = apply_hierarchy(&spec, diff, std::slice::from_ref(&window))?;
    exp.add("9-register window", &with_window.spec, &options)?;
    let with_lines = apply_hierarchy(&spec, diff, std::slice::from_ref(&lines))?;
    exp.add("3-line buffer", &with_lines.spec, &options)?;
    let with_both = apply_hierarchy(
        &spec,
        diff,
        &[window, HierarchyLayer::new("linebuf", 3 * W, 1, 9.0)],
    )?;
    exp.add("window + line buffer", &with_both.spec, &options)?;

    print!(
        "{}",
        exp.to_table("Motion detection: hierarchy exploration (CIF @ 30 fps)")
    );
    let best = exp.best(1.0, 1.0)?.expect("reports recorded");
    println!("\nChosen: {}", best.label);
    println!(
        "Off-chip needs {} port(s); schedule slack {:.2} M cycles.",
        best.organization.max_off_chip_ports(),
        best.schedule.slack() as f64 / 1e6
    );
    Ok(())
}
