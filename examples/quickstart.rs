//! Quickstart: describe a small kernel, get accurate memory-organization
//! feedback.
//!
//! Run with `cargo run --example quickstart`.

use memexplore::core::explore::{evaluate, EvaluateOptions};
use memexplore::core::macp;
use memexplore::ir::{AccessKind, AppSpecBuilder, Placement};
use memexplore::memlib::MemLibrary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 32-tap FIR filter over a 16 K-sample buffer, 100 runs/second.
    // The sample buffers are far too large for 0.7 um on-chip SRAM, so
    // the specification pins them off-chip; the tap coefficients stay on
    // chip.
    let mut b = AppSpecBuilder::new("fir32");
    let samples = b.basic_group_placed("samples", 16 * 1024, 12, Placement::OffChip)?;
    let taps = b.basic_group("taps", 32, 10)?;
    let output = b.basic_group_placed("output", 16 * 1024, 14, Placement::OffChip)?;

    // The pruned inner loop: one sample and one tap read feed one MAC;
    // the output is written once per outer iteration. Profiling showed
    // the write happens every 32nd iteration, so it carries weight 1/32.
    let mac = b.loop_nest("mac", 16 * 1024 * 32)?;
    let rs = b.access(mac, samples, AccessKind::Read)?;
    let rt = b.access(mac, taps, AccessKind::Read)?;
    let wo = b.access_weighted(mac, output, AccessKind::Write, 1.0 / 32.0)?;
    b.depend(mac, rs, wo)?;
    b.depend(mac, rt, wo)?;

    // Real-time constraint: 10 ms per run => storage cycle budget.
    b.cycle_budget(6_000_000).real_time_seconds(10e-3);
    let spec = b.build()?;

    // Step 1 feedback: the memory-access critical path.
    let report = macp::analyze(&spec);
    println!(
        "MACP: {} cycles of {} budget (slack {})",
        report.total_cycles,
        report.budget,
        report.slack()
    );

    // Steps 2+3 feedback: balanced schedule, allocation, assignment.
    let lib = MemLibrary::default_07um();
    let feedback = evaluate(&spec, &lib, &EvaluateOptions::default())?;
    println!("Memory organization: {}", feedback.cost);
    for mem in &feedback.organization.memories {
        let names: Vec<&str> = mem.groups.iter().map(|&g| spec.group(g).name()).collect();
        println!(
            "  {:>8} words x {:>2} bit, {} port(s): {}",
            mem.words,
            mem.width,
            mem.ports,
            names.join(", ")
        );
    }
    Ok(())
}
