//! The full BTPC walkthrough: every decision step of the paper, with the
//! accurate memory-organization feedback after each.
//!
//! Run with `cargo run --release --example btpc_exploration`.

use memexplore::btpc::spec::{btpc_app_spec, measure_profile};
use memexplore::btpc::{CodecConfig, Decoder, Encoder, Image};
use memexplore::core::explore::{evaluate, EvaluateOptions, Exploration};
use memexplore::core::hierarchy::{apply_hierarchy, HierarchyLayer};
use memexplore::core::structuring::merge;
use memexplore::core::{macp, pruning};
use memexplore::memlib::MemLibrary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Step 0: the application actually works. -----------------------
    let image = Image::synthetic_natural(128, 128, 0xB7C0DE);
    let encoder = Encoder::new(CodecConfig::lossless());
    let encoded = encoder.encode(&image)?;
    let decoded = Decoder::new(CodecConfig::lossless()).decode(&encoded)?;
    assert_eq!(decoded, image);
    println!(
        "BTPC lossless round trip on 128x128: {:.2}x compression\n",
        encoded.compression_ratio()
    );

    // ---- Step 1: profile + pruned specification (§4.1). ----------------
    let profile = measure_profile(128, 128, 0xB7C0DE);
    let btpc = btpc_app_spec(&profile, 1024, 1024, 20_000_000)?;
    println!(
        "Pruned spec: {} basic groups, {} loop nests, {:.1} M accesses/frame",
        btpc.spec.basic_groups().len(),
        btpc.spec.loop_nests().len(),
        btpc.spec.total_access_count() / 1e6
    );
    let pruned = pruning::prune(&btpc.spec, 0.0001)?;
    println!(
        "Pruning keeps {:.2}% of accesses ({} nests dropped)\n",
        pruned.retained_fraction * 100.0,
        pruned.dropped_nests.len()
    );

    // ---- Step 2: critical path analysis (§4.2). ------------------------
    let macp_report = macp::analyze(&btpc.spec);
    println!(
        "MACP: {:.1} M cycles against a {:.1} M budget — {}",
        macp_report.total_cycles as f64 / 1e6,
        macp_report.budget as f64 / 1e6,
        if macp_report.is_feasible() {
            "no loop transformations required (as in the paper)"
        } else {
            "loop transformations required!"
        }
    );
    println!();

    let lib = MemLibrary::default_07um();

    // ---- Step 3: basic group structuring (§4.3, Table 1). --------------
    let mut t1 = Exploration::new(&lib);
    t1.add("No structuring", &btpc.spec, &EvaluateOptions::default())?;
    let merged = merge(&btpc.spec, btpc.pyr, btpc.ridge)?;
    t1.add(
        "ridge and pyr merged",
        &merged.spec,
        &EvaluateOptions::default(),
    )?;
    print!("{}", t1.to_table("Step 3 — structuring feedback:"));
    println!("-> merging wins: fewer off-chip accesses relax the bandwidth.\n");

    // ---- Step 4: memory hierarchy (§4.4, Table 2). ----------------------
    let ylocal = HierarchyLayer::new("ylocal", 12, 2, 2.0);
    let with_layer = apply_hierarchy(&merged.spec, merged.new_group, &[ylocal])?;
    let mut t2 = Exploration::new(&lib);
    t2.add("No hierarchy", &merged.spec, &EvaluateOptions::default())?;
    t2.add(
        "ylocal layer",
        &with_layer.spec,
        &EvaluateOptions::default(),
    )?;
    print!("{}", t2.to_table("Step 4 — hierarchy feedback:"));
    println!("-> the 12-register layer removes the dual-port off-chip need.\n");

    // ---- Step 5: storage cycle budget (§4.5, Table 3). ------------------
    let full = evaluate(&with_layer.spec, &lib, &EvaluateOptions::default())?;
    let tight = evaluate(
        &with_layer.spec,
        &lib,
        &EvaluateOptions {
            cycle_budget: Some(20_000_000 - 3_133_568),
            ..EvaluateOptions::default()
        },
    )?;
    println!("Step 5 — budget feedback:");
    println!("  full budget:      {}", full.cost);
    println!("  15.7% reclaimed:  {}", tight.cost);
    println!("-> millions of cycles can move to the data path for free.\n");

    // ---- Step 6: final organization (§4.6, Table 4). ---------------------
    println!("Step 6 — final memory organization:");
    for mem in &tight.organization.memories {
        let names: Vec<&str> = mem
            .groups
            .iter()
            .map(|&g| with_layer.spec.group(g).name())
            .collect();
        println!(
            "  {:>9} words x {:>2} bit, {} port(s): {}",
            mem.words,
            mem.width,
            mem.ports,
            names.join(", ")
        );
    }
    println!("\nFinal cost: {}", tight.cost);
    Ok(())
}
