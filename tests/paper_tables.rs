//! Paper-table conformance suite: pins the reproduced Tables 1–4 (costs
//! *and* memory assignments) against a committed golden snapshot, so a
//! solver change can never silently drift the paper's results.
//!
//! The snapshot is rendered from the deterministic [`paper_context`]
//! pipeline — environment-independent, bit-identical for every worker
//! count — so any diff is a real behavior change. To regenerate after an
//! *intentional* change, run:
//!
//! ```sh
//! MEMX_UPDATE_GOLDEN=1 cargo test --test paper_tables
//! ```
//!
//! and commit the updated `tests/golden/paper_tables.txt` together with
//! the change that explains it.

use std::fmt::Write as _;
use std::path::PathBuf;

use memx_bench::experiments::{
    self, paper_allocations, paper_extras, table1, table2, table3, table4,
};
use memx_core::alloc::{BoundKind, MemoryKind, Organization};
use memx_core::explore::CostReport;
use memx_ir::AppSpec;
use memx_memlib::CostBreakdown;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("paper_tables.txt")
}

fn render_cost(out: &mut String, cost: &CostBreakdown) {
    let _ = write!(
        out,
        "area={:.4}mm2 on_power={:.4}mW off_power={:.4}mW",
        cost.on_chip_area_mm2, cost.on_chip_power_mw, cost.off_chip_power_mw
    );
}

/// One line per memory: placement, dimensions and the sorted group
/// names it holds — the paper's "signal-to-memory assignment".
fn render_organization(out: &mut String, spec: &AppSpec, org: &Organization) {
    for mem in &org.memories {
        let kind = match mem.kind {
            MemoryKind::OnChip => "on",
            MemoryKind::OffChip(_) => "off",
        };
        let mut names: Vec<&str> = mem.groups.iter().map(|&g| spec.group(g).name()).collect();
        names.sort_unstable();
        let _ = writeln!(
            out,
            "    {kind}-chip {}x{}b/{}p: {}",
            mem.words,
            mem.width,
            mem.ports,
            names.join(", ")
        );
    }
}

fn render_report(out: &mut String, spec: &AppSpec, report: &CostReport) {
    let _ = write!(out, "  {}: ", report.label);
    render_cost(out, &report.cost);
    out.push('\n');
    render_organization(out, spec, &report.organization);
}

/// Renders every table the suite pins. The specs behind the reports are
/// rebuilt here exactly as the experiment entry points build them, so
/// group names resolve against the right variant.
fn render_snapshot() -> String {
    let ctx = experiments::paper_context();
    let mut out = String::new();

    out.push_str("Table 1: basic group structuring\n");
    let exp = table1(&ctx).expect("table 1 runs");
    let compacted = memx_core::structuring::compact(&ctx.btpc.spec, ctx.btpc.ridge, 3)
        .expect("compaction applies");
    let merged = memx_core::structuring::merge(&ctx.btpc.spec, ctx.btpc.pyr, ctx.btpc.ridge)
        .expect("merge applies");
    let t1_specs = [&ctx.btpc.spec, &compacted.spec, &merged.spec];
    for (report, spec) in exp.reports().iter().zip(t1_specs) {
        render_report(&mut out, spec, report);
    }

    out.push_str("Table 2: memory hierarchy\n");
    let exp = table2(&ctx).expect("table 2 runs");
    let (spec, pixel_store) = experiments::merged_spec(&ctx).expect("merge applies");
    let (ylocal, yhier_serving, yhier_feeding) = experiments::figure3_layers();
    let l1 = memx_core::hierarchy::apply_hierarchy(
        &spec,
        pixel_store,
        std::slice::from_ref(&yhier_serving),
    )
    .expect("hierarchy applies");
    let l0 =
        memx_core::hierarchy::apply_hierarchy(&spec, pixel_store, std::slice::from_ref(&ylocal))
            .expect("hierarchy applies");
    let both = memx_core::hierarchy::apply_hierarchy(&spec, pixel_store, &[ylocal, yhier_feeding])
        .expect("hierarchy applies");
    let t2_specs = [&spec, &l1.spec, &l0.spec, &both.spec];
    for (report, spec) in exp.reports().iter().zip(t2_specs) {
        render_report(&mut out, spec, report);
    }

    let winner = experiments::best_hierarchy_spec(&ctx).expect("hierarchy applies");

    out.push_str("Table 3: storage cycle budget\n");
    let rows = table3(&ctx, &paper_extras()).expect("table 3 runs");
    for row in &rows {
        let _ = write!(
            out,
            "  extra={} ({:.2}%): ",
            row.extra_cycles,
            row.extra_fraction * 100.0
        );
        render_cost(&mut out, &row.report.cost);
        out.push('\n');
        render_organization(&mut out, &winner, &row.report.organization);
    }

    out.push_str("Table 4: on-chip memory allocation\n");
    let rows = table4(&ctx, &paper_allocations()).expect("table 4 runs");
    for row in &rows {
        let _ = write!(out, "  k={}: ", row.memories);
        render_cost(&mut out, &row.report.cost);
        out.push('\n');
        render_organization(&mut out, &winner, &row.report.organization);
    }

    out
}

#[test]
fn paper_tables_match_the_committed_golden_snapshot() {
    let rendered = render_snapshot();
    let path = golden_path();
    if std::env::var_os("MEMX_UPDATE_GOLDEN").is_some_and(|v| !v.is_empty() && v != "0") {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("golden dir creatable");
        std::fs::write(&path, &rendered).expect("golden writable");
        eprintln!("updated {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run with MEMX_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    if rendered != golden {
        // Find the first diverging line for a readable failure.
        let mut gl = golden.lines();
        for (i, r) in rendered.lines().enumerate() {
            match gl.next() {
                Some(g) if g == r => continue,
                got => panic!(
                    "paper tables drifted from the golden snapshot at line {}:\n  \
                     golden:   {:?}\n  rendered: {:?}\n\
                     If the change is intentional, regenerate with \
                     MEMX_UPDATE_GOLDEN=1 cargo test --test paper_tables",
                    i + 1,
                    got,
                    r
                ),
            }
        }
        panic!(
            "paper tables drifted from the golden snapshot (line counts differ: \
             golden {} vs rendered {})",
            golden.lines().count(),
            rendered.lines().count()
        );
    }
}

#[test]
fn off_chip_branch_and_bound_beats_exhaustive_enumeration_on_table4() {
    // The off-chip acceptance criterion, pinned as a test: on the
    // table 4 workload the branch-and-bound must expand strictly fewer
    // nodes than the Bell-number partition space the retired exhaustive
    // scan streamed through (while producing the byte-identical golden
    // tables checked above).
    let mut ctx = experiments::paper_context();
    ctx.alloc.workers = 1; // serial: parallel node counters are timing-dependent
    ctx.workers = 1;
    let rows = table4(&ctx, &paper_allocations()).expect("table 4 runs");
    let bb: u64 = rows
        .iter()
        .map(|r| r.report.alloc_stats.off_chip_bb_nodes)
        .sum();
    let exhaustive: u64 = rows
        .iter()
        .map(|r| r.report.alloc_stats.off_chip_exhaustive_partitions)
        .sum();
    assert!(exhaustive > 0, "table 4 has off-chip groups");
    assert!(
        bb < exhaustive,
        "off-chip branch-and-bound must beat exhaustive enumeration: \
         {bb} nodes vs {exhaustive} partitions"
    );
}

#[test]
fn pairwise_bound_prunes_the_table4_workload() {
    // The tentpole's acceptance criterion, pinned as a test: on the
    // table 4 workload, run to exactness, the pairwise-conflict bound
    // must visit strictly fewer branch-and-bound nodes than the solo
    // suffix bound (both return identical tables — checked against the
    // golden above for the default bound).
    let nodes = |bound: BoundKind| {
        let mut ctx = experiments::paper_context();
        ctx.alloc.bound = bound;
        ctx.alloc.node_limit = 100_000_000; // unexhausted: nodes measure pruning
        ctx.alloc.workers = 1; // serial: parallel node counters are timing-dependent
        ctx.workers = 1;
        let rows = table4(&ctx, &paper_allocations()).expect("table 4 runs");
        rows.iter()
            .map(|r| r.report.alloc_stats.bb_nodes)
            .sum::<u64>()
    };
    let solo = nodes(BoundKind::Solo);
    let pairwise = nodes(BoundKind::Pairwise);
    assert!(
        pairwise < solo,
        "pairwise bound must prune harder: {pairwise} vs {solo} nodes"
    );
}
