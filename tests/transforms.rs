//! Cross-crate transform invariants: structuring and hierarchy preserve
//! the information the later stages rely on.

use memexplore::btpc::spec::{btpc_app_spec, measure_profile};
use memexplore::core::hierarchy::{apply_hierarchy, HierarchyLayer};
use memexplore::core::structuring::{compact, merge};
use memexplore::core::{pruning, scbd};

fn btpc() -> memexplore::btpc::spec::BtpcSpec {
    let profile = measure_profile(48, 48, 11);
    btpc_app_spec(&profile, 1024, 1024, 20_000_000).expect("spec builds")
}

#[test]
fn merge_conserves_stored_bits() {
    let btpc = btpc();
    let before: u64 = btpc
        .spec
        .basic_groups()
        .iter()
        .map(memexplore::ir::BasicGroup::bits)
        .sum();
    let merged = merge(&btpc.spec, btpc.pyr, btpc.ridge).expect("merge valid");
    let after: u64 = merged
        .spec
        .basic_groups()
        .iter()
        .map(memexplore::ir::BasicGroup::bits)
        .sum();
    // The record array stores both fields for max(words) entries, so it
    // may only grow (padding), never lose bits.
    assert!(after >= before - 10, "bits lost: {before} -> {after}");
}

#[test]
fn merge_reduces_accesses_but_never_below_the_wider_input() {
    let btpc = btpc();
    let (pyr_r, pyr_w) = btpc.spec.total_accesses(btpc.pyr);
    let merged = merge(&btpc.spec, btpc.pyr, btpc.ridge).expect("merge valid");
    let (m_r, m_w) = merged.spec.total_accesses(merged.new_group);
    // Every pyr access still happens (possibly also carrying ridge).
    assert!(m_r >= pyr_r * 0.999);
    assert!(m_w >= pyr_w * 0.999);
    // And the merged total is below the two separate totals.
    let (ridge_r, ridge_w) = btpc.spec.total_accesses(btpc.ridge);
    assert!(m_r + m_w < pyr_r + pyr_w + ridge_r + ridge_w);
}

#[test]
fn compaction_shrinks_words_and_widens() {
    let btpc = btpc();
    let before = btpc.spec.group(btpc.ridge).clone();
    for factor in [2u32, 3, 4] {
        let compacted = compact(&btpc.spec, btpc.ridge, factor).expect("compaction valid");
        let after = compacted.spec.group(compacted.new_group);
        assert_eq!(after.bitwidth(), before.bitwidth() * factor);
        assert_eq!(after.words(), before.words().div_ceil(u64::from(factor)));
        // No data capacity lost.
        assert!(after.bits() >= before.bits());
    }
}

#[test]
fn hierarchy_preserves_read_service() {
    // Every read the data path performed is still performed, just on a
    // different layer.
    let btpc = btpc();
    let merged = merge(&btpc.spec, btpc.pyr, btpc.ridge).expect("merge valid");
    let (reads_before, writes_before) = merged.spec.total_accesses(merged.new_group);
    let layered = apply_hierarchy(
        &merged.spec,
        merged.new_group,
        &[HierarchyLayer::new("ylocal", 12, 2, 2.0)],
    )
    .expect("hierarchy valid");
    let (layer_reads, _) = layered.spec.total_accesses(layered.layers[0]);
    assert!((layer_reads - reads_before).abs() / reads_before < 1e-9);
    // Writes still reach the backing store.
    let (_, writes_after) = layered.spec.total_accesses(merged.new_group);
    assert!((writes_after - writes_before).abs() / writes_before < 1e-9);
}

#[test]
fn transforms_commute_with_scheduling_feasibility() {
    // Any (valid) transform output must still schedule within the same
    // budget: transforms never add cycles beyond the budget for BTPC.
    let btpc = btpc();
    let variants = [
        btpc.spec.clone(),
        compact(&btpc.spec, btpc.ridge, 3)
            .expect("compaction valid")
            .spec,
        merge(&btpc.spec, btpc.pyr, btpc.ridge)
            .expect("merge valid")
            .spec,
    ];
    for (i, spec) in variants.iter().enumerate() {
        scbd::distribute(spec).unwrap_or_else(|e| panic!("variant {i} unschedulable: {e}"));
    }
}

#[test]
fn pruning_then_transforming_is_consistent() {
    let btpc = btpc();
    let pruned = pruning::prune(&btpc.spec, 1e-6).expect("pruning runs");
    assert!(pruned.retained_fraction > 0.99);
    let merged = merge(&pruned.spec, btpc.pyr, btpc.ridge).expect("merge valid");
    merged.spec.validate().expect("spec consistent");
    scbd::distribute(&merged.spec).expect("still schedulable");
}

#[test]
fn repeated_compaction_rejected_past_word_limit() {
    let btpc = btpc();
    // 2 bits * 40 > 64 bits must be rejected.
    assert!(compact(&btpc.spec, btpc.ridge, 40).is_err());
}
