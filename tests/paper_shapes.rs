//! The headline reproduction tests: every qualitative claim of the
//! paper's four tables must hold in our pipeline.
//!
//! Absolute numbers differ from the paper (our substrate is a calibrated
//! simulator, not IMEC's proprietary 0.7 µm generator and testbed), but
//! the *orderings, winners and crossovers* asserted here are the paper's
//! results.

use memx_bench::experiments;

/// Shared context (profiling the codec once is enough).
fn ctx() -> experiments::PaperContext {
    experiments::paper_context()
}

#[test]
fn table1_merging_beats_compaction_beats_nothing() {
    let ctx = ctx();
    let exp = experiments::table1(&ctx).expect("table 1 runs");
    let rows = exp.reports();
    assert_eq!(rows.len(), 3);
    let none = &rows[0];
    let compacted = &rows[1];
    let merged = &rows[2];
    // Off-chip power: merging wins, compaction in between (paper:
    // 208.0 -> 204.6 -> 130.2).
    assert!(compacted.cost.off_chip_power_mw < none.cost.off_chip_power_mw);
    assert!(merged.cost.off_chip_power_mw < compacted.cost.off_chip_power_mw);
    // Merging must be a substantial (tens of percent) improvement.
    assert!(merged.cost.off_chip_power_mw < 0.85 * none.cost.off_chip_power_mw);
    // No variant makes the on-chip side worse.
    assert!(merged.cost.on_chip_area_mm2 <= none.cost.on_chip_area_mm2 * 1.01);
}

#[test]
fn table2_layer0_only_wins_and_no_hierarchy_needs_two_port_off_chip() {
    let ctx = ctx();
    let exp = experiments::table2(&ctx).expect("table 2 runs");
    let rows = exp.reports();
    assert_eq!(rows.len(), 4);
    let (none, l1, l0, both) = (&rows[0], &rows[1], &rows[2], &rows[3]);

    // The paper's Table 2 orderings.
    // Off-chip power: hierarchy helps a lot; layer-1 fills (long bursts,
    // fewer copies) beat layer-0 fills.
    assert!(l0.cost.off_chip_power_mw < none.cost.off_chip_power_mw);
    assert!(l1.cost.off_chip_power_mw < l0.cost.off_chip_power_mw);
    // Adding layer 0 under layer 1 does not change the off-chip side.
    assert!((both.cost.off_chip_power_mw - l1.cost.off_chip_power_mw).abs() < 1e-6);
    // On-chip area: none < layer0 << both < layer1.
    assert!(none.cost.on_chip_area_mm2 < l0.cost.on_chip_area_mm2);
    assert!(l0.cost.on_chip_area_mm2 < both.cost.on_chip_area_mm2);
    assert!(both.cost.on_chip_area_mm2 < l1.cost.on_chip_area_mm2);
    // On-chip power: same ordering.
    assert!(none.cost.on_chip_power_mw < l0.cost.on_chip_power_mw);
    assert!(l0.cost.on_chip_power_mw < both.cost.on_chip_power_mw);
    assert!(both.cost.on_chip_power_mw < l1.cost.on_chip_power_mw);

    // "The solution without any hierarchy is very expensive because a
    // two-port off-chip memory is needed"; with a hierarchy one port
    // suffices.
    assert_eq!(none.organization.max_off_chip_ports(), 2);
    assert_eq!(l0.organization.max_off_chip_ports(), 1);
    assert_eq!(l1.organization.max_off_chip_ports(), 1);

    // Layer 0 only is the best of the hierarchy options on total
    // power + area (the paper's chosen solution).
    assert!(
        l0.cost.scalar(1.0, 1.0) < l1.cost.scalar(1.0, 1.0)
            && l0.cost.scalar(1.0, 1.0) < both.cost.scalar(1.0, 1.0)
    );
}

#[test]
fn table3_budget_can_tighten_substantially_for_free() {
    let ctx = ctx();
    let rows = experiments::table3(&ctx, &experiments::paper_extras()).expect("table 3 runs");
    assert_eq!(rows.len(), 4);
    // The paper's headline: about 2 M cycles (and in our denser
    // schedule even more) move to the data path without influencing the
    // memory organization cost much.
    let base = &rows[0].report.cost;
    for row in &rows {
        assert!(row.report.cost.scalar(1.0, 1.0) <= base.scalar(1.0, 1.0) * 1.10);
    }
    // Budgets are actually distributed within the tightened totals.
    for row in &rows {
        assert!(row.report.schedule.used_cycles <= experiments::CYCLE_BUDGET - row.extra_cycles);
    }
}

#[test]
fn table4_power_monotone_and_area_u_shaped() {
    let ctx = ctx();
    let rows = experiments::table4(&ctx, &experiments::paper_allocations()).expect("table 4 runs");
    assert_eq!(rows.len(), 5);
    // On-chip power decreases monotonically with more memories (paper:
    // 47.7 -> 38.6 -> 29.3 -> 26.9 -> 25.1).
    for pair in rows.windows(2) {
        assert!(
            pair[1].report.cost.on_chip_power_mw < pair[0].report.cost.on_chip_power_mw,
            "power not monotone between k={} and k={}",
            pair[0].memories,
            pair[1].memories
        );
    }
    // Area falls first (bitwidth waste / banking) and rises again at the
    // end (per-module overhead) — the paper's 84.0 -> 65.7 -> 69.5 dip.
    let first = rows
        .first()
        .expect("five rows")
        .report
        .cost
        .on_chip_area_mm2;
    let last = rows.last().expect("five rows").report.cost.on_chip_area_mm2;
    let min = rows
        .iter()
        .map(|r| r.report.cost.on_chip_area_mm2)
        .fold(f64::INFINITY, f64::min);
    assert!(min < first, "no initial area decrease");
    assert!(min < last, "no final area increase");
    // Off-chip side is untouched by the on-chip allocation.
    let off: Vec<f64> = rows
        .iter()
        .map(|r| r.report.cost.off_chip_power_mw)
        .collect();
    for w in off.windows(2) {
        assert!((w[0] - w[1]).abs() < 1e-6);
    }
}

#[test]
fn magnitudes_land_in_the_papers_range() {
    // Sanity guard on calibration drift: the BTPC figures must stay in
    // the paper's order of magnitude (Tables 1-4 span 64-131 mm2,
    // 25-93 mW on-chip, 87-208 mW off-chip).
    let ctx = ctx();
    let exp = experiments::table1(&ctx).expect("table 1 runs");
    for r in exp.reports() {
        assert!(
            (40.0..200.0).contains(&r.cost.on_chip_area_mm2),
            "area {} out of range",
            r.cost.on_chip_area_mm2
        );
        assert!(
            (15.0..150.0).contains(&r.cost.on_chip_power_mw),
            "on-chip power {} out of range",
            r.cost.on_chip_power_mw
        );
        assert!(
            (50.0..300.0).contains(&r.cost.off_chip_power_mw),
            "off-chip power {} out of range",
            r.cost.off_chip_power_mw
        );
    }
}
