//! End-to-end pipeline integration: codec -> profile -> spec ->
//! transforms -> schedule -> organization.

use memexplore::btpc::spec::{btpc_app_spec, measure_profile};
use memexplore::btpc::{CodecConfig, Decoder, Encoder, Image};
use memexplore::core::explore::{evaluate, EvaluateOptions};
use memexplore::core::hierarchy::{apply_hierarchy, HierarchyLayer};
use memexplore::core::structuring::merge;
use memexplore::core::{alloc, macp, scbd};
use memexplore::memlib::MemLibrary;

#[test]
fn full_pipeline_from_pixels_to_organization() {
    // 1. A real encode/decode round trip produces the profile.
    let img = Image::synthetic_natural(64, 64, 99);
    let cfg = CodecConfig::lossless();
    let registry = memexplore::profile::ProfileRegistry::new();
    let encoded = Encoder::new(cfg)
        .encode_with_registry(&img, &registry)
        .expect("encode succeeds");
    let decoded = Decoder::new(cfg).decode(&encoded).expect("decode succeeds");
    assert_eq!(decoded, img);
    let profile = registry.snapshot();

    // 2. Spec construction from the measured profile.
    let btpc = btpc_app_spec(&profile, 1024, 1024, 20_000_000).expect("spec builds");
    btpc.spec.validate().expect("spec is consistent");

    // 3. MACP is feasible (the paper: "no loop transformations are
    //    strictly required" for BTPC).
    let report = macp::analyze(&btpc.spec);
    assert!(report.is_feasible());

    // 4. Transform chain: merge + hierarchy.
    let merged = merge(&btpc.spec, btpc.pyr, btpc.ridge).expect("merge valid");
    let layered = apply_hierarchy(
        &merged.spec,
        merged.new_group,
        &[HierarchyLayer::new("ylocal", 12, 2, 2.0)],
    )
    .expect("hierarchy valid");
    layered
        .spec
        .validate()
        .expect("transformed spec consistent");

    // 5. Schedule and allocate.
    let lib = MemLibrary::default_07um();
    let schedule = scbd::distribute(&layered.spec).expect("schedule fits");
    assert!(schedule.used_cycles <= layered.spec.cycle_budget());
    let org = alloc::assign(
        &layered.spec,
        &schedule,
        &lib,
        &alloc::AllocOptions::default(),
    )
    .expect("assignment feasible");

    // Every accessed group is assigned exactly once.
    let mut assigned: Vec<usize> = org
        .memories
        .iter()
        .flat_map(|m| m.groups.iter().map(|g| g.index()))
        .collect();
    assigned.sort_unstable();
    let before = assigned.len();
    assigned.dedup();
    assert_eq!(before, assigned.len(), "a group was assigned twice");

    // Costs are positive and consistent with the sum over memories.
    let total: memexplore::memlib::CostBreakdown = org.memories.iter().map(|m| m.cost).sum();
    assert!((total.on_chip_area_mm2 - org.cost.on_chip_area_mm2).abs() < 1e-9);
    assert!(org.cost.total_power_mw() > 0.0);
}

#[test]
fn evaluation_is_deterministic() {
    let profile = measure_profile(48, 48, 5);
    let btpc = btpc_app_spec(&profile, 1024, 1024, 20_000_000).expect("spec builds");
    let lib = MemLibrary::default_07um();
    let a = evaluate(&btpc.spec, &lib, &EvaluateOptions::default()).expect("evaluation runs");
    let b = evaluate(&btpc.spec, &lib, &EvaluateOptions::default()).expect("evaluation runs");
    assert_eq!(a.cost, b.cost);
    assert_eq!(a.organization.memories.len(), b.organization.memories.len());
}

#[test]
fn profiles_scale_linearly_with_frame_size() {
    let small = measure_profile(32, 32, 3);
    let large = measure_profile(64, 64, 3);
    let (r32, _) = small.counts("image").expect("image tracked");
    let (r64, _) = large.counts("image").expect("image tracked");
    // Image reads are exactly one per pixel.
    assert_eq!(r32, 32.0 * 32.0);
    assert_eq!(r64, 64.0 * 64.0);
    // Pyramid traffic per pixel is stable within 15 % across sizes
    // (border effects shrink with size).
    let (p32, _) = small.counts("pyr").expect("pyr tracked");
    let (p64, _) = large.counts("pyr").expect("pyr tracked");
    let per32 = p32 / (32.0 * 32.0);
    let per64 = p64 / (64.0 * 64.0);
    assert!((per32 - per64).abs() / per64 < 0.15, "{per32} vs {per64}");
}

#[test]
fn tighter_budgets_never_cost_less() {
    let profile = measure_profile(48, 48, 5);
    let btpc = btpc_app_spec(&profile, 1024, 1024, 20_000_000).expect("spec builds");
    let merged = merge(&btpc.spec, btpc.pyr, btpc.ridge).expect("merge valid");
    let lib = MemLibrary::default_07um();
    let mut last_scalar = 0.0;
    for budget in [20_000_000u64, 17_000_000, 15_000_000] {
        let options = EvaluateOptions {
            cycle_budget: Some(budget),
            ..EvaluateOptions::default()
        };
        let report = evaluate(&merged.spec, &lib, &options).expect("evaluation runs");
        let scalar = report.cost.scalar(1.0, 1.0);
        assert!(
            scalar + 1e-6 >= last_scalar,
            "tightening the budget reduced the cost: {scalar} < {last_scalar}"
        );
        last_scalar = scalar;
    }
}
