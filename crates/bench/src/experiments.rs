//! The shared BTPC exploration pipeline behind every table and figure.
//!
//! The decision sequence follows the paper exactly:
//!
//! 1. profile the instrumented encoder, build the pruned spec (§4.1);
//! 2. **Table 1**: explore basic-group structuring for `ridge`
//!    (nothing / compaction / merging with `pyr`) — merging wins;
//! 3. **Table 2**: explore the memory hierarchy for the merged
//!    pixel-data array (none / layer 1 / layer 0 / both) — layer 0 wins;
//! 4. **Table 3**: tighten the storage cycle budget, trading memory
//!    organization cost against data-path scheduling slack;
//! 5. **Table 4**: sweep the number of allocated on-chip memories.
//!
//! Note on the hierarchy target: the paper applies Figure 3 to "the
//! image array", its single 1 M-word pixel store. Our codec separates
//! the read-only input (`image`) from the reconstruction pyramid
//! (`pyr`); after the Table 1 merge, the heavily-read pixel store
//! playing the paper's role is the merged `pyr_ridge` group, so the
//! hierarchy experiments target it (see EXPERIMENTS.md).

use std::sync::Arc;

use memx_btpc::spec::{btpc_app_spec, measure_profile, BtpcSpec};
use memx_core::alloc::{AllocOptions, AllocStats};
use memx_core::cache::EvalCache;
use memx_core::engine::{DesignPoint, Engine};
use memx_core::explore::{CostReport, EvaluateOptions, Exploration};
use memx_core::hierarchy::{apply_hierarchy, HierarchyLayer};
use memx_core::structuring::{compact, merge};
use memx_core::ExploreError;
use memx_ir::{AccessKind, AppSpec, AppSpecBuilder, BasicGroupId, Placement};
use memx_memlib::MemLibrary;

/// Paper frame edge (1024×1024 images).
pub const FRAME: u64 = 1024;
/// Paper storage cycle budget (~20 M cycles at 1 Mpixel/s).
pub const CYCLE_BUDGET: u64 = 20_000_000;
/// Profiling frame edge (profiles scale linearly in pixels).
pub const PROFILE_FRAME: usize = 128;
/// Deterministic profiling seed.
pub const SEED: u64 = 0xB7C0DE;
/// Profiling frame edge in smoke mode: big enough to exercise every
/// pyramid level and coder context, small enough to finish instantly.
pub const SMOKE_PROFILE_FRAME: usize = 64;
/// Branch-and-bound node budget in smoke mode (falls back to the best
/// incumbent, so results stay well-formed, just not proven optimal).
pub const SMOKE_NODE_LIMIT: u64 = 200_000;

/// Every ambient knob the reproduction *binaries* accept, resolved
/// **once** at binary entry by [`RunKnobs::from_env`] and passed by
/// value from there on — the single place where the environment is
/// read. Library entry points ([`paper_context`] and everything built
/// on it) never construct one from the environment, so tests and
/// benches stay deterministic regardless of the caller's shell — and
/// the `memx-serve` daemon derives every option from the request body,
/// never from ambient state.
///
/// Exploration results are bit-identical across `workers`, `cache`,
/// `dominance` and `bound` settings (each knob only trades wall-clock
/// or search-effort counters, which is what `scripts/bench_baseline.sh`
/// measures); `smoke` and `node_limit` trade fidelity for runtime.
#[derive(Debug, Clone)]
pub struct RunKnobs {
    /// Fast smoke-test mode (`MEMX_SMOKE` non-empty and not `0`, or a
    /// `--smoke` argument): the cheap profile and reduced allocation
    /// search budget — CI uses it to keep the paper-reproduction
    /// binaries from rotting.
    pub smoke: bool,
    /// Worker-pool size (`MEMX_WORKERS`; `0` or unset = one worker per
    /// core, `1` = fully serial).
    pub workers: usize,
    /// Branch-and-bound node-budget override (`MEMX_NODE_LIMIT`). It
    /// budgets both the on-chip searches (which degrade to their greedy
    /// incumbent on exhaustion) and the off-chip partition search
    /// (which instead raises the deterministic `TooManyOffChipGroups`
    /// exhaustion signal). `scripts/bench_baseline.sh` raises it when
    /// comparing the two lower bounds: node counts only measure pruning
    /// when the search runs to exactness.
    pub node_limit: Option<u64>,
    /// Persistent evaluation cache (`MEMX_CACHE_DIR` names a directory
    /// carried across runs; unset or empty = no cache). An unusable
    /// directory prints a warning and degrades to uncached evaluation
    /// rather than failing the run.
    pub cache: Option<Arc<EvalCache>>,
    /// Off-chip symmetric-group dominance rule (`MEMX_DOMINANCE=0`
    /// disables it). The rule only removes symmetric duplicates, so the
    /// returned organization is identical either way; only the node and
    /// cut counters differ.
    pub dominance: bool,
    /// Branch-and-bound lower bound (`MEMX_BOUND=solo` falls back to
    /// the original solo-1-port suffix bound). Both bounds are
    /// admissible, so with an unexhausted budget the results are
    /// identical; only the nodes-visited counters differ.
    pub bound: memx_core::alloc::BoundKind,
}

impl Default for RunKnobs {
    /// The knobs every library entry point is equivalent to: full
    /// fidelity, auto workers, default node budget, no cache, dominance
    /// on, pairwise bound.
    fn default() -> Self {
        RunKnobs {
            smoke: false,
            workers: 0,
            node_limit: None,
            cache: None,
            dominance: true,
            bound: memx_core::alloc::BoundKind::default(),
        }
    }
}

impl RunKnobs {
    /// Resolves every knob from the process environment (and the
    /// `--smoke` argument). Binaries call this exactly once, at entry;
    /// everything downstream takes the struct by value.
    pub fn from_env() -> Self {
        let smoke = std::env::var_os("MEMX_SMOKE").is_some_and(|v| !v.is_empty() && v != "0")
            || std::env::args().any(|a| a == "--smoke");
        let workers = std::env::var("MEMX_WORKERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let node_limit = std::env::var("MEMX_NODE_LIMIT")
            .ok()
            .and_then(|v| v.parse().ok());
        let cache = std::env::var_os("MEMX_CACHE_DIR")
            .filter(|dir| !dir.is_empty())
            .and_then(|dir| match EvalCache::open(&dir) {
                Ok(cache) => Some(Arc::new(cache)),
                Err(e) => {
                    eprintln!("[eval cache disabled: {e}]");
                    None
                }
            });
        let dominance = std::env::var("MEMX_DOMINANCE").ok().as_deref() != Some("0");
        let bound = match std::env::var("MEMX_BOUND").ok().as_deref() {
            Some("solo") => memx_core::alloc::BoundKind::Solo,
            _ => memx_core::alloc::BoundKind::Pairwise,
        };
        RunKnobs {
            smoke,
            workers,
            node_limit,
            cache,
            dominance,
            bound,
        }
    }
}

/// Prints a batch's allocation search-effort counters on stderr — the
/// `[alloc nodes: N]` / `[off-chip nodes: N]` / `[off-chip exhaustive:
/// N]` lines `scripts/bench_baseline.sh` greps. One owner for the label
/// format: the table binaries must not hand-roll these lines, or a
/// label tweak applied to one binary but not the other would leave the
/// bench JSON with empty fields.
pub fn print_alloc_stat_lines<'a>(reports: impl IntoIterator<Item = &'a CostReport>) {
    print_alloc_stat_lines_from_stats(reports.into_iter().map(|r| r.alloc_stats));
}

/// [`print_alloc_stat_lines`] over bare [`AllocStats`] values — what the
/// streaming table binaries accumulate (stats are `Copy`, so a row's
/// counters outlive the report it came from).
pub fn print_alloc_stat_lines_from_stats(stats: impl IntoIterator<Item = AllocStats>) {
    let mut nodes = 0u64;
    let mut off_nodes = 0u64;
    let mut off_exhaustive = 0u64;
    let mut dominance_cuts = 0u64;
    for s in stats {
        nodes += s.bb_nodes;
        off_nodes += s.off_chip_bb_nodes;
        off_exhaustive = off_exhaustive.saturating_add(s.off_chip_exhaustive_partitions);
        dominance_cuts += s.off_chip_dominance_cuts;
    }
    eprintln!("[alloc nodes: {nodes}]");
    eprintln!("[off-chip nodes: {off_nodes}]");
    eprintln!("[off-chip exhaustive: {off_exhaustive}]");
    eprintln!("[off-chip dominance cuts: {dominance_cuts}]");
}

/// Prints a binary's persistent-cache counters on stderr, one line per
/// entry kind — the `[scbd cache: H hits / M misses]` /
/// `[alloc cache: H hits / M misses]` / `[block cache: H hits / M
/// misses]` lines `scripts/bench_baseline.sh`,
/// `scripts/cache_roundtrip.sh` and `scripts/sharded_sweep.sh` grep.
/// One owner for the label format, same rationale as
/// [`print_alloc_stat_lines`]: warm/cold gates must be able to tell a
/// served schedule from a served allocation, so the kinds are never
/// summed into one line. Binaries running uncached (no
/// `MEMX_CACHE_DIR`) report `0 hits / 0 misses` on every line, keeping
/// the lines grep-able in every mode.
pub fn print_cache_stat_lines(cache: Option<&EvalCache>) {
    let stats = cache.map(|c| c.stats()).unwrap_or_default();
    eprintln!(
        "[scbd cache: {} hits / {} misses]",
        stats.scbd_hits, stats.scbd_misses
    );
    eprintln!(
        "[alloc cache: {} hits / {} misses]",
        stats.alloc_hits, stats.alloc_misses
    );
    eprintln!(
        "[block cache: {} hits / {} misses]",
        stats.blocks_hits, stats.blocks_misses
    );
}

/// Everything the experiments share: the profiled spec, the technology
/// library, and the allocation search options every table uses.
#[derive(Debug)]
pub struct PaperContext {
    /// The pruned BTPC specification (18 basic groups).
    pub btpc: BtpcSpec,
    /// The calibrated technology library.
    pub lib: MemLibrary,
    /// Allocation options for every evaluation run on this context
    /// (reduced search budget when built by [`context`] in smoke mode).
    pub alloc: AllocOptions,
    /// Engine worker-pool size (`0` = one per core). Results are
    /// bit-identical for every value; only wall-clock changes.
    pub workers: usize,
    /// Persistent evaluation cache ([`context`] wires `MEMX_CACHE_DIR`
    /// here; [`paper_context`] leaves it `None`). Results are
    /// bit-identical with or without it.
    pub cache: Option<Arc<EvalCache>>,
}

impl PaperContext {
    /// The evaluation options every table starts from: the allocation
    /// sweep picks the cheapest on-chip memory count for each variant.
    pub fn options(&self) -> EvaluateOptions {
        EvaluateOptions {
            cycle_budget: None,
            alloc: self.alloc.clone(),
        }
    }

    /// The exploration engine every table fans its design points over
    /// (persistent cache attached when the context carries one).
    pub fn engine(&self) -> Engine<'_> {
        Engine::builder(&self.lib)
            .workers(self.workers)
            .eval_cache(self.cache.clone())
            .build()
    }
}

/// Profiles the codec and builds the production spec (shared entry point
/// of all experiments) at full paper fidelity, independent of any
/// environment state.
///
/// # Panics
///
/// Panics if the instrumented encode or spec construction fails — both
/// are deterministic and covered by tests.
pub fn paper_context() -> PaperContext {
    context_with(PROFILE_FRAME, AllocOptions::default())
}

/// The context for the reproduction *binaries*: full paper fidelity
/// normally, the cheap profile and reduced allocation search when
/// `knobs.smoke` is on. Only binaries should call this — with the
/// [`RunKnobs`] they resolved once at entry; library users, tests and
/// benches use the env-independent [`paper_context`].
pub fn context(knobs: RunKnobs) -> PaperContext {
    let alloc = AllocOptions {
        node_limit: knobs.node_limit.unwrap_or(if knobs.smoke {
            SMOKE_NODE_LIMIT
        } else {
            AllocOptions::default().node_limit
        }),
        workers: knobs.workers,
        bound: knobs.bound,
        off_chip_dominance: knobs.dominance,
        ..AllocOptions::default()
    };
    let frame = if knobs.smoke {
        SMOKE_PROFILE_FRAME
    } else {
        PROFILE_FRAME
    };
    PaperContext {
        workers: knobs.workers,
        cache: knobs.cache,
        ..context_with(frame, alloc)
    }
}

fn context_with(frame: usize, alloc: AllocOptions) -> PaperContext {
    let profile = measure_profile(frame, frame, SEED);
    let btpc = btpc_app_spec(&profile, FRAME, FRAME, CYCLE_BUDGET)
        .expect("paper spec construction is deterministic");
    PaperContext {
        btpc,
        lib: MemLibrary::default_07um(),
        alloc,
        workers: 0,
        cache: None,
    }
}

/// **Table 1** — basic group structuring for the BTPC application.
///
/// # Errors
///
/// Propagates pipeline errors (none occur with the default context).
pub fn table1(ctx: &PaperContext) -> Result<Exploration<'_>, ExploreError> {
    let options = ctx.options();
    let compacted = compact(&ctx.btpc.spec, ctx.btpc.ridge, 3)?;
    let merged = merge(&ctx.btpc.spec, ctx.btpc.pyr, ctx.btpc.ridge)?;
    let points = vec![
        DesignPoint::new("No structuring", &ctx.btpc.spec, options.clone()),
        DesignPoint::new("ridge compacted", &compacted.spec, options.clone()),
        DesignPoint::new("ridge and pyr merged", &merged.spec, options),
    ];
    ctx.engine().explore(&points)
}

/// The Table-1 winner: `ridge` merged into `pyr`. Returns the spec and
/// the merged pixel-store group (the paper's "image array" for the
/// hierarchy step).
///
/// # Errors
///
/// Propagates transform errors.
pub fn merged_spec(ctx: &PaperContext) -> Result<(AppSpec, BasicGroupId), ExploreError> {
    let merged = merge(&ctx.btpc.spec, ctx.btpc.pyr, ctx.btpc.ridge)?;
    Ok((merged.spec, merged.new_group))
}

/// The Figure-3 layer candidates: `ylocal` (12 registers, reuse 2) and
/// `yhier` (5 K words, reuse 4).
///
/// `yhier` needs 2 ports when it serves the prediction loop directly
/// (filled while read, as annotated in Figure 3); in the two-layer chain
/// it only feeds `ylocal`'s copy loop and 1 port suffices.
pub fn figure3_layers() -> (HierarchyLayer, HierarchyLayer, HierarchyLayer) {
    let ylocal = HierarchyLayer::new("ylocal", 12, 2, 2.0);
    let yhier_serving = HierarchyLayer::new("yhier", 5 * 1024, 2, 4.0);
    let yhier_feeding = HierarchyLayer::new("yhier", 5 * 1024, 1, 4.0);
    (ylocal, yhier_serving, yhier_feeding)
}

/// **Table 2** — memory hierarchy decision for the pixel store.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn table2(ctx: &PaperContext) -> Result<Exploration<'_>, ExploreError> {
    let (spec, pixel_store) = merged_spec(ctx)?;
    let (ylocal, yhier_serving, yhier_feeding) = figure3_layers();
    let options = ctx.options();
    let l1 = apply_hierarchy(&spec, pixel_store, std::slice::from_ref(&yhier_serving))?;
    let l0 = apply_hierarchy(&spec, pixel_store, std::slice::from_ref(&ylocal))?;
    let both = apply_hierarchy(&spec, pixel_store, &[ylocal, yhier_feeding])?;
    let points = vec![
        DesignPoint::new("No hierarchy", &spec, options.clone()),
        DesignPoint::new("Only layer 1 (yhier)", &l1.spec, options.clone()),
        DesignPoint::new("Only layer 0 (ylocal)", &l0.spec, options.clone()),
        DesignPoint::new("2 layers (both)", &both.spec, options),
    ];
    ctx.engine().explore(&points)
}

/// The Table-2 winner: layer 0 (`ylocal`) only.
///
/// # Errors
///
/// Propagates transform errors.
pub fn best_hierarchy_spec(ctx: &PaperContext) -> Result<AppSpec, ExploreError> {
    let (spec, pixel_store) = merged_spec(ctx)?;
    let (ylocal, _, _) = figure3_layers();
    Ok(apply_hierarchy(&spec, pixel_store, &[ylocal])?.spec)
}

/// One row of the Table-3 budget sweep.
#[derive(Debug)]
pub struct BudgetRow {
    /// Cycles given back to the data-path scheduler.
    pub extra_cycles: u64,
    /// Same, as a fraction of the full budget.
    pub extra_fraction: f64,
    /// The evaluation at the tightened budget.
    pub report: CostReport,
}

/// **Table 3** — tightening the storage cycle budget on the Table-2
/// winner. `extras` lists the cycles handed to the data path (the paper
/// uses 86 144 / 2 351 232 / 3 133 568 / 3 481 728 on a 20 M total).
///
/// # Errors
///
/// Propagates pipeline errors; a too-tight budget is not one — it stops
/// the sweep at that row (the returned rows are the feasible prefix),
/// exactly as [`table3_stream`] documents.
pub fn table3(ctx: &PaperContext, extras: &[u64]) -> Result<Vec<BudgetRow>, ExploreError> {
    let mut rows = Vec::new();
    table3_stream(ctx, extras, |row| rows.push(row))?;
    Ok(rows)
}

/// Streaming Table 3: `on_row` receives each [`BudgetRow`] in sweep
/// order as soon as it (and its predecessors) complete, so a caller
/// printing rows holds one report alive instead of the whole sweep
/// (reports carry full schedules; see
/// [`Engine::evaluate_stream`](memx_core::engine::Engine::evaluate_stream)
/// for the exact residency guarantees per worker count).
///
/// # Errors
///
/// Propagates pipeline errors; a too-tight budget stops the sweep at
/// that row (like the designer would) without being an error.
pub fn table3_stream(
    ctx: &PaperContext,
    extras: &[u64],
    mut on_row: impl FnMut(BudgetRow),
) -> Result<(), ExploreError> {
    let spec = best_hierarchy_spec(ctx)?;
    let points: Vec<DesignPoint> = extras
        .iter()
        .map(|&extra| {
            DesignPoint::new(
                format!("{extra} extra cycles"),
                &spec,
                EvaluateOptions {
                    cycle_budget: Some(CYCLE_BUDGET - extra),
                    alloc: ctx.alloc.clone(),
                },
            )
        })
        .collect();
    let mut stopped = false;
    let mut failure: Option<ExploreError> = None;
    ctx.engine().evaluate_stream(&points, |i, result| {
        if stopped || failure.is_some() {
            return;
        }
        match result {
            Ok(report) => on_row(BudgetRow {
                extra_cycles: extras[i],
                extra_fraction: extras[i] as f64 / CYCLE_BUDGET as f64,
                report,
            }),
            // Beyond the memory-access critical path no schedule exists:
            // the sweep simply stops there, like the designer would.
            Err(ExploreError::BudgetTooTight { .. }) => stopped = true,
            Err(e) => failure = Some(e),
        }
    });
    match failure {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// The paper's Table-3 sweep points.
pub fn paper_extras() -> Vec<u64> {
    vec![86_144, 2_351_232, 3_133_568, 3_481_728]
}

/// Finds the on-chip bandwidth crossover of `spec`: the smallest number
/// of reclaimed data-path cycles at which some on-chip group's accesses
/// are forced to overlap *themselves* (requiring a multi-port module no
/// matter how groups are partitioned — the point where the on-chip
/// organization cost must rise). This is the working point at which the
/// paper runs its allocation sweep — its Table 4 `k = 4` row equals its
/// Table 3 15.7 % row.
///
/// # Errors
///
/// Propagates scheduling errors.
pub fn on_chip_crossover_extra(spec: &AppSpec) -> Result<u64, ExploreError> {
    on_chip_crossover_extra_cached(spec, None)
}

/// [`on_chip_crossover_extra`] with the persistent cache threaded
/// through: the crossover probe distributes dozens of budgets, all of
/// which a warm cache serves from disk.
///
/// # Errors
///
/// Propagates scheduling errors.
pub fn on_chip_crossover_extra_cached(
    spec: &AppSpec,
    cache: Option<&EvalCache>,
) -> Result<u64, ExploreError> {
    let step = CYCLE_BUDGET / 100;
    let mut last_free = 0;
    for extra in (0..CYCLE_BUDGET * 2 / 5).step_by(step as usize) {
        match memx_core::cache::distribute_cached(spec, CYCLE_BUDGET - extra, cache) {
            Ok(result) => {
                let forced_multiport = spec.basic_groups().iter().any(|g| {
                    g.placement() != memx_ir::Placement::OffChip
                        && result.required_ports(|x| x == g.id()) > g.min_ports()
                });
                if forced_multiport {
                    return Ok(extra);
                }
                last_free = extra;
            }
            Err(_) => break,
        }
    }
    Ok(last_free)
}

/// The extended Table-3 sweep: the paper's four points plus a denser
/// sweep through our schedule's crossover region (the absolute
/// crossover fractions differ from the paper's because the access
/// densities of the two BTPC implementations differ; see
/// EXPERIMENTS.md).
pub fn extended_extras(ctx: &PaperContext) -> Result<Vec<u64>, ExploreError> {
    let spec = best_hierarchy_spec(ctx)?;
    let crossover = on_chip_crossover_extra_cached(&spec, ctx.cache.as_deref())?;
    let mut extras = paper_extras();
    for delta in [-2i64, 0, 2, 4, 6, 8, 10] {
        let extra = crossover as i64 + delta * (CYCLE_BUDGET / 100) as i64;
        if extra > 0 && (extra as u64) < CYCLE_BUDGET {
            extras.push(extra as u64);
        }
    }
    extras.sort_unstable();
    extras.dedup();
    Ok(extras)
}

/// One row of the Table-4 allocation sweep.
#[derive(Debug)]
pub struct AllocationRow {
    /// On-chip memories allocated.
    pub memories: u32,
    /// The evaluation with that allocation.
    pub report: CostReport,
}

/// **Table 4** — different on-chip memory allocations on the Table-2
/// winner at the working budget: just past the on-chip bandwidth
/// crossover, mirroring the paper, which runs its allocation sweep at
/// the 15.7 %-tightened point where its on-chip cost first rises (its
/// Table 4 `k = 4` row equals its Table 3 15.7 % row).
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn table4(ctx: &PaperContext, counts: &[u32]) -> Result<Vec<AllocationRow>, ExploreError> {
    let mut rows = Vec::new();
    table4_stream(ctx, counts, |row| rows.push(row))?;
    Ok(rows)
}

/// Streaming Table 4: `on_row` receives each [`AllocationRow`] in sweep
/// order as it completes (see [`table3_stream`] for why streaming
/// matters on large sweeps).
///
/// # Errors
///
/// Propagates the first (by sweep order) failing point's error; rows
/// before it are still delivered.
pub fn table4_stream(
    ctx: &PaperContext,
    counts: &[u32],
    mut on_row: impl FnMut(AllocationRow),
) -> Result<(), ExploreError> {
    let spec = best_hierarchy_spec(ctx)?;
    let budget = CYCLE_BUDGET - 3_133_568; // the paper's 15.7 % working point
                                           // Every point shares (spec, budget): the engine schedules once and
                                           // fans only the allocation searches over the workers.
    let points: Vec<DesignPoint> = counts
        .iter()
        .map(|&k| {
            DesignPoint::new(
                format!("{k} on-chip memories"),
                &spec,
                EvaluateOptions {
                    cycle_budget: Some(budget),
                    alloc: AllocOptions {
                        on_chip_memories: Some(k),
                        ..ctx.alloc.clone()
                    },
                },
            )
        })
        .collect();
    let mut failure: Option<ExploreError> = None;
    ctx.engine().evaluate_stream(&points, |i, result| {
        if failure.is_some() {
            return;
        }
        match result {
            Ok(report) => on_row(AllocationRow {
                memories: counts[i],
                report,
            }),
            Err(e) => failure = Some(e),
        }
    });
    match failure {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// The paper's Table-4 allocation counts.
pub fn paper_allocations() -> Vec<u32> {
    vec![4, 5, 8, 10, 14]
}

/// Off-chip group count of the [`plateau_spec`] bench instance: big
/// enough that the full Bell tree (~142 k nodes at 10 groups) dwarfs
/// the dominance-collapsed tree (2^10 - 1 nodes), small enough that the
/// dominance-*disabled* run still proves its optimum within the default
/// node budget — so `scripts/bench_baseline.sh` can record both node
/// counts from finished searches and `bench_regression.sh` can gate
/// their ratio.
pub const PLATEAU_GROUPS: usize = 10;

/// A synthetic worst-case tie plateau for the off-chip partition
/// search: `count` bitwise-symmetric off-chip frame stores (identical
/// size, width, traffic, no port conflicts), so every partition prices
/// identically and the lower bound alone cannot cut the Bell-number
/// tree — only the symmetric-group dominance rule can. This is the
/// instance behind the `plateau_dominance` binary and the
/// `table4_dominance_cuts` bench field; it deliberately bypasses the
/// BTPC codec so the plateau shape is exact, not profile-dependent.
///
/// # Panics
///
/// Panics if spec construction fails — the builder calls are
/// deterministic and covered by the binary's smoke run.
pub fn plateau_spec(count: usize) -> AppSpec {
    let mut b = AppSpecBuilder::new("plateau");
    let groups: Vec<_> = (0..count)
        .map(|i| {
            b.basic_group_placed(format!("frame{i}"), 4 << 20, 8, Placement::OffChip)
                .expect("plateau group construction is deterministic")
        })
        .collect();
    let n = b
        .loop_nest("scan", 10)
        .expect("plateau nest construction is deterministic");
    for &g in &groups {
        b.access(n, g, AccessKind::Read)
            .expect("plateau access construction is deterministic");
    }
    b.cycle_budget(100_000);
    b.build()
        .expect("plateau spec construction is deterministic")
}
