//! # memx-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation on the
//! BTPC demonstrator. Each `table*`/`fig*` binary in `src/bin` prints
//! the corresponding artifact; the criterion benches in `benches/`
//! measure the underlying algorithms.
//!
//! The [`experiments`] module holds the shared pipeline so binaries,
//! integration tests and benches produce identical numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
