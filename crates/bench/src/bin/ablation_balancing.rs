//! Ablation study: what does flow-graph **balancing** buy over naive
//! ASAP packing? (The design choice behind §4.5's storage-cycle-budget
//! distribution.)
//!
//! Both schedulers get the same specification and budget; the resulting
//! bandwidth requirements are fed to the same allocation/assignment
//! step. ASAP packing maximizes overlap, inflating port counts and
//! forcing memory splits — or making the assignment infeasible
//! altogether.

use memx_bench::experiments;
use memx_core::alloc::assign_with_stats_cached;
use memx_core::scbd;
use memx_core::scbd::BodySchedule;

fn main() {
    let ctx = experiments::context(experiments::RunKnobs::from_env());
    let spec = experiments::best_hierarchy_spec(&ctx).expect("transforms valid");
    let budget = experiments::CYCLE_BUDGET;

    println!("Ablation: flow-graph balancing vs. naive ASAP packing");
    println!("(BTPC, merged + ylocal hierarchy, {budget} cycle budget)\n");

    for (label, result) in [
        (
            // The balanced path is exactly what the cache stores; the
            // ASAP baseline is a different algorithm and stays uncached.
            "balanced (paper)",
            memx_core::cache::distribute_cached(&spec, budget, ctx.cache.as_deref()),
        ),
        ("ASAP packed", scbd::distribute_asap(&spec, budget)),
    ] {
        match result {
            Ok(schedule) => {
                let pressure: f64 = schedule.bodies.iter().map(BodySchedule::pressure).sum();
                let max_ports_any_group = spec
                    .basic_groups()
                    .iter()
                    .map(|g| schedule.required_ports(|x| x == g.id()))
                    .max()
                    .unwrap_or(0);
                print!(
                    "{label:<18} pressure {pressure:>7.1}  max self-overlap {max_ports_any_group}  "
                );
                // Both arms share the allocation cache: the assignment
                // step is identical, only its input schedule differs
                // (and so, via the instance fingerprint, its cache key).
                match assign_with_stats_cached(
                    &spec,
                    &schedule,
                    &ctx.lib,
                    &ctx.alloc,
                    ctx.cache.as_deref(),
                ) {
                    Ok((org, _)) => println!(
                        "-> {} (off-chip ports {})",
                        org.cost,
                        org.max_off_chip_ports()
                    ),
                    Err(e) => println!("-> assignment FAILS: {e}"),
                }
            }
            Err(e) => println!("{label:<18} scheduling fails: {e}"),
        }
    }
    experiments::print_cache_stat_lines(ctx.cache.as_deref());
}
