//! Extension demo: the *automatic* memory-hierarchy decision
//! (`memx_core::reuse`) versus the paper's manual Figure-3 choice.
//!
//! The paper picks `ylocal`/`yhier` by hand from cost feedback and cites
//! the formalized data-reuse methodology as the systematic alternative;
//! this binary runs that systematic step on the merged BTPC spec and
//! compares the outcome with the manual winner.

use memx_bench::experiments;
use memx_core::explore::evaluate_with_cache;
use memx_core::reuse;

fn main() {
    let ctx = experiments::context(experiments::RunKnobs::from_env());
    let (merged, pixel_store) = experiments::merged_spec(&ctx).expect("merge valid");

    println!("Data-reuse analysis of the merged BTPC spec:");
    for stats in reuse::analyze(&merged) {
        if stats.reads > 0.0 {
            println!(
                "  {:<14} reads/word {:>8.2}  max reads/iteration {:>5.2}",
                merged.group(stats.group).name(),
                stats.reads_per_word,
                stats.max_reads_per_iteration
            );
        }
    }

    println!("\nCandidates proposed for the pixel store:");
    for cand in reuse::candidates(&merged, pixel_store) {
        let desc = if cand.layers.is_empty() {
            "no hierarchy".to_owned()
        } else {
            cand.layers
                .iter()
                .map(|l| format!("{} ({} words, reuse {:.1})", l.name, l.words, l.reuse))
                .collect::<Vec<_>>()
                .join(" -> ")
        };
        println!(
            "  {desc}  (absorbs {:.1} M reads)",
            cand.reads_absorbed / 1e6
        );
    }

    let options = ctx.options();
    let cache = ctx.cache.as_deref();
    let baseline =
        evaluate_with_cache(&merged, &ctx.lib, cache, &options).expect("baseline evaluates");
    let (auto_spec, auto_report) =
        reuse::auto_hierarchy(&merged, &ctx.lib, &options).expect("auto decision runs");
    let manual_spec = experiments::best_hierarchy_spec(&ctx).expect("manual winner builds");
    let manual =
        evaluate_with_cache(&manual_spec, &ctx.lib, cache, &options).expect("manual evaluates");

    println!("\n{:<26} {}", "no hierarchy:", baseline.cost);
    println!("{:<26} {}", "manual (paper, ylocal):", manual.cost);
    println!("{:<26} {}", "automatic (reuse pass):", auto_report.cost);
    let added: Vec<&str> = auto_spec
        .basic_groups()
        .iter()
        .skip(merged.basic_groups().len())
        .map(|g| g.name())
        .collect();
    println!(
        "automatic layers added: {}",
        if added.is_empty() {
            "none".to_owned()
        } else {
            added.join(", ")
        }
    );
    experiments::print_cache_stat_lines(cache);
}
