//! Tie-plateau dominance vehicle: runs the off-chip partition search on
//! the synthetic [`experiments::plateau_spec`] instance —
//! [`experiments::PLATEAU_GROUPS`] bitwise-symmetric off-chip frame
//! stores whose partitions all price identically, so the lower bound
//! alone cannot prune — and prints the proven-optimal organization plus
//! the search-effort counters.
//!
//! `scripts/bench_baseline.sh` runs it twice (`MEMX_DOMINANCE` on/off)
//! to record the dominance node cut that `scripts/bench_regression.sh`
//! gates. Stdout is bit-identical for every worker count, bound and
//! dominance setting (the rule only removes symmetric duplicates, never
//! the canonical-first optimum), so the determinism matrix covers it
//! like every other binary; only the stderr counters move.

use memx_bench::experiments;
use memx_core::alloc::{assign_with_stats_cached, AllocOptions, MemoryKind};
use memx_core::scbd;

fn main() {
    let knobs = experiments::RunKnobs::from_env();
    let spec = experiments::plateau_spec(experiments::PLATEAU_GROUPS);
    let schedule = match scbd::distribute(&spec) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("plateau scheduling failed: {e}");
            std::process::exit(1);
        }
    };
    let lib = memx_memlib::MemLibrary::default_07um();
    let options = AllocOptions {
        workers: knobs.workers,
        node_limit: knobs
            .node_limit
            .unwrap_or_else(|| AllocOptions::default().node_limit),
        bound: knobs.bound,
        off_chip_dominance: knobs.dominance,
        ..AllocOptions::default()
    };
    let cache = knobs.cache;
    let result = assign_with_stats_cached(&spec, &schedule, &lib, &options, cache.as_deref());
    let (org, stats) = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("plateau allocation failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "Tie plateau: {} symmetric off-chip frame stores",
        experiments::PLATEAU_GROUPS
    );
    println!("{:<20} {:>8} {:>20}", "Memory", "groups", "off-chip power");
    println!("{:<20} {:>8} {:>20}", "", "", "[mW]");
    for (i, m) in org.memories.iter().enumerate() {
        let kind = match m.kind {
            MemoryKind::OnChip => "on-chip",
            MemoryKind::OffChip(_) => "off-chip",
        };
        println!(
            "{:<20} {:>8} {:>20.3}",
            format!("{kind} {i}"),
            m.groups.len(),
            m.cost.off_chip_power_mw
        );
    }
    println!(
        "total off-chip power [mW]: {:.3}",
        org.cost.off_chip_power_mw
    );
    experiments::print_alloc_stat_lines_from_stats([stats]);
    experiments::print_cache_stat_lines(cache.as_deref());
}
