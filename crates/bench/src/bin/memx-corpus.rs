//! Workload-corpus runner: loads every `.mxspec` under `corpus/`
//! (documented in `docs/corpus.md`), proves the textual round-trip for
//! each entry — `parse(print(spec)) == spec` with an identical content
//! hash — and evaluates every workload to its proven-optimal memory
//! organization, printing one deterministic cost row per entry.
//!
//! Two seeded [`memx_ir::specgen`] stress specs ride along to keep the
//! generator itself on the determinism matrix. Stdout is bit-identical
//! across worker counts, bounds, dominance settings and cache state;
//! the search-effort and cache counters go to stderr like every other
//! binary. Any parse failure, round-trip mismatch or allocation search
//! that exhausts its node budget (i.e. cannot prove optimality) exits
//! nonzero.

use std::path::Path;

use memx_bench::experiments;
use memx_core::alloc::AllocOptions;
use memx_core::corpus;
use memx_core::engine::{DesignPoint, Engine};
use memx_core::explore::EvaluateOptions;
use memx_ir::{parse_spec, print_spec, specgen, AppSpec};

/// Stream seed for the riding-along generator specs.
const SPECGEN_SEED: u64 = 2026;
/// How many generated specs join the corpus run.
const SPECGEN_COUNT: u64 = 2;

fn round_trip_or_exit(name: &str, spec: &AppSpec) {
    let text = print_spec(spec);
    let reparsed = match parse_spec(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{name}: canonical text does not re-parse: {e}");
            std::process::exit(1);
        }
    };
    if reparsed != *spec || reparsed.content_hash() != spec.content_hash() {
        eprintln!("{name}: parse(print(spec)) is not the identity");
        std::process::exit(1);
    }
}

fn main() {
    let knobs = experiments::RunKnobs::from_env();
    let entries = match corpus::load_dir(Path::new("corpus")) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("corpus load failed: {e}");
            std::process::exit(1);
        }
    };

    let generated = match specgen::generate_batch(SPECGEN_SEED, SPECGEN_COUNT) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("specgen rejected its own plan: {e}");
            std::process::exit(1);
        }
    };

    let mut specs: Vec<(String, &AppSpec)> = Vec::new();
    for e in &entries {
        round_trip_or_exit(&e.name, &e.spec);
        // The on-disk text and the Rust-side spec must hash alike, or
        // text-submitted jobs would miss the evaluation cache.
        match parse_spec(&e.text) {
            Ok(s) if s.content_hash() == e.spec.content_hash() => {}
            Ok(_) => {
                eprintln!("{}: file text and loaded spec hash apart", e.name);
                std::process::exit(1);
            }
            Err(err) => {
                eprintln!("{}: {err}", e.name);
                std::process::exit(1);
            }
        }
        specs.push((e.name.clone(), &e.spec));
    }
    for spec in &generated {
        round_trip_or_exit(spec.name(), spec);
        specs.push((spec.name().to_string(), spec));
    }

    let node_limit = knobs.node_limit.unwrap_or(if knobs.smoke {
        experiments::SMOKE_NODE_LIMIT
    } else {
        AllocOptions::default().node_limit
    });
    let alloc = AllocOptions {
        node_limit,
        workers: knobs.workers,
        bound: knobs.bound,
        off_chip_dominance: knobs.dominance,
        ..AllocOptions::default()
    };
    let lib = memx_memlib::MemLibrary::default_07um();
    let cache = knobs.cache;
    let engine = Engine::builder(&lib)
        .workers(knobs.workers)
        .eval_cache(cache.clone())
        .build();

    let points: Vec<DesignPoint> = specs
        .iter()
        .map(|(name, spec)| {
            DesignPoint::new(
                name.clone(),
                spec,
                EvaluateOptions {
                    cycle_budget: None,
                    alloc: alloc.clone(),
                },
            )
        })
        .collect();

    println!(
        "{:<20} {:>18} {:>12} {:>12} {:>12} {:>10} {:>5}",
        "Workload", "content hash", "area", "power", "off-chip pwr", "macp", "mems"
    );
    println!(
        "{:<20} {:>18} {:>12} {:>12} {:>12} {:>10} {:>5}",
        "", "", "[mm2]", "[mW]", "[mW]", "[cycles]", ""
    );
    let mut stats = Vec::with_capacity(points.len());
    let mut failed = false;
    engine.evaluate_stream(&points, |i, result| {
        let (name, spec) = &specs[i];
        match result {
            Ok(report) => {
                if report.alloc_stats.bb_nodes >= node_limit {
                    eprintln!(
                        "{name}: allocation search exhausted its node budget — optimum unproven"
                    );
                    failed = true;
                }
                println!(
                    "{:<20} {:>#18x} {:>12.4} {:>12.3} {:>12.3} {:>10} {:>5}",
                    name,
                    spec.content_hash(),
                    report.cost.on_chip_area_mm2,
                    report.cost.on_chip_power_mw,
                    report.cost.off_chip_power_mw,
                    report.macp_cycles,
                    report.organization.memories.len()
                );
                stats.push(report.alloc_stats);
            }
            Err(e) => {
                eprintln!("{name}: evaluation failed: {e}");
                failed = true;
            }
        }
    });
    println!(
        "corpus workloads: {} (+{} generated)",
        entries.len(),
        SPECGEN_COUNT
    );
    experiments::print_alloc_stat_lines_from_stats(stats);
    experiments::print_cache_stat_lines(cache.as_deref());
    if failed {
        std::process::exit(1);
    }
}
