//! Regenerates **Figure 1**: the stepwise-refinement methodology tree.
//!
//! Walks the whole decision tree of the paper — structuring variants ×
//! hierarchy variants × cycle budgets × allocations — through the
//! physical-memory-management pipeline and prints the explored tree with
//! the accurate cost feedback at every leaf, plus the chosen path.

use memx_bench::experiments::{self, CYCLE_BUDGET};
use memx_core::explore::{evaluate_with_cache, EvaluateOptions};
use memx_core::hierarchy::apply_hierarchy;
use memx_core::structuring::{compact, merge};

fn main() {
    let ctx = experiments::context(experiments::RunKnobs::from_env());
    println!("Figure 1: stepwise refinement methodology (explored tree)");
    println!(
        "Pruned System Specification: {} basic groups, {} loop nests",
        ctx.btpc.spec.basic_groups().len(),
        ctx.btpc.spec.loop_nests().len()
    );

    // Level 1: basic group structuring.
    let structurings = vec![
        ("BG Struct: none", ctx.btpc.spec.clone(), ctx.btpc.pyr),
        (
            "BG Struct: ridge compacted",
            compact(&ctx.btpc.spec, ctx.btpc.ridge, 3)
                .expect("compaction is valid")
                .spec,
            ctx.btpc.pyr,
        ),
        {
            let merged =
                merge(&ctx.btpc.spec, ctx.btpc.pyr, ctx.btpc.ridge).expect("merge is valid");
            ("BG Struct: ridge+pyr merged", merged.spec, merged.new_group)
        },
    ];

    let (ylocal, yhier_serving, _) = experiments::figure3_layers();
    let mut evaluated = 0usize;
    let mut best: Option<(String, f64)> = None;
    for (slabel, sspec, pixel_store) in &structurings {
        println!("|- {slabel}");
        // Level 2: memory hierarchy (only explored fully on the merged
        // branch, as in the paper; the others evaluate flat).
        let hierarchies: Vec<(String, memx_ir::AppSpec)> = if slabel.contains("merged") {
            vec![
                ("Mem.Hier: none".to_owned(), sspec.clone()),
                (
                    "Mem.Hier: yhier".to_owned(),
                    apply_hierarchy(sspec, *pixel_store, std::slice::from_ref(&yhier_serving))
                        .expect("layer is valid")
                        .spec,
                ),
                (
                    "Mem.Hier: ylocal".to_owned(),
                    apply_hierarchy(sspec, *pixel_store, std::slice::from_ref(&ylocal))
                        .expect("layer is valid")
                        .spec,
                ),
            ]
        } else {
            vec![("Mem.Hier: none".to_owned(), sspec.clone())]
        };
        for (hlabel, hspec) in &hierarchies {
            println!("|  |- {hlabel}");
            // Level 3: cycle budget distribution alternatives.
            for (blabel, extra) in [("full budget", 0u64), ("tightened 15.7%", 3_133_568)] {
                // Level 4: memory organization (allocation sweep).
                let options = EvaluateOptions {
                    cycle_budget: Some(CYCLE_BUDGET - extra),
                    alloc: ctx.alloc.clone(),
                };
                match evaluate_with_cache(hspec, &ctx.lib, ctx.cache.as_deref(), &options) {
                    Ok(report) => {
                        evaluated += 1;
                        let scalar = report.cost.scalar(1.0, 1.0);
                        println!(
                            "|  |  |- Cycle Distr: {blabel:<16} -> Mem.Org: {} on-chip mems, {}",
                            report.organization.on_chip_count(),
                            report.cost
                        );
                        let label = format!("{slabel} / {hlabel} / {blabel}");
                        if best.as_ref().map(|(_, s)| scalar < *s).unwrap_or(true) {
                            best = Some((label, scalar));
                        }
                    }
                    Err(e) => println!("|  |  |- Cycle Distr: {blabel:<16} -> infeasible: {e}"),
                }
            }
        }
    }
    println!("\nEvaluated {evaluated} full memory organizations.");
    if let Some((label, scalar)) = best {
        println!("Chosen path (min area+power scalar {scalar:.1}): {label}");
    }
    experiments::print_cache_stat_lines(ctx.cache.as_deref());
}
