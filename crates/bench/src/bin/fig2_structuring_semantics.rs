//! Regenerates **Figure 2**: basic group compaction (a) and merging (b)
//! transform semantics, demonstrated on a miniature specification.

use memx_bench::experiments;
use memx_core::structuring::{compact, merge};
use memx_ir::{AccessKind, AppSpecBuilder};

fn main() {
    // A small two-array loop kernel mirroring Figure 2's sketches.
    let mut b = AppSpecBuilder::new("fig2");
    let narrow = b.basic_group("narrow", 512, 2).expect("valid group");
    let wide = b.basic_group("wide", 512, 8).expect("valid group");
    let nest = b.loop_nest("kernel", 512).expect("valid nest");
    for _ in 0..3 {
        b.access(nest, narrow, AccessKind::Read)
            .expect("valid access");
        b.access(nest, wide, AccessKind::Read)
            .expect("valid access");
    }
    b.access(nest, narrow, AccessKind::Write)
        .expect("valid access");
    b.cycle_budget(1 << 20);
    let spec = b.build().expect("valid spec");

    let describe = |name: &str, spec: &memx_ir::AppSpec| {
        println!("{name}:");
        for g in spec.basic_groups() {
            let (r, w) = spec.total_accesses(g.id());
            if r + w > 0.0 {
                println!(
                    "  {:<16} {:>6} words x {:>2} bit   reads {:>6.0}  writes {:>6.0}",
                    g.name(),
                    g.words(),
                    g.bitwidth(),
                    r,
                    w
                );
            }
        }
        println!("  total accesses: {:.0}\n", spec.total_access_count());
    };

    println!("Figure 2: basic group (a) compaction and (b) merging\n");
    describe("original", &spec);

    let compacted = compact(&spec, narrow, 3).expect("compaction is valid");
    describe(
        "(a) `narrow` compacted x3 (3 words -> 1 wider word)",
        &compacted.spec,
    );

    let merged = merge(&spec, wide, narrow).expect("merge is valid");
    describe(
        "(b) `wide` and `narrow` merged (array of records)",
        &merged.spec,
    );
    // This figure never schedules, so the line always reads 0/0 —
    // printed anyway (without opening a cache) so every binary's stderr
    // is uniformly grep-able.
    experiments::print_cache_stat_lines(None);
}
