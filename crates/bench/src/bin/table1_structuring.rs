//! Regenerates **Table 1**: basic group structuring for the BTPC
//! application.

use memx_bench::experiments;

fn main() {
    let ctx = experiments::context(experiments::RunKnobs::from_env());
    match experiments::table1(&ctx) {
        Ok(exp) => print!(
            "{}",
            exp.to_table("Table 1: Basic group structuring for the BTPC application")
        ),
        Err(e) => {
            eprintln!("table 1 failed: {e}");
            std::process::exit(1);
        }
    }
    experiments::print_cache_stat_lines(ctx.cache.as_deref());
}
