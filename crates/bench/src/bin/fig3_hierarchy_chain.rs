//! Regenerates **Figure 3**: the custom memory hierarchy for the pixel
//! store — `1 M frame -> yhier (5 K, 2-port) -> ylocal (12 registers) ->
//! data paths` — with the per-layer traffic our transform derives.

use memx_bench::experiments;
use memx_core::hierarchy::apply_hierarchy;

fn main() {
    let ctx = experiments::context(experiments::RunKnobs::from_env());
    let (spec, pixel_store) = experiments::merged_spec(&ctx).expect("merge is valid");
    let (ylocal, _, yhier_feeding) = experiments::figure3_layers();
    let chain =
        apply_hierarchy(&spec, pixel_store, &[ylocal, yhier_feeding]).expect("layers are valid");

    println!("Figure 3: memory hierarchy for the pixel store (Layer 2 -> Layer 0)\n");
    let target = chain.spec.group(pixel_store);
    let (tr, tw) = chain.spec.total_accesses(pixel_store);
    println!(
        "Layer 2  {:<12} {:>9} words x {:>2} bit  ({})  reads {:>10.0} writes {:>10.0}",
        target.name(),
        target.words(),
        target.bitwidth(),
        target.placement(),
        tr,
        tw
    );
    for (i, &layer) in chain.layers.iter().enumerate().rev() {
        let g = chain.spec.group(layer);
        let (r, w) = chain.spec.total_accesses(layer);
        println!(
            "Layer {}  {:<12} {:>9} words x {:>2} bit  ({}, {} ports)  reads {:>10.0} writes {:>10.0}",
            i,
            g.name(),
            g.words(),
            g.bitwidth(),
            g.placement(),
            g.min_ports(),
            r,
            w
        );
    }
    println!("         data paths");
    println!();
    println!("Copy loops inserted by the transform:");
    for nest in chain.spec.loop_nests() {
        if nest.name().starts_with("copy_") {
            let burst = nest.accesses().iter().any(|a| a.is_burst());
            println!(
                "  {:<14} x{:>9}  ({})",
                nest.name(),
                nest.iterations(),
                if burst {
                    "page-mode burst from off-chip"
                } else {
                    "on-chip transfer"
                }
            );
        }
    }
    experiments::print_cache_stat_lines(ctx.cache.as_deref());
}
