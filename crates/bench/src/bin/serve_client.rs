//! Scripted client for `memx-serve`, used by `scripts/serve_smoke.sh`
//! and the bench harness to diff daemon-served rows against the offline
//! reference.
//!
//! Modes:
//!
//! - `serve_client demo` — print the built-in demo request body.
//! - `serve_client offline` — read a request body on stdin, evaluate it
//!   in-process, print the reference rows.
//! - `serve_client evaluate <addr>` — read a request body on stdin,
//!   POST it to the daemon, print streamed rows to stdout and the
//!   telemetry trailers to stderr.
//! - `serve_client stats <addr>` — print the daemon's `/v1/stats` body.

use std::io::Read;
use std::net::SocketAddr;
use std::process::ExitCode;

use memx_serve::{client, wire};

const USAGE: &str = "usage: serve_client demo | offline | evaluate <addr> | stats <addr>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = match args.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        ["demo"] => {
            print!("{}", wire::demo_request_text());
            Ok(())
        }
        ["offline"] => offline(),
        ["evaluate", addr] => parse_addr(addr).and_then(evaluate),
        ["stats", addr] => parse_addr(addr).and_then(stats),
        _ => Err(USAGE.to_string()),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("serve_client: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn parse_addr(addr: &str) -> Result<SocketAddr, String> {
    addr.parse()
        .map_err(|_| format!("bad address `{addr}` (want HOST:PORT)"))
}

fn read_stdin() -> Result<Vec<u8>, String> {
    let mut body = Vec::new();
    std::io::stdin()
        .read_to_end(&mut body)
        .map_err(|e| format!("reading stdin: {e}"))?;
    Ok(body)
}

fn offline() -> Result<(), String> {
    let body = read_stdin()?;
    for row in wire::offline_rows(&body, wire::WireLimits::default())? {
        print!("{row}");
    }
    Ok(())
}

fn evaluate(addr: SocketAddr) -> Result<(), String> {
    let body = String::from_utf8(read_stdin()?).map_err(|e| format!("stdin not UTF-8: {e}"))?;
    let response = client::post_evaluate(addr, &body).map_err(|e| e.to_string())?;
    if response.status != 200 {
        return Err(format!(
            "status {}: {}",
            response.status,
            String::from_utf8_lossy(&response.body)
        ));
    }
    for row in &response.rows {
        print!("{}", String::from_utf8_lossy(row));
    }
    for (name, value) in &response.trailers {
        eprintln!("{name}: {value}");
    }
    Ok(())
}

fn stats(addr: SocketAddr) -> Result<(), String> {
    let response = client::get(addr, "/v1/stats").map_err(|e| e.to_string())?;
    if response.status != 200 {
        return Err(format!("status {}", response.status));
    }
    println!("{}", String::from_utf8_lossy(&response.body));
    Ok(())
}
