//! Codec substrate characterization: rate-distortion sweep of the BTPC
//! coder (compression ratio and PSNR versus quantization step), plus
//! the per-context symbol distribution that motivates the six adaptive
//! Huffman coders.

use memx_bench::experiments;
use memx_btpc::{CodecConfig, Decoder, Encoder, Image};
use memx_core::engine::parallel_map;
use memx_profile::ProfileRegistry;

fn main() {
    let knobs = experiments::RunKnobs::from_env();
    let workers = match knobs.workers {
        0 => memx_core::engine::auto_workers(),
        n => n,
    };
    eprintln!("[codec sweep: {workers} worker(s); rows are worker-count independent]");
    let edge = if knobs.smoke { 64 } else { 256 };
    let img = Image::synthetic_natural(edge, edge, experiments::SEED);

    println!("BTPC rate-distortion sweep ({edge}x{edge} synthetic natural image)");
    println!(
        "{:<12} {:>12} {:>12} {:>10}",
        "quant step", "bits/pixel", "ratio", "PSNR [dB]"
    );
    // The sweep points are independent: fan them over the worker pool
    // and print the rows in order afterwards.
    let steps = [1u16, 2, 4, 8, 16, 32];
    let rows = parallel_map(&steps, knobs.workers, |_, &q| {
        let cfg = if q == 1 {
            CodecConfig::lossless()
        } else {
            CodecConfig::lossy(q)
        };
        let encoded = Encoder::new(cfg).encode(&img).expect("encode succeeds");
        let decoded = Decoder::new(cfg).decode(&encoded).expect("decode succeeds");
        let bpp = encoded.bit_len() as f64 / (edge * edge) as f64;
        (q, bpp, encoded.compression_ratio(), decoded.psnr(&img))
    });
    for (q, bpp, ratio, psnr) in rows {
        println!(
            "{:<12} {:>12.2} {:>12.2} {:>10}",
            q,
            bpp,
            ratio,
            if psnr.is_infinite() {
                "lossless".to_owned()
            } else {
                format!("{psnr:.1}")
            }
        );
    }

    // Context usage: how much work each of the six coders gets.
    let registry = ProfileRegistry::new();
    Encoder::new(CodecConfig::lossless())
        .encode_with_registry(&img, &registry)
        .expect("encode succeeds");
    let profile = registry.snapshot();
    let total: f64 = (0..6)
        .map(|c| {
            profile
                .counts(&format!("huff_freq_{c}"))
                .expect("tracked")
                .1
        })
        .sum();
    println!("\nSymbols per neighbourhood context (why BTPC uses six coders):");
    let names = ["flat", "smooth", "edge-a", "edge-b", "ridge", "textured"];
    for (c, name) in names.iter().enumerate() {
        let (_, writes) = profile.counts(&format!("huff_freq_{c}")).expect("tracked");
        println!(
            "  ctx {c} ({name:<9}): {:>8.0} symbols ({:>5.1}%)",
            writes,
            writes / total * 100.0
        );
    }
    // The codec sweep never schedules, so this always reads 0/0 —
    // printed anyway (without opening a cache) so every binary's stderr
    // is uniformly grep-able.
    experiments::print_cache_stat_lines(None);
}
