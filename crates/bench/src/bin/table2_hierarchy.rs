//! Regenerates **Table 2**: memory hierarchy decision for the BTPC
//! application.

use memx_bench::experiments;

fn main() {
    let ctx = experiments::context(experiments::RunKnobs::from_env());
    match experiments::table2(&ctx) {
        Ok(exp) => print!(
            "{}",
            exp.to_table("Table 2: Memory hierarchy decision for the BTPC application")
        ),
        Err(e) => {
            eprintln!("table 2 failed: {e}");
            std::process::exit(1);
        }
    }
    experiments::print_cache_stat_lines(ctx.cache.as_deref());
}
