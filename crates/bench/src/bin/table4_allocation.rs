//! Regenerates **Table 4**: memory organization cost versus number of
//! allocated on-chip memories.
//!
//! Rows are printed as they stream out of the engine (in sweep order),
//! so only one `CostReport` is alive at a time; search-effort and cache
//! counters are accumulated on the fly and reported after the table.

use memx_bench::experiments;

fn main() {
    let ctx = experiments::context(experiments::RunKnobs::from_env());
    eprintln!(
        "[engine: {} worker(s); results are worker-count independent]",
        ctx.engine().workers()
    );
    let counts = experiments::paper_allocations();
    println!("Table 4: Different memory allocations for the BTPC application");
    println!(
        "{:<24} {:>16} {:>16} {:>16}",
        "Version", "on-chip area", "on-chip power", "off-chip power"
    );
    println!("{:<24} {:>16} {:>16} {:>16}", "", "[mm2]", "[mW]", "[mW]");
    let mut stats = Vec::new();
    let streamed = experiments::table4_stream(&ctx, &counts, |row| {
        stats.push(row.report.alloc_stats);
        println!(
            "{:<24} {:>16.1} {:>16.1} {:>16.1}",
            format!("{} on-chip memories", row.memories),
            row.report.cost.on_chip_area_mm2,
            row.report.cost.on_chip_power_mw,
            row.report.cost.off_chip_power_mw
        );
    });
    if let Err(e) = streamed {
        eprintln!("table 4 failed: {e}");
        std::process::exit(1);
    }
    experiments::print_alloc_stat_lines_from_stats(stats);
    experiments::print_cache_stat_lines(ctx.cache.as_deref());
}
