//! Regenerates **Table 4**: memory organization cost versus number of
//! allocated on-chip memories.

use memx_bench::experiments;

fn main() {
    let ctx = experiments::context();
    eprintln!(
        "[engine: {} worker(s); results are worker-count independent]",
        ctx.engine().workers()
    );
    let counts = experiments::paper_allocations();
    match experiments::table4(&ctx, &counts) {
        Ok(rows) => {
            experiments::print_alloc_stat_lines(rows.iter().map(|r| &r.report));
            println!("Table 4: Different memory allocations for the BTPC application");
            println!(
                "{:<24} {:>16} {:>16} {:>16}",
                "Version", "on-chip area", "on-chip power", "off-chip power"
            );
            println!("{:<24} {:>16} {:>16} {:>16}", "", "[mm2]", "[mW]", "[mW]");
            for row in rows {
                println!(
                    "{:<24} {:>16.1} {:>16.1} {:>16.1}",
                    format!("{} on-chip memories", row.memories),
                    row.report.cost.on_chip_area_mm2,
                    row.report.cost.on_chip_power_mw,
                    row.report.cost.off_chip_power_mw
                );
            }
        }
        Err(e) => {
            eprintln!("table 4 failed: {e}");
            std::process::exit(1);
        }
    }
}
