//! Regenerates **Table 3**: memory organization cost versus storage
//! cycle budget.
//!
//! Rows are printed as they stream out of the engine (in sweep order),
//! so only one `CostReport` — schedules included — is alive at a time
//! however dense the sweep; search-effort and cache counters are
//! accumulated on the fly and reported after the table.

use memx_bench::experiments;

fn main() {
    let ctx = experiments::context(experiments::RunKnobs::from_env());
    eprintln!(
        "[engine: {} worker(s); results are worker-count independent]",
        ctx.engine().workers()
    );
    let extras = match experiments::extended_extras(&ctx) {
        Ok(extras) => extras,
        Err(e) => {
            eprintln!("table 3 sweep setup failed: {e}");
            std::process::exit(1);
        }
    };
    println!("Table 3: Different cycle budgets for the BTPC application");
    println!(
        "{:<24} {:>16} {:>16} {:>16}",
        "Extra cycles", "on-chip area", "on-chip power", "off-chip power"
    );
    println!(
        "{:<24} {:>16} {:>16} {:>16}",
        "for data-path", "[mm2]", "[mW]", "[mW]"
    );
    let mut stats = Vec::new();
    let streamed = experiments::table3_stream(&ctx, &extras, |row| {
        stats.push(row.report.alloc_stats);
        println!(
            "{:<24} {:>16.1} {:>16.1} {:>16.1}",
            format!("{} ({:.1}%)", row.extra_cycles, row.extra_fraction * 100.0),
            row.report.cost.on_chip_area_mm2,
            row.report.cost.on_chip_power_mw,
            row.report.cost.off_chip_power_mw
        );
    });
    if let Err(e) = streamed {
        eprintln!("table 3 failed: {e}");
        std::process::exit(1);
    }
    experiments::print_alloc_stat_lines_from_stats(stats);
    experiments::print_cache_stat_lines(ctx.cache.as_deref());
}
