//! Regenerates **Table 3**: memory organization cost versus storage
//! cycle budget.

use memx_bench::experiments;

fn main() {
    let ctx = experiments::context();
    eprintln!(
        "[engine: {} worker(s); results are worker-count independent]",
        ctx.engine().workers()
    );
    let extras = match experiments::extended_extras(&ctx) {
        Ok(extras) => extras,
        Err(e) => {
            eprintln!("table 3 sweep setup failed: {e}");
            std::process::exit(1);
        }
    };
    match experiments::table3(&ctx, &extras) {
        Ok(rows) => {
            experiments::print_alloc_stat_lines(rows.iter().map(|r| &r.report));
            println!("Table 3: Different cycle budgets for the BTPC application");
            println!(
                "{:<24} {:>16} {:>16} {:>16}",
                "Extra cycles", "on-chip area", "on-chip power", "off-chip power"
            );
            println!(
                "{:<24} {:>16} {:>16} {:>16}",
                "for data-path", "[mm2]", "[mW]", "[mW]"
            );
            for row in rows {
                println!(
                    "{:<24} {:>16.1} {:>16.1} {:>16.1}",
                    format!("{} ({:.1}%)", row.extra_cycles, row.extra_fraction * 100.0),
                    row.report.cost.on_chip_area_mm2,
                    row.report.cost.on_chip_power_mw,
                    row.report.cost.off_chip_power_mw
                );
            }
        }
        Err(e) => {
            eprintln!("table 3 failed: {e}");
            std::process::exit(1);
        }
    }
}
