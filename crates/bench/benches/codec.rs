//! Criterion benchmarks of the BTPC codec substrate: encode/decode
//! throughput at several frame sizes and configurations (the paper's
//! real-time constraint is 1 Mpixel/s).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use memx_btpc::{CodecConfig, Decoder, Encoder, Image};

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode");
    for size in [64usize, 128, 256] {
        let img = Image::synthetic_natural(size, size, 42);
        group.throughput(Throughput::Elements((size * size) as u64));
        group.bench_with_input(
            BenchmarkId::new("lossless", format!("{size}x{size}")),
            &img,
            |b, img| {
                let enc = Encoder::new(CodecConfig::lossless());
                b.iter(|| enc.encode(std::hint::black_box(img)).expect("encode"))
            },
        );
    }
    let img = Image::synthetic_natural(128, 128, 42);
    group.throughput(Throughput::Elements((128 * 128) as u64));
    group.bench_with_input(BenchmarkId::new("lossy_q8", "128x128"), &img, |b, img| {
        let enc = Encoder::new(CodecConfig::lossy(8));
        b.iter(|| enc.encode(std::hint::black_box(img)).expect("encode"))
    });
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode");
    for size in [64usize, 128] {
        let img = Image::synthetic_natural(size, size, 42);
        let cfg = CodecConfig::lossless();
        let encoded = Encoder::new(cfg).encode(&img).expect("encode");
        group.throughput(Throughput::Elements((size * size) as u64));
        group.bench_with_input(
            BenchmarkId::new("lossless", format!("{size}x{size}")),
            &encoded,
            |b, encoded| {
                let dec = Decoder::new(cfg);
                b.iter(|| dec.decode(std::hint::black_box(encoded)).expect("decode"))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_encode, bench_decode
}
criterion_main!(benches);
