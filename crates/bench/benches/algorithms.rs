//! Criterion benchmarks of the core exploration algorithms: MACP
//! analysis, flow-graph balancing / budget distribution, and memory
//! allocation + signal-to-memory assignment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use memx_bench::experiments;
use memx_core::alloc::{assign, AllocOptions};
use memx_core::{macp, scbd};
use memx_memlib::MemLibrary;

fn bench_macp(c: &mut Criterion) {
    let ctx = experiments::paper_context();
    c.bench_function("macp/btpc_spec", |b| {
        b.iter(|| macp::analyze(std::hint::black_box(&ctx.btpc.spec)))
    });
}

fn bench_scbd(c: &mut Criterion) {
    let ctx = experiments::paper_context();
    let spec = experiments::best_hierarchy_spec(&ctx).expect("transforms valid");
    let mut group = c.benchmark_group("scbd");
    for extra_pct in [0u64, 15, 30] {
        let budget = experiments::CYCLE_BUDGET - experiments::CYCLE_BUDGET * extra_pct / 100;
        group.bench_with_input(
            BenchmarkId::new("distribute", format!("extra{extra_pct}pct")),
            &budget,
            |b, &budget| {
                b.iter(|| {
                    scbd::distribute_with_budget(std::hint::black_box(&spec), budget)
                        .expect("budget feasible")
                })
            },
        );
    }
    group.finish();
}

fn bench_alloc(c: &mut Criterion) {
    let ctx = experiments::paper_context();
    let spec = experiments::best_hierarchy_spec(&ctx).expect("transforms valid");
    let schedule = scbd::distribute(&spec).expect("schedulable");
    let lib = MemLibrary::default_07um();
    let mut group = c.benchmark_group("alloc");
    for k in [4u32, 8, 14] {
        group.bench_with_input(BenchmarkId::new("assign", k), &k, |b, &k| {
            let options = AllocOptions {
                on_chip_memories: Some(k),
                ..AllocOptions::default()
            };
            b.iter(|| {
                assign(std::hint::black_box(&spec), &schedule, &lib, &options).expect("assignable")
            })
        });
    }
    group.bench_function("assign/sweep", |b| {
        b.iter(|| {
            assign(
                std::hint::black_box(&spec),
                &schedule,
                &lib,
                &AllocOptions::default(),
            )
            .expect("assignable")
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_macp, bench_scbd, bench_alloc
}
criterion_main!(benches);
