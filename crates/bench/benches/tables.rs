//! Criterion benchmarks regenerating every table of the paper — the
//! "design iteration time" the methodology optimizes for. Each bench
//! measures how fast the designer gets the accurate feedback for one
//! exploration table.

use criterion::{criterion_group, criterion_main, Criterion};
use memx_bench::experiments;

fn bench_tables(c: &mut Criterion) {
    let ctx = experiments::paper_context();
    let mut group = c.benchmark_group("tables");
    group.bench_function("table1_structuring", |b| {
        b.iter(|| experiments::table1(std::hint::black_box(&ctx)).expect("table 1 runs"))
    });
    group.bench_function("table2_hierarchy", |b| {
        b.iter(|| experiments::table2(std::hint::black_box(&ctx)).expect("table 2 runs"))
    });
    group.bench_function("table3_cycle_budget", |b| {
        let extras = experiments::paper_extras();
        b.iter(|| experiments::table3(std::hint::black_box(&ctx), &extras).expect("table 3 runs"))
    });
    group.bench_function("table4_allocation", |b| {
        let counts = experiments::paper_allocations();
        b.iter(|| experiments::table4(std::hint::black_box(&ctx), &counts).expect("table 4 runs"))
    });
    group.finish();
}

fn bench_profiling(c: &mut Criterion) {
    c.bench_function("profile/measure_64x64", |b| {
        b.iter(|| memx_btpc::spec::measure_profile(64, 64, 1))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tables, bench_profiling
}
criterion_main!(benches);
