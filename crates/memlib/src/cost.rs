//! The three-figure cost breakdown every table of the paper reports.

use std::fmt;
use std::iter::Sum;
use std::ops::Add;

/// Memory-organization cost: on-chip area, on-chip power, off-chip power.
///
/// These are exactly the three columns of Tables 1–4 in the paper. The
/// struct is a small value type: breakdowns add component-wise so the
/// cost of a full organization is the sum over its memories.
///
/// # Example
///
/// ```
/// use memx_memlib::CostBreakdown;
///
/// let a = CostBreakdown::new(10.0, 5.0, 50.0);
/// let b = CostBreakdown::new(2.5, 1.0, 0.0);
/// let total = a + b;
/// assert_eq!(total.on_chip_area_mm2, 12.5);
/// assert_eq!(total.total_power_mw(), 56.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostBreakdown {
    /// On-chip memory area in mm² (cell arrays, decoders, buffers).
    pub on_chip_area_mm2: f64,
    /// On-chip memory power in mW.
    pub on_chip_power_mw: f64,
    /// Off-chip memory power in mW (active + static).
    pub off_chip_power_mw: f64,
}

impl CostBreakdown {
    /// Creates a breakdown from its three components.
    pub fn new(on_chip_area_mm2: f64, on_chip_power_mw: f64, off_chip_power_mw: f64) -> Self {
        CostBreakdown {
            on_chip_area_mm2,
            on_chip_power_mw,
            off_chip_power_mw,
        }
    }

    /// The zero cost.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Total (on-chip + off-chip) power in mW.
    pub fn total_power_mw(&self) -> f64 {
        self.on_chip_power_mw + self.off_chip_power_mw
    }

    /// Scalarizes the breakdown for optimization: a weighted sum of area
    /// and total power. The default exploration uses
    /// `area_weight = 1 mW/mm²` equivalence, mirroring the paper's joint
    /// area/power steering.
    pub fn scalar(&self, area_weight: f64, power_weight: f64) -> f64 {
        self.on_chip_area_mm2 * area_weight + self.total_power_mw() * power_weight
    }

    /// `true` when every component of `self` is at most that of `other`
    /// (Pareto dominance, non-strict).
    pub fn dominates(&self, other: &CostBreakdown) -> bool {
        self.on_chip_area_mm2 <= other.on_chip_area_mm2
            && self.on_chip_power_mw <= other.on_chip_power_mw
            && self.off_chip_power_mw <= other.off_chip_power_mw
    }
}

impl Add for CostBreakdown {
    type Output = CostBreakdown;

    fn add(self, rhs: CostBreakdown) -> CostBreakdown {
        CostBreakdown {
            on_chip_area_mm2: self.on_chip_area_mm2 + rhs.on_chip_area_mm2,
            on_chip_power_mw: self.on_chip_power_mw + rhs.on_chip_power_mw,
            off_chip_power_mw: self.off_chip_power_mw + rhs.off_chip_power_mw,
        }
    }
}

impl Sum for CostBreakdown {
    fn sum<I: Iterator<Item = CostBreakdown>>(iter: I) -> CostBreakdown {
        iter.fold(CostBreakdown::zero(), Add::add)
    }
}

impl fmt::Display for CostBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "area {:.1} mm2, on-chip {:.1} mW, off-chip {:.1} mW",
            self.on_chip_area_mm2, self.on_chip_power_mw, self.off_chip_power_mw
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_is_component_wise() {
        let a = CostBreakdown::new(1.0, 2.0, 3.0);
        let b = CostBreakdown::new(10.0, 20.0, 30.0);
        let s = a + b;
        assert_eq!(s, CostBreakdown::new(11.0, 22.0, 33.0));
    }

    #[test]
    fn sum_over_iterator() {
        let parts = vec![
            CostBreakdown::new(1.0, 1.0, 0.0),
            CostBreakdown::new(2.0, 0.5, 4.0),
        ];
        let total: CostBreakdown = parts.into_iter().sum();
        assert_eq!(total, CostBreakdown::new(3.0, 1.5, 4.0));
    }

    #[test]
    fn dominance() {
        let small = CostBreakdown::new(1.0, 1.0, 1.0);
        let big = CostBreakdown::new(2.0, 2.0, 2.0);
        let mixed = CostBreakdown::new(0.5, 3.0, 1.0);
        assert!(small.dominates(&big));
        assert!(!big.dominates(&small));
        assert!(!small.dominates(&mixed));
        assert!(!mixed.dominates(&small));
        assert!(small.dominates(&small));
    }

    #[test]
    fn scalar_weights_components() {
        let c = CostBreakdown::new(10.0, 5.0, 15.0);
        assert_eq!(c.scalar(2.0, 1.0), 40.0);
        assert_eq!(c.scalar(0.0, 1.0), 20.0);
    }

    #[test]
    fn display_rounds_to_tenths() {
        let c = CostBreakdown::new(65.44, 39.36, 130.25);
        assert_eq!(
            format!("{c}"),
            "area 65.4 mm2, on-chip 39.4 mW, off-chip 130.2 mW"
        );
    }
}
