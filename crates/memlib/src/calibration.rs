//! Calibration constants for the default technology models.
//!
//! The paper's absolute figures come from a proprietary 0.7 µm module
//! generator and a vendor DRAM datasheet; these constants are chosen once
//! so that the BTPC demonstrator lands in the paper's magnitude range
//! (on-chip area 60–120 mm², on-chip power 25–90 mW, off-chip power
//! 85–210 mW) while preserving every qualitative property the methodology
//! exploits. They are *not* fitted per experiment: the same constants
//! produce all four tables.
//
// memx-lint: fingerprinted(alloc_model_fingerprint) — the dual-port
// calibration factors are hashed into the allocation cache key.

/// On-chip SRAM storage-cell area per bit \[mm²/bit\] (0.7 µm, 6T cell plus
/// local wiring).
pub const ON_CHIP_AREA_PER_BIT_MM2: f64 = 4.0e-4;

/// Word count at which the cell-array area penalty for monolithic
/// modules reaches +100 %: beyond a few thousand words the 0.7 µm
/// generator must bank the array and stretch word/bit lines, so the
/// area per bit grows with the module size. This is what makes very
/// large single modules unattractive and drives the left side of the
/// Table 4 area curve.
pub const ON_CHIP_BANK_WORDS: f64 = 6_000.0;

/// Fixed per-module area overhead \[mm²\]: sense amplifiers, control,
/// address decoder base cost.
pub const ON_CHIP_MODULE_OVERHEAD_MM2: f64 = 0.9;

/// Decoder/periphery area factor multiplying `sqrt(words)` \[mm²\].
pub const ON_CHIP_DECODE_AREA_MM2: f64 = 0.012;

/// Additional area fraction per extra port (dual-port cell ~1.8× single).
pub const ON_CHIP_PORT_AREA_FACTOR: f64 = 0.85;

/// On-chip energy per access: fixed component \[pJ\].
pub const ON_CHIP_ENERGY_BASE_PJ: f64 = 260.0;

/// On-chip energy per access: bitline component multiplying
/// `sqrt(words)` \[pJ\].
pub const ON_CHIP_ENERGY_PER_SQRT_WORD_PJ: f64 = 95.0;

/// On-chip energy width scaling: energy multiplies `(WIDTH_OFFSET + width)
/// / WIDTH_NORM`.
pub const ON_CHIP_ENERGY_WIDTH_OFFSET: f64 = 4.0;
/// See [`ON_CHIP_ENERGY_WIDTH_OFFSET`].
pub const ON_CHIP_ENERGY_WIDTH_NORM: f64 = 12.0;

/// Energy penalty factor per extra port.
pub const ON_CHIP_PORT_ENERGY_FACTOR: f64 = 0.45;

/// Off-chip DRAM energy per access: fixed component \[pJ\] (page open,
/// I/O drivers).
pub const OFF_CHIP_ENERGY_BASE_PJ: f64 = 3_800.0;

/// Off-chip DRAM energy per access: per-data-bit component \[pJ/bit\].
pub const OFF_CHIP_ENERGY_PER_BIT_PJ: f64 = 310.0;

/// Off-chip static power per device \[mW\] (refresh + interface).
pub const OFF_CHIP_STATIC_MW: f64 = 14.0;

/// Energy multiplier for a dual-ported (interleaved dual-bank) off-chip
/// configuration: both banks burn page-activation power.
pub const OFF_CHIP_TWO_PORT_ENERGY_FACTOR: f64 = 1.35;

/// Static-power multiplier for a dual-ported off-chip configuration.
pub const OFF_CHIP_TWO_PORT_STATIC_FACTOR: f64 = 1.5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_positive() {
        for &c in &[
            ON_CHIP_AREA_PER_BIT_MM2,
            ON_CHIP_MODULE_OVERHEAD_MM2,
            ON_CHIP_DECODE_AREA_MM2,
            ON_CHIP_PORT_AREA_FACTOR,
            ON_CHIP_ENERGY_BASE_PJ,
            ON_CHIP_ENERGY_PER_SQRT_WORD_PJ,
            ON_CHIP_ENERGY_WIDTH_OFFSET,
            ON_CHIP_ENERGY_WIDTH_NORM,
            ON_CHIP_PORT_ENERGY_FACTOR,
            OFF_CHIP_ENERGY_BASE_PJ,
            OFF_CHIP_ENERGY_PER_BIT_PJ,
            OFF_CHIP_STATIC_MW,
            OFF_CHIP_TWO_PORT_ENERGY_FACTOR,
            OFF_CHIP_TWO_PORT_STATIC_FACTOR,
        ] {
            assert!(c > 0.0);
        }
    }

    #[test]
    fn multi_port_penalties_exceed_unity() {
        let penalties = [
            OFF_CHIP_TWO_PORT_ENERGY_FACTOR,
            OFF_CHIP_TWO_PORT_STATIC_FACTOR,
        ];
        assert!(penalties.iter().all(|&p| p > 1.0));
    }
}
