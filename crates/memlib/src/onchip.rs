//! On-chip SRAM module-generator model.
//
// memx-lint: fingerprinted(alloc_model_fingerprint) — every model
// accessor below is hashed into the allocation cache key.

use std::fmt;

use crate::calibration as cal;

/// Parameters of one generated on-chip memory module.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnChipSpec {
    words: u64,
    width: u32,
    ports: u32,
}

impl OnChipSpec {
    /// Describes a module with `words` addressable words of `width` bits
    /// and `ports` identical read/write ports.
    ///
    /// # Panics
    ///
    /// Panics if `words`, `width` or `ports` is zero.
    pub fn new(words: u64, width: u32, ports: u32) -> Self {
        assert!(words > 0, "module must store at least one word");
        assert!(width > 0, "module width must be positive");
        assert!(ports > 0, "module needs at least one port");
        OnChipSpec {
            words,
            width,
            ports,
        }
    }

    /// Number of addressable words.
    pub fn words(&self) -> u64 {
        self.words
    }

    /// Word width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of read/write ports.
    pub fn ports(&self) -> u32 {
        self.ports
    }

    /// Storage capacity in bits.
    pub fn bits(&self) -> u64 {
        self.words * u64::from(self.width)
    }
}

impl fmt::Display for OnChipSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}b/{}p", self.words, self.width, self.ports)
    }
}

/// Area/energy model of the 0.7 µm on-chip SRAM module generator.
///
/// The model reproduces the qualitative behaviour the methodology needs:
///
/// * **area** = per-module overhead + decoder periphery (∝ √words) +
///   cell array (∝ bits), all scaled super-linearly with port count —
///   so allocating many small memories costs overhead area, and storing
///   narrow arrays in wide memories wastes cell area ("bitwidth waste");
/// * **energy per access** grows *sub-linearly* with the word count
///   (∝ √words, the bitline/wordline capacitance of a square array) —
///   so splitting memories or copying hot data into small layers saves
///   power (§4.4, §4.6 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct OnChipModel {
    area_per_bit_mm2: f64,
    bank_words: f64,
    module_overhead_mm2: f64,
    decode_area_mm2: f64,
    port_area_factor: f64,
    energy_base_pj: f64,
    energy_per_sqrt_word_pj: f64,
    energy_width_offset: f64,
    energy_width_norm: f64,
    port_energy_factor: f64,
}

impl OnChipModel {
    /// The calibrated default model (see [`crate::calibration`]).
    pub fn default_07um() -> Self {
        OnChipModel {
            area_per_bit_mm2: cal::ON_CHIP_AREA_PER_BIT_MM2,
            bank_words: cal::ON_CHIP_BANK_WORDS,
            module_overhead_mm2: cal::ON_CHIP_MODULE_OVERHEAD_MM2,
            decode_area_mm2: cal::ON_CHIP_DECODE_AREA_MM2,
            port_area_factor: cal::ON_CHIP_PORT_AREA_FACTOR,
            energy_base_pj: cal::ON_CHIP_ENERGY_BASE_PJ,
            energy_per_sqrt_word_pj: cal::ON_CHIP_ENERGY_PER_SQRT_WORD_PJ,
            energy_width_offset: cal::ON_CHIP_ENERGY_WIDTH_OFFSET,
            energy_width_norm: cal::ON_CHIP_ENERGY_WIDTH_NORM,
            port_energy_factor: cal::ON_CHIP_PORT_ENERGY_FACTOR,
        }
    }

    /// Storage-cell area per bit in mm² (before banking and port
    /// scaling). Exposed so search lower bounds can mirror the *active*
    /// model instead of assuming the default calibration.
    pub fn area_per_bit_mm2(&self) -> f64 {
        self.area_per_bit_mm2
    }

    /// Word count at which the banking/wire-length area penalty reaches
    /// +100 % (see [`crate::calibration::ON_CHIP_BANK_WORDS`]).
    pub fn bank_words(&self) -> f64 {
        self.bank_words
    }

    /// Fixed per-module area overhead in mm² (sense amplifiers, control,
    /// decoder base cost).
    pub fn module_overhead_mm2(&self) -> f64 {
        self.module_overhead_mm2
    }

    /// Decoder/periphery area factor multiplying `sqrt(words)` \[mm²\].
    pub fn decode_area_mm2(&self) -> f64 {
        self.decode_area_mm2
    }

    /// Additional area fraction per extra port.
    pub fn port_area_factor(&self) -> f64 {
        self.port_area_factor
    }

    /// Fixed per-access energy floor in pJ.
    pub fn energy_base_pj(&self) -> f64 {
        self.energy_base_pj
    }

    /// Energy slope multiplying `sqrt(words)` \[pJ\].
    pub fn energy_per_sqrt_word_pj(&self) -> f64 {
        self.energy_per_sqrt_word_pj
    }

    /// Offset of the width term in the energy model \[bits\].
    pub fn energy_width_offset(&self) -> f64 {
        self.energy_width_offset
    }

    /// Normalization of the width term in the energy model \[bits\].
    pub fn energy_width_norm(&self) -> f64 {
        self.energy_width_norm
    }

    /// Additional energy fraction per extra port.
    pub fn port_energy_factor(&self) -> f64 {
        self.port_energy_factor
    }

    /// Returns the model with a different storage-cell area per bit —
    /// the knob a custom (non-0.7 µm) technology library tunes first.
    ///
    /// # Panics
    ///
    /// Panics unless `v` is finite and positive.
    pub fn with_area_per_bit_mm2(mut self, v: f64) -> Self {
        assert!(v.is_finite() && v > 0.0, "area per bit must be positive");
        self.area_per_bit_mm2 = v;
        self
    }

    /// Returns the model with a different banking-penalty knee.
    ///
    /// # Panics
    ///
    /// Panics unless `v` is finite and positive.
    pub fn with_bank_words(mut self, v: f64) -> Self {
        assert!(v.is_finite() && v > 0.0, "bank words must be positive");
        self.bank_words = v;
        self
    }

    /// Returns the model with a different fixed per-module overhead.
    ///
    /// # Panics
    ///
    /// Panics unless `v` is finite and positive.
    pub fn with_module_overhead_mm2(mut self, v: f64) -> Self {
        assert!(v.is_finite() && v > 0.0, "module overhead must be positive");
        self.module_overhead_mm2 = v;
        self
    }

    /// Returns the model with a different per-port area factor.
    ///
    /// # Panics
    ///
    /// Panics unless `v` is finite and positive.
    pub fn with_port_area_factor(mut self, v: f64) -> Self {
        assert!(
            v.is_finite() && v > 0.0,
            "port area factor must be positive"
        );
        self.port_area_factor = v;
        self
    }

    /// Silicon area of the generated module in mm², including address
    /// decoding and data buffering overhead (as the vendor estimator of
    /// §3 does), excluding interconnect.
    pub fn area_mm2(&self, spec: &OnChipSpec) -> f64 {
        let ports = f64::from(spec.ports());
        let port_factor = 1.0 + self.port_area_factor * (ports - 1.0);
        // Large monolithic modules pay a banking/wire-length penalty on
        // the cell array (see `calibration::ON_CHIP_BANK_WORDS`); the
        // penalty saturates once the generator banks the array properly.
        let bank_factor = 1.0 + (spec.words() as f64 / self.bank_words).min(2.0);
        let cells = self.area_per_bit_mm2 * spec.bits() as f64 * bank_factor;
        let decode = self.decode_area_mm2 * (spec.words() as f64).sqrt();
        (self.module_overhead_mm2 + decode + cells) * port_factor
    }

    /// Energy of one access in pJ.
    pub fn energy_pj(&self, spec: &OnChipSpec) -> f64 {
        let ports = f64::from(spec.ports());
        let port_factor = 1.0 + self.port_energy_factor * (ports - 1.0);
        let size =
            self.energy_base_pj + self.energy_per_sqrt_word_pj * (spec.words() as f64).sqrt();
        let width = (self.energy_width_offset + f64::from(spec.width())) / self.energy_width_norm;
        size * width * port_factor
    }
}

impl Default for OnChipModel {
    fn default() -> Self {
        Self::default_07um()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> OnChipModel {
        OnChipModel::default_07um()
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn zero_words_rejected() {
        OnChipSpec::new(0, 8, 1);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        OnChipSpec::new(8, 0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_ports_rejected() {
        OnChipSpec::new(8, 8, 0);
    }

    #[test]
    fn area_monotone_in_words_width_ports() {
        let m = model();
        let base = m.area_mm2(&OnChipSpec::new(512, 8, 1));
        assert!(m.area_mm2(&OnChipSpec::new(1024, 8, 1)) > base);
        assert!(m.area_mm2(&OnChipSpec::new(512, 16, 1)) > base);
        assert!(m.area_mm2(&OnChipSpec::new(512, 8, 2)) > base);
    }

    #[test]
    fn energy_monotone_in_words_width_ports() {
        let m = model();
        let base = m.energy_pj(&OnChipSpec::new(512, 8, 1));
        assert!(m.energy_pj(&OnChipSpec::new(2048, 8, 1)) > base);
        assert!(m.energy_pj(&OnChipSpec::new(512, 16, 1)) > base);
        assert!(m.energy_pj(&OnChipSpec::new(512, 8, 2)) > base);
    }

    #[test]
    fn energy_sublinear_in_words() {
        // Quadrupling the word count must less-than-double the energy:
        // the basis of the hierarchy and memory-splitting gains.
        let m = model();
        let e1 = m.energy_pj(&OnChipSpec::new(1024, 8, 1));
        let e4 = m.energy_pj(&OnChipSpec::new(4096, 8, 1));
        assert!(e4 < 2.0 * e1, "e4={e4} e1={e1}");
    }

    #[test]
    fn splitting_small_memories_costs_area_splitting_large_saves_it() {
        // The Table 4 area trade-off: for small modules the per-module
        // overhead dominates, so splitting wastes area; very large
        // monolithic modules pay the banking penalty, so splitting
        // recovers it. Energy per access always improves when splitting.
        let m = model();
        let small_whole = OnChipSpec::new(1024, 8, 1);
        let small_half = OnChipSpec::new(512, 8, 1);
        assert!(2.0 * m.area_mm2(&small_half) > m.area_mm2(&small_whole));
        let big_whole = OnChipSpec::new(16384, 8, 1);
        let big_half = OnChipSpec::new(8192, 8, 1);
        assert!(2.0 * m.area_mm2(&big_half) < m.area_mm2(&big_whole));
        assert!(m.energy_pj(&big_half) < m.energy_pj(&big_whole));
    }

    #[test]
    fn bitwidth_waste_costs_area() {
        // Storing a 2-bit array in a 16-bit module wastes cell area
        // relative to a dedicated 2-bit module.
        let m = model();
        let dedicated = m.area_mm2(&OnChipSpec::new(512, 2, 1));
        let wasteful = m.area_mm2(&OnChipSpec::new(512, 16, 1));
        assert!(wasteful > dedicated);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(format!("{}", OnChipSpec::new(512, 8, 2)), "512x8b/2p");
    }

    #[test]
    fn accessors_expose_the_calibrated_constants() {
        let m = model();
        assert_eq!(
            m.area_per_bit_mm2(),
            crate::calibration::ON_CHIP_AREA_PER_BIT_MM2
        );
        assert_eq!(m.bank_words(), crate::calibration::ON_CHIP_BANK_WORDS);
        assert_eq!(
            m.module_overhead_mm2(),
            crate::calibration::ON_CHIP_MODULE_OVERHEAD_MM2
        );
        assert_eq!(
            m.decode_area_mm2(),
            crate::calibration::ON_CHIP_DECODE_AREA_MM2
        );
        assert_eq!(
            m.port_area_factor(),
            crate::calibration::ON_CHIP_PORT_AREA_FACTOR
        );
    }

    #[test]
    fn custom_models_scale_the_area_model() {
        // A cheaper cell library halves the cell-array contribution; the
        // area of a cell-dominated module must drop accordingly.
        let default = model();
        let cheap = model()
            .with_area_per_bit_mm2(default.area_per_bit_mm2() * 0.5)
            .with_module_overhead_mm2(default.module_overhead_mm2() * 0.5)
            .with_bank_words(default.bank_words() * 2.0)
            .with_port_area_factor(default.port_area_factor() * 0.5);
        let spec = OnChipSpec::new(16 * 1024, 16, 2);
        assert!(cheap.area_mm2(&spec) < default.area_mm2(&spec));
        // Energy is untouched by the area knobs.
        assert_eq!(cheap.energy_pj(&spec), default.energy_pj(&spec));
    }

    #[test]
    #[should_panic(expected = "area per bit must be positive")]
    fn non_positive_custom_area_rejected() {
        model().with_area_per_bit_mm2(0.0);
    }
}
