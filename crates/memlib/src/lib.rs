//! # memx-memlib — memory technology models and cost estimation
//!
//! The paper's cost feedback "takes into account actual memory technology
//! characteristics": a proprietary 0.7 µm on-chip SRAM *module generator*
//! with vendor area/power functions, and the Siemens EDO DRAM datasheet
//! power table for off-chip components. Both are proprietary/unavailable,
//! so this crate provides faithful stand-ins (see DESIGN.md §2):
//!
//! * [`OnChipModel`] — a closed-form area/energy model with the three
//!   properties the methodology relies on: area grows with bit count plus
//!   a per-module overhead, energy per access is *sub-linear* in the
//!   number of words, and extra ports carry a super-linear penalty.
//! * [`OffChipCatalog`] — a discrete part catalog (width × depth × ports)
//!   with per-access energy and static (refresh/interface) power entries,
//!   exactly the "table for our tools to use" the paper built from the
//!   datasheet.
//! * [`CostBreakdown`] — the three figures every table of the paper
//!   reports: on-chip area (mm²), on-chip power (mW), off-chip power (mW).
//!
//! Interconnect area/power is excluded, as in the paper (§3: it "will only
//! affect the absolute cost figures, and not the relative comparisons").
//!
//! # Example
//!
//! ```
//! use memx_memlib::{MemLibrary, OnChipSpec};
//!
//! let lib = MemLibrary::default_07um();
//! let small = lib.on_chip().area_mm2(&OnChipSpec::new(512, 8, 1));
//! let large = lib.on_chip().area_mm2(&OnChipSpec::new(4096, 8, 1));
//! assert!(large > small);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod calibration;
mod cost;
mod offchip;
mod onchip;
pub mod timing;

pub use cost::CostBreakdown;
pub use offchip::{
    OffChipCatalog, OffChipPart, OffChipSelection, ParseCatalogError, SelectPartError,
};
pub use onchip::{OnChipModel, OnChipSpec};

/// The complete memory technology library handed to the exploration tools.
///
/// Bundles the on-chip module-generator model with the off-chip part
/// catalog so the allocation/assignment step can price any candidate
/// memory organization.
#[derive(Debug, Clone, PartialEq)]
pub struct MemLibrary {
    on_chip: OnChipModel,
    off_chip: OffChipCatalog,
}

impl MemLibrary {
    /// Creates a library from explicit models.
    pub fn new(on_chip: OnChipModel, off_chip: OffChipCatalog) -> Self {
        MemLibrary { on_chip, off_chip }
    }

    /// The calibrated default library: 0.7 µm SRAM generator stand-in and
    /// EDO-DRAM-era off-chip catalog (see [`calibration`]).
    pub fn default_07um() -> Self {
        MemLibrary {
            on_chip: OnChipModel::default_07um(),
            off_chip: OffChipCatalog::default_edo(),
        }
    }

    /// The on-chip module-generator model.
    pub fn on_chip(&self) -> &OnChipModel {
        &self.on_chip
    }

    /// The off-chip part catalog.
    pub fn off_chip(&self) -> &OffChipCatalog {
        &self.off_chip
    }
}

impl Default for MemLibrary {
    fn default() -> Self {
        Self::default_07um()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_library_is_usable() {
        let lib = MemLibrary::default();
        assert!(!lib.off_chip().parts().is_empty());
        let spec = OnChipSpec::new(1024, 8, 1);
        assert!(lib.on_chip().area_mm2(&spec) > 0.0);
        assert!(lib.on_chip().energy_pj(&spec) > 0.0);
    }
}
