//! Access-timing model: cycles occupied per memory access.
//!
//! The storage-cycle-budget distribution step must know how long each
//! access occupies its memory port. On-chip SRAM answers in one cycle;
//! off-chip EDO DRAM takes several cycles for a random access but
//! sustains one word per cycle in page-mode bursts — the property that
//! makes block copies into hierarchy layers so much cheaper in bandwidth
//! than scattered accesses.
//
// memx-lint: fingerprinted(scbd_model_fingerprint) — the cycle constants
// below are hashed into the SCBD cache key.
// memx-lint: fingerprinted(alloc_model_fingerprint) — the burst energy
// factor is hashed into the allocation cache key.

/// Cycles occupied by one on-chip SRAM access.
pub const ON_CHIP_CYCLES: u64 = 1;

/// Cycles occupied by one random off-chip DRAM access (row activation +
/// CAS + precharge).
pub const OFF_CHIP_RANDOM_CYCLES: u64 = 4;

/// Cycles per word of a page-mode burst off-chip access.
pub const OFF_CHIP_BURST_CYCLES: u64 = 1;

/// Energy factor of a page-mode burst access relative to a random one
/// (the row activation is amortized over the burst).
pub const OFF_CHIP_BURST_ENERGY_FACTOR: f64 = 0.6;

/// Cycles occupied by one access, given the target's placement and
/// whether the access is part of a burst.
///
/// # Example
///
/// ```
/// use memx_memlib::timing;
///
/// assert_eq!(timing::access_cycles(false, false), 1);
/// assert!(timing::access_cycles(true, false) > timing::access_cycles(true, true));
/// ```
pub fn access_cycles(off_chip: bool, burst: bool) -> u64 {
    if !off_chip {
        ON_CHIP_CYCLES
    } else if burst {
        OFF_CHIP_BURST_CYCLES
    } else {
        OFF_CHIP_RANDOM_CYCLES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn on_chip_is_single_cycle() {
        assert_eq!(access_cycles(false, false), 1);
        assert_eq!(access_cycles(false, true), 1);
    }

    #[test]
    fn off_chip_random_is_slowest() {
        assert!(access_cycles(true, false) > access_cycles(true, true));
        assert!(access_cycles(true, false) > access_cycles(false, false));
    }

    #[test]
    fn burst_energy_discount_is_a_fraction() {
        let factors = [OFF_CHIP_BURST_ENERGY_FACTOR];
        assert!(factors.iter().all(|&f| f > 0.0 && f < 1.0));
    }
}
