//! Off-chip DRAM part catalog (EDO-DRAM datasheet stand-in).
//
// memx-lint: fingerprinted(alloc_model_fingerprint) — every catalog row
// is hashed into the allocation cache key.

use std::fmt;

use crate::calibration as cal;

/// One catalog entry: a discrete off-chip DRAM device.
///
/// Mirrors a datasheet row of the Siemens EDO DRAM series the paper used:
/// a fixed depth × width organization with a per-access energy and a
/// static (refresh + interface) power.
#[derive(Debug, Clone, PartialEq)]
pub struct OffChipPart {
    name: String,
    words: u64,
    width: u32,
    energy_pj: f64,
    static_mw: f64,
}

impl OffChipPart {
    /// Creates a catalog entry.
    ///
    /// # Panics
    ///
    /// Panics if `words` or `width` is zero, or the energies are not
    /// positive.
    pub fn new(
        name: impl Into<String>,
        words: u64,
        width: u32,
        energy_pj: f64,
        static_mw: f64,
    ) -> Self {
        assert!(
            words > 0 && width > 0,
            "part organization must be non-empty"
        );
        assert!(
            energy_pj > 0.0 && static_mw > 0.0,
            "part power figures must be positive"
        );
        OffChipPart {
            name: name.into(),
            words,
            width,
            energy_pj,
            static_mw,
        }
    }

    /// Datasheet part name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Addressable words of one device.
    pub fn words(&self) -> u64 {
        self.words
    }

    /// Data width of one device in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Energy of one device access in pJ (datasheet active power divided
    /// by access rate).
    pub fn energy_pj(&self) -> f64 {
        self.energy_pj
    }

    /// Static power of one device in mW (refresh, interface).
    pub fn static_mw(&self) -> f64 {
        self.static_mw
    }
}

impl fmt::Display for OffChipPart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}x{}b)", self.name, self.words, self.width)
    }
}

/// Error selecting an off-chip configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectPartError {
    /// The catalog holds no parts.
    EmptyCatalog,
    /// More ports were requested than off-chip configurations support.
    UnsupportedPorts {
        /// The rejected port count.
        ports: u32,
    },
}

/// Error parsing a datasheet table (see [`OffChipCatalog::parse`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCatalogError {
    /// 1-based line number of the offending row.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ParseCatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "catalog line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseCatalogError {}

impl fmt::Display for SelectPartError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectPartError::EmptyCatalog => write!(f, "off-chip catalog is empty"),
            SelectPartError::UnsupportedPorts { ports } => {
                write!(
                    f,
                    "off-chip memories support at most 2 ports, {ports} requested"
                )
            }
        }
    }
}

impl std::error::Error for SelectPartError {}

/// A concrete off-chip configuration chosen by
/// [`OffChipCatalog::select`]: `devices_wide x ranks` copies of one part,
/// optionally organized as an interleaved dual-bank (2-port) system.
#[derive(Debug, Clone, PartialEq)]
pub struct OffChipSelection {
    part: OffChipPart,
    devices_wide: u32,
    ranks: u32,
    ports: u32,
}

impl OffChipSelection {
    /// Reassembles a selection from its parts — the inverse of the
    /// accessors, so persisted selections (e.g. cached allocation
    /// solutions) can round-trip without re-running [`OffChipCatalog::select`].
    ///
    /// # Panics
    ///
    /// Panics if `devices_wide` or `ranks` is zero, or `ports` is not
    /// 1 or 2 (the only configurations `select` can produce).
    pub fn from_parts(part: OffChipPart, devices_wide: u32, ranks: u32, ports: u32) -> Self {
        assert!(
            devices_wide > 0 && ranks > 0,
            "selection must contain at least one device"
        );
        assert!(
            (1..=2).contains(&ports),
            "off-chip selections carry 1 or 2 ports, got {ports}"
        );
        OffChipSelection {
            part,
            devices_wide,
            ranks,
            ports,
        }
    }

    /// The selected catalog part.
    pub fn part(&self) -> &OffChipPart {
        &self.part
    }

    /// Devices ganged in parallel to reach the requested width.
    pub fn devices_wide(&self) -> u32 {
        self.devices_wide
    }

    /// Device ranks stacked to reach the requested depth.
    pub fn ranks(&self) -> u32 {
        self.ranks
    }

    /// Effective port count (1 or 2).
    pub fn ports(&self) -> u32 {
        self.ports
    }

    /// Total devices in the configuration.
    pub fn devices(&self) -> u32 {
        self.devices_wide * self.ranks
    }

    /// Energy of one logical access in pJ: every width-ganged device of
    /// the addressed rank participates; dual-bank operation activates
    /// pages in both banks.
    pub fn energy_pj_per_access(&self) -> f64 {
        let mut e = self.part.energy_pj * f64::from(self.devices_wide);
        if self.ports == 2 {
            e *= cal::OFF_CHIP_TWO_PORT_ENERGY_FACTOR;
        }
        e
    }

    /// Static power of the configuration in mW.
    pub fn static_mw(&self) -> f64 {
        let mut p = self.part.static_mw * f64::from(self.devices());
        if self.ports == 2 {
            p *= cal::OFF_CHIP_TWO_PORT_STATIC_FACTOR;
        }
        p
    }

    /// Total power at the given access rate \[accesses/s\], in mW.
    pub fn power_mw(&self, accesses_per_s: f64) -> f64 {
        // pJ/access * access/s = pW; /1e9 = mW.
        self.static_mw() + self.energy_pj_per_access() * accesses_per_s / 1e9
    }
}

impl fmt::Display for OffChipSelection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} x{}w x{}r /{}p",
            self.part, self.devices_wide, self.ranks, self.ports
        )
    }
}

/// The off-chip part catalog: the datasheet table the paper's tools
/// consult when pricing off-chip storage.
#[derive(Debug, Clone, PartialEq)]
pub struct OffChipCatalog {
    parts: Vec<OffChipPart>,
}

impl OffChipCatalog {
    /// Creates a catalog from explicit parts.
    pub fn new(parts: Vec<OffChipPart>) -> Self {
        OffChipCatalog { parts }
    }

    /// The default EDO-DRAM-era catalog: depths 256 K / 1 M / 4 M, widths
    /// ×4 / ×8 / ×16 / ×32, with energies from the calibration formula
    /// (fixed page-activation cost plus a per-data-bit cost — wider
    /// devices burn more per access, the effect behind the paper's remark
    /// that "a 16-bit off-chip memory consumes more power than an 8-bit
    /// memory").
    pub fn default_edo() -> Self {
        let mut parts = Vec::new();
        for &(depth_name, words) in &[
            ("256K", 256 * 1024u64),
            ("1M", 1024 * 1024),
            ("4M", 4 * 1024 * 1024),
        ] {
            for &width in &[4u32, 8, 16, 32] {
                let energy = cal::OFF_CHIP_ENERGY_BASE_PJ
                    + cal::OFF_CHIP_ENERGY_PER_BIT_PJ * f64::from(width);
                // Larger dies refresh more rows.
                let static_mw =
                    cal::OFF_CHIP_STATIC_MW * (1.0 + (words as f64 / (1 << 20) as f64) * 0.35);
                parts.push(OffChipPart::new(
                    format!("EDO-{depth_name}x{width}"),
                    words,
                    width,
                    energy,
                    static_mw,
                ));
            }
        }
        OffChipCatalog { parts }
    }

    /// All catalog entries.
    pub fn parts(&self) -> &[OffChipPart] {
        &self.parts
    }

    /// Parses a datasheet table — the paper's §3 workflow verbatim:
    /// *"the data sheet... offer power estimates for different sizes,
    /// which we entered into a table for our tools to use."*
    ///
    /// Format: one part per line, `name words width energy_pj static_mw`,
    /// whitespace-separated; `#` starts a comment; blank lines ignored.
    /// `words` accepts `K`/`M` suffixes (binary: 1K = 1024 words).
    ///
    /// ```
    /// use memx_memlib::OffChipCatalog;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let catalog = OffChipCatalog::parse(
    ///     "# vendor datasheet, 1998\n\
    ///      EDO-1Mx8   1M  8  6280 18.9\n\
    ///      EDO-4Mx4   4M  4  5040 33.6\n",
    /// )?;
    /// assert_eq!(catalog.parts().len(), 2);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a [`ParseCatalogError`] naming the offending line.
    pub fn parse(table: &str) -> Result<OffChipCatalog, ParseCatalogError> {
        let mut parts = Vec::new();
        for (i, raw) in table.lines().enumerate() {
            let line = i + 1;
            let text = raw.split('#').next().unwrap_or("").trim();
            if text.is_empty() {
                continue;
            }
            let fields: Vec<&str> = text.split_whitespace().collect();
            if fields.len() != 5 {
                return Err(ParseCatalogError {
                    line,
                    reason: format!("expected 5 fields, found {}", fields.len()),
                });
            }
            let words = parse_words(fields[1]).ok_or_else(|| ParseCatalogError {
                line,
                reason: format!("bad word count `{}`", fields[1]),
            })?;
            let width: u32 = fields[2].parse().map_err(|_| ParseCatalogError {
                line,
                reason: format!("bad width `{}`", fields[2]),
            })?;
            let energy: f64 = fields[3].parse().map_err(|_| ParseCatalogError {
                line,
                reason: format!("bad energy `{}`", fields[3]),
            })?;
            let static_mw: f64 = fields[4].parse().map_err(|_| ParseCatalogError {
                line,
                reason: format!("bad static power `{}`", fields[4]),
            })?;
            if words == 0 || width == 0 || energy <= 0.0 || static_mw <= 0.0 {
                return Err(ParseCatalogError {
                    line,
                    reason: "all part parameters must be positive".to_owned(),
                });
            }
            parts.push(OffChipPart::new(fields[0], words, width, energy, static_mw));
        }
        Ok(OffChipCatalog { parts })
    }

    /// Selects the configuration covering `words x width` with `ports`
    /// ports that minimizes total power at the given access rate.
    ///
    /// # Errors
    ///
    /// Returns an error if the catalog is empty or `ports > 2` (off-chip
    /// DRAM systems offer at most an interleaved dual bank).
    pub fn select(
        &self,
        words: u64,
        width: u32,
        ports: u32,
        accesses_per_s: f64,
    ) -> Result<OffChipSelection, SelectPartError> {
        if self.parts.is_empty() {
            return Err(SelectPartError::EmptyCatalog);
        }
        if ports == 0 || ports > 2 {
            return Err(SelectPartError::UnsupportedPorts { ports });
        }
        let mut best: Option<(f64, OffChipSelection)> = None;
        for part in &self.parts {
            let devices_wide = width.div_ceil(part.width);
            let ranks = u32::try_from(words.div_ceil(part.words)).unwrap_or(u32::MAX);
            let sel = OffChipSelection {
                part: part.clone(),
                devices_wide,
                ranks,
                ports,
            };
            let power = sel.power_mw(accesses_per_s);
            let better = match &best {
                None => true,
                Some((best_power, _)) => power < *best_power,
            };
            if better {
                best = Some((power, sel));
            }
        }
        best.map(|(_, sel)| sel)
            .ok_or(SelectPartError::EmptyCatalog)
    }
}

impl Default for OffChipCatalog {
    fn default() -> Self {
        Self::default_edo()
    }
}

/// Parses a word count with optional binary `K`/`M` suffix.
fn parse_words(text: &str) -> Option<u64> {
    let (digits, factor) = match text.as_bytes().last()? {
        b'K' | b'k' => (&text[..text.len() - 1], 1024),
        b'M' | b'm' => (&text[..text.len() - 1], 1024 * 1024),
        _ => (text, 1),
    };
    digits.parse::<u64>().ok().map(|n| n * factor)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> OffChipCatalog {
        OffChipCatalog::default_edo()
    }

    #[test]
    fn default_catalog_has_all_organizations() {
        assert_eq!(catalog().parts().len(), 12);
    }

    #[test]
    fn select_covers_requested_capacity() {
        let sel = catalog().select(1 << 20, 10, 1, 1e6).unwrap();
        let total_words = sel.part().words() * u64::from(sel.ranks());
        let total_width = sel.part().width() * sel.devices_wide();
        assert!(total_words >= 1 << 20);
        assert!(total_width >= 10);
    }

    #[test]
    fn wider_access_needs_more_power() {
        // The Table 1 effect: a 10-bit (merged) group needs a 16-bit
        // off-chip configuration which burns more per access than 8-bit.
        let c = catalog();
        let sel8 = c.select(1 << 20, 8, 1, 2e6).unwrap();
        let sel16 = c.select(1 << 20, 16, 1, 2e6).unwrap();
        assert!(sel16.energy_pj_per_access() > sel8.energy_pj_per_access());
    }

    #[test]
    fn two_port_costs_substantially_more() {
        // The Table 2 effect: without a hierarchy the image store needs a
        // dual-ported off-chip memory.
        let c = catalog();
        let p1 = c.select(1 << 20, 8, 1, 4e6).unwrap().power_mw(4e6);
        let p2 = c.select(1 << 20, 8, 2, 4e6).unwrap().power_mw(4e6);
        assert!(p2 > 1.25 * p1, "p2={p2} p1={p1}");
    }

    #[test]
    fn more_than_two_ports_rejected() {
        assert_eq!(
            catalog().select(1024, 8, 3, 1e6).unwrap_err(),
            SelectPartError::UnsupportedPorts { ports: 3 }
        );
        assert_eq!(
            catalog().select(1024, 8, 0, 1e6).unwrap_err(),
            SelectPartError::UnsupportedPorts { ports: 0 }
        );
    }

    #[test]
    fn empty_catalog_rejected() {
        let c = OffChipCatalog::new(Vec::new());
        assert_eq!(
            c.select(1024, 8, 1, 1e6).unwrap_err(),
            SelectPartError::EmptyCatalog
        );
    }

    #[test]
    fn power_grows_with_access_rate() {
        let sel = catalog().select(1 << 20, 8, 1, 1e6).unwrap();
        assert!(sel.power_mw(2e6) > sel.power_mw(1e6));
    }

    #[test]
    fn parse_reads_datasheet_tables() {
        let c = OffChipCatalog::parse(
            "# Siemens EDO series\n\
             \n\
             EDO-256Kx16  256K 16 8760 17.2  # wide part\n\
             EDO-1Mx8     1M    8 6280 18.9\n",
        )
        .unwrap();
        assert_eq!(c.parts().len(), 2);
        assert_eq!(c.parts()[0].words(), 256 * 1024);
        assert_eq!(c.parts()[0].width(), 16);
        assert_eq!(c.parts()[1].words(), 1 << 20);
        // The parsed catalog is usable for selection.
        assert!(c.select(1 << 20, 8, 1, 1e6).is_ok());
    }

    #[test]
    fn parse_rejects_malformed_rows() {
        let short = OffChipCatalog::parse("EDO-1Mx8 1M 8 6280").unwrap_err();
        assert_eq!(short.line, 1);
        let bad_words = OffChipCatalog::parse("x 1Q 8 6280 18.9").unwrap_err();
        assert!(bad_words.reason.contains("word count"));
        let negative = OffChipCatalog::parse("x 1M 8 -5 18.9").unwrap_err();
        assert!(negative.reason.contains("positive"));
        let bad_width = OffChipCatalog::parse("ok 1M 8 6280 18.9\nx 1M w 6280 18.9").unwrap_err();
        assert_eq!(bad_width.line, 2);
    }

    #[test]
    fn parse_word_suffixes() {
        assert_eq!(parse_words("512"), Some(512));
        assert_eq!(parse_words("4K"), Some(4096));
        assert_eq!(parse_words("2m"), Some(2 << 20));
        assert_eq!(parse_words("x"), None);
        assert_eq!(parse_words(""), None);
    }

    #[test]
    fn selection_prefers_single_small_device_for_small_data() {
        // A 256 K x 8 request should not pick a 4 M die when the small
        // one is cheaper at low rates.
        let sel = catalog().select(200_000, 8, 1, 1e5).unwrap();
        assert_eq!(sel.devices(), 1);
        assert!(sel.part().words() <= 1 << 20);
    }
}
