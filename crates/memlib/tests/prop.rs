//! Property-based tests on the technology models: the monotonicities
//! the methodology relies on must hold for all parameters.

use memx_memlib::{CostBreakdown, MemLibrary, OnChipSpec};
use proptest::prelude::*;

fn lib() -> MemLibrary {
    MemLibrary::default_07um()
}

proptest! {
    #[test]
    fn on_chip_area_monotone_in_every_parameter(
        words in 1u64..100_000,
        width in 1u32..32,
        ports in 1u32..4,
    ) {
        let m = lib();
        let base = m.on_chip().area_mm2(&OnChipSpec::new(words, width, ports));
        prop_assert!(base > 0.0);
        prop_assert!(m.on_chip().area_mm2(&OnChipSpec::new(words + 1, width, ports)) >= base);
        prop_assert!(m.on_chip().area_mm2(&OnChipSpec::new(words, width + 1, ports)) > base);
        prop_assert!(m.on_chip().area_mm2(&OnChipSpec::new(words, width, ports + 1)) > base);
    }

    #[test]
    fn on_chip_energy_monotone_and_sublinear(
        words in 16u64..100_000,
        width in 1u32..32,
    ) {
        let m = lib();
        let e1 = m.on_chip().energy_pj(&OnChipSpec::new(words, width, 1));
        let e4 = m.on_chip().energy_pj(&OnChipSpec::new(words * 4, width, 1));
        prop_assert!(e4 > e1);
        // Sub-linear: quadrupling the size less than doubles the energy.
        prop_assert!(e4 < 2.0 * e1 + 1e-9);
    }

    #[test]
    fn off_chip_selection_always_covers_the_request(
        words in 1u64..(8u64 << 20),
        width in 1u32..33,
        ports in 1u32..3,
        rate in 1.0e3f64..1.0e8,
    ) {
        let sel = lib()
            .off_chip()
            .select(words, width, ports, rate)
            .expect("catalog covers all requests");
        let total_words = sel.part().words() * u64::from(sel.ranks());
        let total_width = sel.part().width() * sel.devices_wide();
        prop_assert!(total_words >= words);
        prop_assert!(total_width >= width);
        prop_assert!(sel.power_mw(rate) > 0.0);
    }

    #[test]
    fn off_chip_power_monotone_in_rate(
        words in 1u64..(1u64 << 20),
        width in 1u32..17,
        rate in 1.0e3f64..1.0e7,
    ) {
        let c = lib();
        let sel = c.off_chip().select(words, width, 1, rate).expect("selectable");
        prop_assert!(sel.power_mw(rate * 2.0) > sel.power_mw(rate));
    }

    #[test]
    fn cost_addition_is_commutative_and_associative(
        a in prop::array::uniform3(0.0f64..1e3),
        b in prop::array::uniform3(0.0f64..1e3),
        c in prop::array::uniform3(0.0f64..1e3),
    ) {
        let x = CostBreakdown::new(a[0], a[1], a[2]);
        let y = CostBreakdown::new(b[0], b[1], b[2]);
        let z = CostBreakdown::new(c[0], c[1], c[2]);
        prop_assert_eq!(x + y, y + x);
        let left = (x + y) + z;
        let right = x + (y + z);
        prop_assert!((left.on_chip_area_mm2 - right.on_chip_area_mm2).abs() < 1e-9);
        prop_assert!((left.total_power_mw() - right.total_power_mw()).abs() < 1e-9);
    }

    #[test]
    fn dominance_implies_lower_scalar(
        a in prop::array::uniform3(0.0f64..1e3),
        b in prop::array::uniform3(0.0f64..1e3),
        area_w in 0.0f64..10.0,
        power_w in 0.0f64..10.0,
    ) {
        let x = CostBreakdown::new(a[0], a[1], a[2]);
        let y = CostBreakdown::new(b[0], b[1], b[2]);
        if x.dominates(&y) {
            prop_assert!(x.scalar(area_w, power_w) <= y.scalar(area_w, power_w) + 1e-9);
        }
    }
}
