//! A tiny hand-rolled JSON value model, parser and writer.
//!
//! The build environment is offline (no registry crates), so the wire
//! format lives on exactly the subset of JSON the protocol needs:
//! objects, arrays, strings, finite numbers, booleans and `null`.
//! Objects preserve key order on both ends — they are vectors of
//! `(key, value)` pairs, never hash maps — so everything the daemon
//! writes is byte-deterministic and `no-unordered-iter`-clean by
//! construction.
//!
//! Parsing is a plain recursive-descent over bytes with a depth limit
//! (stack safety against `[[[[...` bodies) and returns positioned
//! errors; it never panics on any input.

use std::fmt;

/// Maximum nesting depth the parser accepts. Request bodies are flat
/// (a spec object, two levels of arrays), so 64 is generous while
/// keeping recursion bounded.
const MAX_DEPTH: u32 = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (JSON has no NaN/Inf).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source (or construction) key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first match; the protocol rejects
    /// nothing on duplicate keys, last writer does *not* win — the
    /// first occurrence is authoritative, matching read order).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a finite `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer. JSON numbers are doubles,
    /// so integers are exact up to 2^53 — far beyond any knob in the
    /// protocol; fractional or out-of-range numbers are rejected.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && *n <= 9_007_199_254_740_992.0 && n.fract() == 0.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value (compact, no whitespace). Numbers print via
    /// Rust's shortest-roundtrip `f64` formatting, except exact
    /// integers, which print without a fraction — `3` not `3.0` — so
    /// counters look like counters.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_f64(*n, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Writes `n` as JSON: exact integers without a fraction, everything
/// else in Rust's shortest-roundtrip form. Non-finite values (which the
/// protocol never produces — costs are finite by construction) degrade
/// to `null`, the standard JSON stance.
pub fn write_f64(n: f64, out: &mut String) {
    use fmt::Write as _;
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

/// Writes `s` as a JSON string literal with the mandatory escapes.
pub fn write_escaped(s: &str, out: &mut String) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A positioned parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset the parser stopped at.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a positioned [`JsonError`] on any malformed input; never
/// panics.
pub fn parse(input: &[u8]) -> Result<Json, JsonError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), JsonError> {
        if self.input[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`")))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_keyword("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Json::Bool(false)),
            Some(b'n') => self.eat_keyword("null").map(|()| Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte 0x{c:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: u32) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: u32) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Consume one UTF-8 sequence; the body was already
                    // validated as UTF-8 before parsing.
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.input.len() && (self.input[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    match std::str::from_utf8(&self.input[start..end]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid UTF-8 in string")),
                    }
                    self.pos = end;
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u`, combining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        if (0xD800..0xDC00).contains(&first) {
            // High surrogate: require `\uXXXX` low surrogate.
            if self.peek() == Some(b'\\') && self.input.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let low = self.hex4()?;
                if (0xDC00..0xE000).contains(&low) {
                    let c = 0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired high surrogate"));
        }
        char::from_u32(first).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("expected 4 hex digits after \\u")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.input[start..self.pos])
            .ok()
            .unwrap_or("");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(self.err("invalid number")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_protocol_subset() {
        let src = br#"{"spec":{"name":"fir","groups":[{"words":64,"w":1.5}]},"ok":true,"err":null,"n":[-2,0.5,1e3]}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("err"), Some(&Json::Null));
        let spec = v.get("spec").unwrap();
        assert_eq!(spec.get("name").and_then(Json::as_str), Some("fir"));
        let g = &spec.get("groups").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(g.get("words").and_then(Json::as_u64), Some(64));
        assert_eq!(g.get("w").and_then(Json::as_f64), Some(1.5));
        let n = v.get("n").and_then(Json::as_arr).unwrap();
        assert_eq!(n[0].as_f64(), Some(-2.0));
        assert_eq!(n[0].as_u64(), None, "negative is not a u64");
        assert_eq!(n[2].as_f64(), Some(1000.0));
        // Re-encoding preserves member order and prints exact integers
        // without a fraction.
        assert_eq!(
            parse(v.encode().as_bytes()).unwrap(),
            v,
            "encode/parse round-trip"
        );
        assert!(v.encode().starts_with(r#"{"spec":{"name":"fir""#));
        assert!(v.encode().contains("[-2,0.5,1000]"));
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}π".to_string());
        let enc = v.encode();
        assert_eq!(enc, "\"a\\\"b\\\\c\\nd\\te\\u0001π\"");
        assert_eq!(parse(enc.as_bytes()).unwrap(), v);
        // Surrogate pairs decode to one char.
        assert_eq!(
            parse(br#""\ud83d\ude00""#).unwrap(),
            Json::Str("\u{1F600}".to_string())
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            &b"{"[..],
            b"[1,",
            b"{\"a\":}",
            b"\"unterminated",
            b"01e",
            b"nul",
            b"{}extra",
            b"\"\\ud800\"",
            b"[1] [2]",
            b"",
            b"\x80",
        ] {
            assert!(parse(bad).is_err(), "{:?} must not parse", bad);
        }
        // Deep nesting errors instead of blowing the stack.
        let mut deep = Vec::new();
        deep.extend(std::iter::repeat_n(b'[', 10_000));
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn non_finite_numbers_never_appear() {
        assert!(parse(b"1e999").is_err(), "overflow to inf is rejected");
        let mut out = String::new();
        write_f64(f64::NAN, &mut out);
        assert_eq!(out, "null");
    }
}
