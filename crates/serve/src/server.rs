//! The resident daemon: accept loop, bounded admission, handler pool,
//! request dispatch and the streaming evaluation path.
//!
//! # Concurrency shape
//!
//! The crate introduces **no new atomics**. Admission and the
//! connection queue are one `Mutex<Admit>` + `Condvar` (a bounded
//! hand-off between the accept loop and the handler pool), and the
//! actual evaluation fan-out reuses `core::fan`'s audited claim queue
//! *inside* [`Engine::evaluate_stream`] — the daemon budgets workers,
//! the engine claims work. That is the "reuse the claim queue" arm of
//! the `atomics-confined` policy: `memx-lint` keeps flagging atomics
//! anywhere in this crate.
//!
//! # Admission and backpressure
//!
//! The accept loop admits a connection only while
//! `active < handlers + queue_depth` (`active` counts admitted, not-yet
//! -finished connections). Beyond that the daemon *sheds* the
//! connection immediately — `503` with a `Retry-After` header — instead
//! of queueing unboundedly or hanging the client. Admission state
//! changes only under the one mutex, so the saturation threshold is
//! exact, not heuristic.
//!
//! # Worker budgeting
//!
//! The daemon owns one worker budget (`engine_workers`, default one per
//! core). Each evaluation request gets `max(1, budget / evaluating)`
//! workers, where `evaluating` is the number of requests inside the
//! engine at that moment — one lone client uses the whole pool,
//! concurrent clients split it. Results are bit-identical for every
//! worker count (the engine's guarantee), so the split affects latency
//! only, never bytes on the wire.

use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use memx_core::cache::{CacheStats, EvalCache};
use memx_core::engine::{auto_workers, Engine};
use memx_memlib::MemLibrary;

use crate::http::{self, ChunkedWriter, ReadLimits, Request};
use crate::json::Json;
use crate::telemetry::Telemetry;
use crate::wire::{self, WireLimits};

/// Everything the daemon is configured with. All of it comes from CLI
/// arguments (or a test's struct literal) — the serve crate never reads
/// environment variables, so request handling stays
/// `no-ambient-state`-clean by construction.
#[derive(Debug)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Connection-handler threads: requests served concurrently.
    pub handlers: usize,
    /// Admitted-but-waiting connections beyond the handlers; above
    /// `handlers + queue_depth` the daemon sheds with 503.
    pub queue_depth: usize,
    /// Total evaluation worker budget shared by all in-flight requests
    /// (`0` = one per available core).
    pub engine_workers: usize,
    /// Per-request body size cap.
    pub read_limits: ReadLimits,
    /// Per-request shape caps (groups, points).
    pub wire_limits: WireLimits,
    /// `Retry-After` seconds advertised on 503.
    pub retry_after_secs: u32,
    /// Socket read timeout; an idle or stalled connection is dropped
    /// after this long. `None` waits forever (tests only).
    pub read_timeout: Option<Duration>,
    /// Persistent evaluation cache shared by every request.
    pub cache: Option<Arc<EvalCache>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            handlers: 4,
            queue_depth: 16,
            engine_workers: 0,
            read_limits: ReadLimits {
                max_body_bytes: 1 << 20,
            },
            wire_limits: WireLimits::default(),
            retry_after_secs: 1,
            read_timeout: Some(Duration::from_secs(10)),
            cache: None,
        }
    }
}

/// Why the daemon could not start.
#[derive(Debug)]
pub enum ServeError {
    /// Binding the listen address failed.
    Bind {
        /// The configured address.
        addr: String,
        /// The socket error.
        source: std::io::Error,
    },
    /// The configuration is unusable.
    Config(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind { addr, source } => write!(f, "cannot bind {addr}: {source}"),
            ServeError::Config(msg) => write!(f, "bad configuration: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Admission state: the connection hand-off queue and the in-flight
/// counters. One mutex owns all of it, so the 503 threshold and the
/// worker split are computed against consistent counts.
#[derive(Debug, Default)]
struct Admit {
    queue: VecDeque<TcpStream>,
    /// Admitted connections not yet finished (queued + being served).
    active: usize,
    /// Requests currently inside the engine.
    evaluating: usize,
}

#[derive(Debug)]
struct Shared {
    lib: MemLibrary,
    handlers: usize,
    queue_depth: usize,
    engine_workers: usize,
    read_limits: ReadLimits,
    wire_limits: WireLimits,
    retry_after_secs: u32,
    read_timeout: Option<Duration>,
    cache: Option<Arc<EvalCache>>,
    telemetry: Telemetry,
    admit: Mutex<Admit>,
    ready: Condvar,
}

/// Recovers a poisoned guard: every structure behind these locks is a
/// plain value (queue, counters), valid at every instruction boundary.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// A bound daemon, ready to [`Server::run`].
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listen socket and prepares the shared state.
    ///
    /// # Errors
    ///
    /// [`ServeError`] when the address cannot be bound or the
    /// configuration is unusable.
    pub fn bind(lib: MemLibrary, cfg: ServeConfig) -> Result<Server, ServeError> {
        if cfg.handlers == 0 {
            return Err(ServeError::Config("handlers must be >= 1".to_string()));
        }
        let listener = TcpListener::bind(&cfg.addr).map_err(|source| ServeError::Bind {
            addr: cfg.addr.clone(),
            source,
        })?;
        let local_addr = listener.local_addr().map_err(|source| ServeError::Bind {
            addr: cfg.addr.clone(),
            source,
        })?;
        let shared = Arc::new(Shared {
            lib,
            handlers: cfg.handlers,
            queue_depth: cfg.queue_depth,
            engine_workers: match cfg.engine_workers {
                0 => auto_workers(),
                n => n,
            },
            read_limits: cfg.read_limits,
            wire_limits: cfg.wire_limits,
            retry_after_secs: cfg.retry_after_secs,
            read_timeout: cfg.read_timeout,
            cache: cfg.cache,
            telemetry: Telemetry::new(),
            admit: Mutex::new(Admit::default()),
            ready: Condvar::new(),
        });
        Ok(Server {
            listener,
            local_addr,
            shared,
        })
    }

    /// The bound address (read it before [`Server::run`] to learn an
    /// ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Runs the daemon: spawns the handler pool and serves the accept
    /// loop on the calling thread, forever. The process exits by
    /// signal, like any resident service.
    pub fn run(self) {
        for _ in 0..self.shared.handlers {
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || handler_loop(&shared));
        }
        for stream in self.listener.incoming() {
            let stream = match stream {
                Ok(s) => s,
                // Transient accept failures (EMFILE, aborted handshake)
                // must not take the daemon down.
                Err(_) => continue,
            };
            let shared = &self.shared;
            let mut admit = lock(&shared.admit);
            if admit.active >= shared.handlers + shared.queue_depth {
                drop(admit);
                shared.telemetry.note_rejected();
                shed(stream, shared.retry_after_secs);
                continue;
            }
            admit.active += 1;
            admit.queue.push_back(stream);
            drop(admit);
            shared.ready.notify_one();
        }
    }
}

/// Writes the 503 shed response; best-effort (a client gone before the
/// bytes land was shedding itself).
fn shed(mut stream: TcpStream, retry_after_secs: u32) {
    let body = wire::render_error(503, "server saturated; retry shortly");
    let _ = http::write_response(
        &mut stream,
        503,
        &[
            ("retry-after", retry_after_secs.to_string()),
            ("connection", "close".to_string()),
        ],
        &body,
    );
}

fn handler_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut admit = lock(&shared.admit);
            loop {
                if let Some(stream) = admit.queue.pop_front() {
                    break stream;
                }
                admit = shared.ready.wait(admit).unwrap_or_else(|p| p.into_inner());
            }
        };
        serve_connection(shared, stream);
        lock(&shared.admit).active -= 1;
    }
}

/// Serves one connection: requests in sequence until the client closes,
/// errors, or asks to. Any framing error gets a best-effort error
/// response and closes the connection (the byte stream is no longer
/// trustworthy after a framing violation); the daemon itself stays
/// serviceable either way.
fn serve_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(shared.read_timeout);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    loop {
        let request = match http::read_request(&mut reader, shared.read_limits) {
            Ok(None) => return,
            Ok(Some(request)) => request,
            Err(e) => {
                let body = wire::render_error(e.status(), &e.to_string());
                let _ = http::write_response(
                    &mut writer,
                    e.status(),
                    &[("connection", "close".to_string())],
                    &body,
                );
                return;
            }
        };
        let close = request
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"));
        let served = dispatch(shared, &request, &mut writer);
        if close || served.is_err() {
            return;
        }
    }
}

/// Routes one request. `Err` means the connection is no longer usable
/// (mid-stream write failure); protocol-level rejections are `Ok` —
/// they got a well-formed error response.
fn dispatch(shared: &Shared, request: &Request, writer: &mut TcpStream) -> Result<(), ()> {
    match (request.method.as_str(), request.target.as_str()) {
        ("POST", "/v1/evaluate") => serve_evaluate(shared, request, writer),
        ("GET", "/v1/stats") => {
            let body = stats_body(shared);
            http::write_response(writer, 200, &[], &body).map_err(|_| ())
        }
        (_, "/v1/evaluate") | (_, "/v1/stats") => {
            let body = wire::render_error(405, "method not allowed");
            http::write_response(writer, 405, &[], &body).map_err(|_| ())
        }
        _ => {
            let body = wire::render_error(404, "unknown endpoint");
            http::write_response(writer, 404, &[], &body).map_err(|_| ())
        }
    }
}

/// The per-kind cache-stat trailer values for one request: deltas of
/// the shared counters across the request. Under concurrent load a
/// sibling request's hits can land in the window, so the deltas are
/// attribution-approximate; the `/v1/stats` totals are exact.
fn cache_delta(before: &CacheStats, after: &CacheStats) -> [(&'static str, String); 3] {
    let line = |hits_after: u64, hits_before: u64, miss_after: u64, miss_before: u64| {
        format!(
            "{} hits / {} misses",
            hits_after.saturating_sub(hits_before),
            miss_after.saturating_sub(miss_before)
        )
    };
    [
        (
            "x-memx-cache-scbd",
            line(
                after.scbd_hits,
                before.scbd_hits,
                after.scbd_misses,
                before.scbd_misses,
            ),
        ),
        (
            "x-memx-cache-alloc",
            line(
                after.alloc_hits,
                before.alloc_hits,
                after.alloc_misses,
                before.alloc_misses,
            ),
        ),
        (
            "x-memx-cache-blocks",
            line(
                after.blocks_hits,
                before.blocks_hits,
                after.blocks_misses,
                before.blocks_misses,
            ),
        ),
    ]
}

fn serve_evaluate(shared: &Shared, request: &Request, writer: &mut TcpStream) -> Result<(), ()> {
    let parsed = match crate::json::parse(&request.body) {
        Ok(v) => v,
        Err(e) => {
            let body = wire::render_error(400, &e.to_string());
            return http::write_response(writer, 400, &[], &body).map_err(|_| ());
        }
    };
    let decoded = match wire::decode_evaluate(&parsed, shared.wire_limits) {
        Ok(d) => d,
        Err(e) => {
            let status = e.status();
            let body = wire::render_error(status, &e.to_string());
            return http::write_response(writer, status, &[], &body).map_err(|_| ());
        }
    };

    // Split the worker budget over the requests currently evaluating
    // (including this one); the client's `workers` ask only ever
    // narrows its own share.
    let workers = {
        let mut admit = lock(&shared.admit);
        admit.evaluating += 1;
        let share = (shared.engine_workers / admit.evaluating).max(1);
        match decoded.workers {
            Some(asked) if asked >= 1 => share.min(asked),
            _ => share,
        }
    };
    let before = shared
        .cache
        .as_deref()
        .map(|c| c.stats())
        .unwrap_or_default();

    let engine = Engine::builder(&shared.lib)
        .workers(workers)
        .eval_cache(shared.cache.clone())
        .build();
    let points = decoded.design_points();
    let trailer_names = [
        "x-memx-rows",
        "x-memx-cache-scbd",
        "x-memx-cache-alloc",
        "x-memx-cache-blocks",
    ];
    let mut sink = match ChunkedWriter::start(&mut *writer, 200, &trailer_names) {
        Ok(sink) => sink,
        Err(_) => {
            lock(&shared.admit).evaluating -= 1;
            return Err(());
        }
    };
    let mut rows_written = 0u64;
    let mut broken = false;
    engine.evaluate_stream(&points, |i, result| {
        // After a client disconnect the engine still completes the
        // claimed batch (the visitor cannot cancel it); rows just stop
        // going to the wire.
        if broken {
            return;
        }
        let row = wire::render_row(i, &points[i].label, &result);
        match sink.chunk(row.as_bytes()) {
            Ok(()) => rows_written += 1,
            Err(_) => broken = true,
        }
    });
    lock(&shared.admit).evaluating -= 1;

    let after = shared
        .cache
        .as_deref()
        .map(|c| c.stats())
        .unwrap_or_default();
    let delta = cache_delta(&before, &after);
    let mut trailers = vec![("x-memx-rows", rows_written.to_string())];
    trailers.extend(delta);
    let finished = !broken && sink.finish(&trailers).is_ok();
    shared.telemetry.note_request(rows_written);
    if finished {
        Ok(())
    } else {
        Err(())
    }
}

/// The `/v1/stats` body: cumulative service counters plus the per-kind
/// cache totals (exact, unlike the per-request trailer deltas).
fn stats_body(shared: &Shared) -> String {
    let t = shared.telemetry.snapshot();
    let cache = shared
        .cache
        .as_deref()
        .map(|c| c.stats())
        .unwrap_or_default();
    let kind = |hits: u64, misses: u64, write_failures: u64| {
        Json::Obj(vec![
            ("hits".to_string(), Json::Num(hits as f64)),
            ("misses".to_string(), Json::Num(misses as f64)),
            (
                "write_failures".to_string(),
                Json::Num(write_failures as f64),
            ),
        ])
    };
    Json::Obj(vec![
        ("uptime_seconds".to_string(), Json::Num(t.uptime_seconds)),
        ("requests".to_string(), Json::Num(t.requests as f64)),
        (
            "rows_streamed".to_string(),
            Json::Num(t.rows_streamed as f64),
        ),
        (
            "rejected_requests".to_string(),
            Json::Num(t.rejected_requests as f64),
        ),
        (
            "cache".to_string(),
            Json::Obj(vec![
                (
                    "scbd".to_string(),
                    kind(
                        cache.scbd_hits,
                        cache.scbd_misses,
                        cache.scbd_write_failures,
                    ),
                ),
                (
                    "alloc".to_string(),
                    kind(
                        cache.alloc_hits,
                        cache.alloc_misses,
                        cache.alloc_write_failures,
                    ),
                ),
                (
                    "blocks".to_string(),
                    kind(
                        cache.blocks_hits,
                        cache.blocks_misses,
                        cache.blocks_write_failures,
                    ),
                ),
            ]),
        ),
    ])
    .encode()
}
