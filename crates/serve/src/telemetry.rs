//! The daemon's only wall-clock surface.
//!
//! `no-ambient-state` stays hard for the rest of the serve crate:
//! request handling derives everything from the request body, and the
//! one thing a resident service legitimately wants from the clock —
//! its own uptime — lives here, behind a counter API. This file is the
//! serve crate's single `ambient_allowed` entry in `memx-lint`'s
//! workspace config; moving an `Instant::now` anywhere else fails CI.

use std::sync::Mutex;
use std::time::Instant;

/// Monotone service counters plus the start instant.
#[derive(Debug)]
pub struct Telemetry {
    started: Instant,
    counters: Mutex<Counters>,
}

#[derive(Debug, Default, Clone, Copy)]
struct Counters {
    requests: u64,
    rows_streamed: u64,
    rejected_requests: u64,
}

/// A point-in-time copy of the counters, for the `/v1/stats` endpoint.
#[derive(Debug, Clone, Copy)]
pub struct TelemetrySnapshot {
    /// Seconds since the daemon started.
    pub uptime_seconds: f64,
    /// Completed evaluation requests (successful or errored on the
    /// wire; rejected requests are counted separately).
    pub requests: u64,
    /// Rows successfully written to clients, across all requests.
    pub rows_streamed: u64,
    /// Connections shed with 503 at admission.
    pub rejected_requests: u64,
}

impl Telemetry {
    /// Starts the clock.
    pub fn new() -> Self {
        Telemetry {
            started: Instant::now(),
            counters: Mutex::new(Counters::default()),
        }
    }

    fn with<R>(&self, f: impl FnOnce(&mut Counters) -> R) -> R {
        // The counters are plain integers; a poisoned lock (a panicking
        // handler mid-increment) leaves them merely stale, never torn.
        f(&mut self.counters.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// Records one completed evaluation request and the rows it
    /// actually delivered.
    pub fn note_request(&self, rows_streamed: u64) {
        self.with(|c| {
            c.requests += 1;
            c.rows_streamed += rows_streamed;
        });
    }

    /// Records one connection shed with 503.
    pub fn note_rejected(&self) {
        self.with(|c| c.rejected_requests += 1);
    }

    /// The current counter values and uptime.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let counters = self.with(|c| *c);
        TelemetrySnapshot {
            uptime_seconds: self.started.elapsed().as_secs_f64(),
            requests: counters.requests,
            rows_streamed: counters.rows_streamed,
            rejected_requests: counters.rejected_requests,
        }
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let t = Telemetry::new();
        t.note_request(3);
        t.note_request(0);
        t.note_rejected();
        let s = t.snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.rows_streamed, 3);
        assert_eq!(s.rejected_requests, 1);
        assert!(s.uptime_seconds >= 0.0);
    }
}
