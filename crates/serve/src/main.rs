//! The `memx-serve` binary: CLI parsing, daemon boot, and a
//! `--self-drive` mode that exercises the full client → wire → engine
//! path against the in-process offline reference (used as step 0 of
//! `scripts/serve_smoke.sh`).
//!
//! All configuration arrives as CLI arguments; the daemon reads no
//! environment variables (`std::env::args` is the one ambient input,
//! and it is read once, here).

use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;

use memx_core::cache::EvalCache;
use memx_memlib::MemLibrary;
use memx_serve::server::{ServeConfig, Server};
use memx_serve::{client, wire};

const USAGE: &str = "\
memx-serve — resident exploration daemon

USAGE:
    memx-serve [OPTIONS]

OPTIONS:
    --addr <HOST:PORT>    listen address        [default: 127.0.0.1:7199]
    --cache-dir <DIR>     persistent evaluation cache directory
    --handlers <N>        connection handler threads      [default: 4]
    --queue-depth <N>     admitted-but-waiting connections [default: 16]
    --workers <N>         evaluation worker budget (0 = per core)
    --self-drive          boot on an ephemeral port, run the demo batch
                          cold and warm, diff against the offline
                          reference, then exit (0 = identical)
    --help                print this help
";

struct Cli {
    addr: String,
    cache_dir: Option<String>,
    handlers: usize,
    queue_depth: usize,
    workers: usize,
    self_drive: bool,
}

fn parse_args() -> Result<Option<Cli>, String> {
    let mut cli = Cli {
        addr: "127.0.0.1:7199".to_string(),
        cache_dir: None,
        handlers: 4,
        queue_depth: 16,
        workers: 0,
        self_drive: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value (see --help)"))
        };
        match arg.as_str() {
            "--addr" => cli.addr = value("--addr")?,
            "--cache-dir" => cli.cache_dir = Some(value("--cache-dir")?),
            "--handlers" => {
                cli.handlers = value("--handlers")?
                    .parse()
                    .map_err(|_| "--handlers needs an integer".to_string())?;
            }
            "--queue-depth" => {
                cli.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|_| "--queue-depth needs an integer".to_string())?;
            }
            "--workers" => {
                cli.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers needs an integer".to_string())?;
            }
            "--self-drive" => cli.self_drive = true,
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    Ok(Some(cli))
}

fn open_cache(dir: &str) -> Result<Arc<EvalCache>, String> {
    EvalCache::open(dir)
        .map(Arc::new)
        .map_err(|e| format!("cannot open cache dir {dir}: {e}"))
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(Some(cli)) => cli,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("memx-serve: {msg}");
            return ExitCode::from(2);
        }
    };
    let outcome = if cli.self_drive {
        self_drive(&cli)
    } else {
        serve(&cli)
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("memx-serve: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn config(cli: &Cli, addr: String) -> Result<ServeConfig, String> {
    let cache = match &cli.cache_dir {
        // A requested cache that cannot open is fatal: silently serving
        // cold would defeat the daemon's purpose.
        Some(dir) => Some(open_cache(dir)?),
        None => None,
    };
    Ok(ServeConfig {
        addr,
        handlers: cli.handlers,
        queue_depth: cli.queue_depth,
        engine_workers: cli.workers,
        cache,
        ..ServeConfig::default()
    })
}

fn serve(cli: &Cli) -> Result<(), String> {
    let server = Server::bind(MemLibrary::default_07um(), config(cli, cli.addr.clone())?)
        .map_err(|e| e.to_string())?;
    // Scripts wait for this exact line; flush so a piped stdout
    // delivers it before the first request.
    let mut out = std::io::stdout();
    let _ = writeln!(out, "memx-serve listening on {}", server.local_addr());
    let _ = out.flush();
    server.run();
    Ok(())
}

/// Boots the daemon on an ephemeral port and proves, over real TCP,
/// that served rows are byte-identical to the offline reference — cold,
/// then warm (with a cache, the warm pass must also report hits).
fn self_drive(cli: &Cli) -> Result<(), String> {
    let cache_dir = match &cli.cache_dir {
        Some(dir) => dir.clone(),
        None => {
            let dir = std::env::temp_dir().join(format!("memx-serve-drive-{}", std::process::id()));
            dir.to_string_lossy().into_owned()
        }
    };
    let cli_with_cache = Cli {
        addr: "127.0.0.1:0".to_string(),
        cache_dir: Some(cache_dir),
        handlers: cli.handlers,
        queue_depth: cli.queue_depth,
        workers: cli.workers,
        self_drive: false,
    };
    let cfg = config(&cli_with_cache, cli_with_cache.addr.clone())?;
    let wire_limits = cfg.wire_limits;
    let server = Server::bind(MemLibrary::default_07um(), cfg).map_err(|e| e.to_string())?;
    let addr = server.local_addr();
    std::thread::spawn(move || server.run());

    let demo = wire::demo_request_text();
    let offline = wire::offline_rows(demo.as_bytes(), wire_limits)?;

    for pass in ["cold", "warm"] {
        let response =
            client::post_evaluate(addr, &demo).map_err(|e| format!("{pass} pass: {e}"))?;
        if response.status != 200 {
            return Err(format!("{pass} pass: status {}", response.status));
        }
        let served: Vec<String> = response
            .rows
            .iter()
            .map(|r| String::from_utf8_lossy(r).into_owned())
            .collect();
        if served != offline {
            return Err(format!(
                "{pass} pass: served rows differ from offline reference\nserved: {served:#?}\noffline: {offline:#?}"
            ));
        }
        let hits = cache_hits(&response);
        println!(
            "self-drive {pass}: {} rows byte-identical to offline, {hits} cache hits",
            served.len()
        );
        if pass == "warm" && hits == 0 {
            return Err("warm pass reported zero cache hits".to_string());
        }
    }

    let stats = client::get(addr, "/v1/stats").map_err(|e| format!("stats: {e}"))?;
    if stats.status != 200 {
        return Err(format!("stats: status {}", stats.status));
    }
    println!("self-drive stats: {}", String::from_utf8_lossy(&stats.body));
    Ok(())
}

/// Sums the hit counts out of the `x-memx-cache-*` trailers
/// (`"<hits> hits / <misses> misses"`).
fn cache_hits(response: &client::Response) -> u64 {
    ["scbd", "alloc", "blocks"]
        .iter()
        .filter_map(|kind| response.field(&format!("x-memx-cache-{kind}")))
        .filter_map(|v| v.split_whitespace().next()?.parse::<u64>().ok())
        .sum()
}
