//! A minimal scripted client for the daemon's protocol.
//!
//! Shared by `memx-serve --self-drive`, the `serve_client` bench
//! binary and the wire-layer tests, so every consumer reads chunked
//! responses (and their trailers) the same way. One chunk is one row —
//! the client surfaces chunk payloads verbatim, which is what the
//! byte-identity gates diff against the offline reference.

use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// What a request came back as.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response headers in wire order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Chunk payloads in order (one evaluated row each) for chunked
    /// responses; empty otherwise.
    pub rows: Vec<Vec<u8>>,
    /// Trailer fields in wire order, names lowercased (chunked only).
    pub trailers: Vec<(String, String)>,
    /// The body for non-chunked responses; empty otherwise.
    pub body: Vec<u8>,
}

impl Response {
    /// Case-insensitive header lookup (headers, then trailers).
    pub fn field(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .chain(self.trailers.iter())
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| &**v)
    }
}

/// Why a request failed client-side.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server's response violated HTTP framing.
    Protocol(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Protocol(what) => write!(f, "malformed response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// POSTs `body` to `/v1/evaluate` and reads the full response.
///
/// # Errors
///
/// [`ClientError`] on connect, write or response-framing failure.
pub fn post_evaluate(addr: SocketAddr, body: &str) -> Result<Response, ClientError> {
    request(addr, "POST", "/v1/evaluate", Some(body))
}

/// GETs `path` and reads the full response.
///
/// # Errors
///
/// [`ClientError`] on connect, write or response-framing failure.
pub fn get(addr: SocketAddr, path: &str) -> Result<Response, ClientError> {
    request(addr, "GET", path, None)
}

fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<Response, ClientError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nhost: memx-serve\r\n");
    if let Some(body) = body {
        head.push_str(&format!(
            "content-type: application/json\r\ncontent-length: {}\r\n",
            body.len()
        ));
    }
    head.push_str("connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    if let Some(body) = body {
        stream.write_all(body.as_bytes())?;
    }
    stream.flush()?;
    read_response(&mut BufReader::new(stream))
}

/// Reads one response off `reader` (shared with the tests, which drive
/// raw sockets themselves).
///
/// # Errors
///
/// [`ClientError`] on framing violations or socket failure.
pub fn read_response(reader: &mut impl BufRead) -> Result<Response, ClientError> {
    let status_line = read_line(reader)?.ok_or(ClientError::Protocol("no status line"))?;
    let mut parts = status_line.split(' ');
    let status: u16 = match (parts.next(), parts.next()) {
        (Some(version), Some(code)) if version.starts_with("HTTP/1.") => code
            .parse()
            .map_err(|_| ClientError::Protocol("status code"))?,
        _ => return Err(ClientError::Protocol("status line")),
    };
    let headers = read_fields(reader)?;
    let chunked = headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));

    let mut rows = Vec::new();
    let mut trailers = Vec::new();
    let mut body = Vec::new();
    if chunked {
        loop {
            let size_line = read_line(reader)?.ok_or(ClientError::Protocol("truncated chunks"))?;
            let size_text = size_line.split(';').next().unwrap_or("").trim();
            let size = usize::from_str_radix(size_text, 16)
                .map_err(|_| ClientError::Protocol("chunk size"))?;
            if size == 0 {
                trailers = read_fields(reader)?;
                break;
            }
            let mut payload = vec![0u8; size];
            reader
                .read_exact(&mut payload)
                .map_err(|_| ClientError::Protocol("truncated chunk payload"))?;
            let mut crlf = [0u8; 2];
            reader
                .read_exact(&mut crlf)
                .map_err(|_| ClientError::Protocol("truncated chunk terminator"))?;
            rows.push(payload);
        }
    } else {
        let length = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok());
        match length {
            Some(length) => {
                body = vec![0u8; length];
                reader
                    .read_exact(&mut body)
                    .map_err(|_| ClientError::Protocol("truncated body"))?;
            }
            None => {
                reader.read_to_end(&mut body)?;
            }
        }
    }
    Ok(Response {
        status,
        headers,
        rows,
        trailers,
        body,
    })
}

/// Reads header/trailer fields until the blank line.
fn read_fields(reader: &mut impl BufRead) -> Result<Vec<(String, String)>, ClientError> {
    let mut fields = Vec::new();
    loop {
        let line = read_line(reader)?.ok_or(ClientError::Protocol("truncated fields"))?;
        if line.is_empty() {
            return Ok(fields);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(ClientError::Protocol("field without `:`"))?;
        fields.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
}

fn read_line(reader: &mut impl BufRead) -> Result<Option<String>, ClientError> {
    let mut raw = Vec::new();
    let n = reader.read_until(b'\n', &mut raw)?;
    if n == 0 {
        return Ok(None);
    }
    if raw.last() == Some(&b'\n') {
        raw.pop();
    }
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    String::from_utf8(raw)
        .map(Some)
        .map_err(|_| ClientError::Protocol("non-UTF-8 line"))
}
