//! Hand-rolled HTTP/1.1: request parsing and response writing.
//!
//! Only what the daemon needs: `GET`/`POST` request lines, a bounded
//! header block, `Content-Length` or `Transfer-Encoding: chunked`
//! bodies (both size-capped), plain responses, and chunked responses
//! with trailers for the streaming path. Everything returns a typed
//! [`HttpError`]; nothing here panics on any byte sequence a client
//! can send.
//!
//! Request headers land in a `HashMap` keyed by lowercased name — a
//! case-insensitive *lookup table* that is never iterated into output
//! (responses are built from ordered vectors), which is exactly the
//! `no-unordered-iter` scope carve-out this file carries in
//! `memx-lint`'s workspace config.

use std::collections::HashMap;
use std::fmt;
use std::io::{BufRead, Write};

/// Hard cap on the request line + one header line, bytes.
const MAX_LINE_BYTES: usize = 8 * 1024;
/// Hard cap on the number of request headers.
const MAX_HEADERS: usize = 64;

/// Limits applied while reading one request.
#[derive(Debug, Clone, Copy)]
pub struct ReadLimits {
    /// Largest accepted decoded body, bytes.
    pub max_body_bytes: usize,
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as sent (`/v1/evaluate`).
    pub target: String,
    /// Headers, keyed by lowercased name; values trimmed. Duplicate
    /// headers keep the first value (none of the headers the protocol
    /// reads are list-valued).
    pub headers: HashMap<String, String>,
    /// The decoded body (empty for bodiless requests).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(&name.to_ascii_lowercase()).map(|v| &**v)
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header or chunk framing.
    Malformed(&'static str),
    /// Body (declared or decoded) exceeds the limit.
    BodyTooLarge {
        /// The configured cap, bytes.
        limit: usize,
    },
    /// The peer closed or timed out mid-request.
    UnexpectedEof,
    /// Socket-level failure.
    Io(std::io::Error),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::BodyTooLarge { limit } => {
                write!(f, "request body exceeds the {limit}-byte limit")
            }
            HttpError::UnexpectedEof => write!(f, "connection closed mid-request"),
            HttpError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

impl HttpError {
    /// The status code this error maps to on the wire.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Malformed(_) => 400,
            HttpError::BodyTooLarge { .. } => 413,
            HttpError::UnexpectedEof | HttpError::Io(_) => 400,
        }
    }
}

/// Reads one CRLF- (or bare-LF-) terminated line, size-capped.
fn read_line(stream: &mut impl BufRead) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match stream.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::UnexpectedEof);
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return match String::from_utf8(line) {
                        Ok(s) => Ok(Some(s)),
                        Err(_) => Err(HttpError::Malformed("non-UTF-8 header bytes")),
                    };
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE_BYTES {
                    return Err(HttpError::Malformed("header line too long"));
                }
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// Reads one request. `Ok(None)` is a clean end of connection (the
/// client closed before sending anything — not an error).
///
/// # Errors
///
/// [`HttpError`] on any framing violation, size overrun, mid-request
/// disconnect or socket failure.
pub fn read_request(
    stream: &mut impl BufRead,
    limits: ReadLimits,
) -> Result<Option<Request>, HttpError> {
    let request_line = match read_line(stream)? {
        None => return Ok(None),
        Some(line) => line,
    };
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::Malformed("request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }

    let mut headers = HashMap::new();
    loop {
        let line = read_line(stream)?.ok_or(HttpError::UnexpectedEof)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header without `:`"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed("header name"));
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::Malformed("too many headers"));
        }
        headers
            .entry(name.to_ascii_lowercase())
            .or_insert_with(|| value.trim().to_string());
    }

    let body = read_body(stream, &headers, limits)?;
    Ok(Some(Request {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        body,
    }))
}

fn read_body(
    stream: &mut impl BufRead,
    headers: &HashMap<String, String>,
    limits: ReadLimits,
) -> Result<Vec<u8>, HttpError> {
    if let Some(te) = headers.get("transfer-encoding") {
        if !te.eq_ignore_ascii_case("chunked") {
            return Err(HttpError::Malformed("unsupported transfer-encoding"));
        }
        return read_chunked_body(stream, limits);
    }
    let declared: usize = match headers.get("content-length") {
        None => return Ok(Vec::new()),
        Some(v) => v
            .parse()
            .map_err(|_| HttpError::Malformed("content-length"))?,
    };
    if declared > limits.max_body_bytes {
        return Err(HttpError::BodyTooLarge {
            limit: limits.max_body_bytes,
        });
    }
    let mut body = vec![0u8; declared];
    read_exact_or_eof(stream, &mut body)?;
    Ok(body)
}

fn read_chunked_body(stream: &mut impl BufRead, limits: ReadLimits) -> Result<Vec<u8>, HttpError> {
    let mut body = Vec::new();
    loop {
        let size_line = read_line(stream)?.ok_or(HttpError::UnexpectedEof)?;
        // Chunk extensions (after `;`) are tolerated and ignored.
        let size_text = size_line.split(';').next().unwrap_or("").trim();
        let size =
            usize::from_str_radix(size_text, 16).map_err(|_| HttpError::Malformed("chunk size"))?;
        if size == 0 {
            // Trailer section: lines until the blank terminator.
            loop {
                let line = read_line(stream)?.ok_or(HttpError::UnexpectedEof)?;
                if line.is_empty() {
                    return Ok(body);
                }
            }
        }
        if body.len().saturating_add(size) > limits.max_body_bytes {
            return Err(HttpError::BodyTooLarge {
                limit: limits.max_body_bytes,
            });
        }
        let start = body.len();
        body.resize(start + size, 0);
        read_exact_or_eof(stream, &mut body[start..])?;
        let mut crlf = [0u8; 2];
        read_exact_or_eof(stream, &mut crlf)?;
        if &crlf != b"\r\n" {
            return Err(HttpError::Malformed("chunk terminator"));
        }
    }
}

/// `read_exact` with EOF and timeouts mapped onto [`HttpError`].
fn read_exact_or_eof(stream: &mut impl BufRead, buf: &mut [u8]) -> Result<(), HttpError> {
    stream.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            HttpError::UnexpectedEof
        } else {
            HttpError::Io(e)
        }
    })
}

/// The reason phrase for the status codes the daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes a complete non-streaming response with a JSON body.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &str,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A chunked streaming response: one `chunk` call per row, then
/// `finish` with the trailer fields.
#[derive(Debug)]
pub struct ChunkedWriter<W: Write> {
    stream: W,
}

impl<W: Write> ChunkedWriter<W> {
    /// Writes the response head, declaring the trailer names that
    /// [`ChunkedWriter::finish`] will send.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn start(mut stream: W, status: u16, trailer_names: &[&str]) -> std::io::Result<Self> {
        let mut head = format!(
            "HTTP/1.1 {status} {}\r\ncontent-type: application/x-ndjson\r\ntransfer-encoding: chunked\r\n",
            reason(status),
        );
        if !trailer_names.is_empty() {
            head.push_str("trailer: ");
            head.push_str(&trailer_names.join(", "));
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        Ok(ChunkedWriter { stream })
    }

    /// Writes one chunk (the payload is never empty for a row, and an
    /// empty payload is skipped — a zero-size chunk would terminate the
    /// stream early).
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn chunk(&mut self, payload: &[u8]) -> std::io::Result<()> {
        if payload.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", payload.len())?;
        self.stream.write_all(payload)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminates the stream: the zero chunk, then the trailers.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn finish(mut self, trailers: &[(&str, String)]) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n")?;
        for (name, value) in trailers {
            write!(self.stream, "{name}: {value}\r\n")?;
        }
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    const LIMITS: ReadLimits = ReadLimits {
        max_body_bytes: 1024,
    };

    fn parse(raw: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(raw), LIMITS)
    }

    #[test]
    fn parses_content_length_and_chunked_bodies() {
        let req = parse(b"POST /v1/evaluate HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/v1/evaluate");
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"abcd");

        let req = parse(
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n2;ext\r\nde\r\n0\r\n\r\n",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.body, b"abcde");

        // Bare-LF framing and no body.
        let req = parse(b"GET /stats HTTP/1.0\nX: y\n\n").unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());

        // Clean close before any bytes is None, not an error.
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn rejects_bad_framing_and_oversize() {
        assert!(matches!(
            parse(b"POST\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET / SPDY/9\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nbad header\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        let e = parse(b"POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n").unwrap_err();
        assert!(matches!(e, HttpError::BodyTooLarge { limit: 1024 }));
        assert_eq!(e.status(), 413);
        // Chunked bodies are capped on the decoded total.
        let mut raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
        for _ in 0..5 {
            raw.extend_from_slice(b"190\r\n");
            raw.extend_from_slice(&[b'x'; 0x190]);
            raw.extend_from_slice(b"\r\n");
        }
        assert!(matches!(
            parse(&raw),
            Err(HttpError::BodyTooLarge { limit: 1024 })
        ));
        // Truncated chunked read: declared 10 bytes, stream ends.
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\na\r\nab"),
            Err(HttpError::UnexpectedEof)
        ));
        // Mid-header disconnect.
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nHost"),
            Err(HttpError::UnexpectedEof)
        ));
    }

    #[test]
    fn chunked_writer_frames_rows_and_trailers() {
        let mut out = Vec::new();
        let mut w = ChunkedWriter::start(&mut out, 200, &["x-memx-rows"]).unwrap();
        w.chunk(b"{\"index\":0}\n").unwrap();
        w.chunk(b"").unwrap(); // skipped, must not terminate
        w.chunk(b"{\"index\":1}\n").unwrap();
        w.finish(&[("x-memx-rows", "2".to_string())]).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("transfer-encoding: chunked\r\n"));
        assert!(text.contains("trailer: x-memx-rows\r\n"));
        assert!(text.contains("c\r\n{\"index\":0}\n\r\n"));
        assert!(text.ends_with("0\r\nx-memx-rows: 2\r\n\r\n"));
    }
}
