//! memx-serve: a resident exploration daemon behind a typed request API.
//!
//! The offline binaries pay the full engine + cache warm-up cost on
//! every invocation. This crate keeps one [`memx_core::Engine`]
//! configuration and one warm [`memx_core::EvalCache`] resident behind
//! a small HTTP/1.1 + JSON protocol, so repeated exploration batches
//! (interactive sweeps, CI smoke passes) reuse everything the previous
//! request computed.
//!
//! Layering, bottom up:
//!
//! - [`json`] — hand-rolled JSON value, parser and encoder (the build
//!   environment is offline; no serde).
//! - [`http`] — blocking HTTP/1.1 framing over `std::net`: request
//!   parsing with hard byte limits, plain and chunked responses with
//!   trailers.
//! - [`wire`] — the typed protocol: request decoding into
//!   [`memx_ir::AppSpec`] + evaluation option batches, row rendering,
//!   and the offline reference ([`wire::offline_rows`]) that served
//!   rows are byte-compared against.
//! - [`telemetry`] — service counters; the crate's only wall-clock
//!   surface.
//! - [`server`] — admission control, worker budgeting and the
//!   connection loop.
//! - [`client`] — a scripted client used by `--self-drive`, the bench
//!   harness and the tests.
//!
//! The protocol itself is documented in `docs/serve_protocol.md`.

pub mod client;
pub mod http;
pub mod json;
pub mod server;
pub mod telemetry;
pub mod wire;
