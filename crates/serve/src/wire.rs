//! The typed request/response layer: JSON body → [`AppSpec`] +
//! evaluation options, and the canonical streamed-row rendering.
//!
//! One renderer ([`render_row`]) is shared by the daemon, the offline
//! reference ([`offline_rows`]) and the scripted client, so "rows
//! streamed by `memx-serve` are byte-identical to an offline
//! `Engine::evaluate_stream` run" holds by construction: both sides
//! format the same deterministic report fields with the same code.
//! Rows deliberately exclude [`memx_core::alloc::AllocStats`] — search
//! *effort* counters are not part of the deterministic result (worker
//! counts and warm caches change them) and would break the byte
//! identity the protocol pins.

use std::fmt;

use memx_core::alloc::{AllocOptions, BoundKind};
use memx_core::engine::{DesignPoint, Engine};
use memx_core::explore::{CostReport, EvaluateOptions};
use memx_core::ExploreError;
use memx_ir::{
    parse_spec, AccessKind, AppSpec, AppSpecBuilder, BuildSpecError, Placement, SpecTextError,
};
use memx_memlib::MemLibrary;

use crate::json::{self, Json};

/// Per-request shape limits (the byte limit is enforced earlier, while
/// reading the body — see [`crate::http::ReadLimits`]).
#[derive(Debug, Clone, Copy)]
pub struct WireLimits {
    /// Largest accepted `spec.groups` array.
    pub max_groups: usize,
    /// Largest accepted `points` array.
    pub max_points: usize,
}

impl Default for WireLimits {
    fn default() -> Self {
        WireLimits {
            max_groups: 256,
            max_points: 4096,
        }
    }
}

/// A decoded evaluation request: the spec, the labeled option batch,
/// and the client's (advisory) worker ask.
#[derive(Debug)]
pub struct EvaluateRequest {
    /// The application specification the batch evaluates.
    pub spec: AppSpec,
    /// One `(label, options)` pair per requested design point, in
    /// request order.
    pub points: Vec<(String, EvaluateOptions)>,
    /// Requested worker count (`None` = server decides). The server
    /// caps this by its per-request budget; it is never an entitlement.
    pub workers: Option<usize>,
}

impl EvaluateRequest {
    /// The design points of this request, borrowing the decoded spec.
    pub fn design_points(&self) -> Vec<DesignPoint<'_>> {
        self.points
            .iter()
            .map(|(label, options)| DesignPoint::new(label.clone(), &self.spec, options.clone()))
            .collect()
    }
}

/// Why a request body was rejected.
#[derive(Debug)]
pub enum WireError {
    /// The body is not the JSON shape the protocol defines (missing or
    /// mistyped member). Maps to 400.
    Shape {
        /// Dotted path of the offending member (`spec.groups[2].words`).
        context: String,
        /// What was expected.
        message: String,
    },
    /// A shape limit was exceeded. Maps to 413.
    Limit {
        /// Which array.
        what: &'static str,
        /// The configured cap.
        limit: usize,
        /// What the request carried.
        got: usize,
    },
    /// The spec is well-formed JSON but semantically invalid (duplicate
    /// group name, cyclic dependency, zero words...). Maps to 422.
    Spec(BuildSpecError),
    /// A `spec_text` member failed to parse; the diagnostic carries
    /// the line and column inside the submitted text. Maps to 422.
    SpecText(SpecTextError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Shape { context, message } => write!(f, "{context}: {message}"),
            WireError::Limit { what, limit, got } => {
                write!(f, "{what}: {got} exceeds the limit of {limit}")
            }
            WireError::Spec(e) => write!(f, "invalid spec: {e}"),
            WireError::SpecText(e) => write!(f, "invalid spec_text: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl WireError {
    /// The status code this rejection maps to on the wire.
    pub fn status(&self) -> u16 {
        match self {
            WireError::Shape { .. } => 400,
            WireError::Limit { .. } => 413,
            WireError::Spec(_) | WireError::SpecText(_) => 422,
        }
    }
}

fn shape(context: impl Into<String>, message: impl Into<String>) -> WireError {
    WireError::Shape {
        context: context.into(),
        message: message.into(),
    }
}

fn member<'j>(obj: &'j Json, context: &str, key: &str) -> Result<&'j Json, WireError> {
    obj.get(key)
        .ok_or_else(|| shape(format!("{context}.{key}"), "missing member"))
}

fn str_member(obj: &Json, context: &str, key: &str) -> Result<String, WireError> {
    member(obj, context, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| shape(format!("{context}.{key}"), "expected a string"))
}

fn u64_member(obj: &Json, context: &str, key: &str) -> Result<u64, WireError> {
    member(obj, context, key)?.as_u64().ok_or_else(|| {
        shape(
            format!("{context}.{key}"),
            "expected a non-negative integer",
        )
    })
}

fn opt_u64(obj: &Json, context: &str, key: &str) -> Result<Option<u64>, WireError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            shape(
                format!("{context}.{key}"),
                "expected a non-negative integer",
            )
        }),
    }
}

fn opt_f64(obj: &Json, context: &str, key: &str) -> Result<Option<f64>, WireError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| shape(format!("{context}.{key}"), "expected a number")),
    }
}

fn opt_bool(obj: &Json, context: &str, key: &str) -> Result<Option<bool>, WireError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_bool()
            .map(Some)
            .ok_or_else(|| shape(format!("{context}.{key}"), "expected a boolean")),
    }
}

fn arr_member<'j>(obj: &'j Json, context: &str, key: &str) -> Result<&'j [Json], WireError> {
    member(obj, context, key)?
        .as_arr()
        .ok_or_else(|| shape(format!("{context}.{key}"), "expected an array"))
}

/// Decodes one `POST /v1/evaluate` body.
///
/// # Errors
///
/// [`WireError`] locating the first offending member; the JSON itself
/// must already be parsed (a parse failure is the caller's 400).
pub fn decode_evaluate(body: &Json, limits: WireLimits) -> Result<EvaluateRequest, WireError> {
    if !matches!(body, Json::Obj(_)) {
        return Err(shape("request", "expected a JSON object"));
    }
    // Exactly one of `spec` (structured JSON) and `spec_text` (the
    // textual format of docs/spec_format.md) carries the application.
    let spec = match (body.get("spec"), body.get("spec_text")) {
        (Some(_), Some(_)) => {
            return Err(shape(
                "request",
                "`spec` and `spec_text` are mutually exclusive",
            ))
        }
        (None, None) => {
            return Err(shape(
                "request",
                "missing member (provide `spec` or `spec_text`)",
            ))
        }
        (Some(spec_json), None) => decode_spec(spec_json, limits)?,
        (None, Some(text_json)) => {
            let text = text_json
                .as_str()
                .ok_or_else(|| shape("request.spec_text", "expected a string"))?;
            let spec = parse_spec(text).map_err(WireError::SpecText)?;
            // The textual path enforces the same shape cap as the
            // structured one, just after parsing instead of before.
            if spec.basic_groups().len() > limits.max_groups {
                return Err(WireError::Limit {
                    what: "spec.groups",
                    limit: limits.max_groups,
                    got: spec.basic_groups().len(),
                });
            }
            spec
        }
    };

    let points_json = arr_member(body, "request", "points")?;
    if points_json.is_empty() {
        return Err(shape("request.points", "expected at least one point"));
    }
    if points_json.len() > limits.max_points {
        return Err(WireError::Limit {
            what: "request.points",
            limit: limits.max_points,
            got: points_json.len(),
        });
    }
    let mut points = Vec::with_capacity(points_json.len());
    for (i, point) in points_json.iter().enumerate() {
        let ctx = format!("points[{i}]");
        let label = match point.get("label") {
            None => format!("point {i}"),
            Some(v) => v
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| shape(format!("{ctx}.label"), "expected a string"))?,
        };
        let cycle_budget = opt_u64(point, &ctx, "cycle_budget")?;
        let alloc = match point.get("alloc") {
            None | Some(Json::Null) => AllocOptions::default(),
            Some(a) => decode_alloc(a, &ctx)?,
        };
        points.push((
            label,
            EvaluateOptions {
                cycle_budget,
                alloc,
            },
        ));
    }

    let workers = opt_u64(body, "request", "workers")?.map(|w| w as usize);
    Ok(EvaluateRequest {
        spec,
        points,
        workers,
    })
}

fn decode_spec(spec: &Json, limits: WireLimits) -> Result<AppSpec, WireError> {
    let name = str_member(spec, "spec", "name")?;
    let mut b = AppSpecBuilder::new(name);
    b.cycle_budget(u64_member(spec, "spec", "cycle_budget")?);
    if let Some(seconds) = opt_f64(spec, "spec", "real_time_seconds")? {
        b.real_time_seconds(seconds);
    }

    let groups = arr_member(spec, "spec", "groups")?;
    if groups.len() > limits.max_groups {
        return Err(WireError::Limit {
            what: "spec.groups",
            limit: limits.max_groups,
            got: groups.len(),
        });
    }
    let mut group_ids = Vec::with_capacity(groups.len());
    for (i, group) in groups.iter().enumerate() {
        let ctx = format!("spec.groups[{i}]");
        let placement = match group.get("placement") {
            None | Some(Json::Null) => Placement::Any,
            Some(v) => match v.as_str() {
                Some("any") => Placement::Any,
                Some("on_chip") => Placement::OnChip,
                Some("off_chip") => Placement::OffChip,
                _ => {
                    return Err(shape(
                        format!("{ctx}.placement"),
                        "expected \"any\", \"on_chip\" or \"off_chip\"",
                    ))
                }
            },
        };
        let bitwidth = u64_member(group, &ctx, "bitwidth")?;
        let bitwidth = u32::try_from(bitwidth)
            .map_err(|_| shape(format!("{ctx}.bitwidth"), "expected 1..=64"))?;
        let min_ports = opt_u64(group, &ctx, "min_ports")?.unwrap_or(1);
        let min_ports = u32::try_from(min_ports)
            .map_err(|_| shape(format!("{ctx}.min_ports"), "expected a small integer"))?;
        let id = b
            .basic_group_full(
                str_member(group, &ctx, "name")?,
                u64_member(group, &ctx, "words")?,
                bitwidth,
                placement,
                min_ports,
            )
            .map_err(WireError::Spec)?;
        group_ids.push(id);
    }

    let nests = arr_member(spec, "spec", "nests")?;
    for (i, nest) in nests.iter().enumerate() {
        let ctx = format!("spec.nests[{i}]");
        let nest_id = b
            .loop_nest(
                str_member(nest, &ctx, "name")?,
                u64_member(nest, &ctx, "iterations")?,
            )
            .map_err(WireError::Spec)?;
        let accesses = arr_member(nest, &ctx, "accesses")?;
        let mut access_ids = Vec::with_capacity(accesses.len());
        for (j, access) in accesses.iter().enumerate() {
            let actx = format!("{ctx}.accesses[{j}]");
            let group_index = u64_member(access, &actx, "group")? as usize;
            let group = *group_ids
                .get(group_index)
                .ok_or_else(|| shape(format!("{actx}.group"), "group index out of range"))?;
            let kind = match member(access, &actx, "kind")?.as_str() {
                Some("read") => AccessKind::Read,
                Some("write") => AccessKind::Write,
                _ => {
                    return Err(shape(
                        format!("{actx}.kind"),
                        "expected \"read\" or \"write\"",
                    ))
                }
            };
            let weight = opt_f64(access, &actx, "weight")?.unwrap_or(1.0);
            let burst = opt_bool(access, &actx, "burst")?.unwrap_or(false);
            let id = b
                .access_full(nest_id, group, kind, weight, burst)
                .map_err(WireError::Spec)?;
            access_ids.push(id);
        }
        if let Some(deps) = nest.get("deps") {
            let deps = deps
                .as_arr()
                .ok_or_else(|| shape(format!("{ctx}.deps"), "expected an array of [from, to]"))?;
            for (j, dep) in deps.iter().enumerate() {
                let dctx = format!("{ctx}.deps[{j}]");
                let pair = dep
                    .as_arr()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| shape(&dctx, "expected [from, to]"))?;
                let endpoint = |v: &Json| {
                    v.as_u64()
                        .map(|n| n as usize)
                        .and_then(|n| access_ids.get(n).copied())
                };
                let (from, to) = match (endpoint(&pair[0]), endpoint(&pair[1])) {
                    (Some(f), Some(t)) => (f, t),
                    _ => return Err(shape(&dctx, "access index out of range")),
                };
                b.depend(nest_id, from, to).map_err(WireError::Spec)?;
            }
        }
    }

    b.build().map_err(WireError::Spec)
}

fn decode_alloc(alloc: &Json, point_ctx: &str) -> Result<AllocOptions, WireError> {
    let ctx = format!("{point_ctx}.alloc");
    let defaults = AllocOptions::default();
    let on_chip_memories = match opt_u64(alloc, &ctx, "on_chip_memories")? {
        None => None,
        Some(k) => Some(u32::try_from(k).map_err(|_| {
            shape(
                format!("{ctx}.on_chip_memories"),
                "expected a small integer",
            )
        })?),
    };
    let max_on_chip_ports = match opt_u64(alloc, &ctx, "max_on_chip_ports")? {
        None => defaults.max_on_chip_ports,
        Some(p) => u32::try_from(p).map_err(|_| {
            shape(
                format!("{ctx}.max_on_chip_ports"),
                "expected a small integer",
            )
        })?,
    };
    let bound = match alloc.get("bound") {
        None | Some(Json::Null) => defaults.bound,
        Some(v) => match v.as_str() {
            Some("solo") => BoundKind::Solo,
            Some("pairwise") => BoundKind::Pairwise,
            _ => {
                return Err(shape(
                    format!("{ctx}.bound"),
                    "expected \"solo\" or \"pairwise\"",
                ))
            }
        },
    };
    Ok(AllocOptions {
        on_chip_memories,
        area_weight: opt_f64(alloc, &ctx, "area_weight")?.unwrap_or(defaults.area_weight),
        power_weight: opt_f64(alloc, &ctx, "power_weight")?.unwrap_or(defaults.power_weight),
        max_on_chip_ports,
        node_limit: opt_u64(alloc, &ctx, "node_limit")?.unwrap_or(defaults.node_limit),
        // Worker budgeting is the *server's*: one pool shared across
        // requests, split per request (see `crate::server`). A request
        // asks for workers at the top level, never per point.
        workers: 0,
        bound,
        off_chip_dominance: opt_bool(alloc, &ctx, "off_chip_dominance")?
            .unwrap_or(defaults.off_chip_dominance),
    })
}

/// Renders one streamed row (with its trailing newline): index, label,
/// and either the deterministic result fields or the error display.
pub fn render_row(index: usize, label: &str, result: &Result<CostReport, ExploreError>) -> String {
    let payload = match result {
        Ok(report) => (
            "ok",
            Json::Obj(vec![
                (
                    "on_chip_area_mm2".to_string(),
                    Json::Num(report.cost.on_chip_area_mm2),
                ),
                (
                    "on_chip_power_mw".to_string(),
                    Json::Num(report.cost.on_chip_power_mw),
                ),
                (
                    "off_chip_power_mw".to_string(),
                    Json::Num(report.cost.off_chip_power_mw),
                ),
                (
                    "macp_cycles".to_string(),
                    Json::Num(report.macp_cycles as f64),
                ),
                (
                    "on_chip_memories".to_string(),
                    Json::Num(report.organization.on_chip_count() as f64),
                ),
                (
                    "off_chip_memories".to_string(),
                    Json::Num(report.organization.off_chip_count() as f64),
                ),
            ]),
        ),
        Err(e) => ("err", Json::Str(e.to_string())),
    };
    let row = Json::Obj(vec![
        ("index".to_string(), Json::Num(index as f64)),
        ("label".to_string(), Json::Str(label.to_string())),
        (payload.0.to_string(), payload.1),
    ]);
    let mut out = row.encode();
    out.push('\n');
    out
}

/// Renders an error-response body: `{"error": "...", "status": N}`.
pub fn render_error(status: u16, message: &str) -> String {
    Json::Obj(vec![
        ("error".to_string(), Json::Str(message.to_string())),
        ("status".to_string(), Json::Num(status as f64)),
    ])
    .encode()
}

/// The offline reference for a request body: decodes it exactly like
/// the daemon and streams it through a **serial** engine (no cache),
/// returning the rendered rows. What the daemon serves must be
/// byte-identical to this for any worker count and cache state.
///
/// # Errors
///
/// Propagates JSON and wire decode failures as a rendered error string
/// (the same text a daemon response body would carry).
pub fn offline_rows(body: &[u8], limits: WireLimits) -> Result<Vec<String>, String> {
    let parsed = json::parse(body).map_err(|e| e.to_string())?;
    let request = decode_evaluate(&parsed, limits).map_err(|e| e.to_string())?;
    let lib = MemLibrary::default_07um();
    let engine = Engine::builder(&lib).workers(1).build();
    let points = request.design_points();
    let mut rows = Vec::with_capacity(points.len());
    engine.evaluate_stream(&points, |i, result| {
        rows.push(render_row(i, &points[i].label, &result));
    });
    Ok(rows)
}

/// The built-in demonstration batch the self-drive mode and the
/// scripted client send: a small two-group spec with a budget sweep
/// whose last point is infeasible (so error rows are exercised on every
/// smoke run). Kept as *text* so the decode path is part of everything
/// that uses it.
pub fn demo_request_text() -> String {
    r#"{
  "spec": {
    "name": "serve-demo",
    "cycle_budget": 100000,
    "real_time_seconds": 0.01,
    "groups": [
      {"name": "x", "words": 1024, "bitwidth": 8},
      {"name": "y", "words": 512, "bitwidth": 16},
      {"name": "frame", "words": 1048576, "bitwidth": 8, "placement": "off_chip"}
    ],
    "nests": [
      {
        "name": "l",
        "iterations": 10000,
        "accesses": [
          {"group": 0, "kind": "read"},
          {"group": 1, "kind": "write", "weight": 0.5},
          {"group": 2, "kind": "read"}
        ],
        "deps": [[0, 1]]
      }
    ]
  },
  "points": [
    {"label": "budget 100000", "cycle_budget": 100000},
    {"label": "budget 50000", "cycle_budget": 50000},
    {"label": "k=2", "cycle_budget": 100000, "alloc": {"on_chip_memories": 2}},
    {"label": "budget 10", "cycle_budget": 10}
  ]
}
"#
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_request_decodes_and_streams_offline() {
        let body = demo_request_text();
        let parsed = json::parse(body.as_bytes()).unwrap();
        let request = decode_evaluate(&parsed, WireLimits::default()).unwrap();
        assert_eq!(request.spec.basic_groups().len(), 3);
        assert_eq!(request.points.len(), 4);
        assert_eq!(request.points[2].1.alloc.on_chip_memories, Some(2));
        assert_eq!(request.workers, None);

        let rows = offline_rows(body.as_bytes(), WireLimits::default()).unwrap();
        assert_eq!(rows.len(), 4);
        assert!(rows[0].starts_with(r#"{"index":0,"label":"budget 100000","ok":{"#));
        assert!(rows[3].starts_with(r#"{"index":3,"label":"budget 10","err":"#));
        for row in &rows {
            assert!(row.ends_with('\n'));
            json::parse(row.trim_end().as_bytes()).unwrap();
        }
    }

    #[test]
    fn rows_are_worker_count_and_cache_independent() {
        let body = demo_request_text();
        let parsed = json::parse(body.as_bytes()).unwrap();
        let request = decode_evaluate(&parsed, WireLimits::default()).unwrap();
        let reference = offline_rows(body.as_bytes(), WireLimits::default()).unwrap();
        let lib = MemLibrary::default_07um();
        for workers in [2usize, 8] {
            let engine = Engine::builder(&lib).workers(workers).build();
            let points = request.design_points();
            let mut rows = Vec::new();
            engine.evaluate_stream(&points, |i, result| {
                rows.push(render_row(i, &points[i].label, &result));
            });
            assert_eq!(rows, reference, "workers={workers}");
        }
    }

    #[test]
    fn shape_errors_name_the_offending_member() {
        let limits = WireLimits::default();
        let cases = [
            (r#"[]"#, "expected a JSON object", 400u16),
            (r#"{"spec": {}, "points": []}"#, "spec.name", 400),
            (
                r#"{"spec": {"name": "x", "cycle_budget": 1, "groups": [], "nests": []}, "points": []}"#,
                "request.points",
                400,
            ),
            (
                r#"{"spec": {"name": "x", "cycle_budget": 1, "groups": [{"name": "g", "words": 1, "bitwidth": 8}], "nests": [{"name": "n", "iterations": 1, "accesses": [{"group": 7, "kind": "read"}]}]}, "points": [{}]}"#,
                "accesses[0].group",
                400,
            ),
            (
                r#"{"spec": {"name": "x", "cycle_budget": 1, "groups": [{"name": "g", "words": 0, "bitwidth": 8}], "nests": []}, "points": [{}]}"#,
                "invalid spec",
                422,
            ),
        ];
        for (body, needle, status) in cases {
            let parsed = json::parse(body.as_bytes()).unwrap();
            let err = decode_evaluate(&parsed, limits).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{body}: {err} missing {needle}"
            );
            assert_eq!(err.status(), status, "{body}");
        }
    }

    #[test]
    fn spec_text_decodes_to_the_same_spec_as_json() {
        let json_body = r#"{"spec": {"name": "wire", "cycle_budget": 100, "groups": [{"name": "g", "words": 64, "bitwidth": 8}], "nests": [{"name": "n", "iterations": 10, "accesses": [{"group": 0, "kind": "read"}]}]}, "points": [{}]}"#;
        let text_body = r#"{"spec_text": "spec v1 \"wire\" {\n  cycle_budget 100\n  group \"g\" {\n    words 64\n    bitwidth 8\n  }\n  nest \"n\" {\n    iterations 10\n    read \"g\"\n  }\n}\n", "points": [{}]}"#;
        let limits = WireLimits::default();
        let from_json =
            decode_evaluate(&json::parse(json_body.as_bytes()).unwrap(), limits).unwrap();
        let from_text =
            decode_evaluate(&json::parse(text_body.as_bytes()).unwrap(), limits).unwrap();
        assert_eq!(from_json.spec, from_text.spec);
        assert_eq!(
            from_json.spec.content_hash(),
            from_text.spec.content_hash(),
            "text-submitted jobs must share cache keys with JSON ones"
        );
    }

    #[test]
    fn spec_and_spec_text_are_mutually_exclusive() {
        let body = r#"{"spec": {"name": "x"}, "spec_text": "spec v1 \"x\" {}", "points": [{}]}"#;
        let err = decode_evaluate(
            &json::parse(body.as_bytes()).unwrap(),
            WireLimits::default(),
        )
        .unwrap_err();
        assert_eq!(err.status(), 400);
        assert!(err.to_string().contains("mutually exclusive"), "{err}");

        let body = r#"{"points": [{}]}"#;
        let err = decode_evaluate(
            &json::parse(body.as_bytes()).unwrap(),
            WireLimits::default(),
        )
        .unwrap_err();
        assert_eq!(err.status(), 400);
        assert!(
            err.to_string().contains("provide `spec` or `spec_text`"),
            "{err}"
        );
    }

    #[test]
    fn malformed_spec_text_maps_to_422_with_position() {
        let body = r#"{"spec_text": "spec v9 \"x\" {}", "points": [{}]}"#;
        let err = decode_evaluate(
            &json::parse(body.as_bytes()).unwrap(),
            WireLimits::default(),
        )
        .unwrap_err();
        assert_eq!(err.status(), 422);
        let msg = err.to_string();
        assert!(msg.contains("invalid spec_text"), "{msg}");
        assert!(msg.contains("line 1, column 6"), "{msg}");
        assert!(msg.contains("unsupported spec version `v9`"), "{msg}");
    }

    #[test]
    fn spec_text_group_cap_is_enforced_after_parsing() {
        let mut text = String::from("spec v1 \\\"big\\\" {\\n  cycle_budget 10\\n");
        for i in 0..3 {
            text.push_str(&format!(
                "  group \\\"g{i}\\\" {{\\n    words 4\\n    bitwidth 8\\n  }}\\n"
            ));
        }
        text.push_str("  nest \\\"n\\\" {\\n    iterations 1\\n    read \\\"g0\\\"\\n  }\\n}\\n");
        let body = format!(r#"{{"spec_text": "{text}", "points": [{{}}]}}"#);
        let limits = WireLimits {
            max_groups: 2,
            max_points: 2,
        };
        let err = decode_evaluate(&json::parse(body.as_bytes()).unwrap(), limits).unwrap_err();
        assert_eq!(err.status(), 413);
        assert!(err.to_string().contains("spec.groups"), "{err}");
    }

    #[test]
    fn limits_reject_oversized_shapes_with_413() {
        let limits = WireLimits {
            max_groups: 2,
            max_points: 2,
        };
        let mut groups = Vec::new();
        for i in 0..3 {
            groups.push(format!(r#"{{"name": "g{i}", "words": 1, "bitwidth": 8}}"#));
        }
        let body = format!(
            r#"{{"spec": {{"name": "x", "cycle_budget": 1, "groups": [{}], "nests": []}}, "points": [{{}}]}}"#,
            groups.join(",")
        );
        let err = decode_evaluate(&json::parse(body.as_bytes()).unwrap(), limits).unwrap_err();
        assert_eq!(err.status(), 413);
        assert!(err.to_string().contains("spec.groups"));

        let body = r#"{"spec": {"name": "x", "cycle_budget": 1, "groups": [{"name": "g", "words": 1, "bitwidth": 8}], "nests": []}, "points": [{}, {}, {}]}"#;
        let err = decode_evaluate(&json::parse(body.as_bytes()).unwrap(), limits).unwrap_err();
        assert_eq!(err.status(), 413);
        assert!(err.to_string().contains("request.points"));
    }

    #[test]
    fn alloc_options_decode_every_knob() {
        let body = r#"{
          "spec": {"name": "x", "cycle_budget": 100000, "groups": [{"name": "g", "words": 64, "bitwidth": 8}], "nests": [{"name": "n", "iterations": 10, "accesses": [{"group": 0, "kind": "write"}]}]},
          "points": [{"alloc": {"on_chip_memories": 3, "area_weight": 2.0, "power_weight": 0.5, "max_on_chip_ports": 2, "node_limit": 1000, "bound": "solo", "off_chip_dominance": false}}],
          "workers": 2
        }"#;
        let request = decode_evaluate(
            &json::parse(body.as_bytes()).unwrap(),
            WireLimits::default(),
        )
        .unwrap();
        let alloc = &request.points[0].1.alloc;
        assert_eq!(alloc.on_chip_memories, Some(3));
        assert_eq!(alloc.area_weight, 2.0);
        assert_eq!(alloc.power_weight, 0.5);
        assert_eq!(alloc.max_on_chip_ports, 2);
        assert_eq!(alloc.node_limit, 1000);
        assert_eq!(alloc.bound, BoundKind::Solo);
        assert!(!alloc.off_chip_dominance);
        assert_eq!(alloc.workers, 0, "wire never sets per-point workers");
        assert_eq!(request.workers, Some(2));
        assert_eq!(request.points[0].0, "point 0", "default label");
    }
}
