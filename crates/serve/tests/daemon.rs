//! Wire-layer tests against a real daemon on loopback: abusive inputs
//! must produce clean errors with the engine still serviceable, and
//! served rows must stay byte-identical to the offline reference under
//! concurrency and cache warmth.

use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use memx_core::cache::EvalCache;
use memx_memlib::MemLibrary;
use memx_serve::client;
use memx_serve::http::ReadLimits;
use memx_serve::server::{ServeConfig, Server};
use memx_serve::wire;

/// Boots a daemon on an ephemeral loopback port and returns its
/// address. The server thread is detached; the whole process exits with
/// the test binary.
fn boot(cfg: ServeConfig) -> SocketAddr {
    let server = Server::bind(MemLibrary::default_07um(), cfg).unwrap();
    let addr = server.local_addr();
    std::thread::spawn(move || server.run());
    addr
}

fn boot_default() -> SocketAddr {
    boot(ServeConfig::default())
}

/// The daemon must answer a well-formed request after the abuse; this
/// is the "engine still serviceable" check shared by the abuse tests.
fn assert_serviceable(addr: SocketAddr) {
    let demo = wire::demo_request_text();
    let response = client::post_evaluate(addr, &demo).unwrap();
    assert_eq!(response.status, 200);
    let offline = wire::offline_rows(demo.as_bytes(), Default::default()).unwrap();
    let served: Vec<String> = response
        .rows
        .iter()
        .map(|r| String::from_utf8(r.clone()).unwrap())
        .collect();
    assert_eq!(served, offline);
}

fn raw_request(addr: SocketAddr, payload: &[u8]) -> TcpStream {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    (&stream).write_all(payload).unwrap();
    stream
}

#[test]
fn malformed_json_gets_400_and_engine_stays_serviceable() {
    let addr = boot_default();
    let body = "{not json";
    let head = format!(
        "POST /v1/evaluate HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    let stream = raw_request(addr, head.as_bytes());
    let response = client::read_response(&mut BufReader::new(stream)).unwrap();
    assert_eq!(response.status, 400);
    let text = String::from_utf8(response.body).unwrap();
    assert!(text.contains("\"status\":400"), "{text}");
    assert_serviceable(addr);
}

#[test]
fn oversized_body_gets_413() {
    let addr = boot(ServeConfig {
        read_limits: ReadLimits { max_body_bytes: 64 },
        ..ServeConfig::default()
    });
    let body = "x".repeat(65);
    let head = format!(
        "POST /v1/evaluate HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    let stream = raw_request(addr, head.as_bytes());
    let response = client::read_response(&mut BufReader::new(stream)).unwrap();
    assert_eq!(response.status, 413);
    // The demo body is itself over this daemon's 64-byte cap, so probe
    // serviceability with a request that fits.
    let stats = client::get(addr, "/v1/stats").unwrap();
    assert_eq!(stats.status, 200);
}

#[test]
fn truncated_chunked_body_is_dropped_cleanly() {
    let addr = boot(ServeConfig {
        // Short timeout so the daemon gives up on the stalled body
        // quickly instead of holding the handler for the default 10s.
        read_timeout: Some(Duration::from_millis(300)),
        ..ServeConfig::default()
    });
    // Declare a chunk, send half of it, then close.
    let head = "POST /v1/evaluate HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\nff\r\n{\"spec\":";
    let stream = raw_request(addr, head.as_bytes());
    drop(stream);
    assert_serviceable(addr);
}

#[test]
fn mid_stream_disconnect_leaves_daemon_serviceable() {
    let addr = boot_default();
    let demo = wire::demo_request_text();
    let head = format!(
        "POST /v1/evaluate HTTP/1.1\r\ncontent-length: {}\r\n\r\n{demo}",
        demo.len()
    );
    let mut stream = raw_request(addr, head.as_bytes());
    // Read just the status line, then vanish mid-stream.
    let mut first = [0u8; 16];
    stream.read_exact(&mut first).unwrap();
    assert!(first.starts_with(b"HTTP/1.1 200"));
    drop(stream);
    assert_serviceable(addr);
}

#[test]
fn served_rows_match_offline_cold_and_warm_with_cache() {
    let dir = std::env::temp_dir().join(format!("memx-serve-test-{}", std::process::id()));
    let cache = Arc::new(EvalCache::open(&dir).unwrap());
    let addr = boot(ServeConfig {
        cache: Some(Arc::clone(&cache)),
        ..ServeConfig::default()
    });
    let demo = wire::demo_request_text();
    let offline = wire::offline_rows(demo.as_bytes(), Default::default()).unwrap();
    for pass in ["cold", "warm"] {
        let response = client::post_evaluate(addr, &demo).unwrap();
        assert_eq!(response.status, 200, "{pass}");
        let served: Vec<String> = response
            .rows
            .iter()
            .map(|r| String::from_utf8(r.clone()).unwrap())
            .collect();
        assert_eq!(served, offline, "{pass}");
        assert_eq!(
            response.field("x-memx-rows"),
            Some(offline.len().to_string().as_str()),
            "{pass}"
        );
    }
    // The warm pass must have hit the cache.
    let stats = cache.stats();
    assert!(
        stats.scbd_hits + stats.alloc_hits + stats.blocks_hits > 0,
        "no cache hits after a warm pass"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_clients_each_get_byte_identical_rows() {
    let addr = boot_default();
    let demo = wire::demo_request_text();
    let offline = wire::offline_rows(demo.as_bytes(), Default::default()).unwrap();
    let handles: Vec<_> = (0..3)
        .map(|_| {
            let demo = demo.clone();
            std::thread::spawn(move || client::post_evaluate(addr, &demo).unwrap())
        })
        .collect();
    for handle in handles {
        let response = handle.join().unwrap();
        assert_eq!(response.status, 200);
        let served: Vec<String> = response
            .rows
            .iter()
            .map(|r| String::from_utf8(r.clone()).unwrap())
            .collect();
        assert_eq!(served, offline);
    }
}

#[test]
fn saturated_daemon_sheds_with_503_and_retry_after() {
    let addr = boot(ServeConfig {
        handlers: 1,
        queue_depth: 0,
        // Generous: conn1 must stay parked on its unfinished body for
        // the whole test.
        read_timeout: Some(Duration::from_secs(60)),
        ..ServeConfig::default()
    });
    // conn1 occupies the only handler: headers complete, body withheld.
    let hold = raw_request(
        addr,
        b"POST /v1/evaluate HTTP/1.1\r\ncontent-length: 10\r\n\r\n",
    );
    // Give the accept loop time to hand conn1 to the handler.
    std::thread::sleep(Duration::from_millis(200));
    // conn2 must be shed deterministically: active == handlers + 0.
    let shed = raw_request(addr, b"GET /v1/stats HTTP/1.1\r\n\r\n");
    let response = client::read_response(&mut BufReader::new(shed)).unwrap();
    assert_eq!(response.status, 503);
    let retry: u64 = response.field("retry-after").unwrap().parse().unwrap();
    assert!(retry >= 1);
    // Releasing conn1 frees the handler; the daemon serves again.
    drop(hold);
    std::thread::sleep(Duration::from_millis(200));
    assert_serviceable(addr);

    let stats = client::get(addr, "/v1/stats").unwrap();
    assert_eq!(stats.status, 200);
    let parsed = memx_serve::json::parse(&stats.body).unwrap();
    assert!(parsed.get("rejected_requests").unwrap().as_u64().unwrap() >= 1);
}

#[test]
fn unknown_paths_and_methods_get_404_and_405() {
    let addr = boot_default();
    let missing = client::get(addr, "/nope").unwrap();
    assert_eq!(missing.status, 404);
    let wrong_method = client::get(addr, "/v1/evaluate").unwrap();
    assert_eq!(wrong_method.status, 405);
}

#[test]
fn stats_counts_requests_and_rows() {
    let addr = boot_default();
    let demo = wire::demo_request_text();
    let rows = wire::offline_rows(demo.as_bytes(), Default::default())
        .unwrap()
        .len() as u64;
    client::post_evaluate(addr, &demo).unwrap();
    client::post_evaluate(addr, &demo).unwrap();
    // The counters are noted just after the response finishes; give the
    // handler a beat before reading them.
    std::thread::sleep(Duration::from_millis(200));
    let stats = client::get(addr, "/v1/stats").unwrap();
    let parsed = memx_serve::json::parse(&stats.body).unwrap();
    assert_eq!(parsed.get("requests").unwrap().as_u64().unwrap(), 2);
    assert_eq!(
        parsed.get("rows_streamed").unwrap().as_u64().unwrap(),
        2 * rows
    );
}
