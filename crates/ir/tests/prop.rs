//! Property-based tests on the specification IR.

use memx_ir::{
    parse_spec, print_spec, specgen, AccessKind, AppSpec, AppSpecBuilder, BasicGroupId, LoopNestId,
};
use proptest::prelude::*;

/// A randomly generated, always-valid specification.
fn arb_spec() -> impl Strategy<Value = AppSpec> {
    // groups: 1..6 of (words, width); nests: 1..5 of (iterations,
    // accesses as (group index, kind, weight), chain-shaped deps).
    let group = (1u64..10_000, 1u32..24);
    let access = (0usize..6, prop::bool::ANY, 0.01f64..=1.0);
    let nest = (1u64..1_000, prop::collection::vec(access, 1..8));
    (
        prop::collection::vec(group, 1..6),
        prop::collection::vec(nest, 1..5),
    )
        .prop_map(|(groups, nests)| {
            let mut b = AppSpecBuilder::new("prop");
            let ids: Vec<BasicGroupId> = groups
                .iter()
                .enumerate()
                .map(|(i, &(words, width))| {
                    b.basic_group(format!("g{i}"), words, width)
                        .expect("group params are in range")
                })
                .collect();
            for (n, (iters, accesses)) in nests.iter().enumerate() {
                let nid = b.loop_nest(format!("n{n}"), *iters).expect("iters > 0");
                let mut prev = None;
                for &(gidx, write, weight) in accesses {
                    let kind = if write {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    };
                    let g = ids[gidx % ids.len()];
                    let a = b
                        .access_weighted(nid, g, kind, weight)
                        .expect("weight in range");
                    if let Some(p) = prev {
                        b.depend(nid, p, a).expect("chain edges are acyclic");
                    }
                    prev = Some(a);
                }
            }
            // Chain deps: min cycles = sum of body lengths x iterations;
            // set a budget that always suffices.
            let budget: u64 = nests
                .iter()
                .map(|(iters, accesses)| iters * accesses.len() as u64)
                .sum();
            b.cycle_budget(budget.max(1));
            b.build().expect("construction is valid")
        })
}

proptest! {
    #[test]
    fn min_cycles_bounded_by_total_statements(spec in arb_spec()) {
        let statements: u64 = spec
            .loop_nests()
            .iter()
            .map(|n| n.iterations() * n.accesses().len() as u64)
            .sum();
        prop_assert!(spec.min_cycles() <= statements);
    }

    #[test]
    fn to_builder_round_trips(spec in arb_spec()) {
        let rebuilt = spec.to_builder().build().expect("round trip builds");
        prop_assert_eq!(&spec, &rebuilt);
    }

    #[test]
    fn total_accesses_match_per_nest_sums(spec in arb_spec()) {
        for g in spec.basic_groups() {
            let (r, w) = spec.total_accesses(g.id());
            let sum: f64 = spec
                .loop_nests()
                .iter()
                .map(|n| {
                    let (nr, nw) = n.access_counts(g.id());
                    nr + nw
                })
                .sum();
            prop_assert!((r + w - sum).abs() < 1e-9);
        }
    }

    #[test]
    fn critical_path_at_most_body_length(spec in arb_spec()) {
        for nest in spec.loop_nests() {
            prop_assert!(nest.critical_path_len() <= nest.accesses().len() as u64);
        }
    }

    #[test]
    fn removing_a_groups_accesses_keeps_spec_valid(spec in arb_spec(), pick in 0usize..6) {
        let g = BasicGroupId::from_index(pick % spec.basic_groups().len());
        let mut builder = spec.to_builder();
        builder.remove_group_accesses(g);
        let trimmed = builder.build().expect("trimmed spec builds");
        trimmed.validate().expect("trimmed spec is consistent");
        let (r, w) = trimmed.total_accesses(g);
        prop_assert_eq!((r, w), (0.0, 0.0));
    }

    #[test]
    fn validate_accepts_all_built_specs(spec in arb_spec()) {
        prop_assert!(spec.validate().is_ok());
    }

    // The textual front-end's contract: printing is canonical and
    // parse∘print is the identity, so the content hash of a spec
    // recovered from text equals the hash of the equivalent
    // Rust-built spec (which is what keys the evaluation cache).
    #[test]
    fn text_round_trip_is_identity(spec in arb_spec()) {
        let text = print_spec(&spec);
        let reparsed = parse_spec(&text).expect("printed specs parse");
        prop_assert_eq!(&spec, &reparsed);
        prop_assert_eq!(spec.content_hash(), reparsed.content_hash());
        // The canonical form is a fixed point of print∘parse.
        prop_assert_eq!(text, print_spec(&reparsed));
    }

    // Same identity over the seeded generator, which (unlike
    // `arb_spec`) also draws pinned placements, port floors and burst
    // accesses — the full printable surface.
    #[test]
    fn generated_specs_round_trip_through_text(seed in 0u64..1_000_000, index in 0u64..4) {
        let spec = specgen::generate(seed, index).expect("specgen plans are valid");
        spec.validate().expect("generated specs are consistent");
        let text = print_spec(&spec);
        let reparsed = parse_spec(&text).expect("printed specs parse");
        prop_assert_eq!(&spec, &reparsed);
        prop_assert_eq!(spec.content_hash(), reparsed.content_hash());
    }

    #[test]
    fn ids_are_dense_and_ordered(spec in arb_spec()) {
        for (i, g) in spec.basic_groups().iter().enumerate() {
            prop_assert_eq!(g.id().index(), i);
        }
        for (i, n) in spec.loop_nests().iter().enumerate() {
            prop_assert_eq!(n.id(), LoopNestId::from_index(i));
        }
    }
}
