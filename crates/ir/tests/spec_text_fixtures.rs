//! Parser failure-mode fixtures: each malformed spec file produces the
//! documented diagnostic — exact line and column pinned — and never a
//! panic. Mirrors the seeded-fixture style of the `memx-lint` suite.

use memx_ir::{parse_spec, print_spec};

const UNKNOWN_VERSION: &str = include_str!("fixtures/unknown_version.mxspec");
const DUPLICATE_FIELD: &str = include_str!("fixtures/duplicate_field.mxspec");
const TRUNCATED: &str = include_str!("fixtures/truncated.mxspec");
const MALFORMED: &str = include_str!("fixtures/malformed.mxspec");
const VALID_MINIMAL: &str = include_str!("fixtures/valid_minimal.mxspec");

#[test]
fn unknown_version_fixture_names_the_supported_revision() {
    let e = parse_spec(UNKNOWN_VERSION).unwrap_err();
    assert_eq!((e.line(), e.column()), (2, 6), "{e}");
    assert_eq!(
        e.message(),
        "unsupported spec version `v3`: this build reads v1"
    );
}

#[test]
fn duplicate_field_fixture_points_at_the_second_occurrence() {
    let e = parse_spec(DUPLICATE_FIELD).unwrap_err();
    assert_eq!((e.line(), e.column()), (3, 3), "{e}");
    assert_eq!(e.message(), "duplicate `cycle_budget` in spec `dup`");
}

#[test]
fn truncated_fixture_reports_end_of_input_in_the_open_block() {
    let e = parse_spec(TRUNCATED).unwrap_err();
    assert_eq!((e.line(), e.column()), (5, 1), "{e}");
    assert_eq!(
        e.message(),
        "expected a group field or `}`, found end of input"
    );
}

#[test]
fn malformed_fixture_pins_the_stray_character() {
    let e = parse_spec(MALFORMED).unwrap_err();
    assert_eq!((e.line(), e.column()), (2, 20), "{e}");
    assert_eq!(e.message(), "unexpected character `@`");
}

#[test]
fn valid_fixture_parses_and_round_trips() {
    let spec = parse_spec(VALID_MINIMAL).expect("control fixture parses");
    assert_eq!(spec.name(), "minimal");
    let reparsed = parse_spec(&print_spec(&spec)).expect("canonical form parses");
    assert_eq!(spec, reparsed);
    assert_eq!(spec.content_hash(), reparsed.content_hash());
}

// No malformed input may escape the diagnostic path: every prefix of
// every fixture either parses or returns a positioned error. This is a
// poor man's fuzz pass over realistic truncation points.
#[test]
fn every_fixture_prefix_errors_gracefully() {
    for fixture in [
        UNKNOWN_VERSION,
        DUPLICATE_FIELD,
        TRUNCATED,
        MALFORMED,
        VALID_MINIMAL,
    ] {
        for end in 0..=fixture.len() {
            if !fixture.is_char_boundary(end) {
                continue;
            }
            if let Err(e) = parse_spec(&fixture[..end]) {
                assert!(e.line() >= 1 && e.column() >= 1, "unpositioned: {e}");
                assert!(!e.message().is_empty());
            }
        }
    }
}
