//! Executes the grammar reference: every fenced ` ```mxspec ` block in
//! `docs/spec_format.md` must parse verbatim and round-trip through
//! the canonical printer. A documentation edit that breaks an example
//! — or deletes the examples — fails this suite, so the reference
//! cannot drift from the parser.

use memx_ir::{parse_spec, print_spec};

const SPEC_FORMAT_MD: &str = include_str!("../../../docs/spec_format.md");

/// The bodies of all ` ```mxspec ` fences, in document order.
fn mxspec_blocks(doc: &str) -> Vec<String> {
    let mut blocks = Vec::new();
    let mut current: Option<String> = None;
    for line in doc.lines() {
        match &mut current {
            None if line.trim() == "```mxspec" => current = Some(String::new()),
            None => {}
            Some(body) => {
                if line.trim() == "```" {
                    blocks.push(current.take().expect("fence is open"));
                } else {
                    body.push_str(line);
                    body.push('\n');
                }
            }
        }
    }
    assert!(current.is_none(), "unterminated ```mxspec fence");
    blocks
}

#[test]
fn every_documented_example_parses_and_round_trips() {
    let blocks = mxspec_blocks(SPEC_FORMAT_MD);
    assert!(
        blocks.len() >= 3,
        "docs/spec_format.md must keep at least three worked examples, found {}",
        blocks.len()
    );
    for (i, text) in blocks.iter().enumerate() {
        let spec = parse_spec(text)
            .unwrap_or_else(|e| panic!("docs example {i} does not parse: {e}\n{text}"));
        let canonical = print_spec(&spec);
        let reparsed = parse_spec(&canonical)
            .unwrap_or_else(|e| panic!("canonical form of docs example {i} does not parse: {e}"));
        assert_eq!(spec, reparsed, "docs example {i} is not round-trip stable");
        assert_eq!(spec.content_hash(), reparsed.content_hash());
    }
}

#[test]
fn the_documented_examples_are_the_expected_workloads() {
    let blocks = mxspec_blocks(SPEC_FORMAT_MD);
    let names: Vec<String> = blocks
        .iter()
        .map(|t| parse_spec(t).expect("examples parse").name().to_string())
        .collect();
    for wanted in ["minimal", "fir", "histogram"] {
        assert!(
            names.iter().any(|n| n == wanted),
            "docs example `{wanted}` missing (found {names:?})"
        );
    }
}

// The corpus documentation must keep one section per shipped corpus
// entry — a drift gate between corpus/ and docs/corpus.md.
#[test]
fn corpus_doc_covers_every_shipped_entry() {
    let corpus_md = include_str!("../../../docs/corpus.md");
    for entry in [
        "motion_estimation",
        "wavelet_spiht",
        "conv_tiling",
        "cavity_detector",
    ] {
        assert!(
            corpus_md.contains(&format!("## `{entry}`")),
            "docs/corpus.md lacks a section for corpus entry `{entry}`"
        );
    }
}
