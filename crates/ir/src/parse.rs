//! Recursive-descent parser for the textual specification format.
//!
//! Mirrors the registry-free style of the serve daemon's JSON reader:
//! a hand-rolled lexer over the raw characters, a cursor-based parser,
//! and positioned diagnostics ([`SpecTextError`]) naming the offending
//! field — never a panic, whatever the input. Every declaration funnels
//! through [`AppSpecBuilder`], so a parsed spec carries exactly the
//! invariants (and content hash) of a Rust-built one; builder
//! rejections are re-positioned onto the token that introduced the
//! offending entity.
//!
//! The grammar is small and flat (two block levels, no recursion into
//! user-controlled depth), so parsing is O(input) with no depth limit
//! needed. See `docs/spec_format.md` for the grammar reference.

use crate::spec_text::{SpecTextError, SPEC_TEXT_VERSION};
use crate::{AccessId, AccessKind, AppSpec, AppSpecBuilder, Placement};

/// Parses one textual specification into a validated [`AppSpec`].
///
/// # Errors
///
/// Returns a [`SpecTextError`] with the 1-based line/column of the
/// first offending token: lexical errors (unterminated strings, stray
/// characters), grammar errors (unknown fields, missing or duplicate
/// declarations, unsupported versions), and semantic rejections from
/// [`AppSpecBuilder`] (duplicate group names, cyclic dependencies,
/// infeasible budgets, ...) re-positioned onto the declaration that
/// caused them.
pub fn parse_spec(text: &str) -> Result<AppSpec, SpecTextError> {
    let tokens = lex(text)?;
    // The lexer always appends an EOF sentinel; clone it as the
    // cursor's fallback so the parser is total without indexing.
    let eof = tokens.last().cloned().unwrap_or(Token {
        kind: Tok::Eof,
        line: 1,
        column: 1,
    });
    Parser {
        tokens,
        pos: 0,
        eof,
    }
    .spec()
}

/// One lexed token with its 1-based position.
#[derive(Debug, Clone, PartialEq)]
struct Token {
    kind: Tok,
    line: u32,
    column: u32,
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    /// A bare keyword/identifier (`spec`, `group`, `v1`, ...).
    Word(String),
    /// A quoted string literal, unescaped.
    Str(String),
    /// A number, kept as raw text until the grammar knows whether an
    /// integer or a real is expected.
    Num(String),
    LBrace,
    RBrace,
    Arrow,
    Eof,
}

impl Tok {
    /// Short description for "expected X, found Y" diagnostics.
    fn describe(&self) -> String {
        match self {
            Tok::Word(w) => format!("`{w}`"),
            Tok::Str(_) => "a string".to_string(),
            Tok::Num(n) => format!("number `{n}`"),
            Tok::LBrace => "`{`".to_string(),
            Tok::RBrace => "`}`".to_string(),
            Tok::Arrow => "`->`".to_string(),
            Tok::Eof => "end of input".to_string(),
        }
    }
}

fn err(line: u32, column: u32, message: impl Into<String>) -> SpecTextError {
    SpecTextError::new(line, column, message)
}

fn lex(text: &str) -> Result<Vec<Token>, SpecTextError> {
    let mut tokens = Vec::new();
    let mut chars = text.chars().peekable();
    let mut line: u32 = 1;
    let mut column: u32 = 1;
    macro_rules! bump {
        () => {{
            let c = chars.next();
            if c == Some('\n') {
                line += 1;
                column = 1;
            } else if c.is_some() {
                column += 1;
            }
            c
        }};
    }
    loop {
        let (tok_line, tok_column) = (line, column);
        let c = match chars.peek().copied() {
            None => break,
            Some(c) => c,
        };
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump!();
            }
            '#' => {
                while let Some(&c) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    bump!();
                }
            }
            '{' => {
                bump!();
                tokens.push(Token {
                    kind: Tok::LBrace,
                    line: tok_line,
                    column: tok_column,
                });
            }
            '}' => {
                bump!();
                tokens.push(Token {
                    kind: Tok::RBrace,
                    line: tok_line,
                    column: tok_column,
                });
            }
            '-' => {
                bump!();
                match chars.peek() {
                    Some('>') => {
                        bump!();
                        tokens.push(Token {
                            kind: Tok::Arrow,
                            line: tok_line,
                            column: tok_column,
                        });
                    }
                    Some(d) if d.is_ascii_digit() => {
                        let mut raw = String::from('-');
                        lex_number_tail(&mut raw, &mut chars, &mut line, &mut column);
                        tokens.push(Token {
                            kind: Tok::Num(raw),
                            line: tok_line,
                            column: tok_column,
                        });
                    }
                    _ => {
                        return Err(err(
                            tok_line,
                            tok_column,
                            "unexpected `-`: expected `->` or a number",
                        ))
                    }
                }
            }
            '"' => {
                bump!();
                let mut s = String::new();
                loop {
                    match bump!() {
                        None | Some('\n') => {
                            return Err(err(tok_line, tok_column, "unterminated string literal"))
                        }
                        Some('"') => break,
                        Some('\\') => match bump!() {
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some('r') => s.push('\r'),
                            other => {
                                let what = other
                                    .map(|c| format!("`\\{c}`"))
                                    .unwrap_or_else(|| "end of input".to_string());
                                return Err(err(
                                    tok_line,
                                    tok_column,
                                    format!(
                                        "unknown escape {what} in string literal \
                                         (supported: \\\" \\\\ \\n \\t \\r)"
                                    ),
                                ));
                            }
                        },
                        Some(c) => s.push(c),
                    }
                }
                tokens.push(Token {
                    kind: Tok::Str(s),
                    line: tok_line,
                    column: tok_column,
                });
            }
            c if c.is_ascii_digit() => {
                let mut raw = String::new();
                lex_number_tail(&mut raw, &mut chars, &mut line, &mut column);
                tokens.push(Token {
                    kind: Tok::Num(raw),
                    line: tok_line,
                    column: tok_column,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut w = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        w.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: Tok::Word(w),
                    line: tok_line,
                    column: tok_column,
                });
            }
            other => {
                return Err(err(
                    tok_line,
                    tok_column,
                    format!("unexpected character `{other}`"),
                ))
            }
        }
    }
    tokens.push(Token {
        kind: Tok::Eof,
        line,
        column,
    });
    Ok(tokens)
}

/// Consumes digits, an optional fraction and an optional exponent into
/// `raw`. The leading sign/digit handling is the caller's.
fn lex_number_tail(
    raw: &mut String,
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    _line: &mut u32,
    column: &mut u32,
) {
    // Number characters never include a newline, so only the column
    // advances here.
    fn take_digits(
        raw: &mut String,
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
        column: &mut u32,
    ) {
        while let Some(&c) = chars.peek() {
            if c.is_ascii_digit() {
                raw.push(c);
                chars.next();
                *column += 1;
            } else {
                break;
            }
        }
    }
    take_digits(raw, chars, column);
    if chars.peek() == Some(&'.') {
        raw.push('.');
        chars.next();
        *column += 1;
        take_digits(raw, chars, column);
    }
    if matches!(chars.peek(), Some('e') | Some('E')) {
        raw.push('e');
        chars.next();
        *column += 1;
        if matches!(chars.peek(), Some('+') | Some('-')) {
            if chars.peek() == Some(&'-') {
                raw.push('-');
            }
            chars.next();
            *column += 1;
        }
        take_digits(raw, chars, column);
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// The EOF sentinel, handed out whenever the cursor is past the
    /// end (repeated `next()` on a truncated input parks here).
    eof: Token,
}

impl Parser {
    fn peek(&self) -> &Token {
        self.tokens.get(self.pos).unwrap_or(&self.eof)
    }

    fn next(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect_word(&mut self, want: &str) -> Result<Token, SpecTextError> {
        let t = self.next();
        match &t.kind {
            Tok::Word(w) if w == want => Ok(t),
            other => Err(err(
                t.line,
                t.column,
                format!("expected `{want}`, found {}", other.describe()),
            )),
        }
    }

    fn expect_lbrace(&mut self, what: &str) -> Result<(), SpecTextError> {
        let t = self.next();
        match t.kind {
            Tok::LBrace => Ok(()),
            other => Err(err(
                t.line,
                t.column,
                format!(
                    "expected `{{` to open the {what} block, found {}",
                    other.describe()
                ),
            )),
        }
    }

    fn string(&mut self, what: &str) -> Result<(String, Token), SpecTextError> {
        let t = self.next();
        match &t.kind {
            Tok::Str(s) => Ok((s.clone(), t.clone())),
            other => Err(err(
                t.line,
                t.column,
                format!("expected a quoted {what}, found {}", other.describe()),
            )),
        }
    }

    fn integer(&mut self, field: &str) -> Result<(u64, Token), SpecTextError> {
        let t = self.next();
        match &t.kind {
            Tok::Num(raw) => match raw.parse::<u64>() {
                Ok(v) => Ok((v, t.clone())),
                Err(_) => Err(err(
                    t.line,
                    t.column,
                    format!("`{field}` expects a non-negative integer, found `{raw}`"),
                )),
            },
            other => Err(err(
                t.line,
                t.column,
                format!(
                    "`{field}` expects a non-negative integer, found {}",
                    other.describe()
                ),
            )),
        }
    }

    fn number(&mut self, field: &str) -> Result<(f64, Token), SpecTextError> {
        let t = self.next();
        match &t.kind {
            Tok::Num(raw) => match raw.parse::<f64>() {
                Ok(v) => Ok((v, t.clone())),
                Err(_) => Err(err(
                    t.line,
                    t.column,
                    format!("`{field}` expects a number, found `{raw}`"),
                )),
            },
            other => Err(err(
                t.line,
                t.column,
                format!("`{field}` expects a number, found {}", other.describe()),
            )),
        }
    }

    fn no_duplicate(
        &self,
        seen: bool,
        field: &str,
        scope: &str,
        at: &Token,
    ) -> Result<(), SpecTextError> {
        if seen {
            Err(err(
                at.line,
                at.column,
                format!("duplicate `{field}` in {scope}"),
            ))
        } else {
            Ok(())
        }
    }

    fn spec(&mut self) -> Result<AppSpec, SpecTextError> {
        self.expect_word("spec")?;
        let vt = self.next();
        match &vt.kind {
            Tok::Word(v) if *v == format!("v{SPEC_TEXT_VERSION}") => {}
            Tok::Word(v) if v.len() > 1 && v.starts_with('v') => {
                return Err(err(
                    vt.line,
                    vt.column,
                    format!(
                        "unsupported spec version `{v}`: this build reads v{SPEC_TEXT_VERSION}"
                    ),
                ))
            }
            other => {
                return Err(err(
                    vt.line,
                    vt.column,
                    format!(
                        "expected the format version `v{SPEC_TEXT_VERSION}`, found {}",
                        other.describe()
                    ),
                ))
            }
        }
        let (name, _) = self.string("spec name")?;
        let scope = format!("spec `{name}`");
        let mut builder = AppSpecBuilder::new(name);
        self.expect_lbrace("spec")?;

        let mut budget: Option<Token> = None;
        let mut real_time: Option<Token> = None;
        let close = loop {
            let t = self.next();
            match &t.kind {
                Tok::RBrace => break t,
                Tok::Word(w) => match w.as_str() {
                    "cycle_budget" => {
                        self.no_duplicate(budget.is_some(), "cycle_budget", &scope, &t)?;
                        let (v, vt) = self.integer("cycle_budget")?;
                        builder.cycle_budget(v);
                        budget = Some(vt);
                    }
                    "real_time_seconds" => {
                        self.no_duplicate(real_time.is_some(), "real_time_seconds", &scope, &t)?;
                        let (v, vt) = self.number("real_time_seconds")?;
                        if !(v.is_finite() && v > 0.0) {
                            return Err(err(
                                vt.line,
                                vt.column,
                                "`real_time_seconds` expects a positive real",
                            ));
                        }
                        builder.real_time_seconds(v);
                        real_time = Some(vt);
                    }
                    "group" => self.group(&mut builder)?,
                    "nest" => self.nest(&mut builder)?,
                    other => {
                        return Err(err(
                            t.line,
                            t.column,
                            format!(
                                "unknown spec field `{other}`: expected `cycle_budget`, \
                                 `real_time_seconds`, `group` or `nest`"
                            ),
                        ))
                    }
                },
                other => {
                    return Err(err(
                        t.line,
                        t.column,
                        format!("expected a spec field or `}}`, found {}", other.describe()),
                    ))
                }
            }
        };
        let t = self.next();
        if t.kind != Tok::Eof {
            return Err(err(
                t.line,
                t.column,
                format!(
                    "expected end of input after the spec block, found {}",
                    t.kind.describe()
                ),
            ));
        }
        let budget = match budget {
            Some(b) => b,
            None => {
                return Err(err(
                    close.line,
                    close.column,
                    format!("{scope}: missing `cycle_budget`"),
                ))
            }
        };
        builder
            .build()
            .map_err(|e| err(budget.line, budget.column, e.to_string()))
    }

    fn group(&mut self, builder: &mut AppSpecBuilder) -> Result<(), SpecTextError> {
        let (name, name_tok) = self.string("group name")?;
        let scope = format!("group `{name}`");
        self.expect_lbrace("group")?;
        let mut words: Option<u64> = None;
        let mut bitwidth: Option<u64> = None;
        let mut placement: Option<Placement> = None;
        let mut min_ports: Option<u64> = None;
        let close = loop {
            let t = self.next();
            match &t.kind {
                Tok::RBrace => break t,
                Tok::Word(w) => match w.as_str() {
                    "words" => {
                        self.no_duplicate(words.is_some(), "words", &scope, &t)?;
                        words = Some(self.integer("words")?.0);
                    }
                    "bitwidth" => {
                        self.no_duplicate(bitwidth.is_some(), "bitwidth", &scope, &t)?;
                        bitwidth = Some(self.integer("bitwidth")?.0);
                    }
                    "placement" => {
                        self.no_duplicate(placement.is_some(), "placement", &scope, &t)?;
                        let pt = self.next();
                        placement = Some(match &pt.kind {
                            Tok::Word(p) if p == "any" => Placement::Any,
                            Tok::Word(p) if p == "on_chip" => Placement::OnChip,
                            Tok::Word(p) if p == "off_chip" => Placement::OffChip,
                            other => {
                                return Err(err(
                                    pt.line,
                                    pt.column,
                                    format!(
                                        "`placement` expects `any`, `on_chip` or `off_chip`, \
                                         found {}",
                                        other.describe()
                                    ),
                                ))
                            }
                        });
                    }
                    "min_ports" => {
                        self.no_duplicate(min_ports.is_some(), "min_ports", &scope, &t)?;
                        min_ports = Some(self.integer("min_ports")?.0);
                    }
                    other => {
                        return Err(err(
                            t.line,
                            t.column,
                            format!(
                                "unknown group field `{other}`: expected `words`, `bitwidth`, \
                                 `placement` or `min_ports`"
                            ),
                        ))
                    }
                },
                other => {
                    return Err(err(
                        t.line,
                        t.column,
                        format!("expected a group field or `}}`, found {}", other.describe()),
                    ))
                }
            }
        };
        let words = words.ok_or_else(|| {
            err(
                close.line,
                close.column,
                format!("{scope}: missing `words`"),
            )
        })?;
        let bitwidth = bitwidth.ok_or_else(|| {
            err(
                close.line,
                close.column,
                format!("{scope}: missing `bitwidth`"),
            )
        })?;
        let bitwidth = u32::try_from(bitwidth).map_err(|_| {
            err(
                close.line,
                close.column,
                format!("{scope}: `bitwidth` out of range"),
            )
        })?;
        let min_ports = min_ports.unwrap_or(1);
        let min_ports = u32::try_from(min_ports).map_err(|_| {
            err(
                close.line,
                close.column,
                format!("{scope}: `min_ports` out of range"),
            )
        })?;
        builder
            .basic_group_full(
                name,
                words,
                bitwidth,
                placement.unwrap_or(Placement::Any),
                min_ports,
            )
            .map(|_| ())
            .map_err(|e| err(name_tok.line, name_tok.column, e.to_string()))
    }

    fn nest(&mut self, builder: &mut AppSpecBuilder) -> Result<(), SpecTextError> {
        let (name, _) = self.string("nest name")?;
        let scope = format!("nest `{name}`");
        self.expect_lbrace("nest")?;
        // The nest must exist before accesses are added, but its
        // iteration count arrives as a field inside the block: declare
        // with a placeholder of 1 and rebuild at the close if needed?
        // No — the builder validates iterations at declaration, so the
        // parser instead queues accesses/deps until the block closes.
        let mut iterations: Option<(u64, Token)> = None;
        // (kind, group name token, group name, weight, burst, keyword token)
        struct PendingAccess {
            kind: AccessKind,
            group: String,
            group_tok: Token,
            weight: f64,
            burst: bool,
        }
        let mut accesses: Vec<PendingAccess> = Vec::new();
        // (from, to, position)
        let mut deps: Vec<(u64, u64, Token)> = Vec::new();
        let close = loop {
            let t = self.next();
            match &t.kind {
                Tok::RBrace => break t,
                Tok::Word(w) => match w.as_str() {
                    "iterations" => {
                        self.no_duplicate(iterations.is_some(), "iterations", &scope, &t)?;
                        iterations = Some(self.integer("iterations")?);
                    }
                    "read" | "write" => {
                        let kind = if w == "read" {
                            AccessKind::Read
                        } else {
                            AccessKind::Write
                        };
                        let (group, group_tok) = self.string("group name")?;
                        let mut weight: Option<f64> = None;
                        let mut burst = false;
                        loop {
                            match &self.peek().kind {
                                Tok::Word(o) if o == "weight" => {
                                    let wt = self.next();
                                    self.no_duplicate(weight.is_some(), "weight", "access", &wt)?;
                                    weight = Some(self.number("weight")?.0);
                                }
                                Tok::Word(o) if o == "burst" => {
                                    let bt = self.next();
                                    self.no_duplicate(burst, "burst", "access", &bt)?;
                                    burst = true;
                                }
                                _ => break,
                            }
                        }
                        accesses.push(PendingAccess {
                            kind,
                            group,
                            group_tok,
                            weight: weight.unwrap_or(1.0),
                            burst,
                        });
                    }
                    "dep" => {
                        let (from, _) = self.integer("dep")?;
                        let at = self.next();
                        if at.kind != Tok::Arrow {
                            return Err(err(
                                at.line,
                                at.column,
                                format!("`dep` expects `from -> to`, found {}", at.kind.describe()),
                            ));
                        }
                        let (to, _) = self.integer("dep")?;
                        deps.push((from, to, t.clone()));
                    }
                    other => {
                        return Err(err(
                            t.line,
                            t.column,
                            format!(
                                "unknown nest field `{other}`: expected `iterations`, `read`, \
                                 `write` or `dep`"
                            ),
                        ))
                    }
                },
                other => {
                    return Err(err(
                        t.line,
                        t.column,
                        format!("expected a nest field or `}}`, found {}", other.describe()),
                    ))
                }
            }
        };
        let (iterations, iter_tok) = iterations.ok_or_else(|| {
            err(
                close.line,
                close.column,
                format!("{scope}: missing `iterations`"),
            )
        })?;
        let nest_id = builder
            .loop_nest(name, iterations)
            .map_err(|e| err(iter_tok.line, iter_tok.column, e.to_string()))?;
        let mut ids: Vec<AccessId> = Vec::with_capacity(accesses.len());
        for a in accesses {
            let group = builder.group_id(&a.group).ok_or_else(|| {
                err(
                    a.group_tok.line,
                    a.group_tok.column,
                    format!("unknown group `{}`", a.group),
                )
            })?;
            let id = builder
                .access_full(nest_id, group, a.kind, a.weight, a.burst)
                .map_err(|e| err(a.group_tok.line, a.group_tok.column, e.to_string()))?;
            ids.push(id);
        }
        for (from, to, at) in deps {
            let resolve = |i: u64| usize::try_from(i).ok().and_then(|i| ids.get(i).copied());
            let (from_id, to_id) = match (resolve(from), resolve(to)) {
                (Some(f), Some(t)) => (f, t),
                _ => {
                    return Err(err(
                        at.line,
                        at.column,
                        format!(
                            "dep {from} -> {to}: access index out of range ({scope} has {} \
                             accesses)",
                            ids.len()
                        ),
                    ))
                }
            };
            builder
                .depend(nest_id, from_id, to_id)
                .map_err(|e| err(at.line, at.column, e.to_string()))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec_text::print_spec;

    const DEMO: &str = r#"
# Full-search motion estimation, trimmed.
spec v1 "demo" {
  cycle_budget 100000
  real_time_seconds 0.01
  group "x" { words 1024 bitwidth 8 }
  group "frame" {
    words 65536
    bitwidth 16
    placement off_chip
    min_ports 2
  }
  nest "scan" {
    iterations 4096
    read "x"
    write "frame" weight 0.5 burst
    dep 0 -> 1
  }
}
"#;

    #[test]
    fn parses_the_demo_spec() {
        let spec = parse_spec(DEMO).unwrap();
        assert_eq!(spec.name(), "demo");
        assert_eq!(spec.cycle_budget(), 100_000);
        assert_eq!(spec.real_time_seconds(), 0.01);
        assert_eq!(spec.basic_groups().len(), 2);
        let frame = spec.group_by_name("frame").unwrap();
        assert_eq!(frame.placement(), Placement::OffChip);
        assert_eq!(frame.min_ports(), 2);
        let nest = &spec.loop_nests()[0];
        assert_eq!(nest.iterations(), 4096);
        assert_eq!(nest.accesses().len(), 2);
        assert_eq!(nest.accesses()[1].weight(), 0.5);
        assert!(nest.accesses()[1].is_burst());
        assert_eq!(nest.dependencies().len(), 1);
    }

    #[test]
    fn round_trips_through_the_printer() {
        let spec = parse_spec(DEMO).unwrap();
        let printed = print_spec(&spec);
        let reparsed = parse_spec(&printed).unwrap();
        assert_eq!(spec, reparsed);
        assert_eq!(spec.content_hash(), reparsed.content_hash());
        // The canonical form is a fixed point.
        assert_eq!(printed, print_spec(&reparsed));
    }

    #[test]
    fn unknown_version_is_refused_with_position() {
        let e = parse_spec("spec v2 \"x\" {}").unwrap_err();
        assert_eq!((e.line(), e.column()), (1, 6));
        assert!(e.message().contains("unsupported spec version `v2`"), "{e}");
    }

    #[test]
    fn missing_required_fields_name_the_scope() {
        let e = parse_spec("spec v1 \"x\" {\n  group \"g\" { words 4 }\n}").unwrap_err();
        assert_eq!((e.line(), e.column()), (2, 23));
        assert_eq!(e.message(), "group `g`: missing `bitwidth`");

        let e = parse_spec("spec v1 \"x\" {\n}").unwrap_err();
        assert_eq!((e.line(), e.column()), (2, 1));
        assert_eq!(e.message(), "spec `x`: missing `cycle_budget`");
    }

    #[test]
    fn duplicate_fields_are_rejected_in_place() {
        let e = parse_spec("spec v1 \"x\" {\n  cycle_budget 5\n  cycle_budget 6\n}").unwrap_err();
        assert_eq!((e.line(), e.column()), (3, 3));
        assert_eq!(e.message(), "duplicate `cycle_budget` in spec `x`");
    }

    #[test]
    fn builder_rejections_are_positioned_on_the_declaration() {
        // Duplicate group name: flagged at the second name literal.
        let text = "spec v1 \"x\" {\n  cycle_budget 5\n  group \"g\" { words 1 bitwidth 1 }\n  group \"g\" { words 2 bitwidth 2 }\n}";
        let e = parse_spec(text).unwrap_err();
        assert_eq!((e.line(), e.column()), (4, 9));
        assert!(e.message().contains("declared twice"), "{e}");

        // Infeasible budget: flagged at the budget value.
        let text = "spec v1 \"x\" {\n  cycle_budget 1\n  group \"g\" { words 1 bitwidth 1 }\n  nest \"n\" {\n    iterations 5\n    read \"g\"\n  }\n}";
        let e = parse_spec(text).unwrap_err();
        assert_eq!(e.line(), 2);
        assert!(e.message().contains("cycle budget"), "{e}");
    }

    #[test]
    fn dep_bounds_and_cycles_are_diagnosed() {
        let base = "spec v1 \"x\" {\n  cycle_budget 100\n  group \"g\" { words 1 bitwidth 1 }\n  nest \"n\" {\n    iterations 1\n    read \"g\"\n    write \"g\"\n";
        let e = parse_spec(&format!("{base}    dep 0 -> 7\n  }}\n}}")).unwrap_err();
        assert_eq!((e.line(), e.column()), (8, 5));
        assert!(e.message().contains("out of range"), "{e}");

        let e = parse_spec(&format!("{base}    dep 0 -> 1\n    dep 1 -> 0\n  }}\n}}")).unwrap_err();
        assert_eq!((e.line(), e.column()), (9, 5));
        assert!(e.message().contains("dependency cycle"), "{e}");
    }

    #[test]
    fn lexer_failures_never_panic() {
        for text in [
            "",
            "spec",
            "spec v1",
            "spec v1 \"x\"",
            "spec v1 \"x\" {",
            "spec v1 \"x\" { cycle_budget }",
            "spec v1 \"x\" { cycle_budget 1 } trailing",
            "spec v1 \"unterminated",
            "spec v1 \"bad\\q\" {}",
            "spec v1 \"x\" @ {}",
            "spec v1 \"x\" { group \"g\" { words -3 bitwidth 1 } cycle_budget 1 }",
            "spec v1 \"x\" { - }",
            "spec v1 \"x\" { cycle_budget 99999999999999999999999999 }",
        ] {
            let e = parse_spec(text).unwrap_err();
            assert!(e.line() >= 1 && e.column() >= 1, "{text:?}: {e}");
        }
    }

    #[test]
    fn comments_and_negative_exponent_numbers_lex() {
        let text = "# header\nspec v1 \"x\" { # inline\n  cycle_budget 10\n  real_time_seconds 1.5e-2\n  group \"g\" { words 1 bitwidth 1 }\n}";
        let spec = parse_spec(text).unwrap();
        assert_eq!(spec.real_time_seconds(), 1.5e-2);
    }
}
