//! Loop nests and their per-body access flow graphs.

use std::fmt;

use crate::{Access, AccessId, AccessKind, BasicGroupId};

/// Identifier of a [`LoopNest`] within an [`crate::AppSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LoopNestId(pub(crate) u32);

impl LoopNestId {
    /// Returns the dense index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates an id from a dense index.
    pub fn from_index(index: usize) -> Self {
        LoopNestId(index as u32)
    }
}

impl fmt::Display for LoopNestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "loop{}", self.0)
    }
}

/// A dependency between two accesses of the same loop body: `from` must
/// complete before `to` may issue.
///
/// These edges form the *flow graph* that storage-cycle-budget
/// distribution balances and that bounds the memory-access critical path
/// (§4.2, §4.5 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DependencyEdge {
    /// The access that must complete first.
    pub from: AccessId,
    /// The access that may only issue afterwards.
    pub to: AccessId,
}

/// A (perfectly nested, manifest) loop nest of the pruned specification.
///
/// Only the product iteration count matters for the memory tools, so a
/// nest is flattened to a single *body* executed `iterations` times. The
/// body holds the memory-access statements and the dependency edges
/// between them.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopNest {
    pub(crate) id: LoopNestId,
    pub(crate) name: String,
    pub(crate) iterations: u64,
    pub(crate) accesses: Vec<Access>,
    pub(crate) deps: Vec<DependencyEdge>,
}

impl LoopNest {
    /// The identifier of this nest.
    pub fn id(&self) -> LoopNestId {
        self.id
    }

    /// Human-readable name (e.g. `"predict_row"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of times the body executes per application execution.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// The access statements of the body, indexed by [`AccessId`].
    pub fn accesses(&self) -> &[Access] {
        &self.accesses
    }

    /// The access with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this body.
    pub fn access(&self, id: AccessId) -> &Access {
        &self.accesses[id.index()]
    }

    /// The intra-body dependency edges.
    pub fn dependencies(&self) -> &[DependencyEdge] {
        &self.deps
    }

    /// Successors of `id` in the flow graph.
    pub fn successors(&self, id: AccessId) -> impl Iterator<Item = AccessId> + '_ {
        self.deps.iter().filter(move |e| e.from == id).map(|e| e.to)
    }

    /// Predecessors of `id` in the flow graph.
    pub fn predecessors(&self, id: AccessId) -> impl Iterator<Item = AccessId> + '_ {
        self.deps.iter().filter(move |e| e.to == id).map(|e| e.from)
    }

    /// Total (weighted) accesses this nest contributes to `group` per
    /// application execution, split into (reads, writes).
    pub fn access_counts(&self, group: BasicGroupId) -> (f64, f64) {
        let it = self.iterations as f64;
        let mut reads = 0.0;
        let mut writes = 0.0;
        for a in &self.accesses {
            if a.group == group {
                match a.kind {
                    AccessKind::Read => reads += a.weight * it,
                    AccessKind::Write => writes += a.weight * it,
                }
            }
        }
        (reads, writes)
    }

    /// Length (in accesses) of the longest dependency chain through the
    /// body: the body's contribution to the memory-access critical path
    /// when every access takes one cycle and unlimited bandwidth is
    /// available.
    ///
    /// An empty body has length 0; a body with accesses but no
    /// dependencies has length 1 (everything can issue in one cycle).
    pub fn critical_path_len(&self) -> u64 {
        if self.accesses.is_empty() {
            return 0;
        }
        // Longest path in a DAG by memoized DFS over topological levels.
        let n = self.accesses.len();
        let mut depth = vec![1u64; n];
        // Kahn ordering.
        let mut indeg = vec![0usize; n];
        for e in &self.deps {
            indeg[e.to.index()] += 1;
        }
        let mut stack: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0usize;
        while let Some(i) = stack.pop() {
            seen += 1;
            for e in self.deps.iter().filter(|e| e.from.index() == i) {
                let j = e.to.index();
                depth[j] = depth[j].max(depth[i] + 1);
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    stack.push(j);
                }
            }
        }
        debug_assert_eq!(seen, n, "flow graph must be acyclic (validated on build)");
        depth.into_iter().max().unwrap_or(0)
    }
}

impl fmt::Display for LoopNest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} x{} ({} accesses, {} deps)",
            self.name,
            self.iterations,
            self.accesses.len(),
            self.deps.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_body(n: usize) -> LoopNest {
        let accesses = (0..n)
            .map(|i| Access {
                id: AccessId(i as u32),
                group: BasicGroupId(0),
                kind: if i % 2 == 0 {
                    AccessKind::Read
                } else {
                    AccessKind::Write
                },
                weight: 1.0,
                burst: false,
            })
            .collect();
        let deps = (1..n)
            .map(|i| DependencyEdge {
                from: AccessId(i as u32 - 1),
                to: AccessId(i as u32),
            })
            .collect();
        LoopNest {
            id: LoopNestId(0),
            name: "chain".into(),
            iterations: 10,
            accesses,
            deps,
        }
    }

    #[test]
    fn critical_path_of_chain_is_its_length() {
        assert_eq!(chain_body(5).critical_path_len(), 5);
    }

    #[test]
    fn critical_path_of_independent_accesses_is_one() {
        let mut body = chain_body(4);
        body.deps.clear();
        assert_eq!(body.critical_path_len(), 1);
    }

    #[test]
    fn critical_path_of_empty_body_is_zero() {
        let mut body = chain_body(0);
        body.deps.clear();
        assert_eq!(body.critical_path_len(), 0);
    }

    #[test]
    fn access_counts_scale_with_iterations_and_weight() {
        let mut body = chain_body(4);
        body.accesses[2].weight = 0.5;
        let (r, w) = body.access_counts(BasicGroupId(0));
        // reads: a0 (1.0) + a2 (0.5) = 1.5 per iter; writes: a1 + a3 = 2.
        assert_eq!(r, 15.0);
        assert_eq!(w, 20.0);
    }

    #[test]
    fn successors_and_predecessors() {
        let body = chain_body(3);
        let succ: Vec<_> = body.successors(AccessId(0)).collect();
        assert_eq!(succ, vec![AccessId(1)]);
        let pred: Vec<_> = body.predecessors(AccessId(2)).collect();
        assert_eq!(pred, vec![AccessId(1)]);
    }
}
