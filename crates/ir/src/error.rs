//! Error types for specification construction and validation.

use std::error::Error;
use std::fmt;

/// Error raised while building an [`crate::AppSpec`] through the
/// [`crate::AppSpecBuilder`].
#[derive(Debug, Clone, PartialEq)]
pub enum BuildSpecError {
    /// A basic group was declared with zero words.
    EmptyGroup {
        /// Offending group name.
        name: String,
    },
    /// A basic group was declared with a zero or oversized bit width.
    BadBitwidth {
        /// Offending group name.
        name: String,
        /// The rejected width.
        bitwidth: u32,
    },
    /// A loop nest was declared with zero iterations.
    ZeroIterations {
        /// Offending nest name.
        name: String,
    },
    /// A duplicate basic-group name.
    DuplicateGroup {
        /// The name used twice.
        name: String,
    },
    /// An id referred to an entity that does not exist in this builder.
    UnknownEntity {
        /// Description of the dangling reference.
        what: String,
    },
    /// An access weight outside (0, 1].
    BadWeight {
        /// The rejected weight.
        weight: f64,
    },
    /// A dependency edge would make the flow graph cyclic.
    CyclicDependency {
        /// Name of the loop nest in which the cycle was detected.
        nest: String,
    },
    /// The specification has no cycle budget.
    MissingCycleBudget,
    /// The cycle budget cannot accommodate the critical path.
    InfeasibleBudget {
        /// Minimum number of cycles required by the dependency chains.
        critical_path: u64,
        /// The declared budget.
        budget: u64,
    },
}

impl fmt::Display for BuildSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildSpecError::EmptyGroup { name } => {
                write!(f, "basic group `{name}` has zero words")
            }
            BuildSpecError::BadBitwidth { name, bitwidth } => {
                write!(
                    f,
                    "basic group `{name}` has invalid bitwidth {bitwidth} (must be 1..=64)"
                )
            }
            BuildSpecError::ZeroIterations { name } => {
                write!(f, "loop nest `{name}` has zero iterations")
            }
            BuildSpecError::DuplicateGroup { name } => {
                write!(f, "basic group `{name}` declared twice")
            }
            BuildSpecError::UnknownEntity { what } => {
                write!(f, "reference to unknown {what}")
            }
            BuildSpecError::BadWeight { weight } => {
                write!(f, "access weight {weight} outside (0, 1]")
            }
            BuildSpecError::CyclicDependency { nest } => {
                write!(f, "dependency cycle in loop nest `{nest}`")
            }
            BuildSpecError::MissingCycleBudget => {
                write!(f, "specification lacks a storage cycle budget")
            }
            BuildSpecError::InfeasibleBudget {
                critical_path,
                budget,
            } => write!(
                f,
                "cycle budget {budget} below memory-access critical path {critical_path}"
            ),
        }
    }
}

impl Error for BuildSpecError {}

/// Error raised when validating a transformed [`crate::AppSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateSpecError {
    /// An access refers to a basic group not present in the spec.
    DanglingGroup {
        /// Loop nest containing the access.
        nest: String,
    },
    /// A dependency edge refers to an access not present in its body.
    DanglingAccess {
        /// Loop nest containing the edge.
        nest: String,
    },
}

impl fmt::Display for ValidateSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateSpecError::DanglingGroup { nest } => {
                write!(f, "access in `{nest}` refers to a missing basic group")
            }
            ValidateSpecError::DanglingAccess { nest } => {
                write!(f, "dependency in `{nest}` refers to a missing access")
            }
        }
    }
}

impl Error for ValidateSpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_without_punctuation() {
        let e = BuildSpecError::EmptyGroup {
            name: "image".into(),
        };
        let s = e.to_string();
        assert!(s.starts_with("basic group"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_err<T: Error + Send + Sync + 'static>() {}
        assert_err::<BuildSpecError>();
        assert_err::<ValidateSpecError>();
    }
}
