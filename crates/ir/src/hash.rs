//! Stable, dependency-free content hashing.
//!
//! [`StableHasher`] is the one hasher every content-addressed key in the
//! workspace is built from: [`crate::AppSpec::content_hash`] uses it for
//! specification identity, and `memx-core`'s persistent evaluation cache
//! uses it to fingerprint technology models and solver knobs. Unlike
//! [`std::hash::Hasher`] implementations, its output is guaranteed
//! stable across processes, platforms and endianness (all inputs are fed
//! as explicit little-endian words), which is what makes it safe to key
//! on-disk artifacts with.
//!
//! It is **not** a cryptographic hash: callers that must survive
//! adversarial collisions need to verify the hashed content separately
//! (the evaluation cache, for instance, stores the full key next to the
//! payload and compares it on read).

/// Minimal FNV-1a hasher with a stable cross-platform digest.
///
/// # Example
///
/// ```
/// use memx_ir::hash::StableHasher;
///
/// let mut a = StableHasher::new();
/// a.write_str("model");
/// a.write_u64(42);
/// let mut b = StableHasher::new();
/// b.write_str("model");
/// b.write_u64(42);
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone)]
pub struct StableHasher(u64);

impl StableHasher {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Creates a hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        StableHasher(Self::OFFSET)
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Feeds one 64-bit word (as little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds one floating-point value exactly (by its bit pattern, so
    /// `-0.0` and `0.0` hash differently and NaN payloads are preserved).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Feeds a string, length-prefixed so `("ab", "c")` and
    /// `("a", "bc")` differ.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The 64-bit digest of everything written so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable() {
        // Pinned digest: moving it silently invalidates every on-disk
        // cache entry keyed by this hasher, which must be a deliberate
        // format-version bump instead.
        let mut h = StableHasher::new();
        h.write_str("memx");
        h.write_u64(7);
        h.write_f64(0.25);
        assert_eq!(h.finish(), 0xf166_0e4c_fc2d_da9c);
    }

    #[test]
    fn length_prefix_disambiguates() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn float_bits_are_exact() {
        let mut a = StableHasher::new();
        a.write_f64(0.0);
        let mut b = StableHasher::new();
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }
}
