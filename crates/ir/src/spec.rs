//! The pruned application specification and its builder.

use std::collections::BTreeMap;

use crate::hash::StableHasher;
use crate::{
    Access, AccessId, AccessKind, BasicGroup, BasicGroupId, BuildSpecError, DependencyEdge,
    LoopNest, LoopNestId, Placement, ValidateSpecError,
};

/// The pruned system specification of §4.1: basic groups, loop nests with
/// access flow graphs, and the real-time constraint.
///
/// An `AppSpec` is immutable; the transforms of the methodology
/// (structuring, hierarchy insertion, ...) produce *new* specs, mirroring
/// how the paper produces variant source files of the pruned code.
///
/// # Example
///
/// ```
/// use memx_ir::{AppSpecBuilder, AccessKind};
///
/// # fn main() -> Result<(), memx_ir::BuildSpecError> {
/// let mut b = AppSpecBuilder::new("demo");
/// let img = b.basic_group("img", 4096, 8)?;
/// let nest = b.loop_nest("scan", 4096)?;
/// b.access(nest, img, AccessKind::Read)?;
/// let spec = b.cycle_budget(10_000).build()?;
/// let (reads, writes) = spec.total_accesses(img);
/// assert_eq!((reads, writes), (4096.0, 0.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AppSpec {
    name: String,
    groups: Vec<BasicGroup>,
    nests: Vec<LoopNest>,
    cycle_budget: u64,
    real_time_s: f64,
}

impl AppSpec {
    /// Name of the application.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All basic groups, indexed by [`BasicGroupId`].
    pub fn basic_groups(&self) -> &[BasicGroup] {
        &self.groups
    }

    /// The basic group with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this specification.
    pub fn group(&self, id: BasicGroupId) -> &BasicGroup {
        &self.groups[id.index()]
    }

    /// Looks a basic group up by name.
    pub fn group_by_name(&self, name: &str) -> Option<&BasicGroup> {
        self.groups.iter().find(|g| g.name == name)
    }

    /// All loop nests, indexed by [`LoopNestId`].
    pub fn loop_nests(&self) -> &[LoopNest] {
        &self.nests
    }

    /// The loop nest with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this specification.
    pub fn nest(&self, id: LoopNestId) -> &LoopNest {
        &self.nests[id.index()]
    }

    /// The storage cycle budget: the total number of cycles that may be
    /// spent on memory accesses per application execution (derived from
    /// the real-time constraint, §3 of the paper).
    pub fn cycle_budget(&self) -> u64 {
        self.cycle_budget
    }

    /// Wall-clock time allowed for one application execution, in seconds.
    ///
    /// Power figures are `energy per execution / real_time_seconds`.
    pub fn real_time_seconds(&self) -> f64 {
        self.real_time_s
    }

    /// Total weighted (reads, writes) to `group` per application
    /// execution, summed over all loop nests.
    pub fn total_accesses(&self, group: BasicGroupId) -> (f64, f64) {
        let mut reads = 0.0;
        let mut writes = 0.0;
        for nest in &self.nests {
            let (r, w) = nest.access_counts(group);
            reads += r;
            writes += w;
        }
        (reads, writes)
    }

    /// Total weighted accesses (reads + writes) over all groups.
    pub fn total_access_count(&self) -> f64 {
        self.groups
            .iter()
            .map(|g| {
                let (r, w) = self.total_accesses(g.id);
                r + w
            })
            .sum()
    }

    /// Lower bound on the cycles needed by the dependency chains alone:
    /// the sum over loop bodies of `iterations x critical-path length`,
    /// assuming unbounded memory bandwidth. This is the memory-access
    /// critical path (MACP) of §4.2 under sequential body execution.
    pub fn min_cycles(&self) -> u64 {
        self.nests
            .iter()
            .map(|n| n.iterations * n.critical_path_len())
            .sum()
    }

    /// Checks internal referential integrity. A spec built through
    /// [`AppSpecBuilder`] is always valid; this is useful after manual
    /// surgery by external tools.
    ///
    /// # Errors
    ///
    /// Returns an error if an access refers to a missing basic group or a
    /// dependency edge to a missing access.
    pub fn validate(&self) -> Result<(), ValidateSpecError> {
        for nest in &self.nests {
            for a in &nest.accesses {
                if a.group.index() >= self.groups.len() {
                    return Err(ValidateSpecError::DanglingGroup {
                        nest: nest.name.clone(),
                    });
                }
            }
            for e in &nest.deps {
                if e.from.index() >= nest.accesses.len() || e.to.index() >= nest.accesses.len() {
                    return Err(ValidateSpecError::DanglingAccess {
                        nest: nest.name.clone(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Stable 64-bit content hash over every field that influences
    /// scheduling, allocation and cost evaluation (FNV-1a).
    ///
    /// Two specifications with equal content hash produce identical
    /// exploration results, so the hash serves as a memoization key —
    /// the exploration engine uses `(content_hash, cycle_budget)` to
    /// share one storage-cycle-budget distribution across design points
    /// that differ only in allocation options (e.g. a Table-4 sweep).
    /// The hash is *not* a cryptographic commitment; it is stable across
    /// processes and releases only as long as the IR layout is.
    pub fn content_hash(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_str(&self.name);
        h.write_u64(self.groups.len() as u64);
        for g in &self.groups {
            h.write_str(&g.name);
            h.write_u64(g.words);
            h.write_u64(u64::from(g.bitwidth));
            h.write_u64(match g.placement {
                Placement::Any => 0,
                Placement::OnChip => 1,
                Placement::OffChip => 2,
            });
            h.write_u64(u64::from(g.min_ports));
        }
        h.write_u64(self.nests.len() as u64);
        for n in &self.nests {
            h.write_str(&n.name);
            h.write_u64(n.iterations);
            h.write_u64(n.accesses.len() as u64);
            for a in &n.accesses {
                h.write_u64(a.group.index() as u64);
                h.write_u64(match a.kind {
                    AccessKind::Read => 0,
                    AccessKind::Write => 1,
                });
                h.write_u64(a.weight.to_bits());
                h.write_u64(u64::from(a.burst));
            }
            h.write_u64(n.deps.len() as u64);
            for e in &n.deps {
                h.write_u64(e.from.index() as u64);
                h.write_u64(e.to.index() as u64);
            }
        }
        h.write_u64(self.cycle_budget);
        h.write_u64(self.real_time_s.to_bits());
        h.finish()
    }

    /// Re-opens this specification for modification, preserving all ids.
    ///
    /// This is how the methodology's transforms derive variant specs: the
    /// returned builder is pre-populated with every group, nest, access
    /// and dependency of `self`.
    pub fn to_builder(&self) -> AppSpecBuilder {
        AppSpecBuilder {
            name: self.name.clone(),
            groups: self.groups.clone(),
            nests: self.nests.clone(),
            names: self.groups.iter().map(|g| (g.name.clone(), g.id)).collect(),
            cycle_budget: Some(self.cycle_budget),
            real_time_s: self.real_time_s,
        }
    }
}

/// Builder for [`AppSpec`] (see the crate-level example).
///
/// The builder validates each element as it is added and the whole
/// specification once more on [`AppSpecBuilder::build`].
#[derive(Debug, Clone)]
pub struct AppSpecBuilder {
    name: String,
    groups: Vec<BasicGroup>,
    nests: Vec<LoopNest>,
    names: BTreeMap<String, BasicGroupId>,
    cycle_budget: Option<u64>,
    real_time_s: f64,
}

impl AppSpecBuilder {
    /// Creates an empty builder for an application called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        AppSpecBuilder {
            name: name.into(),
            groups: Vec::new(),
            nests: Vec::new(),
            names: BTreeMap::new(),
            cycle_budget: None,
            real_time_s: 1.0,
        }
    }

    /// Declares a basic group with free placement.
    ///
    /// # Errors
    ///
    /// Rejects zero-word groups, bit widths outside `1..=64` and duplicate
    /// names.
    pub fn basic_group(
        &mut self,
        name: impl Into<String>,
        words: u64,
        bitwidth: u32,
    ) -> Result<BasicGroupId, BuildSpecError> {
        self.basic_group_placed(name, words, bitwidth, Placement::Any)
    }

    /// Declares a basic group with an explicit placement constraint.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AppSpecBuilder::basic_group`].
    pub fn basic_group_placed(
        &mut self,
        name: impl Into<String>,
        words: u64,
        bitwidth: u32,
        placement: Placement,
    ) -> Result<BasicGroupId, BuildSpecError> {
        self.basic_group_full(name, words, bitwidth, placement, 1)
    }

    /// Declares a basic group with placement and a minimum port count
    /// (see [`BasicGroup::min_ports`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`AppSpecBuilder::basic_group`]; additionally
    /// rejects `min_ports == 0`.
    pub fn basic_group_full(
        &mut self,
        name: impl Into<String>,
        words: u64,
        bitwidth: u32,
        placement: Placement,
        min_ports: u32,
    ) -> Result<BasicGroupId, BuildSpecError> {
        let name = name.into();
        if words == 0 {
            return Err(BuildSpecError::EmptyGroup { name });
        }
        if bitwidth == 0 || bitwidth > 64 {
            return Err(BuildSpecError::BadBitwidth { name, bitwidth });
        }
        if min_ports == 0 {
            return Err(BuildSpecError::UnknownEntity {
                what: format!("port count 0 for group `{name}`"),
            });
        }
        if self.names.contains_key(&name) {
            return Err(BuildSpecError::DuplicateGroup { name });
        }
        let id = BasicGroupId(self.groups.len() as u32);
        self.names.insert(name.clone(), id);
        self.groups.push(BasicGroup {
            id,
            name,
            words,
            bitwidth,
            placement,
            min_ports,
        });
        Ok(id)
    }

    /// Declares a loop nest executing its body `iterations` times.
    ///
    /// # Errors
    ///
    /// Rejects zero iteration counts.
    pub fn loop_nest(
        &mut self,
        name: impl Into<String>,
        iterations: u64,
    ) -> Result<LoopNestId, BuildSpecError> {
        let name = name.into();
        if iterations == 0 {
            return Err(BuildSpecError::ZeroIterations { name });
        }
        let id = LoopNestId(self.nests.len() as u32);
        self.nests.push(LoopNest {
            id,
            name,
            iterations,
            accesses: Vec::new(),
            deps: Vec::new(),
        });
        Ok(id)
    }

    /// Adds an unconditional access to a loop body.
    ///
    /// # Errors
    ///
    /// Returns an error if `nest` or `group` is unknown.
    pub fn access(
        &mut self,
        nest: LoopNestId,
        group: BasicGroupId,
        kind: AccessKind,
    ) -> Result<AccessId, BuildSpecError> {
        self.access_weighted(nest, group, kind, 1.0)
    }

    /// Adds an access executed with profiled frequency `weight` in (0, 1]
    /// (data-dependent conditional, §4.1).
    ///
    /// # Errors
    ///
    /// Returns an error if `nest` or `group` is unknown or the weight is
    /// outside (0, 1].
    pub fn access_weighted(
        &mut self,
        nest: LoopNestId,
        group: BasicGroupId,
        kind: AccessKind,
        weight: f64,
    ) -> Result<AccessId, BuildSpecError> {
        self.access_full(nest, group, kind, weight, false)
    }

    /// Adds an access with full control over weight and burst flag
    /// (see [`Access::is_burst`]). Hierarchy copy loops mark their block
    /// transfers as bursts.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AppSpecBuilder::access_weighted`].
    pub fn access_full(
        &mut self,
        nest: LoopNestId,
        group: BasicGroupId,
        kind: AccessKind,
        weight: f64,
        burst: bool,
    ) -> Result<AccessId, BuildSpecError> {
        if group.index() >= self.groups.len() {
            return Err(BuildSpecError::UnknownEntity {
                what: format!("basic group {group}"),
            });
        }
        if !(weight > 0.0 && weight <= 1.0) {
            return Err(BuildSpecError::BadWeight { weight });
        }
        let nest = self.nest_mut(nest)?;
        let id = AccessId(nest.accesses.len() as u32);
        nest.accesses.push(Access {
            id,
            group,
            kind,
            weight,
            burst,
        });
        Ok(id)
    }

    /// Adds a dependency edge `from -> to` inside a loop body.
    ///
    /// # Errors
    ///
    /// Returns an error on unknown ids or if the edge would create a
    /// cycle.
    pub fn depend(
        &mut self,
        nest: LoopNestId,
        from: AccessId,
        to: AccessId,
    ) -> Result<(), BuildSpecError> {
        let nest_ref = self.nest_mut(nest)?;
        let len = nest_ref.accesses.len();
        if from.index() >= len || to.index() >= len {
            return Err(BuildSpecError::UnknownEntity {
                what: format!("access {from} or {to}"),
            });
        }
        nest_ref.deps.push(DependencyEdge { from, to });
        if Self::has_cycle(nest_ref) {
            let name = nest_ref.name.clone();
            nest_ref.deps.pop();
            return Err(BuildSpecError::CyclicDependency { nest: name });
        }
        Ok(())
    }

    /// Sets the storage cycle budget (mandatory).
    pub fn cycle_budget(&mut self, cycles: u64) -> &mut Self {
        self.cycle_budget = Some(cycles);
        self
    }

    /// Sets the wall-clock time allowed per execution (default 1 s).
    pub fn real_time_seconds(&mut self, seconds: f64) -> &mut Self {
        self.real_time_s = seconds;
        self
    }

    /// Finalizes the specification.
    ///
    /// # Errors
    ///
    /// Returns an error if no cycle budget was set or the budget is below
    /// the memory-access critical path (no legal schedule exists).
    pub fn build(&self) -> Result<AppSpec, BuildSpecError> {
        let budget = self
            .cycle_budget
            .ok_or(BuildSpecError::MissingCycleBudget)?;
        let spec = AppSpec {
            name: self.name.clone(),
            groups: self.groups.clone(),
            nests: self.nests.clone(),
            cycle_budget: budget,
            real_time_s: self.real_time_s,
        };
        let critical_path = spec.min_cycles();
        if budget < critical_path {
            return Err(BuildSpecError::InfeasibleBudget {
                critical_path,
                budget,
            });
        }
        Ok(spec)
    }

    /// Removes every access to `group` in all loop bodies, together with
    /// the dependency edges touching them (used by structuring transforms
    /// when a group is replaced).
    pub fn remove_group_accesses(&mut self, group: BasicGroupId) {
        for nest in &mut self.nests {
            // Build the keep-list and an old-id -> new-id map.
            let mut remap: Vec<Option<AccessId>> = Vec::with_capacity(nest.accesses.len());
            let mut kept = Vec::with_capacity(nest.accesses.len());
            for a in &nest.accesses {
                if a.group == group {
                    remap.push(None);
                } else {
                    let new_id = AccessId(kept.len() as u32);
                    remap.push(Some(new_id));
                    let mut na = a.clone();
                    na.id = new_id;
                    kept.push(na);
                }
            }
            nest.accesses = kept;
            nest.deps = nest
                .deps
                .iter()
                .filter_map(|e| {
                    Some(DependencyEdge {
                        from: remap[e.from.index()]?,
                        to: remap[e.to.index()]?,
                    })
                })
                .collect();
        }
    }

    /// Number of groups declared so far.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Looks up a declared basic group by name (how the textual
    /// front-end resolves access references).
    pub fn group_id(&self, name: &str) -> Option<BasicGroupId> {
        self.names.get(name).copied()
    }

    /// Read access to the nests assembled so far (transform support).
    pub fn nests(&self) -> &[LoopNest] {
        &self.nests
    }

    fn nest_mut(&mut self, id: LoopNestId) -> Result<&mut LoopNest, BuildSpecError> {
        let idx = id.index();
        if idx >= self.nests.len() {
            return Err(BuildSpecError::UnknownEntity {
                what: format!("loop nest {id}"),
            });
        }
        Ok(&mut self.nests[idx])
    }

    fn has_cycle(nest: &LoopNest) -> bool {
        let n = nest.accesses.len();
        let mut indeg = vec![0usize; n];
        for e in &nest.deps {
            indeg[e.to.index()] += 1;
        }
        let mut stack: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(i) = stack.pop() {
            seen += 1;
            for e in nest.deps.iter().filter(|e| e.from.index() == i) {
                let j = e.to.index();
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    stack.push(j);
                }
            }
        }
        seen != n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AppSpecBuilder {
        let mut b = AppSpecBuilder::new("t");
        let g = b.basic_group("g", 16, 8).unwrap();
        let n = b.loop_nest("l", 4).unwrap();
        let a0 = b.access(n, g, AccessKind::Read).unwrap();
        let a1 = b.access(n, g, AccessKind::Write).unwrap();
        b.depend(n, a0, a1).unwrap();
        b.cycle_budget(100);
        b
    }

    #[test]
    fn build_round_trip() {
        let spec = tiny().build().unwrap();
        assert_eq!(spec.name(), "t");
        assert_eq!(spec.basic_groups().len(), 1);
        assert_eq!(spec.loop_nests().len(), 1);
        assert_eq!(spec.min_cycles(), 8); // 4 iterations x chain of 2
        spec.validate().unwrap();
    }

    #[test]
    fn missing_budget_rejected() {
        let mut b = AppSpecBuilder::new("t");
        b.basic_group("g", 1, 1).unwrap();
        assert_eq!(b.build().unwrap_err(), BuildSpecError::MissingCycleBudget);
    }

    #[test]
    fn infeasible_budget_rejected() {
        let mut b = tiny();
        b.cycle_budget(7); // need 8
        match b.build().unwrap_err() {
            BuildSpecError::InfeasibleBudget {
                critical_path,
                budget,
            } => {
                assert_eq!((critical_path, budget), (8, 7));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn duplicate_group_rejected() {
        let mut b = AppSpecBuilder::new("t");
        b.basic_group("g", 1, 1).unwrap();
        assert!(matches!(
            b.basic_group("g", 2, 2),
            Err(BuildSpecError::DuplicateGroup { .. })
        ));
    }

    #[test]
    fn zero_words_and_bad_width_rejected() {
        let mut b = AppSpecBuilder::new("t");
        assert!(matches!(
            b.basic_group("a", 0, 8),
            Err(BuildSpecError::EmptyGroup { .. })
        ));
        assert!(matches!(
            b.basic_group("b", 8, 0),
            Err(BuildSpecError::BadBitwidth { .. })
        ));
        assert!(matches!(
            b.basic_group("c", 8, 65),
            Err(BuildSpecError::BadBitwidth { .. })
        ));
    }

    #[test]
    fn cycle_detection_rejects_and_rolls_back() {
        let mut b = AppSpecBuilder::new("t");
        let g = b.basic_group("g", 4, 4).unwrap();
        let n = b.loop_nest("l", 1).unwrap();
        let a0 = b.access(n, g, AccessKind::Read).unwrap();
        let a1 = b.access(n, g, AccessKind::Write).unwrap();
        b.depend(n, a0, a1).unwrap();
        assert!(matches!(
            b.depend(n, a1, a0),
            Err(BuildSpecError::CyclicDependency { .. })
        ));
        // Edge rolled back: builder still produces a valid spec.
        b.cycle_budget(100);
        let spec = b.build().unwrap();
        assert_eq!(spec.nest(n).dependencies().len(), 1);
    }

    #[test]
    fn bad_weight_rejected() {
        let mut b = AppSpecBuilder::new("t");
        let g = b.basic_group("g", 4, 4).unwrap();
        let n = b.loop_nest("l", 1).unwrap();
        assert!(matches!(
            b.access_weighted(n, g, AccessKind::Read, 0.0),
            Err(BuildSpecError::BadWeight { .. })
        ));
        assert!(matches!(
            b.access_weighted(n, g, AccessKind::Read, 1.5),
            Err(BuildSpecError::BadWeight { .. })
        ));
    }

    #[test]
    fn unknown_references_rejected() {
        let mut b = AppSpecBuilder::new("t");
        let g = b.basic_group("g", 4, 4).unwrap();
        let n = b.loop_nest("l", 1).unwrap();
        assert!(b.access(LoopNestId(9), g, AccessKind::Read).is_err());
        assert!(b.access(n, BasicGroupId(9), AccessKind::Read).is_err());
        assert!(b.depend(n, AccessId(0), AccessId(1)).is_err());
    }

    #[test]
    fn to_builder_preserves_everything() {
        let spec = tiny().build().unwrap();
        let rebuilt = spec.to_builder().build().unwrap();
        assert_eq!(spec, rebuilt);
    }

    #[test]
    fn remove_group_accesses_drops_accesses_and_edges() {
        let mut b = AppSpecBuilder::new("t");
        let g = b.basic_group("g", 16, 8).unwrap();
        let h = b.basic_group("h", 16, 8).unwrap();
        let n = b.loop_nest("l", 2).unwrap();
        let a0 = b.access(n, g, AccessKind::Read).unwrap();
        let a1 = b.access(n, h, AccessKind::Read).unwrap();
        let a2 = b.access(n, g, AccessKind::Write).unwrap();
        b.depend(n, a0, a1).unwrap();
        b.depend(n, a1, a2).unwrap();
        b.remove_group_accesses(g);
        b.cycle_budget(100);
        let spec = b.build().unwrap();
        let nest = spec.nest(n);
        assert_eq!(nest.accesses().len(), 1);
        assert_eq!(nest.accesses()[0].group(), h);
        assert!(nest.dependencies().is_empty());
        spec.validate().unwrap();
    }

    #[test]
    fn total_accesses_sums_over_nests() {
        let mut b = AppSpecBuilder::new("t");
        let g = b.basic_group("g", 16, 8).unwrap();
        let n1 = b.loop_nest("l1", 10).unwrap();
        let n2 = b.loop_nest("l2", 5).unwrap();
        b.access(n1, g, AccessKind::Read).unwrap();
        b.access(n2, g, AccessKind::Write).unwrap();
        b.cycle_budget(100);
        let spec = b.build().unwrap();
        assert_eq!(spec.total_accesses(g), (10.0, 5.0));
        assert_eq!(spec.total_access_count(), 15.0);
    }

    #[test]
    fn content_hash_is_stable_and_sensitive() {
        let spec = tiny().build().unwrap();
        let again = tiny().build().unwrap();
        assert_eq!(spec.content_hash(), again.content_hash());
        // Round-tripping through the builder preserves the hash.
        assert_eq!(
            spec.content_hash(),
            spec.to_builder().build().unwrap().content_hash()
        );
        // Any semantic change moves the hash.
        let mut b = tiny();
        b.cycle_budget(101);
        assert_ne!(spec.content_hash(), b.build().unwrap().content_hash());
        let mut b = tiny();
        b.real_time_seconds(0.5).cycle_budget(100);
        assert_ne!(spec.content_hash(), b.build().unwrap().content_hash());
        let mut b = tiny();
        b.basic_group("extra", 8, 8).unwrap();
        assert_ne!(spec.content_hash(), b.build().unwrap().content_hash());
    }

    #[test]
    fn group_by_name_finds_groups() {
        let spec = tiny().build().unwrap();
        assert!(spec.group_by_name("g").is_some());
        assert!(spec.group_by_name("nope").is_none());
    }
}
