//! # memx-ir — pruned application-specification IR
//!
//! This crate defines the intermediate representation consumed by the
//! physical-memory-management stages of `memx-core`: the *pruned system
//! specification* of §4.1 of the paper.
//!
//! The IR deliberately abstracts away everything that is irrelevant to the
//! memory organization: scalar processing is dropped, data is analyzed at
//! the *basic group* (array) level, and control flow is reduced to loop
//! nests with per-body memory-access flow graphs.
//!
//! * [`BasicGroup`] — an independently storable unit of array data
//!   (§4.1/§4.3 of the paper).
//! * [`Access`] — one memory-access statement inside a loop body.
//! * [`LoopNest`] — a loop body with its iteration count and intra-body
//!   dependency edges (the flow graph used for storage-cycle-budget
//!   distribution and critical-path analysis).
//! * [`AppSpec`] — the whole pruned specification, plus the real-time
//!   constraint from which the storage cycle budget derives.
//!
//! # Example
//!
//! ```
//! use memx_ir::{AppSpecBuilder, AccessKind};
//!
//! # fn main() -> Result<(), memx_ir::BuildSpecError> {
//! let mut b = AppSpecBuilder::new("fir");
//! let x = b.basic_group("x", 1024, 12)?;
//! let h = b.basic_group("h", 16, 10)?;
//! let y = b.basic_group("y", 1024, 16)?;
//! let body = b.loop_nest("mac", 1024 * 16)?;
//! let rx = b.access(body, x, AccessKind::Read)?;
//! let rh = b.access(body, h, AccessKind::Read)?;
//! let wy = b.access(body, y, AccessKind::Write)?;
//! b.depend(body, rx, wy)?; // y written after x read
//! b.depend(body, rh, wy)?;
//! let spec = b.cycle_budget(40_000).real_time_seconds(1e-3).build()?;
//! assert_eq!(spec.basic_groups().len(), 3);
//! # Ok(())
//! # }
//! ```

//! # Textual front-end
//!
//! Specs also exist as *data*: a versioned textual format (grammar in
//! `docs/spec_format.md`) read by [`parse_spec`] and written by
//! [`spec_text::print_spec`], with [`specgen`] generating seeded
//! random specs for stress sweeps. Parsing funnels through
//! [`AppSpecBuilder`], so a parsed spec is indistinguishable — same
//! invariants, same [`AppSpec::content_hash`] — from one built in
//! Rust.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod access;
mod error;
mod group;
pub mod hash;
mod loops;
pub mod parse;
mod spec;
pub mod spec_text;
pub mod specgen;

pub use access::{Access, AccessId, AccessKind};
pub use error::{BuildSpecError, ValidateSpecError};
pub use group::{BasicGroup, BasicGroupId, Placement};
pub use loops::{DependencyEdge, LoopNest, LoopNestId};
pub use parse::parse_spec;
pub use spec::{AppSpec, AppSpecBuilder};
pub use spec_text::{print_spec, SpecTextError, SPEC_TEXT_VERSION};
