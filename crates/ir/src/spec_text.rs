//! The textual specification format: version, diagnostics, and the
//! canonical pretty-printer.
//!
//! The format is the data-side twin of [`AppSpecBuilder`]: every
//! declaration maps onto exactly one builder call, so a parsed spec
//! carries the same invariants (and therefore the same
//! [`AppSpec::content_hash`]) as one built from Rust. The grammar is
//! documented in `docs/spec_format.md`; [`crate::parse_spec`] is the
//! reader, [`print_spec`] the writer.
//!
//! Printing is *canonical*: one fixed layout, field order and
//! default-elision policy, so `parse(print(spec)) == spec` holds for
//! every buildable spec and `print(parse(text))` is a fixed point after
//! one round trip. Both properties are pinned by the round-trip
//! property tests in `tests/prop.rs`.
//!
//! [`AppSpecBuilder`]: crate::AppSpecBuilder

use std::fmt;

use crate::{AppSpec, Placement};

/// The format generation this build reads and writes. Every spec text
/// opens with `spec v1 ...`; a reader encountering a larger version
/// must refuse the text (fields may have semantics it cannot honor)
/// rather than guess — see the forward-compatibility rules in
/// `docs/spec_format.md`.
pub const SPEC_TEXT_VERSION: u32 = 1;

/// A diagnostic from [`crate::parse_spec`]: what went wrong and the
/// 1-based line/column of the offending token.
///
/// The message names the offending field or entity (`group `image`:
/// missing `words``), so a client can surface it verbatim. Columns
/// count characters, not bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecTextError {
    line: u32,
    column: u32,
    message: String,
}

impl SpecTextError {
    /// Builds a diagnostic at `line`/`column` (both 1-based).
    pub(crate) fn new(line: u32, column: u32, message: impl Into<String>) -> Self {
        SpecTextError {
            line,
            column,
            message: message.into(),
        }
    }

    /// 1-based line of the offending token.
    pub fn line(&self) -> u32 {
        self.line
    }

    /// 1-based column (in characters) of the offending token.
    pub fn column(&self) -> u32 {
        self.column
    }

    /// The human-readable diagnostic, without the position prefix.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for SpecTextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}, column {}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for SpecTextError {}

/// Renders `spec` in the canonical textual form.
///
/// The layout is fixed — two-space indentation, one declaration per
/// line, fields in declaration order — and defaulted fields are
/// elided: `real_time_seconds` at 1, `placement any`, `min_ports 1`,
/// `weight 1` and absent `burst` are never written. Parsing the result
/// reproduces `spec` exactly (same [`AppSpec::content_hash`]).
pub fn print_spec(spec: &AppSpec) -> String {
    let mut out = String::new();
    out.push_str("spec v");
    push_u64(&mut out, u64::from(SPEC_TEXT_VERSION));
    out.push(' ');
    push_string(&mut out, spec.name());
    out.push_str(" {\n  cycle_budget ");
    push_u64(&mut out, spec.cycle_budget());
    out.push('\n');
    if spec.real_time_seconds() != 1.0 {
        out.push_str("  real_time_seconds ");
        push_f64(&mut out, spec.real_time_seconds());
        out.push('\n');
    }
    for g in spec.basic_groups() {
        out.push_str("  group ");
        push_string(&mut out, g.name());
        out.push_str(" {\n    words ");
        push_u64(&mut out, g.words());
        out.push_str("\n    bitwidth ");
        push_u64(&mut out, u64::from(g.bitwidth()));
        out.push('\n');
        match g.placement() {
            Placement::Any => {}
            Placement::OnChip => out.push_str("    placement on_chip\n"),
            Placement::OffChip => out.push_str("    placement off_chip\n"),
        }
        if g.min_ports() != 1 {
            out.push_str("    min_ports ");
            push_u64(&mut out, u64::from(g.min_ports()));
            out.push('\n');
        }
        out.push_str("  }\n");
    }
    for n in spec.loop_nests() {
        out.push_str("  nest ");
        push_string(&mut out, n.name());
        out.push_str(" {\n    iterations ");
        push_u64(&mut out, n.iterations());
        out.push('\n');
        for a in n.accesses() {
            out.push_str(if a.kind().is_read() {
                "    read "
            } else {
                "    write "
            });
            push_string(&mut out, spec.group(a.group()).name());
            if a.weight() != 1.0 {
                out.push_str(" weight ");
                push_f64(&mut out, a.weight());
            }
            if a.is_burst() {
                out.push_str(" burst");
            }
            out.push('\n');
        }
        for e in n.dependencies() {
            out.push_str("    dep ");
            push_u64(&mut out, e.from.index() as u64);
            out.push_str(" -> ");
            push_u64(&mut out, e.to.index() as u64);
            out.push('\n');
        }
        out.push_str("  }\n");
    }
    out.push_str("}\n");
    out
}

fn push_u64(out: &mut String, v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    let mut v = v;
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    for &b in &buf[i..] {
        out.push(b as char);
    }
}

fn push_f64(out: &mut String, v: f64) {
    // Rust's `Display` for f64 is the shortest decimal that parses back
    // to the same bits and never uses exponent notation, which is
    // exactly the round-trip guarantee the format needs.
    use fmt::Write as _;
    let _ = write!(out, "{v}");
}

/// Writes `s` as a quoted string literal, escaping the characters the
/// lexer treats specially (`"` and `\`) and the whitespace controls.
fn push_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessKind, AppSpecBuilder};

    fn demo() -> AppSpec {
        let mut b = AppSpecBuilder::new("demo");
        let x = b.basic_group("x", 1024, 8).unwrap();
        let f = b
            .basic_group_full("frame", 65536, 16, Placement::OffChip, 2)
            .unwrap();
        let n = b.loop_nest("scan", 4096).unwrap();
        let a0 = b.access(n, x, AccessKind::Read).unwrap();
        let a1 = b.access_full(n, f, AccessKind::Write, 0.5, true).unwrap();
        b.depend(n, a0, a1).unwrap();
        b.cycle_budget(100_000).real_time_seconds(0.01);
        b.build().unwrap()
    }

    #[test]
    fn canonical_layout_is_pinned() {
        let expected = "\
spec v1 \"demo\" {
  cycle_budget 100000
  real_time_seconds 0.01
  group \"x\" {
    words 1024
    bitwidth 8
  }
  group \"frame\" {
    words 65536
    bitwidth 16
    placement off_chip
    min_ports 2
  }
  nest \"scan\" {
    iterations 4096
    read \"x\"
    write \"frame\" weight 0.5 burst
    dep 0 -> 1
  }
}
";
        assert_eq!(print_spec(&demo()), expected);
    }

    #[test]
    fn defaults_are_elided() {
        let mut b = AppSpecBuilder::new("tiny");
        let g = b.basic_group("g", 1, 1).unwrap();
        let n = b.loop_nest("l", 1).unwrap();
        b.access(n, g, AccessKind::Write).unwrap();
        b.cycle_budget(10);
        let text = print_spec(&b.build().unwrap());
        assert!(!text.contains("real_time_seconds"));
        assert!(!text.contains("placement"));
        assert!(!text.contains("min_ports"));
        assert!(!text.contains("weight"));
        assert!(!text.contains("burst"));
    }

    #[test]
    fn strings_are_escaped() {
        let mut b = AppSpecBuilder::new("quote\"and\\slash");
        b.basic_group("g\nline", 1, 1).unwrap();
        b.cycle_budget(1);
        let text = print_spec(&b.build().unwrap());
        assert!(text.contains("\"quote\\\"and\\\\slash\""));
        assert!(text.contains("\"g\\nline\""));
    }

    #[test]
    fn error_display_carries_position() {
        let e = SpecTextError::new(3, 7, "group `x`: missing `words`");
        assert_eq!(
            e.to_string(),
            "line 3, column 7: group `x`: missing `words`"
        );
        assert_eq!((e.line(), e.column()), (3, 7));
    }
}
