//! Basic groups: the atomic units of background storage.

use std::fmt;

/// Identifier of a [`BasicGroup`] within an [`crate::AppSpec`].
///
/// Indices are dense and stable: the `n`-th group created through the
/// builder gets id `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BasicGroupId(pub(crate) u32);

impl BasicGroupId {
    /// Returns the dense index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates an id from a dense index.
    ///
    /// Intended for tools that re-materialize ids after serializing a
    /// specification; ids must refer to an existing group of the spec they
    /// are used with.
    pub fn from_index(index: usize) -> Self {
        BasicGroupId(index as u32)
    }
}

impl fmt::Display for BasicGroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bg{}", self.0)
    }
}

/// Placement constraint for a basic group.
///
/// Most groups can be freely assigned (`Any`); very large frame stores are
/// forced off-chip, and register-level hierarchy layers are forced on-chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Placement {
    /// The assignment step may place the group on-chip or off-chip.
    #[default]
    Any,
    /// The group must be stored in off-chip memory (e.g. a 1 M-word frame
    /// store that cannot fit on chip).
    OffChip,
    /// The group must be stored on chip (e.g. a register-file hierarchy
    /// layer or a small high-bandwidth buffer).
    OnChip,
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Placement::Any => "any",
            Placement::OffChip => "off-chip",
            Placement::OnChip => "on-chip",
        };
        f.write_str(s)
    }
}

/// An independently storable unit of array data (§4.1 of the paper).
///
/// The data of an application is partitioned into non-overlapping basic
/// groups "such that they can be ordered and stored independently of each
/// other". A basic group is treated as an atomic whole by all the tools:
/// it is assigned to exactly one memory, and structuring decisions
/// (compaction, merging) replace groups by new groups.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicGroup {
    pub(crate) id: BasicGroupId,
    pub(crate) name: String,
    pub(crate) words: u64,
    pub(crate) bitwidth: u32,
    pub(crate) placement: Placement,
    pub(crate) min_ports: u32,
}

impl BasicGroup {
    /// The identifier of this group.
    pub fn id(&self) -> BasicGroupId {
        self.id
    }

    /// Human-readable name (e.g. `"image"`, `"ridge"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of addressable words.
    pub fn words(&self) -> u64 {
        self.words
    }

    /// Width of one word in bits.
    pub fn bitwidth(&self) -> u32 {
        self.bitwidth
    }

    /// Total storage requirement in bits.
    pub fn bits(&self) -> u64 {
        self.words * u64::from(self.bitwidth)
    }

    /// Placement constraint.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Minimum number of ports the memory storing this group must offer
    /// (default 1). Hierarchy layers that are filled concurrently with
    /// being read — like the paper's 2-port `yhier` buffer — declare 2.
    pub fn min_ports(&self) -> u32 {
        self.min_ports
    }
}

impl fmt::Display for BasicGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} x {} bit, {})",
            self.name, self.words, self.bitwidth, self.placement
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_is_words_times_width() {
        let g = BasicGroup {
            id: BasicGroupId(0),
            name: "image".into(),
            words: 1 << 20,
            bitwidth: 8,
            placement: Placement::OffChip,
            min_ports: 1,
        };
        assert_eq!(g.bits(), (1 << 20) * 8);
    }

    #[test]
    fn id_round_trips_through_index() {
        let id = BasicGroupId(7);
        assert_eq!(BasicGroupId::from_index(id.index()), id);
    }

    #[test]
    fn display_formats() {
        let g = BasicGroup {
            id: BasicGroupId(3),
            name: "ridge".into(),
            words: 512,
            bitwidth: 2,
            placement: Placement::Any,
            min_ports: 1,
        };
        assert_eq!(format!("{g}"), "ridge (512 x 2 bit, any)");
        assert_eq!(format!("{}", g.id()), "bg3");
    }

    #[test]
    fn placement_default_is_any() {
        assert_eq!(Placement::default(), Placement::Any);
    }
}
