//! Memory-access statements inside loop bodies.

use std::fmt;

use crate::BasicGroupId;

/// Identifier of an [`Access`] *within its loop body*.
///
/// Access ids are only meaningful relative to the [`crate::LoopNest`] that
/// owns them; the `n`-th access added to a body gets id `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AccessId(pub(crate) u32);

impl AccessId {
    /// Returns the dense index of this id within its body.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates an id from a dense index (see [`AccessId::index`]).
    pub fn from_index(index: usize) -> Self {
        AccessId(index as u32)
    }
}

impl fmt::Display for AccessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Direction of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load from the basic group.
    Read,
    /// A store to the basic group.
    Write,
}

impl AccessKind {
    /// `true` for [`AccessKind::Read`].
    pub fn is_read(self) -> bool {
        matches!(self, AccessKind::Read)
    }

    /// `true` for [`AccessKind::Write`].
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::Read => "R",
            AccessKind::Write => "W",
        })
    }
}

/// One memory-access statement inside a loop body.
///
/// An access touches exactly one [`crate::BasicGroup`]. `weight` models
/// data-dependent conditionals: an access under an `if` that profiling
/// shows taken 30 % of the time carries weight 0.3. The weight scales the
/// *energy* contribution; bandwidth scheduling conservatively reserves a
/// slot regardless (worst-case real-time behaviour, as the paper's tools
/// must guarantee the timing constraint for every input).
#[derive(Debug, Clone, PartialEq)]
pub struct Access {
    pub(crate) id: AccessId,
    pub(crate) group: BasicGroupId,
    pub(crate) kind: AccessKind,
    pub(crate) weight: f64,
    pub(crate) burst: bool,
}

impl Access {
    /// Identifier within the owning loop body.
    pub fn id(&self) -> AccessId {
        self.id
    }

    /// The basic group this access touches.
    pub fn group(&self) -> BasicGroupId {
        self.group
    }

    /// Read or write.
    pub fn kind(&self) -> AccessKind {
        self.kind
    }

    /// Profiled execution frequency relative to the loop body (0, 1].
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// `true` for accesses that are part of a long sequential transfer
    /// (page-mode/burst DRAM operation). Burst accesses to off-chip
    /// memory are faster and cheaper than random ones; the memory
    /// hierarchy transform marks block copies this way.
    pub fn is_burst(&self) -> bool {
        self.burst
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}{}", self.id, self.kind, self.group)?;
        if self.weight != 1.0 {
            write!(f, "@{:.2}", self.weight)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(AccessKind::Read.is_read());
        assert!(!AccessKind::Read.is_write());
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Write.is_read());
    }

    #[test]
    fn display_includes_weight_only_when_partial() {
        let a = Access {
            id: AccessId(0),
            group: BasicGroupId(1),
            kind: AccessKind::Read,
            weight: 1.0,
            burst: false,
        };
        assert_eq!(format!("{a}"), "a0:Rbg1");
        let b = Access { weight: 0.25, ..a };
        assert_eq!(format!("{b}"), "a0:Rbg1@0.25");
    }
}
