//! Seeded random specification generator for stress sweeps.
//!
//! Built on the vendored proptest [`Strategy`] combinators — the same
//! substrate the property suites draw from — but exposed as a plain
//! seeded library call so binaries, fuzz harnesses and the corpus
//! runner can mass-produce valid specs without a test harness. Two
//! calls with the same seed produce the same spec on every platform
//! (the RNG is the deterministic proptest shim RNG).
//!
//! Strategies generate a pure *plan* (plain numbers); the plan is then
//! replayed through [`AppSpecBuilder`], which keeps this module free of
//! panicking paths: any rejection surfaces as the builder's error. The
//! plans are constructed so rejection cannot actually occur (ranges
//! inside the builder's validity envelope, chain-shaped dependencies,
//! a budget with headroom over the critical path), which the specgen
//! property tests pin.

use proptest::prelude::Strategy;
use proptest::test_runner::TestRng;

use crate::{AccessKind, AppSpec, AppSpecBuilder, BuildSpecError, Placement};

/// One planned basic group: words, bitwidth, placement selector,
/// min-ports selector.
type GroupPlan = (u64, u32, u8, u8);

/// One planned access: group selector, write?, weight, burst selector.
type AccessPlan = (usize, bool, f64, u8);

/// One planned nest: iterations and its access chain.
type NestPlan = (u64, Vec<AccessPlan>);

/// The whole plan: groups, nests, budget headroom selector.
type SpecPlan = (Vec<GroupPlan>, Vec<NestPlan>, u64);

/// The proptest strategy behind [`generate`]: 2–7 groups (mixed
/// placements and port floors), 1–5 nests of 1–8 accesses with
/// chain-shaped dependencies, and a feasible budget with 1–4x
/// headroom over the critical path.
fn plan_strategy() -> impl Strategy<Value = SpecPlan> {
    let group = (1u64..50_000, 1u32..=32, 0u8..8, 0u8..8);
    let access = (0usize..8, proptest::bool::ANY, 0.01f64..=1.0, 0u8..8);
    let nest = (1u64..100_000, proptest::collection::vec(access, 1..8));
    (
        proptest::collection::vec(group, 2..8),
        proptest::collection::vec(nest, 1..6),
        1u64..5,
    )
}

/// Deterministically generates the `index`-th stress spec of stream
/// `seed`. Same `(seed, index)` → identical spec (and therefore
/// identical [`AppSpec::content_hash`]) on every platform.
///
/// # Errors
///
/// Propagates [`AppSpecBuilder`] rejections. The plans are constructed
/// inside the builder's validity envelope, so this is `Ok` for every
/// `(seed, index)`; the `Result` exists because this module refuses to
/// panic on behalf of a bug.
pub fn generate(seed: u64, index: u64) -> Result<AppSpec, BuildSpecError> {
    let mut rng = TestRng::from_name(&format!("memx-ir/specgen/{seed}/{index}"));
    let (groups, nests, headroom) = plan_strategy().generate(&mut rng);
    build_plan(&format!("gen-{seed}-{index}"), &groups, &nests, headroom)
}

/// Generates the first `count` specs of stream `seed` (see
/// [`generate`]).
///
/// # Errors
///
/// Propagates the first [`generate`] rejection (none occur in
/// practice; see there).
pub fn generate_batch(seed: u64, count: u64) -> Result<Vec<AppSpec>, BuildSpecError> {
    (0..count).map(|i| generate(seed, i)).collect()
}

fn build_plan(
    name: &str,
    groups: &[GroupPlan],
    nests: &[NestPlan],
    headroom: u64,
) -> Result<AppSpec, BuildSpecError> {
    let mut b = AppSpecBuilder::new(name);
    let mut ids = Vec::with_capacity(groups.len());
    for (i, &(words, bitwidth, placement_sel, ports_sel)) in groups.iter().enumerate() {
        // Mostly free placement, occasionally pinned: pinned groups
        // exercise the solvers' placement constraints without starving
        // either side of the search.
        let placement = match placement_sel {
            6 => Placement::OnChip,
            7 => Placement::OffChip,
            _ => Placement::Any,
        };
        let min_ports = if ports_sel == 7 { 2 } else { 1 };
        ids.push(b.basic_group_full(format!("g{i}"), words, bitwidth, placement, min_ports)?);
    }
    for (n, (iterations, accesses)) in nests.iter().enumerate() {
        let nest = b.loop_nest(format!("n{n}"), *iterations)?;
        let mut prev = None;
        for &(group_sel, write, weight, burst_sel) in accesses {
            let kind = if write {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let group = ids[group_sel % ids.len()];
            let a = b.access_full(nest, group, kind, weight, burst_sel == 7)?;
            if let Some(p) = prev {
                b.depend(nest, p, a)?;
            }
            prev = Some(a);
        }
    }
    // Chain-shaped deps make the critical path exactly the body
    // length, so this budget always clears the feasibility check with
    // `headroom`x slack.
    let critical: u64 = nests
        .iter()
        .map(|(iterations, accesses)| iterations.saturating_mul(accesses.len() as u64))
        .sum();
    b.cycle_budget(critical.max(1).saturating_mul(headroom));
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(42, 0).unwrap();
        let b = generate(42, 0).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn streams_and_indices_differ() {
        let a = generate(1, 0).unwrap();
        let b = generate(2, 0).unwrap();
        let c = generate(1, 1).unwrap();
        assert_ne!(a.content_hash(), b.content_hash());
        assert_ne!(a.content_hash(), c.content_hash());
    }

    #[test]
    fn batches_build_and_validate() {
        let specs = generate_batch(7, 32).unwrap();
        assert_eq!(specs.len(), 32);
        for spec in &specs {
            spec.validate().unwrap();
            assert!(spec.cycle_budget() >= spec.min_cycles());
            assert!(!spec.basic_groups().is_empty());
            assert!(!spec.loop_nests().is_empty());
        }
    }
}
