//! Seeded `no-unordered-iter` violations. Never compiled — linted as
//! text by `tests/lints.rs`.

use std::collections::{HashMap, HashSet};

pub fn tally(words: &[&str]) -> usize {
    let mut counts: HashMap<&str, usize> = HashMap::new();
    let mut seen: HashSet<&str> = HashSet::new();
    for w in words {
        *counts.entry(w).or_default() += 1;
        seen.insert(w);
    }
    // A string mention must not be flagged: "HashMap iteration".
    seen.len()
}
