//! Fixture for the err-impl-error lint: public error types with and
//! without a same-file `std::error::Error` impl.

use std::fmt;

/// Caught: public, named `*Error`, no `Error` impl anywhere below.
pub enum NakedError {
    Broken,
}

/// Clean: the impl follows in this file.
pub struct CoveredError {
    pub detail: String,
}

/// Clean: struct form, fully-qualified impl path.
pub enum QualifiedError {
    Oops,
}

/// Clean: not public, so not part of the crate's API surface.
enum PrivateError {
    Hidden,
}

/// Clean: `pub(crate)` is not plain `pub`.
pub(crate) struct ScopedError {
    pub code: u32,
}

/// Not an error type at all, despite living next to them.
pub struct ErrorReport {
    pub lines: usize,
}

// memx-lint: allow(err-impl-error) — fixture exercising suppression.
pub enum WaivedError {
    Tolerated,
}

impl fmt::Display for CoveredError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.detail)
    }
}

impl fmt::Debug for CoveredError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.detail)
    }
}

impl std::error::Error for CoveredError {}

impl fmt::Display for QualifiedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("oops")
    }
}

impl fmt::Debug for QualifiedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("oops")
    }
}

impl std::error::Error for QualifiedError {}

/// A `From` impl mentioning an error type must not count as coverage.
impl From<NakedError> for u32 {
    fn from(_: NakedError) -> u32 {
        0
    }
}
