//! Justified suppressions: every would-be finding carries an
//! `allow` with a reason, so this file must lint clean.

pub fn guarded(v: &[u32]) -> u32 {
    if v.is_empty() {
        return 0;
    }
    // memx-lint: allow(no-panic-paths) — emptiness is checked two lines up.
    let first = v.first().unwrap();
    let last = v.last().expect("non-empty, checked above"); // memx-lint: allow(no-panic-paths) — same emptiness check.
    first + last
}
