//! Seeded `atomics-confined` violations: raw atomics outside the fan
//! harness. Never compiled — linted as text by `tests/lints.rs`.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Sneaky {
    bits: AtomicU64,
}

impl Sneaky {
    pub fn bump(&self) {
        self.bits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn compare(a: u32, b: u32) -> std::cmp::Ordering {
        // cmp::Ordering variants are not memory orderings and must not
        // be flagged.
        a.cmp(&b)
    }
}
