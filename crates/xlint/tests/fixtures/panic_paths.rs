//! Seeded `no-panic-paths` violations. Never compiled — linted as text
//! by `tests/lints.rs` under a solver-crate virtual path.

pub fn broken(v: &[u32]) -> u32 {
    let first = v.first().unwrap();
    let second = v.get(1).expect("has two");
    if *first > *second {
        panic!("unordered");
    }
    match first {
        0 => unreachable!(),
        _ => *first,
    }
}

pub fn fine(v: &[u32]) -> u32 {
    // unwrap_or-style combinators are not panic paths.
    v.first().copied().unwrap_or(0) + v.get(1).copied().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_unwrap() {
        assert_eq!(broken(&[1, 1]), 1);
        let x: Option<u32> = Some(3);
        x.unwrap();
        x.expect("fine in tests");
    }
}
