//! Seeded `no-ambient-state` violations. Never compiled — linted as
//! text by `tests/lints.rs`.

use std::time::{Instant, SystemTime};

pub fn now_ish() -> (Instant, SystemTime, Option<String>) {
    let t = Instant::now();
    let wall = SystemTime::now();
    let knob = std::env::var("MEMX_SECRET_KNOB").ok();
    // env::args is deliberate CLI surface, not ambient state:
    let _argc = std::env::args().count();
    (t, wall, knob)
}
