//! memx-lint self-tests: each lint catches its seeded fixture
//! violation, justified suppressions pass, and the real workspace is
//! clean under the shipped policy.

use std::path::Path;

use xlint::{collect_workspace_files, lint_file, lint_files, Config, Lint};

const PANIC_FIXTURE: &str = include_str!("fixtures/panic_paths.rs");
const ATOMICS_FIXTURE: &str = include_str!("fixtures/atomics.rs");
const UNORDERED_FIXTURE: &str = include_str!("fixtures/unordered_iter.rs");
const AMBIENT_FIXTURE: &str = include_str!("fixtures/ambient_state.rs");
const SUPPRESSED_FIXTURE: &str = include_str!("fixtures/suppressed_ok.rs");
const ERR_IMPL_FIXTURE: &str = include_str!("fixtures/err_impl.rs");

fn names(report: &xlint::FileReport) -> Vec<&'static str> {
    report.findings.iter().map(|f| f.lint).collect()
}

#[test]
fn panic_paths_fixture_is_caught_outside_tests_only() {
    let cfg = Config::workspace();
    let report = lint_file("crates/core/src/fake.rs", PANIC_FIXTURE, &cfg);
    let panics = names(&report)
        .iter()
        .filter(|n| **n == Lint::NoPanicPaths.name())
        .count();
    // unwrap + expect + panic! + unreachable! in `broken`, nothing from
    // `fine` (unwrap_or*) and nothing from the test module.
    assert_eq!(panics, 4, "findings: {:?}", report.findings);
    assert!(report.findings.iter().all(|f| f.line < 20));
}

#[test]
fn panic_paths_scope_is_solver_crates_only() {
    let cfg = Config::workspace();
    let report = lint_file("crates/bench/src/fake.rs", PANIC_FIXTURE, &cfg);
    assert!(
        !names(&report).contains(&Lint::NoPanicPaths.name()),
        "bench crate is outside the panic policy: {:?}",
        report.findings
    );
}

#[test]
fn atomics_fixture_is_caught_outside_the_allowlist() {
    let cfg = Config::workspace();
    let report = lint_file("crates/core/src/engine.rs", ATOMICS_FIXTURE, &cfg);
    let atomics = names(&report)
        .iter()
        .filter(|n| **n == Lint::AtomicsConfined.name())
        .count();
    // AtomicU64 (use + field) and Ordering::Relaxed; cmp::Ordering in
    // the return type must not be flagged.
    assert_eq!(atomics, 3, "findings: {:?}", report.findings);

    let harness = lint_file("crates/core/src/fan.rs", ATOMICS_FIXTURE, &cfg);
    assert!(
        !names(&harness).contains(&Lint::AtomicsConfined.name()),
        "fan harness is allowlisted: {:?}",
        harness.findings
    );
}

#[test]
fn unordered_iter_fixture_is_caught_and_strings_are_not() {
    let cfg = Config::workspace();
    let report = lint_file("crates/bench/src/bin/fake.rs", UNORDERED_FIXTURE, &cfg);
    let hits: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.lint == Lint::NoUnorderedIter.name())
        .collect();
    // use-line (both tokens) + one per declaration line (a lint fires
    // once per token per line); the "HashMap iteration" string mention
    // is not a finding (its line holds only the blanked literal).
    assert_eq!(hits.len(), 4, "findings: {:?}", report.findings);
    assert!(hits.iter().all(|f| f.line <= 9));
}

#[test]
fn unordered_iter_carve_out_is_per_file_not_per_crate() {
    let cfg = Config::workspace();
    // The serve crate's response-map module is scope-carved: header
    // lookups never iterate the map, so `HashMap` is legal there.
    let carved = lint_file("crates/serve/src/http.rs", UNORDERED_FIXTURE, &cfg);
    assert!(
        !names(&carved).contains(&Lint::NoUnorderedIter.name()),
        "http.rs is carved out: {:?}",
        carved.findings
    );
    // The carve-out is the file, not the crate: the same source in any
    // sibling serve module still gets flagged.
    let sibling = lint_file("crates/serve/src/server.rs", UNORDERED_FIXTURE, &cfg);
    assert!(
        names(&sibling).contains(&Lint::NoUnorderedIter.name()),
        "server.rs stays in scope: {:?}",
        sibling.findings
    );
}

#[test]
fn ambient_state_fixture_is_caught_outside_bench_modules() {
    let cfg = Config::workspace();
    let report = lint_file("crates/core/src/fake.rs", AMBIENT_FIXTURE, &cfg);
    let ambient = names(&report)
        .iter()
        .filter(|n| **n == Lint::NoAmbientState.name())
        .count();
    // SystemTime (use line, return type, ::now call) + Instant::now +
    // env::var; env::args stays legal.
    assert_eq!(ambient, 5, "findings: {:?}", report.findings);

    let bench = lint_file("crates/bench/src/experiments.rs", AMBIENT_FIXTURE, &cfg);
    assert!(
        !names(&bench).contains(&Lint::NoAmbientState.name()),
        "experiments module is allowlisted: {:?}",
        bench.findings
    );
}

#[test]
fn err_impl_fixture_flags_only_the_uncovered_public_type() {
    let cfg = Config::workspace();
    let report = lint_file("crates/core/src/fake.rs", ERR_IMPL_FIXTURE, &cfg);
    let hits: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.lint == Lint::ErrImplError.name())
        .collect();
    // NakedError alone: CoveredError and QualifiedError carry impls,
    // PrivateError / ScopedError are not plain `pub`, ErrorReport does
    // not end in `Error`, WaivedError is suppressed, and the
    // `From<NakedError>` impl must not count as coverage.
    assert_eq!(hits.len(), 1, "findings: {:?}", report.findings);
    assert!(hits[0].message.contains("NakedError"), "{}", hits[0]);
    assert!(
        report
            .suppressed
            .iter()
            .any(|f| f.lint == Lint::ErrImplError.name() && f.message.contains("WaivedError")),
        "suppressed: {:?}",
        report.suppressed
    );
}

#[test]
fn err_impl_accepts_an_unqualified_error_impl() {
    let src = "\
use std::error::Error;\n\
pub enum LocalError { Case }\n\
impl std::fmt::Display for LocalError {\n\
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { f.write_str(\"x\") }\n\
}\n\
impl std::fmt::Debug for LocalError {\n\
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { f.write_str(\"x\") }\n\
}\n\
impl Error for LocalError {}\n";
    let report = lint_file("crates/core/src/fake.rs", src, &Config::workspace());
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn justified_suppressions_pass_and_are_counted() {
    let cfg = Config::workspace();
    let report = lint_file("crates/core/src/fake.rs", SUPPRESSED_FIXTURE, &cfg);
    assert!(
        report.findings.is_empty(),
        "suppressed fixture must lint clean: {:?}",
        report.findings
    );
    assert_eq!(report.suppressed.len(), 2);
}

#[test]
fn allow_without_reason_is_itself_a_finding() {
    let src = "pub fn f(v: &[u32]) -> u32 {\n\
               // memx-lint: allow(no-panic-paths)\n\
               v.first().unwrap() + 1\n\
               }\n";
    let cfg = Config::workspace();
    let report = lint_file("crates/core/src/fake.rs", src, &cfg);
    let lints = names(&report);
    assert!(
        lints.contains(&"malformed-directive"),
        "{:?}",
        report.findings
    );
    // The reason-less allow does not suppress: the unwrap still fires.
    assert!(lints.contains(&Lint::NoPanicPaths.name()));
}

#[test]
fn allow_of_unknown_lint_is_a_finding() {
    let src = "// memx-lint: allow(no-such-lint) — because\npub fn f() {}\n";
    let report = lint_file("crates/core/src/fake.rs", src, &Config::workspace());
    assert_eq!(names(&report), vec!["malformed-directive"]);
}

#[test]
fn comments_strings_and_cfg_test_items_are_invisible() {
    let src = "\
// HashMap in a comment is fine\n\
/* and Instant::now() in a block comment */\n\
pub fn f<'a>(x: &'a str) -> String {\n\
    let s = \"HashMap says panic!(now)\";\n\
    let r = r#\"SystemTime in a raw \"string\" too\"#;\n\
    let c = 'x';\n\
    format!(\"{s}{r}{c}{x}\")\n\
}\n\
#[cfg(test)]\n\
use std::collections::HashMap;\n\
#[cfg(test)]\n\
mod tests {\n\
    use std::time::Instant;\n\
    #[test]\n\
    fn t() {\n\
        let _ = Instant::now();\n\
        let _: HashMap<u32, u32> = HashMap::new();\n\
    }\n\
}\n";
    let report = lint_file("crates/core/src/fake.rs", src, &Config::workspace());
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

fn revision_cfg() -> Config {
    Config {
        fingerprinted: vec![(
            "crates/core/src/scbd.rs".to_string(),
            vec!["SCBD_ALGO_REVISION".to_string()],
        )],
        cache_file: "crates/core/src/cache.rs".to_string(),
        ..Config::workspace()
    }
}

const FAKE_CACHE: &str = "\
pub const SCBD_ALGO_REVISION: u32 = 1;\n\
pub fn key() -> u32 { SCBD_ALGO_REVISION }\n";

#[test]
fn revision_guard_catches_a_missing_marker() {
    let files = vec![
        (
            "crates/core/src/scbd.rs".to_string(),
            "pub const SAME_GROUP_COST: f64 = 1.0;\n".to_string(),
        ),
        (
            "crates/core/src/cache.rs".to_string(),
            FAKE_CACHE.to_string(),
        ),
    ];
    let report = lint_files(&files, &revision_cfg());
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert_eq!(report.findings[0].lint, Lint::RevisionGuard.name());
    assert!(report.findings[0].message.contains("SCBD_ALGO_REVISION"));
}

#[test]
fn revision_guard_passes_with_the_marker() {
    let files =
        vec![
        (
            "crates/core/src/scbd.rs".to_string(),
            "// memx-lint: fingerprinted(SCBD_ALGO_REVISION) — cost weights feed the cache key.\n\
             pub const SAME_GROUP_COST: f64 = 1.0;\n"
                .to_string(),
        ),
        ("crates/core/src/cache.rs".to_string(), FAKE_CACHE.to_string()),
    ];
    let report = lint_files(&files, &revision_cfg());
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn revision_guard_rejects_markers_cache_does_not_reference() {
    let files =
        vec![
        (
            "crates/core/src/scbd.rs".to_string(),
            "// memx-lint: fingerprinted(SCBD_ALGO_REVISION) — cost weights feed the cache key.\n\
             // memx-lint: fingerprinted(NO_SUCH_REVISION) — stale marker.\n\
             pub const SAME_GROUP_COST: f64 = 1.0;\n"
                .to_string(),
        ),
        ("crates/core/src/cache.rs".to_string(), FAKE_CACHE.to_string()),
    ];
    let report = lint_files(&files, &revision_cfg());
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert!(report.findings[0].message.contains("NO_SUCH_REVISION"));
}

#[test]
fn the_real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/xlint sits two levels under the workspace root");
    let files = collect_workspace_files(root).expect("workspace walks");
    assert!(files.len() > 40, "walked only {} files", files.len());
    let report = lint_files(&files, &Config::workspace());
    assert!(
        report.findings.is_empty(),
        "workspace must lint clean:\n{}",
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.suppressed > 0,
        "the justified allows should register"
    );
}
