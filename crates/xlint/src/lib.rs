//! `memx-lint`: a registry-free static analyzer for the memexplore
//! workspace.
//!
//! The exploration pipeline pins its claims on invariants a compiler
//! cannot check for us: solver crates must surface failures as
//! `Result`s instead of panicking, the deterministic fan-out
//! choreography must be the *only* place that touches atomics, crates
//! whose stdout is golden-pinned must never iterate a `HashMap`, and
//! modules whose constants feed a cache fingerprint must say so next to
//! the constants. This crate enforces those invariants with a
//! hand-rolled lexer (no `syn` — the build environment is offline) and
//! token-pattern rules over the blanked source.
//!
//! # Lints (all deny-by-default)
//!
//! | lint | invariant |
//! |------|-----------|
//! | `no-panic-paths` | no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` in non-test code of the solver crates (`core`, `ir`, `memlib`, `profile`) |
//! | `atomics-confined` | atomic types and memory orderings appear only in `core::fan` plus an explicit allowlist (cache statistics, profile counters) |
//! | `no-unordered-iter` | `HashMap`/`HashSet` are banned everywhere golden stdout could observe their iteration order (the whole workspace, after the BTreeMap conversion) |
//! | `no-ambient-state` | `Instant::now`/`SystemTime`/`env::var` only in the bench-facing experiment module |
//! | `revision-guard` | fingerprinted modules carry a `// memx-lint: fingerprinted(<CONST>)` marker and the named const/fn exists in and is referenced by `core::cache` |
//! | `err-impl-error` | every `pub` type named `*Error` has an `impl std::error::Error for` it in the declaring file (callers must be able to `?`-chain and `source()`-walk any public failure) |
//!
//! # Suppressions
//!
//! A finding is suppressed by `// memx-lint: allow(<lint>) — <reason>`
//! on the same line or the line directly above it. The reason is
//! mandatory: an allow without one is itself reported
//! (`malformed-directive`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// The six workspace lints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// Panicking constructs in non-test solver code.
    NoPanicPaths,
    /// Atomics outside the fan harness and its allowlist.
    AtomicsConfined,
    /// Iteration-order-unstable collections.
    NoUnorderedIter,
    /// Wall clocks and environment reads outside bench modules.
    NoAmbientState,
    /// Missing or dangling cache-fingerprint markers.
    RevisionGuard,
    /// `pub` error types without a `std::error::Error` impl.
    ErrImplError,
}

impl Lint {
    /// Every lint, in reporting order.
    pub const ALL: [Lint; 6] = [
        Lint::NoPanicPaths,
        Lint::AtomicsConfined,
        Lint::NoUnorderedIter,
        Lint::NoAmbientState,
        Lint::RevisionGuard,
        Lint::ErrImplError,
    ];

    /// The kebab-case name used in diagnostics and `allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            Lint::NoPanicPaths => "no-panic-paths",
            Lint::AtomicsConfined => "atomics-confined",
            Lint::NoUnorderedIter => "no-unordered-iter",
            Lint::NoAmbientState => "no-ambient-state",
            Lint::RevisionGuard => "revision-guard",
            Lint::ErrImplError => "err-impl-error",
        }
    }

    /// Parses a lint name as written in an `allow(...)` directive.
    pub fn from_name(name: &str) -> Option<Lint> {
        Lint::ALL.into_iter().find(|l| l.name() == name)
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One diagnostic: a lint fired at a source location.
///
/// `lint` is the lint *name* rather than the enum so that directive
/// errors (`malformed-directive`) share the same reporting path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Lint name (one of [`Lint::name`] or `"malformed-directive"`).
    pub lint: &'static str,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// A `// memx-lint: ...` comment directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// `allow(<lint>) — <reason>`: suppress the lint on this or the
    /// next code line.
    Allow {
        /// The named lint, if the name parsed.
        lint: Option<Lint>,
        /// The name exactly as written.
        raw: String,
        /// Whether a non-empty reason follows the closing paren.
        has_reason: bool,
    },
    /// `fingerprinted(<CONST>)`: this module feeds the named cache
    /// revision const / fingerprint fn.
    Fingerprinted {
        /// The named const or fn in `core::cache`.
        name: String,
    },
    /// A `memx-lint:` comment that is neither of the above.
    Unknown,
}

/// Lexer output: the source with comments, literals and test regions
/// blanked, plus the extracted comment directives.
#[derive(Debug)]
pub struct Stripped {
    /// Per-line code; comments and string/char contents replaced by
    /// spaces, test-region lines emptied.
    pub code: Vec<String>,
    /// Per-line comment text (empty for lines without comments; test
    /// regions emptied).
    pub comments: Vec<String>,
    /// 0-based line → directive parsed from that line's comment.
    pub directives: Vec<(usize, Directive)>,
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Strips `source` down to lintable code: comments and literal
/// contents are blanked (quotes kept so token boundaries survive),
/// `#[cfg(test)]` regions and `mod tests` bodies are emptied, and
/// `memx-lint:` comment directives are collected.
pub fn strip(source: &str) -> Stripped {
    let chars: Vec<char> = source.chars().collect();
    let mut code = vec![String::new()];
    let mut comments = vec![String::new()];

    // Directives are only honored in plain `//` / `/* */` comments:
    // doc comments (`///`, `//!`, `/** */`, `/*! */`) describe the
    // directives without issuing them, so their text is discarded
    // (the `bool` is "collect into the comment buffer").
    enum St {
        Code,
        Line(bool),
        Block(u32, bool),
        Str,
        RawStr(u32),
        Char,
    }
    let mut st = St::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            // A newline ends line comments but not block comments or
            // (raw/regular) string literals.
            if matches!(st, St::Line(_)) {
                st = St::Code;
            }
            code.push(String::new());
            comments.push(String::new());
            i += 1;
            continue;
        }
        let line = code.len() - 1;
        match st {
            St::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    let doc = matches!(chars.get(i + 2), Some(&'/') | Some(&'!'));
                    st = St::Line(!doc);
                    code[line].push_str("  ");
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    let doc = matches!(chars.get(i + 2), Some(&'*') | Some(&'!'))
                        && chars.get(i + 3) != Some(&'/');
                    st = St::Block(1, !doc);
                    code[line].push_str("  ");
                    i += 2;
                } else if c == '"' {
                    st = St::Str;
                    code[line].push('"');
                    i += 1;
                } else if c == 'r'
                    && !prev_is_ident(&chars, i)
                    && raw_str_hashes(&chars, i + 1).is_some()
                {
                    let n = raw_str_hashes(&chars, i + 1).unwrap_or(0);
                    st = St::RawStr(n);
                    code[line].push('"');
                    i += 2 + n as usize; // r, hashes, quote
                } else if c == 'b'
                    && !prev_is_ident(&chars, i)
                    && chars.get(i + 1) == Some(&'r')
                    && raw_str_hashes(&chars, i + 2).is_some()
                {
                    let n = raw_str_hashes(&chars, i + 2).unwrap_or(0);
                    st = St::RawStr(n);
                    code[line].push('"');
                    i += 3 + n as usize;
                } else if c == '\'' {
                    // Lifetime (`'a`) vs char literal (`'a'`): a
                    // lifetime is an identifier not closed by a quote.
                    let next_ident = chars.get(i + 1).copied().is_some_and(is_ident_char);
                    let closes = chars.get(i + 2) == Some(&'\'');
                    if next_ident && !closes {
                        code[line].push('\'');
                        i += 1;
                    } else {
                        st = St::Char;
                        code[line].push('\'');
                        i += 1;
                    }
                } else {
                    code[line].push(c);
                    i += 1;
                }
            }
            St::Line(collect) => {
                code[line].push(' ');
                if collect {
                    comments[line].push(c);
                }
                i += 1;
            }
            St::Block(d, collect) => {
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    st = St::Block(d + 1, collect);
                    i += 2;
                } else if c == '*' && chars.get(i + 1) == Some(&'/') {
                    st = if d == 1 {
                        St::Code
                    } else {
                        St::Block(d - 1, collect)
                    };
                    code[line].push_str("  ");
                    i += 2;
                } else {
                    code[line].push(' ');
                    if collect {
                        comments[line].push(c);
                    }
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    code[line].push_str("  ");
                    i += 2;
                } else if c == '"' {
                    st = St::Code;
                    code[line].push('"');
                    i += 1;
                } else {
                    code[line].push(' ');
                    i += 1;
                }
            }
            St::RawStr(n) => {
                if c == '"' && hashes_follow(&chars, i + 1, n) {
                    st = St::Code;
                    code[line].push('"');
                    i += 1 + n as usize;
                } else {
                    code[line].push(' ');
                    i += 1;
                }
            }
            St::Char => {
                if c == '\\' {
                    code[line].push_str("  ");
                    i += 2;
                } else if c == '\'' {
                    st = St::Code;
                    code[line].push('\'');
                    i += 1;
                } else {
                    code[line].push(' ');
                    i += 1;
                }
            }
        }
    }

    mask_test_regions(&mut code, &mut comments);

    let mut directives = Vec::new();
    for (idx, comment) in comments.iter().enumerate() {
        if let Some(d) = parse_directive(comment) {
            directives.push((idx, d));
        }
    }
    Stripped {
        code,
        comments,
        directives,
    }
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && is_ident_char(chars[i - 1])
}

/// If `chars[i..]` opens a raw string (`#*"`), returns the hash count.
fn raw_str_hashes(chars: &[char], mut i: usize) -> Option<u32> {
    let mut n = 0;
    while chars.get(i) == Some(&'#') {
        n += 1;
        i += 1;
    }
    (chars.get(i) == Some(&'"')).then_some(n)
}

fn hashes_follow(chars: &[char], mut i: usize, n: u32) -> bool {
    for _ in 0..n {
        if chars.get(i) != Some(&'#') {
            return false;
        }
        i += 1;
    }
    true
}

/// Empties every line belonging to a `#[cfg(test)]` item or a
/// `mod tests { ... }` body, by brace-counting the blanked code.
fn mask_test_regions(code: &mut [String], comments: &mut [String]) {
    let mut line = 0;
    while line < code.len() {
        let start_col = if let Some(col) = code[line].find("#[cfg(test)]") {
            Some(col + "#[cfg(test)]".len())
        } else {
            find_mod_tests(&code[line])
        };
        let Some(col) = start_col else {
            line += 1;
            continue;
        };
        let end = region_end(code, line, col);
        for masked in code.iter_mut().take(end + 1).skip(line) {
            masked.clear();
        }
        for masked in comments.iter_mut().take(end + 1).skip(line) {
            masked.clear();
        }
        line = end + 1;
    }
}

/// Finds a `mod tests` token pair and returns the column after it.
fn find_mod_tests(line: &str) -> Option<usize> {
    let col = line.find("mod tests")?;
    let bytes = line.as_bytes();
    let before_ok = col == 0 || !is_ident_char(bytes[col - 1] as char);
    let after = col + "mod tests".len();
    let after_ok = after >= bytes.len() || !is_ident_char(bytes[after] as char);
    (before_ok && after_ok).then_some(after)
}

/// Scans forward from (`line`, `col`) for the item the attribute /
/// module header introduces: a `;` ends it immediately (attribute on a
/// statement), a `{` opens a body that is brace-counted to its close.
/// Returns the 0-based last line of the region.
fn region_end(code: &[String], mut line: usize, mut col: usize) -> usize {
    let mut depth = 0usize;
    loop {
        let chars: Vec<char> = code[line].chars().collect();
        while col < chars.len() {
            match chars[col] {
                ';' if depth == 0 => return line,
                '{' => depth += 1,
                '}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return line;
                    }
                }
                _ => {}
            }
            col += 1;
        }
        line += 1;
        col = 0;
        if line >= code.len() {
            return code.len() - 1;
        }
    }
}

/// Parses a `memx-lint:` directive out of one line's comment text.
fn parse_directive(comment: &str) -> Option<Directive> {
    let pos = comment.find("memx-lint:")?;
    let rest = comment[pos + "memx-lint:".len()..].trim_start();
    if let Some(inner) = rest.strip_prefix("allow(") {
        let close = inner.find(')')?;
        let raw = inner[..close].trim().to_string();
        let reason = inner[close + 1..]
            .trim_matches(|c: char| c.is_whitespace() || matches!(c, '—' | '–' | '-' | ':' | ','));
        return Some(Directive::Allow {
            lint: Lint::from_name(&raw),
            raw,
            has_reason: !reason.is_empty(),
        });
    }
    if let Some(inner) = rest.strip_prefix("fingerprinted(") {
        let close = inner.find(')')?;
        return Some(Directive::Fingerprinted {
            name: inner[..close].trim().to_string(),
        });
    }
    Some(Directive::Unknown)
}

/// Where each lint applies. Paths are workspace-relative with `/`
/// separators.
#[derive(Debug, Clone)]
pub struct Config {
    /// Path prefixes where `no-panic-paths` is enforced.
    pub panic_prefixes: Vec<String>,
    /// Files exempt from `atomics-confined`.
    pub atomics_allowed: Vec<String>,
    /// Files exempt from `no-ambient-state`.
    pub ambient_allowed: Vec<String>,
    /// Files exempt from `no-unordered-iter`. Scope carve-out for maps
    /// that are never iterated into output (e.g. the serve crate's
    /// case-insensitive request-header lookup) — golden-pinned crates
    /// stay under the workspace-wide ban.
    pub unordered_allowed: Vec<String>,
    /// `revision-guard` table: file → required marker names.
    pub fingerprinted: Vec<(String, Vec<String>)>,
    /// The file that must define and reference every marker name.
    pub cache_file: String,
}

impl Config {
    /// The memexplore workspace policy.
    pub fn workspace() -> Self {
        let s = String::from;
        Config {
            panic_prefixes: vec![
                s("crates/core/src/"),
                // The ir prefix also covers the textual front-end
                // (spec_text/parse/specgen): a malformed .mxspec file
                // or a hostile serve `spec_text` body must surface as
                // a positioned SpecTextError, never a parser panic.
                s("crates/ir/src/"),
                s("crates/memlib/src/"),
                s("crates/profile/src/"),
                // The daemon must not take itself down on a bad
                // request: handler code returns errors to the wire.
                s("crates/serve/src/"),
            ],
            atomics_allowed: vec![
                // The audited fan-out harness: the only algorithmic
                // atomics in the tree.
                s("crates/core/src/fan.rs"),
                // Monotone hit/miss statistics on the evaluation cache.
                s("crates/core/src/cache.rs"),
                // The profiling counter primitive itself.
                s("crates/profile/src/counter.rs"),
            ],
            ambient_allowed: vec![
                // The bench experiment harness: reads MEMX_* knobs and
                // times runs by design.
                s("crates/bench/src/experiments.rs"),
                // The daemon's only wall-clock surface: uptime and
                // Retry-After bookkeeping. Request handling itself
                // derives everything from the request body.
                s("crates/serve/src/telemetry.rs"),
            ],
            unordered_allowed: vec![
                // Request headers are a case-insensitive lookup table,
                // never iterated into a response; responses are built
                // from order-preserving vectors.
                s("crates/serve/src/http.rs"),
            ],
            fingerprinted: vec![
                (s("crates/core/src/scbd.rs"), vec![s("SCBD_ALGO_REVISION")]),
                (
                    s("crates/core/src/alloc.rs"),
                    vec![s("ALLOC_ALGO_REVISION"), s("OFF_CHIP_BLOCKS_ALGO_REVISION")],
                ),
                (
                    s("crates/memlib/src/timing.rs"),
                    vec![s("scbd_model_fingerprint"), s("alloc_model_fingerprint")],
                ),
                (
                    s("crates/memlib/src/calibration.rs"),
                    vec![s("alloc_model_fingerprint")],
                ),
                (
                    s("crates/memlib/src/onchip.rs"),
                    vec![s("alloc_model_fingerprint")],
                ),
                (
                    s("crates/memlib/src/offchip.rs"),
                    vec![s("alloc_model_fingerprint")],
                ),
            ],
            cache_file: s("crates/core/src/cache.rs"),
        }
    }
}

/// True when `line` contains `tok` with non-identifier characters on
/// both sides.
fn has_token(line: &str, tok: &str) -> bool {
    token_col(line, tok).is_some()
}

/// Column of the first word-boundary occurrence of `tok` in `line`.
fn token_col(line: &str, tok: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = line[from..].find(tok) {
        let col = from + rel;
        let before_ok = col == 0 || !is_ident_char(line[..col].chars().next_back().unwrap_or(' '));
        let after = col + tok.len();
        let after_ok = line[after..]
            .chars()
            .next()
            .is_none_or(|c| !is_ident_char(c));
        if before_ok && after_ok {
            return Some(col);
        }
        from = col + tok.len().max(1);
    }
    None
}

/// The identifier starting at or after `col` (leading whitespace
/// skipped), when the next non-space characters form one.
fn ident_after(line: &str, col: usize) -> Option<&str> {
    let rest = line.get(col..)?.trim_start();
    let end = rest.find(|c: char| !is_ident_char(c)).unwrap_or(rest.len());
    if end == 0 {
        None
    } else {
        Some(&rest[..end])
    }
}

/// True when `line` calls `.name(` (a method, not `name_or`-style
/// variants — the `(` must directly follow).
fn calls_method(line: &str, name: &str) -> bool {
    let pat = format!(".{name}(");
    line.contains(&pat)
}

/// True when `line` invokes the macro `name!(` at a word boundary.
fn calls_macro(line: &str, name: &str) -> bool {
    let pat = format!("{name}!(");
    let mut from = 0;
    while let Some(rel) = line[from..].find(&pat) {
        let col = from + rel;
        let before_ok = col == 0 || !is_ident_char(line[..col].chars().next_back().unwrap_or(' '));
        if before_ok {
            return true;
        }
        from = col + pat.len();
    }
    false
}

/// Per-file lint result, before workspace-level rules.
#[derive(Debug)]
pub struct FileReport {
    /// Unsuppressed findings.
    pub findings: Vec<Finding>,
    /// Findings silenced by a justified `allow`.
    pub suppressed: Vec<Finding>,
    /// `fingerprinted(...)` marker names declared in this file.
    pub markers: Vec<String>,
}

const ATOMIC_TOKENS: [&str; 7] = [
    "AtomicU64",
    "AtomicUsize",
    "AtomicU32",
    "AtomicU8",
    "AtomicBool",
    "AtomicI64",
    "AtomicIsize",
];
const ORDERING_TOKENS: [&str; 5] = [
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

/// Runs the per-file lints on one source file.
pub fn lint_file(path: &str, source: &str, cfg: &Config) -> FileReport {
    let stripped = strip(source);
    let mut raw: Vec<Finding> = Vec::new();
    let mut push = |lint: Lint, line: usize, message: String| {
        raw.push(Finding {
            lint: lint.name(),
            file: path.to_string(),
            line: line + 1,
            message,
        });
    };

    let panic_scoped = cfg.panic_prefixes.iter().any(|p| path.starts_with(p));
    let atomics_scoped = !cfg.atomics_allowed.iter().any(|p| p == path);
    let ambient_scoped = !cfg.ambient_allowed.iter().any(|p| p == path);
    let unordered_scoped = !cfg.unordered_allowed.iter().any(|p| p == path);

    for (idx, line) in stripped.code.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        if panic_scoped {
            for m in ["unwrap", "expect"] {
                if calls_method(line, m) {
                    push(
                        Lint::NoPanicPaths,
                        idx,
                        format!("`.{m}()` in non-test solver code; return a Result or justify with an allow"),
                    );
                }
            }
            for m in ["panic", "unreachable", "todo", "unimplemented"] {
                if calls_macro(line, m) {
                    push(
                        Lint::NoPanicPaths,
                        idx,
                        format!("`{m}!` in non-test solver code; return a Result or justify with an allow"),
                    );
                }
            }
        }
        if atomics_scoped {
            for tok in ATOMIC_TOKENS.iter().chain(ORDERING_TOKENS.iter()) {
                if has_token(line, tok) {
                    push(
                        Lint::AtomicsConfined,
                        idx,
                        format!(
                            "`{tok}` outside the audited fan harness (core::fan) and its allowlist"
                        ),
                    );
                }
            }
        }
        if unordered_scoped {
            for tok in ["HashMap", "HashSet"] {
                if has_token(line, tok) {
                    push(
                        Lint::NoUnorderedIter,
                        idx,
                        format!("`{tok}` has unstable iteration order; use BTreeMap/BTreeSet in golden-pinned crates"),
                    );
                }
            }
        }
        if ambient_scoped {
            if has_token(line, "Instant::now") {
                push(
                    Lint::NoAmbientState,
                    idx,
                    "`Instant::now` outside bench-facing modules makes results time-dependent"
                        .to_string(),
                );
            }
            if has_token(line, "SystemTime") {
                push(
                    Lint::NoAmbientState,
                    idx,
                    "`SystemTime` outside bench-facing modules makes results time-dependent"
                        .to_string(),
                );
            }
            for tok in ["env::var", "env::var_os"] {
                if let Some(col) = token_col(line, tok) {
                    if line[col + tok.len()..].starts_with('(') {
                        push(
                            Lint::NoAmbientState,
                            idx,
                            format!("`{tok}` outside bench-facing modules makes results environment-dependent"),
                        );
                    }
                }
            }
        }
    }

    // err-impl-error is a two-pass rule: collect every `pub ... Error`
    // type declaration and every `impl ... Error for <Name>` line, then
    // flag the declarations left unmatched. Same-file matching is
    // deliberate — the workspace convention keeps an error type's
    // `std::error::Error` impl next to its definition.
    let mut error_decls: Vec<(usize, String)> = Vec::new();
    let mut error_impls: BTreeSet<String> = BTreeSet::new();
    for (idx, line) in stripped.code.iter().enumerate() {
        for kw in ["enum", "struct"] {
            if let Some(col) = token_col(line, kw) {
                // Plain `pub` only: `pub(crate)` types are not public
                // API, so their error ergonomics are a local concern.
                let public = token_col(line, "pub")
                    .is_some_and(|p| p < col && line[p + 3..].starts_with(char::is_whitespace));
                if public {
                    if let Some(name) = ident_after(line, col + kw.len()) {
                        if name.ends_with("Error") {
                            error_decls.push((idx, name.to_string()));
                        }
                    }
                }
            }
        }
        if has_token(line, "impl") {
            if let Some(col) = token_col(line, "for") {
                // `impl Error for X` / `impl std::error::Error for X`,
                // but not `impl Display for X` or `impl From<XError>`.
                if line[..col].trim_end().ends_with("Error") {
                    if let Some(name) = ident_after(line, col + "for".len()) {
                        error_impls.insert(name.to_string());
                    }
                }
            }
        }
    }
    for (idx, name) in error_decls {
        if !error_impls.contains(&name) {
            push(
                Lint::ErrImplError,
                idx,
                format!(
                    "`pub` error type `{name}` has no `impl std::error::Error` in this file; callers cannot `?`-chain or `source()`-walk it"
                ),
            );
        }
    }

    apply_suppressions(path, &stripped, raw)
}

/// Applies `allow` directives: a directive covers its own line and the
/// next non-blank code line. Malformed directives become findings.
fn apply_suppressions(path: &str, stripped: &Stripped, raw: Vec<Finding>) -> FileReport {
    // 0-based line → lints allowed there.
    let mut allowed: BTreeMap<usize, BTreeSet<Lint>> = BTreeMap::new();
    let mut findings: Vec<Finding> = Vec::new();
    let mut markers: Vec<String> = Vec::new();

    for (idx, directive) in &stripped.directives {
        match directive {
            Directive::Allow {
                lint,
                raw,
                has_reason,
            } => {
                let Some(lint) = lint else {
                    findings.push(Finding {
                        lint: "malformed-directive",
                        file: path.to_string(),
                        line: idx + 1,
                        message: format!("allow names unknown lint `{raw}`"),
                    });
                    continue;
                };
                if !has_reason {
                    findings.push(Finding {
                        lint: "malformed-directive",
                        file: path.to_string(),
                        line: idx + 1,
                        message: format!(
                            "allow({lint}) carries no reason; write `allow({lint}) — <why this is safe>`"
                        ),
                    });
                    continue;
                }
                allowed.entry(*idx).or_default().insert(*lint);
                // The next non-blank code line is covered too.
                if let Some(next) = stripped
                    .code
                    .iter()
                    .enumerate()
                    .skip(idx + 1)
                    .find(|(_, l)| !l.trim().is_empty())
                    .map(|(j, _)| j)
                {
                    allowed.entry(next).or_default().insert(*lint);
                }
            }
            Directive::Fingerprinted { name } => markers.push(name.clone()),
            Directive::Unknown => findings.push(Finding {
                lint: "malformed-directive",
                file: path.to_string(),
                line: idx + 1,
                message: "unrecognized memx-lint directive; expected allow(<lint>) or fingerprinted(<CONST>)"
                    .to_string(),
            }),
        }
    }

    let mut suppressed: Vec<Finding> = Vec::new();
    for f in raw {
        let lint = Lint::from_name(f.lint);
        let is_allowed = lint.is_some_and(|l| {
            allowed
                .get(&(f.line - 1))
                .is_some_and(|lints| lints.contains(&l))
        });
        if is_allowed {
            suppressed.push(f);
        } else {
            findings.push(f);
        }
    }
    FileReport {
        findings,
        suppressed,
        markers,
    }
}

/// Workspace lint result.
#[derive(Debug)]
pub struct Report {
    /// Number of files scanned.
    pub files: usize,
    /// Unsuppressed findings, sorted by (file, line).
    pub findings: Vec<Finding>,
    /// Count of findings silenced by justified allows.
    pub suppressed: usize,
}

/// Lints a set of `(workspace-relative path, source)` files: per-file
/// rules plus the cross-file `revision-guard`.
pub fn lint_files(files: &[(String, String)], cfg: &Config) -> Report {
    let mut findings = Vec::new();
    let mut suppressed = 0;
    let mut markers: BTreeMap<&str, Vec<String>> = BTreeMap::new();
    for (path, source) in files {
        let report = lint_file(path, source, cfg);
        findings.extend(report.findings);
        suppressed += report.suppressed.len();
        markers.insert(path, report.markers);
    }

    // revision-guard: every fingerprinted module carries its markers,
    // and every marker names a const/fn that core::cache defines AND
    // references (>= 2 word occurrences in its blanked code).
    let cache_code: Option<String> = files
        .iter()
        .find(|(p, _)| *p == cfg.cache_file)
        .map(|(_, src)| strip(src).code.join("\n"));
    let cache_mentions = |name: &str| -> usize {
        let Some(code) = cache_code.as_deref() else {
            return 0;
        };
        let mut count = 0;
        let mut from = 0;
        while let Some(col) = token_col(&code[from..], name) {
            count += 1;
            from += col + name.len();
        }
        count
    };
    if cache_code.is_none() && !cfg.fingerprinted.is_empty() {
        findings.push(Finding {
            lint: Lint::RevisionGuard.name(),
            file: cfg.cache_file.clone(),
            line: 1,
            message: "cache file not in the scanned set; revision markers cannot be validated"
                .to_string(),
        });
    }
    for (file, consts) in &cfg.fingerprinted {
        let Some(found) = markers.get(file.as_str()) else {
            findings.push(Finding {
                lint: Lint::RevisionGuard.name(),
                file: file.clone(),
                line: 1,
                message: "fingerprinted module not in the scanned set".to_string(),
            });
            continue;
        };
        for c in consts {
            if !found.contains(c) {
                findings.push(Finding {
                    lint: Lint::RevisionGuard.name(),
                    file: file.clone(),
                    line: 1,
                    message: format!(
                        "module feeds cache key `{c}` but carries no `// memx-lint: fingerprinted({c})` marker"
                    ),
                });
            }
        }
    }
    for (path, names) in &markers {
        for name in names {
            if cache_code.is_some() && cache_mentions(name) < 2 {
                findings.push(Finding {
                    lint: Lint::RevisionGuard.name(),
                    file: path.to_string(),
                    line: 1,
                    message: format!(
                        "marker names `{name}`, which {} does not both define and reference",
                        cfg.cache_file
                    ),
                });
            }
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Report {
        files: files.len(),
        findings,
        suppressed,
    }
}

/// Directory names never descended into: build output, vendored shims,
/// and test-only trees (integration tests, benches, lint fixtures are
/// exercised by their own harnesses, not production invariants).
pub const EXCLUDED_DIRS: [&str; 7] = [
    "target", "vendor", "tests", "benches", "examples", "fixtures", ".git",
];

/// Collects every lintable `.rs` file under `root`'s `crates/` and
/// `src/` trees, as `(workspace-relative path, source)`, sorted by
/// path.
pub fn collect_workspace_files(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    for top in ["crates", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(root, &dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if EXCLUDED_DIRS.iter().any(|d| *d == name) {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, fs::read_to_string(&path)?));
        }
    }
    Ok(())
}
