//! `memx-lint` CLI: lints the memexplore workspace invariants.
//!
//! ```text
//! memx-lint --workspace          # lint crates/ and src/ under the workspace root
//! memx-lint path/to/file.rs ...  # lint explicit files
//! ```
//!
//! Prints one `file:line: lint: message` diagnostic per finding, then a
//! machine-readable summary line
//! `memx-lint {"files":N,"findings":M,"suppressed":K}`, and exits
//! nonzero when any unsuppressed finding remains.

use std::path::PathBuf;
use std::process::ExitCode;

use xlint::{collect_workspace_files, lint_files, Config};

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workspace = args.iter().any(|a| a == "--workspace");
    let explicit: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let files = if workspace || explicit.is_empty() {
        let Some(root) = find_workspace_root() else {
            eprintln!(
                "memx-lint: no workspace root ([workspace] Cargo.toml) above the current directory"
            );
            return ExitCode::from(2);
        };
        match collect_workspace_files(&root) {
            Ok(files) => files,
            Err(e) => {
                eprintln!("memx-lint: walking workspace: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let mut files = Vec::new();
        for path in explicit {
            match std::fs::read_to_string(path) {
                Ok(src) => files.push((path.replace('\\', "/"), src)),
                Err(e) => {
                    eprintln!("memx-lint: reading {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        files
    };

    let report = lint_files(&files, &Config::workspace());
    for finding in &report.findings {
        println!("{finding}");
    }
    println!(
        "memx-lint {{\"files\":{},\"findings\":{},\"suppressed\":{}}}",
        report.files,
        report.findings.len(),
        report.suppressed
    );
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
