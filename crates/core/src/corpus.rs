//! The documented workload corpus: textual specs loaded from disk.
//!
//! A *corpus entry* is one `.mxspec` file (grammar in
//! `docs/spec_format.md`) describing a demonstrator application —
//! motion estimation, wavelet coding, convolution tiling, the paper's
//! cavity detector. The repository ships them under `corpus/`, each
//! documented in `docs/corpus.md`; [`load_dir`] reads any directory
//! with the same shape, so private workload sets plug straight into
//! the same runners.
//!
//! Loading is deterministic: entries come back sorted by file name,
//! and every entry carries its raw text next to the parsed
//! [`AppSpec`], so callers can verify the printer round-trip or
//! re-serve the original bytes without touching the filesystem again.

use std::error::Error;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use memx_ir::{parse_spec, AppSpec, SpecTextError};

/// One loaded corpus workload: the file it came from, its raw text and
/// the parsed specification.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Entry name: the file stem (`corpus/foo.mxspec` → `foo`).
    pub name: String,
    /// The file the entry was read from.
    pub path: PathBuf,
    /// Raw file contents, exactly as read.
    pub text: String,
    /// The parsed specification.
    pub spec: AppSpec,
}

/// Errors loading a corpus directory.
#[derive(Debug)]
pub enum CorpusError {
    /// The directory or a spec file could not be read.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A spec file failed to parse; the diagnostic carries the line
    /// and column inside that file.
    Parse {
        /// The offending file.
        path: PathBuf,
        /// The parser diagnostic.
        source: SpecTextError,
    },
    /// The directory exists but holds no `.mxspec` files — almost
    /// always a wrong path, so it is an error rather than an empty
    /// result.
    Empty {
        /// The directory that was scanned.
        path: PathBuf,
    },
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Io { path, source } => {
                write!(f, "corpus read failed at {}: {source}", path.display())
            }
            CorpusError::Parse { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            CorpusError::Empty { path } => {
                write!(f, "no .mxspec files under {}", path.display())
            }
        }
    }
}

impl Error for CorpusError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CorpusError::Io { source, .. } => Some(source),
            CorpusError::Parse { source, .. } => Some(source),
            CorpusError::Empty { .. } => None,
        }
    }
}

/// Loads every `.mxspec` file directly under `dir`, sorted by file
/// name. Non-spec files are ignored; subdirectories are not descended
/// into.
///
/// # Errors
///
/// [`CorpusError::Io`] if the directory or a file cannot be read,
/// [`CorpusError::Parse`] (with file, line and column) if a spec is
/// malformed, and [`CorpusError::Empty`] if no `.mxspec` file exists —
/// a silent empty corpus would make every downstream gate vacuously
/// green.
pub fn load_dir(dir: &Path) -> Result<Vec<CorpusEntry>, CorpusError> {
    let io = |path: &Path, source: std::io::Error| CorpusError::Io {
        path: path.to_path_buf(),
        source,
    };
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in fs::read_dir(dir).map_err(|e| io(dir, e))? {
        let entry = entry.map_err(|e| io(dir, e))?;
        let path = entry.path();
        if path.is_file() && path.extension().is_some_and(|x| x == "mxspec") {
            paths.push(path);
        }
    }
    paths.sort();
    let mut entries = Vec::with_capacity(paths.len());
    for path in paths {
        let text = fs::read_to_string(&path).map_err(|e| io(&path, e))?;
        let spec = parse_spec(&text).map_err(|source| CorpusError::Parse {
            path: path.clone(),
            source,
        })?;
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        entries.push(CorpusEntry {
            name,
            path,
            text,
            spec,
        });
    }
    if entries.is_empty() {
        return Err(CorpusError::Empty {
            path: dir.to_path_buf(),
        });
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memx_ir::print_spec;

    fn repo_corpus() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../corpus")
    }

    #[test]
    fn the_shipped_corpus_loads_sorted_and_round_trips() {
        let entries = load_dir(&repo_corpus()).unwrap();
        assert!(entries.len() >= 4, "corpus shrank: {}", entries.len());
        let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        for e in &entries {
            let reparsed = parse_spec(&print_spec(&e.spec)).unwrap();
            assert_eq!(e.spec, reparsed, "{}", e.name);
            assert_eq!(e.spec.content_hash(), reparsed.content_hash());
            assert!(e.spec.cycle_budget() >= e.spec.min_cycles(), "{}", e.name);
        }
    }

    #[test]
    fn the_paper_demonstrators_are_present() {
        let entries = load_dir(&repo_corpus()).unwrap();
        for wanted in [
            "cavity_detector",
            "conv_tiling",
            "motion_estimation",
            "wavelet_spiht",
        ] {
            assert!(
                entries.iter().any(|e| e.name == wanted),
                "missing corpus entry `{wanted}`"
            );
        }
    }

    #[test]
    fn a_missing_directory_is_an_io_error() {
        let e = load_dir(Path::new("/nonexistent/corpus")).unwrap_err();
        assert!(matches!(e, CorpusError::Io { .. }), "{e}");
        assert!(e.to_string().contains("/nonexistent/corpus"));
    }

    #[test]
    fn a_directory_without_specs_is_refused() {
        // The crate's own src/ tree exists but holds no .mxspec files.
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
        let e = load_dir(&dir).unwrap_err();
        assert!(matches!(e, CorpusError::Empty { .. }), "{e}");
    }
}
