//! Memory-access critical path (MACP) analysis (§4.2).
//!
//! "Dependencies between memory accesses demand a certain amount of
//! sequentialism. The minimal chain of dependencies limits the
//! application's execution speed." This stage computes, per loop body
//! and for the whole application, the minimum number of cycles the
//! memory accesses need even with unlimited memory bandwidth — taking
//! the *access durations* of the target technology into account (random
//! off-chip DRAM accesses occupy several cycles; see
//! [`memx_memlib::timing`]).
//!
//! If the MACP exceeds the storage cycle budget, no memory organization
//! can meet the real-time constraint and global loop/data-flow
//! transformations are required before continuing (the paper's §4.2;
//! those transformations are outside this crate's scope, as they are
//! outside the paper's).

use memx_ir::{Access, AppSpec, LoopNest, Placement};
use memx_memlib::timing;

/// Cycles one access occupies, from its group's placement and burst
/// flag.
pub(crate) fn access_duration(spec: &AppSpec, access: &Access) -> u64 {
    let off_chip = spec.group(access.group()).placement() == Placement::OffChip;
    timing::access_cycles(off_chip, access.is_burst())
}

/// Critical path of one body in cycles, honouring access durations.
pub(crate) fn body_critical_path(spec: &AppSpec, nest: &LoopNest) -> u64 {
    let n = nest.accesses().len();
    if n == 0 {
        return 0;
    }
    let dur: Vec<u64> = nest
        .accesses()
        .iter()
        .map(|a| access_duration(spec, a))
        .collect();
    let mut finish: Vec<u64> = dur.clone();
    let mut indeg = vec![0usize; n];
    for e in nest.dependencies() {
        indeg[e.to.index()] += 1;
    }
    let mut stack: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    while let Some(i) = stack.pop() {
        for e in nest.dependencies().iter().filter(|e| e.from.index() == i) {
            let j = e.to.index();
            finish[j] = finish[j].max(finish[i] + dur[j]);
            indeg[j] -= 1;
            if indeg[j] == 0 {
                stack.push(j);
            }
        }
    }
    finish.into_iter().max().unwrap_or(0)
}

/// Per-body critical-path entry of a [`MacpReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct BodyPath {
    /// Loop nest name.
    pub nest: String,
    /// Body executions per application execution.
    pub iterations: u64,
    /// Critical path of one body execution, in cycles.
    pub critical_path: u64,
}

/// Result of MACP analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct MacpReport {
    /// Per-body chains.
    pub bodies: Vec<BodyPath>,
    /// Total MACP: `sum(iterations x critical_path)` over bodies
    /// (sequential body execution).
    pub total_cycles: u64,
    /// The spec's storage cycle budget.
    pub budget: u64,
}

impl MacpReport {
    /// `true` when the dependency chains alone fit the budget.
    pub fn is_feasible(&self) -> bool {
        self.total_cycles <= self.budget
    }

    /// Cycles of slack between MACP and budget (0 when infeasible).
    pub fn slack(&self) -> u64 {
        self.budget.saturating_sub(self.total_cycles)
    }

    /// The body with the largest total contribution, if any.
    pub fn dominant_body(&self) -> Option<&BodyPath> {
        self.bodies
            .iter()
            .max_by_key(|b| b.iterations * b.critical_path)
    }
}

/// Analyzes the memory-access critical path of a specification.
pub fn analyze(spec: &AppSpec) -> MacpReport {
    let bodies: Vec<BodyPath> = spec
        .loop_nests()
        .iter()
        .map(|nest| BodyPath {
            nest: nest.name().to_owned(),
            iterations: nest.iterations(),
            critical_path: body_critical_path(spec, nest),
        })
        .collect();
    let total_cycles = bodies.iter().map(|b| b.iterations * b.critical_path).sum();
    MacpReport {
        bodies,
        total_cycles,
        budget: spec.cycle_budget(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memx_ir::{AccessKind, AppSpecBuilder};

    fn spec(off_chip: bool) -> AppSpec {
        let mut b = AppSpecBuilder::new("t");
        let placement = if off_chip {
            Placement::OffChip
        } else {
            Placement::Any
        };
        let g = b.basic_group_placed("g", 1024, 8, placement).unwrap();
        let n = b.loop_nest("l", 100).unwrap();
        let a0 = b.access(n, g, AccessKind::Read).unwrap();
        let a1 = b.access(n, g, AccessKind::Read).unwrap();
        let a2 = b.access(n, g, AccessKind::Write).unwrap();
        b.depend(n, a0, a2).unwrap();
        b.depend(n, a1, a2).unwrap();
        b.cycle_budget(10_000);
        b.build().unwrap()
    }

    #[test]
    fn on_chip_chain_counts_single_cycles() {
        let report = analyze(&spec(false));
        // Chain read -> write: 2 cycles per body.
        assert_eq!(report.bodies[0].critical_path, 2);
        assert_eq!(report.total_cycles, 200);
        assert!(report.is_feasible());
        assert_eq!(report.slack(), 9_800);
    }

    #[test]
    fn off_chip_accesses_stretch_the_path() {
        let report = analyze(&spec(true));
        // Two random off-chip accesses in sequence: 2 x 4 cycles.
        assert_eq!(
            report.bodies[0].critical_path,
            2 * timing::OFF_CHIP_RANDOM_CYCLES
        );
    }

    #[test]
    fn infeasible_budget_detected() {
        let mut b = AppSpecBuilder::new("t");
        let g = b
            .basic_group_placed("g", 1 << 20, 8, Placement::OffChip)
            .unwrap();
        let n = b.loop_nest("l", 1000).unwrap();
        let a0 = b.access(n, g, AccessKind::Read).unwrap();
        let a1 = b.access(n, g, AccessKind::Write).unwrap();
        b.depend(n, a0, a1).unwrap();
        b.cycle_budget(3000); // need 1000 x 8
        let spec = b.build().unwrap();
        let report = analyze(&spec);
        assert!(!report.is_feasible());
        assert_eq!(report.slack(), 0);
    }

    #[test]
    fn burst_accesses_are_fast() {
        let mut b = AppSpecBuilder::new("t");
        let g = b
            .basic_group_placed("g", 1 << 20, 8, Placement::OffChip)
            .unwrap();
        let n = b.loop_nest("copy", 10).unwrap();
        b.access_full(n, g, AccessKind::Read, 1.0, true).unwrap();
        b.cycle_budget(1000);
        let spec = b.build().unwrap();
        let report = analyze(&spec);
        assert_eq!(
            report.bodies[0].critical_path,
            timing::OFF_CHIP_BURST_CYCLES
        );
    }

    #[test]
    fn dominant_body_is_heaviest() {
        let mut b = AppSpecBuilder::new("t");
        let g = b.basic_group("g", 64, 8).unwrap();
        let small = b.loop_nest("small", 10).unwrap();
        b.access(small, g, AccessKind::Read).unwrap();
        let big = b.loop_nest("big", 10_000).unwrap();
        b.access(big, g, AccessKind::Read).unwrap();
        b.cycle_budget(100_000);
        let spec = b.build().unwrap();
        let report = analyze(&spec);
        assert_eq!(report.dominant_body().unwrap().nest, "big");
    }
}
