//! Basic-group (re)structuring: compaction and merging (§4.3, Figure 2).
//!
//! * **Compaction** packs `k` words of a narrow array into one wider
//!   word: reads that fetch several (neighbouring) words coalesce into
//!   fewer wider reads, but every write becomes a read-modify-write to
//!   preserve the other packed words.
//! * **Merging** combines two arrays into one array of structs: reads
//!   that fetch both arrays at the same index collapse into one access,
//!   but a write to only one field needs an extra read of the other
//!   field.
//!
//! Both transforms trade access count against bit-width matching — the
//! exploration of §4.3 evaluates the three alternatives through the
//! physical-memory-management pipeline.

use std::collections::BTreeSet;

use memx_ir::{AccessId, AccessKind, AppSpec, AppSpecBuilder, BasicGroupId, LoopNest, Placement};

use crate::ExploreError;

/// Result of a structuring transform.
#[derive(Debug, Clone)]
pub struct StructuredSpec {
    /// The transformed specification.
    pub spec: AppSpec,
    /// The group that replaced the restructured one(s).
    pub new_group: BasicGroupId,
}

/// One planned access of a rewritten loop body.
struct PlannedAccess {
    group: usize, // index into the new group table
    kind: AccessKind,
    weight: f64,
    burst: bool,
    /// Old accesses this statement replaces (dependency inheritance).
    sources: Vec<AccessId>,
    /// Extra intra-plan dependencies: indices of planned accesses that
    /// must precede this one (e.g. the read of a read-modify-write).
    after: Vec<usize>,
}

/// New-group table entry used during rebuilds.
struct GroupDef {
    name: String,
    words: u64,
    bitwidth: u32,
    placement: Placement,
    min_ports: u32,
}

/// Rebuilds a spec with the given new group table and per-nest access
/// plans. `plan_fn` receives each old nest and produces the planned
/// accesses; old dependency edges are re-created between the planned
/// statements that inherit their endpoints.
fn rebuild(
    spec: &AppSpec,
    groups: Vec<GroupDef>,
    mut plan_fn: impl FnMut(&LoopNest) -> Vec<PlannedAccess>,
) -> Result<AppSpec, ExploreError> {
    let mut b = AppSpecBuilder::new(spec.name());
    let mut ids = Vec::with_capacity(groups.len());
    for g in &groups {
        ids.push(b.basic_group_full(&g.name, g.words, g.bitwidth, g.placement, g.min_ports)?);
    }
    for nest in spec.loop_nests() {
        let plan = plan_fn(nest);
        let nid = b.loop_nest(nest.name(), nest.iterations())?;
        // Old access -> planned statement index.
        let mut owner: Vec<Option<usize>> = vec![None; nest.accesses().len()];
        let mut new_ids = Vec::with_capacity(plan.len());
        for (pi, p) in plan.iter().enumerate() {
            let aid = b.access_full(nid, ids[p.group], p.kind, p.weight, p.burst)?;
            new_ids.push(aid);
            for &src in &p.sources {
                owner[src.index()] = Some(pi);
            }
        }
        let mut edges: BTreeSet<(AccessId, AccessId)> = BTreeSet::new();
        for e in nest.dependencies() {
            if let (Some(su), Some(sv)) = (owner[e.from.index()], owner[e.to.index()]) {
                if su != sv {
                    edges.insert((new_ids[su], new_ids[sv]));
                }
            }
        }
        for (pi, p) in plan.iter().enumerate() {
            for &pre in &p.after {
                edges.insert((new_ids[pre], new_ids[pi]));
            }
        }
        for (u, v) in edges {
            b.depend(nid, u, v)?;
        }
    }
    b.cycle_budget(spec.cycle_budget())
        .real_time_seconds(spec.real_time_seconds());
    Ok(b.build()?)
}

/// Keeps every group of `spec` as-is in a new group table.
fn identity_groups(spec: &AppSpec) -> Vec<GroupDef> {
    spec.basic_groups()
        .iter()
        .map(|g| GroupDef {
            name: g.name().to_owned(),
            words: g.words(),
            bitwidth: g.bitwidth(),
            placement: g.placement(),
            min_ports: g.min_ports(),
        })
        .collect()
}

/// Plans an access that copies an old one verbatim.
fn passthrough(a: &memx_ir::Access) -> PlannedAccess {
    PlannedAccess {
        group: a.group().index(),
        kind: a.kind(),
        weight: a.weight(),
        burst: a.is_burst(),
        sources: vec![a.id()],
        after: Vec::new(),
    }
}

/// Basic-group **compaction** (Figure 2a): packs `factor` words of
/// `group` into one word of `factor x bitwidth` bits.
///
/// Per loop body, read statements coalesce in groups of `factor`
/// (neighbouring narrow words are fetched by one wide read); every write
/// statement gains a preceding read (read-modify-write).
///
/// # Errors
///
/// Returns [`ExploreError::BadTransform`] if `factor < 2` or the widened
/// word would exceed 64 bits.
pub fn compact(
    spec: &AppSpec,
    group: BasicGroupId,
    factor: u32,
) -> Result<StructuredSpec, ExploreError> {
    if factor < 2 {
        return Err(ExploreError::BadTransform {
            reason: format!("compaction factor {factor} must be >= 2"),
        });
    }
    let target = spec.group(group);
    let new_width = target.bitwidth() * factor;
    if new_width > 64 {
        return Err(ExploreError::BadTransform {
            reason: format!(
                "compacted width {new_width} exceeds 64 bits for `{}`",
                target.name()
            ),
        });
    }
    let mut groups = identity_groups(spec);
    groups[group.index()] = GroupDef {
        name: format!("{}_c{}", target.name(), factor),
        words: target.words().div_ceil(u64::from(factor)),
        bitwidth: new_width,
        placement: target.placement(),
        min_ports: target.min_ports(),
    };

    let spec2 = rebuild(spec, groups, |nest| {
        let mut plan: Vec<PlannedAccess> = Vec::new();
        let mut pending_reads: Vec<&memx_ir::Access> = Vec::new();
        let flush = |plan: &mut Vec<PlannedAccess>, pending: &mut Vec<&memx_ir::Access>| {
            if pending.is_empty() {
                return;
            }
            let weight = pending.iter().map(|a| a.weight()).fold(0.0f64, f64::max);
            plan.push(PlannedAccess {
                group: group.index(),
                kind: AccessKind::Read,
                weight,
                burst: pending.iter().all(|a| a.is_burst()),
                sources: pending.iter().map(|a| a.id()).collect(),
                after: Vec::new(),
            });
            pending.clear();
        };
        for a in nest.accesses() {
            if a.group() != group {
                plan.push(passthrough(a));
                continue;
            }
            match a.kind() {
                AccessKind::Read => {
                    pending_reads.push(a);
                    if pending_reads.len() == factor as usize {
                        flush(&mut plan, &mut pending_reads);
                    }
                }
                AccessKind::Write => {
                    // Read-modify-write: fetch the wide word first.
                    let rmw_idx = plan.len();
                    plan.push(PlannedAccess {
                        group: group.index(),
                        kind: AccessKind::Read,
                        weight: a.weight(),
                        burst: a.is_burst(),
                        sources: Vec::new(),
                        after: Vec::new(),
                    });
                    plan.push(PlannedAccess {
                        group: group.index(),
                        kind: AccessKind::Write,
                        weight: a.weight(),
                        burst: a.is_burst(),
                        sources: vec![a.id()],
                        after: vec![rmw_idx],
                    });
                }
            }
        }
        flush(&mut plan, &mut pending_reads);
        plan
    })?;
    Ok(StructuredSpec {
        spec: spec2,
        new_group: group,
    })
}

/// Basic-group **merging** (Figure 2b): combines `first` and `second`
/// into one array of two-field records.
///
/// Per loop body, reads of the two groups pair up (one fetch returns
/// both fields) and so do writes; an unpaired write to a single field
/// gains a preceding read of the record (to preserve the other field).
///
/// # Errors
///
/// Returns [`ExploreError::BadTransform`] if the groups are the same, if
/// their placements differ, or the record width would exceed 64 bits.
pub fn merge(
    spec: &AppSpec,
    first: BasicGroupId,
    second: BasicGroupId,
) -> Result<StructuredSpec, ExploreError> {
    if first == second {
        return Err(ExploreError::BadTransform {
            reason: "cannot merge a group with itself".into(),
        });
    }
    let (g1, g2) = (spec.group(first), spec.group(second));
    if g1.placement() != g2.placement() {
        return Err(ExploreError::BadTransform {
            reason: format!(
                "placement mismatch: `{}` is {}, `{}` is {}",
                g1.name(),
                g1.placement(),
                g2.name(),
                g2.placement()
            ),
        });
    }
    let new_width = g1.bitwidth() + g2.bitwidth();
    if new_width > 64 {
        return Err(ExploreError::BadTransform {
            reason: format!("merged width {new_width} exceeds 64 bits"),
        });
    }
    // The merged group takes `first`'s slot; `second`'s slot keeps a
    // 1-word placeholder that no access references (ids stay stable).
    let mut groups = identity_groups(spec);
    groups[first.index()] = GroupDef {
        name: format!("{}_{}", g1.name(), g2.name()),
        words: g1.words().max(g2.words()),
        bitwidth: new_width,
        placement: g1.placement(),
        min_ports: g1.min_ports().max(g2.min_ports()),
    };
    groups[second.index()].name = format!("{}_unused", g2.name());
    groups[second.index()].words = 1;

    let spec2 = rebuild(spec, groups, |nest| {
        let mut plan: Vec<PlannedAccess> = Vec::new();
        // Pair accesses of the two groups in program order per kind.
        let mut open_reads: Vec<usize> = Vec::new(); // plan indices awaiting a partner
        let mut open_read_group = first; // group of the open reads
        let mut open_writes: Vec<usize> = Vec::new();
        let mut open_write_group = first;
        for a in nest.accesses() {
            if a.group() != first && a.group() != second {
                plan.push(passthrough(a));
                continue;
            }
            match a.kind() {
                AccessKind::Read => {
                    if !open_reads.is_empty() && open_read_group != a.group() {
                        // Pairs with an open read of the other field.
                        let pi = open_reads.remove(0);
                        plan[pi].weight = plan[pi].weight.max(a.weight());
                        plan[pi].sources.push(a.id());
                    } else {
                        open_read_group = a.group();
                        open_reads.push(plan.len());
                        plan.push(PlannedAccess {
                            group: first.index(),
                            kind: AccessKind::Read,
                            weight: a.weight(),
                            burst: a.is_burst(),
                            sources: vec![a.id()],
                            after: Vec::new(),
                        });
                    }
                }
                AccessKind::Write => {
                    if !open_writes.is_empty() && open_write_group != a.group() {
                        let pi = open_writes.remove(0);
                        plan[pi].weight = plan[pi].weight.max(a.weight());
                        plan[pi].sources.push(a.id());
                    } else {
                        open_write_group = a.group();
                        open_writes.push(plan.len());
                        plan.push(PlannedAccess {
                            group: first.index(),
                            kind: AccessKind::Write,
                            weight: a.weight(),
                            burst: a.is_burst(),
                            sources: vec![a.id()],
                            after: Vec::new(),
                        });
                    }
                }
            }
        }
        // Unpaired writes become read-modify-writes.
        for pi in open_writes {
            let rmw_idx = plan.len();
            plan.push(PlannedAccess {
                group: first.index(),
                kind: AccessKind::Read,
                weight: plan[pi].weight,
                burst: plan[pi].burst,
                sources: Vec::new(),
                after: Vec::new(),
            });
            plan[pi].after.push(rmw_idx);
        }
        plan
    })?;
    Ok(StructuredSpec {
        spec: spec2,
        new_group: first,
    })
}

/// Basic-group **splitting** (§4.1): stores the two halves of `group`
/// in independent groups, doubling the available bandwidth for it.
///
/// Accesses distribute over the halves: read statements alternate
/// between the halves (a loop touching the array sequentially hits each
/// half with every other access); writes likewise. Splitting never
/// changes the total access count — it buys *parallelism* (the halves
/// can live in different memories) at the price of an extra memory and
/// more complex addressing.
///
/// # Errors
///
/// Returns [`ExploreError::BadTransform`] if the group holds fewer than
/// two words.
pub fn split(spec: &AppSpec, group: BasicGroupId) -> Result<StructuredSpec, ExploreError> {
    let target = spec.group(group);
    if target.words() < 2 {
        return Err(ExploreError::BadTransform {
            reason: format!("cannot split single-word group `{}`", target.name()),
        });
    }
    let mut groups = identity_groups(spec);
    let half = target.words().div_ceil(2);
    groups[group.index()] = GroupDef {
        name: format!("{}_lo", target.name()),
        words: half,
        bitwidth: target.bitwidth(),
        placement: target.placement(),
        min_ports: target.min_ports(),
    };
    groups.push(GroupDef {
        name: format!("{}_hi", target.name()),
        words: target.words() - half,
        bitwidth: target.bitwidth(),
        placement: target.placement(),
        min_ports: target.min_ports(),
    });
    let hi_index = groups.len() - 1;

    let spec2 = rebuild(spec, groups, |nest| {
        let mut toggle = false;
        nest.accesses()
            .iter()
            .map(|a| {
                if a.group() != group {
                    return passthrough(a);
                }
                toggle = !toggle;
                PlannedAccess {
                    group: if toggle { group.index() } else { hi_index },
                    kind: a.kind(),
                    weight: a.weight(),
                    burst: a.is_burst(),
                    sources: vec![a.id()],
                    after: Vec::new(),
                }
            })
            .collect()
    })?;
    Ok(StructuredSpec {
        spec: spec2,
        new_group: group,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use memx_ir::AppSpecBuilder;

    /// A BTPC-like body: 4 paired reads of two arrays plus one paired
    /// write, all at the same index.
    fn paired_spec() -> (AppSpec, BasicGroupId, BasicGroupId) {
        let mut b = AppSpecBuilder::new("t");
        let pyr = b
            .basic_group_placed("pyr", 1024, 8, Placement::OffChip)
            .unwrap();
        let ridge = b
            .basic_group_placed("ridge", 1024, 2, Placement::OffChip)
            .unwrap();
        let n = b.loop_nest("refine", 1000).unwrap();
        for _ in 0..4 {
            b.access(n, pyr, AccessKind::Read).unwrap();
            b.access(n, ridge, AccessKind::Read).unwrap();
        }
        let wp = b.access(n, pyr, AccessKind::Write).unwrap();
        let wr = b.access(n, ridge, AccessKind::Write).unwrap();
        let r0 = memx_ir::AccessId::from_index(0);
        b.depend(n, r0, wp).unwrap();
        b.depend(n, r0, wr).unwrap();
        b.cycle_budget(1_000_000);
        (b.build().unwrap(), pyr, ridge)
    }

    #[test]
    fn merge_halves_paired_reads() {
        let (spec, pyr, ridge) = paired_spec();
        let before: f64 = spec.total_access_count();
        let merged = merge(&spec, pyr, ridge).unwrap();
        let after: f64 = merged.spec.total_access_count();
        // 10 accesses -> 5 (4 paired reads + 1 paired write).
        assert_eq!(before, 10_000.0);
        assert_eq!(after, 5_000.0);
        let g = merged.spec.group(merged.new_group);
        assert_eq!(g.bitwidth(), 10);
        assert_eq!(g.name(), "pyr_ridge");
    }

    #[test]
    fn merge_preserves_dependencies() {
        let (spec, pyr, ridge) = paired_spec();
        let merged = merge(&spec, pyr, ridge).unwrap();
        let nest = &merged.spec.loop_nests()[0];
        // The write still depends on the first read.
        assert!(!nest.dependencies().is_empty());
        merged.spec.validate().unwrap();
    }

    #[test]
    fn merge_unpaired_write_needs_rmw() {
        let mut b = AppSpecBuilder::new("t");
        let a = b.basic_group("a", 64, 8).unwrap();
        let c = b.basic_group("c", 64, 8).unwrap();
        let n = b.loop_nest("l", 10).unwrap();
        b.access(n, a, AccessKind::Write).unwrap(); // write only field a
        b.access(n, c, AccessKind::Read).unwrap(); // read only field c
        b.cycle_budget(1000);
        let spec = b.build().unwrap();
        let merged = merge(&spec, a, c).unwrap();
        let nest = &merged.spec.loop_nests()[0];
        // write + read + extra RMW read = 3 accesses.
        assert_eq!(nest.accesses().len(), 3);
        let reads = nest
            .accesses()
            .iter()
            .filter(|x| x.kind().is_read())
            .count();
        assert_eq!(reads, 2);
    }

    #[test]
    fn merge_rejects_same_group_and_mixed_placement() {
        let (spec, pyr, _) = paired_spec();
        assert!(merge(&spec, pyr, pyr).is_err());
        let mut b = AppSpecBuilder::new("t");
        let on = b
            .basic_group_placed("on", 16, 8, Placement::OnChip)
            .unwrap();
        let off = b
            .basic_group_placed("off", 16, 8, Placement::OffChip)
            .unwrap();
        b.cycle_budget(10);
        let s = b.build().unwrap();
        assert!(merge(&s, on, off).is_err());
    }

    #[test]
    fn compact_coalesces_reads_and_adds_rmw() {
        let (spec, _, ridge) = paired_spec();
        let compacted = compact(&spec, ridge, 4).unwrap();
        let g = compacted.spec.group(compacted.new_group);
        assert_eq!(g.bitwidth(), 8);
        assert_eq!(g.words(), 256);
        let nest = &compacted.spec.loop_nests()[0];
        // ridge: 4 reads -> 1; write -> RMW read + write.
        let ridge_accesses = nest
            .accesses()
            .iter()
            .filter(|a| a.group() == compacted.new_group)
            .count();
        assert_eq!(ridge_accesses, 3);
        compacted.spec.validate().unwrap();
    }

    #[test]
    fn compact_factor_must_be_sane() {
        let (spec, _, ridge) = paired_spec();
        assert!(compact(&spec, ridge, 1).is_err());
        assert!(compact(&spec, ridge, 64).is_err()); // 2 x 64 > 64 bits
    }

    #[test]
    fn compact_reduces_total_accesses_modestly() {
        let (spec, _, ridge) = paired_spec();
        let before = spec.total_access_count();
        let compacted = compact(&spec, ridge, 3).unwrap();
        let after = compacted.spec.total_access_count();
        // Compaction helps less than merging (the paper's Table 1).
        assert!(after < before);
        let merged = merge(&spec, memx_ir::BasicGroupId::from_index(0), ridge)
            .unwrap()
            .spec
            .total_access_count();
        assert!(merged < after);
    }

    #[test]
    fn untouched_groups_pass_through() {
        let (spec, pyr, ridge) = paired_spec();
        let compacted = compact(&spec, ridge, 4).unwrap();
        let (r, w) = compacted.spec.total_accesses(pyr);
        assert_eq!((r, w), spec.total_accesses(pyr));
    }

    #[test]
    fn split_conserves_accesses_and_capacity() {
        let (spec, pyr, _) = paired_spec();
        let before = spec.total_access_count();
        let (pr, pw) = spec.total_accesses(pyr);
        let halves = split(&spec, pyr).unwrap();
        assert_eq!(halves.spec.total_access_count(), before);
        let lo = halves.spec.group_by_name("pyr_lo").unwrap();
        let hi = halves.spec.group_by_name("pyr_hi").unwrap();
        assert_eq!(lo.words() + hi.words(), 1024);
        assert_eq!(lo.bitwidth(), 8);
        let (lr, lw) = halves.spec.total_accesses(lo.id());
        let (hr, hw) = halves.spec.total_accesses(hi.id());
        assert!((lr + hr - pr).abs() < 1e-9);
        assert!((lw + hw - pw).abs() < 1e-9);
        halves.spec.validate().unwrap();
    }

    #[test]
    fn split_distributes_accesses_across_halves() {
        let (spec, pyr, _) = paired_spec();
        let halves = split(&spec, pyr).unwrap();
        let lo = halves.spec.group_by_name("pyr_lo").unwrap().id();
        let hi = halves.spec.group_by_name("pyr_hi").unwrap().id();
        let (lr, _) = halves.spec.total_accesses(lo);
        let (hr, _) = halves.spec.total_accesses(hi);
        // 4 reads alternate 2/2 over the halves.
        assert!(lr > 0.0 && hr > 0.0);
        assert!((lr - hr).abs() / (lr + hr) < 0.5);
    }

    #[test]
    fn split_buys_bandwidth() {
        // Under a 2-cycle budget two same-group reads self-conflict; the
        // split halves do not (they can live in separate memories).
        let mut b = AppSpecBuilder::new("t");
        let x = b.basic_group("x", 64, 8).unwrap();
        let n = b.loop_nest("l", 10).unwrap();
        b.access(n, x, AccessKind::Read).unwrap();
        b.access(n, x, AccessKind::Read).unwrap();
        b.cycle_budget(10).real_time_seconds(0.01);
        let spec = b.build().unwrap();
        let before = crate::scbd::distribute(&spec).unwrap();
        assert_eq!(before.required_ports(|g| g == x), 2);
        let halves = split(&spec, x).unwrap();
        let after = crate::scbd::distribute(&halves.spec).unwrap();
        let max_self = halves
            .spec
            .basic_groups()
            .iter()
            .map(|g| after.required_ports(|gg| gg == g.id()))
            .max()
            .unwrap();
        assert_eq!(max_self, 1);
    }

    #[test]
    fn split_rejects_single_word_groups() {
        let mut b = AppSpecBuilder::new("t");
        let g = b.basic_group("g", 1, 8).unwrap();
        b.cycle_budget(10);
        let spec = b.build().unwrap();
        assert!(split(&spec, g).is_err());
    }
}
