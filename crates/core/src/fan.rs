//! The generic deterministic subtree-fan harness.
//!
//! Both exact solvers of [`crate::alloc`] — the on-chip partition
//! branch-and-bound and the off-chip set-partition branch-and-bound —
//! fan a canonical search tree over worker threads with the *same*
//! choreography:
//!
//! 1. the canonical tree is split into deterministic **prefix
//!    subtrees** (at least [`TARGET_SUBTREES`] of them, breadth-first in
//!    depth-first child order, so the prefix sequence preserves the
//!    serial visiting order);
//! 2. a **seed subtree** — the one with the smallest root lower bound,
//!    earliest on ties — is explored first, alone, with the full node
//!    budget, against the (deterministic) greedy incumbent;
//! 3. the seed's result value is published through an **atomic
//!    incumbent** (`f64` bits in an [`AtomicU64`]) and the remaining
//!    node budget is split evenly over the subtrees;
//! 4. workers claim subtrees from a shared **claim queue** in
//!    most-promising-first order; a claimed subtree is *skipped* when
//!    its root lower bound is above the published incumbent, otherwise
//!    it is explored against the **fixed** seed value with its private
//!    budget, and any real result tightens the published incumbent;
//! 5. the per-subtree outcomes are handed back **in canonical prefix
//!    order** so the caller's strict-improvement reduction reproduces
//!    the serial first-found-minimum tie-break bit for bit.
//!
//! The harness is parameterized by an explore function and a skip
//! predicate via [`SubtreeSearch`]: the on-chip solver skips strictly
//! (`lb > incumbent`), the off-chip solver skips with the ulp guard of
//! [`above_with_slack`] because its suffix floor can be *exactly* tight
//! in real arithmetic. Everything timing-dependent is confined to this
//! module; no solver result may depend on it.
//!
//! # Why the result is bit-identical for every worker count
//!
//! * the subtree split, the seed choice, the seed search and the budget
//!   split are pure functions of deterministic inputs;
//! * the published incumbent is used **only** to skip whole subtrees
//!   whose root lower bound is above it. The incumbent is monotonically
//!   non-increasing and always the value of a *real* candidate, so a
//!   skipped subtree provably cannot win a strict-improvement
//!   reduction — skipping removes only subtrees that lose anyway;
//! * every non-seed subtree is explored against the *fixed* seed value
//!   (never the evolving incumbent) with a deterministic budget, so each
//!   outcome is a pure function of its prefix;
//! * outcomes reduce in canonical prefix order, independent of
//!   completion order.
//!
//! # Atomics and memory-ordering audit
//!
//! This module is the only place in the workspace where solver-facing
//! atomics live (enforced by `memx-lint`'s `atomics-confined` lint; the
//! cache's statistics counters and the profiler's access counters are
//! the two allowlisted exceptions). Every operation uses
//! `Ordering::Relaxed`, which is sufficient — per atomic:
//!
//! * **[`Incumbent`]** (`AtomicU64` holding `f64` bits): *skip-only*
//!   usage. Readers never order payload reads against it — the value
//!   gates nothing but the "explore vs. skip" decision, and both
//!   branches are correct for *any* previously published value: a stale
//!   (too high) read only explores more, never less, and a fresh read
//!   can only skip subtrees whose bound is above a real candidate's
//!   value. The monotone-minimum CAS loop needs no ordering either: bit
//!   patterns of the candidate values are data, not ordering tokens.
//! * **[`ClaimQueue`]** (`AtomicUsize` counter): `fetch_add` is an
//!   atomic read-modify-write, so every claim index is handed out
//!   exactly once — the only property the queue needs. No payload is
//!   transferred through the counter itself.
//! * **Result hand-off** happens through per-subtree [`Mutex`] slots
//!   written by the claiming worker and read only after
//!   [`std::thread::scope`] joins every worker — the scope join provides
//!   the happens-before edge, so the slots need no atomic ordering at
//!   all. **Worker-state hand-back** (for
//!   [`SubtreeSearch::merge_state`]) rides the same edge: each scoped
//!   thread returns its state through its join handle, and the merge
//!   runs on the calling thread after every join.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

use crate::engine::note_thread_spawn;

/// How many canonical-prefix subtrees a fanned search splits into.
/// Deliberately a constant (not a function of the worker count) so the
/// per-subtree node budgets — and therefore the search result — do not
/// depend on the machine the search runs on.
pub const TARGET_SUBTREES: usize = 512;

/// Strictly-above test with an ulp guard, for comparing a lower bound
/// against the cost of a *real* candidate (greedy, seed or published
/// incumbent). A suffix floor can be exactly tight in real arithmetic —
/// e.g. same-part merges whose marginal energy equals the floor — where
/// float rounding could push the bound a few ulps past the candidate
/// cost and cut the canonical-first optimum. The guard admits those
/// ties: it only ever explores more, never less.
pub fn above_with_slack(lb: f64, bound: f64) -> bool {
    lb > bound + bound.abs() * 1e-12
}

/// A published monotone-minimum incumbent value: `f64` bits in an
/// [`AtomicU64`], shared between fan workers and used **only** to skip
/// work whose lower bound is above it (see the module docs for why
/// `Relaxed` is sufficient).
#[derive(Debug)]
pub struct Incumbent(AtomicU64);

impl Incumbent {
    /// An incumbent starting at `val` (the seed or greedy value;
    /// `f64::INFINITY` when no candidate exists yet).
    pub fn new(val: f64) -> Self {
        Incumbent(AtomicU64::new(val.to_bits()))
    }

    /// The best value published so far.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Lowers the incumbent to `val` if it improves on the published
    /// value (lock-free monotone minimum; compares as floats, though bit
    /// order and value order coincide for the non-negative costs the
    /// solvers publish).
    pub fn publish_min(&self, val: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        while val < f64::from_bits(cur) {
            match self.0.compare_exchange_weak(
                cur,
                val.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
    }
}

/// A dynamic work-claim counter: each call to [`ClaimQueue::claim`]
/// hands out the next index exactly once, across however many worker
/// threads share the queue. The claim *order* is timing-dependent; the
/// claimed *set* is not — deterministic users must make every outcome
/// independent of who claimed it (see the module docs).
#[derive(Debug, Default)]
pub struct ClaimQueue(AtomicUsize);

impl ClaimQueue {
    /// A fresh queue starting at index 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Claims the next unclaimed index below `len`, or `None` when all
    /// `len` indices have been handed out.
    pub fn claim(&self, len: usize) -> Option<usize> {
        let i = self.0.fetch_add(1, Ordering::Relaxed);
        (i < len).then_some(i)
    }
}

/// One deterministically-fanned subtree search: the solver-specific
/// pieces the generic harness of [`fan_subtrees`] is parameterized by.
///
/// Implementations must keep `explore` a **pure function** of
/// `(state-as-memo, prefix, outer, budget)` — its result may depend on
/// the per-worker state only as a cache of deterministic values, never
/// on what other threads are doing. The harness guarantees in return
/// that `outer` and `budget` are chosen deterministically.
pub trait SubtreeSearch: Sync {
    /// One canonical prefix subtree.
    type Prefix: Sync;
    /// Per-worker scratch state (memo caches); cloned per worker thread.
    type State: Send;
    /// The outcome of exploring (or skipping) one subtree.
    type Outcome: Send;

    /// Explores one subtree against the fixed outer bound `outer` with
    /// a private node budget `budget`.
    fn explore(
        &self,
        state: &mut Self::State,
        prefix: &Self::Prefix,
        outer: f64,
        budget: u64,
    ) -> Self::Outcome;

    /// Clones the scratch state for one worker thread (clones taken
    /// after the seed phase, so every worker inherits the seed's memo).
    fn clone_state(&self, state: &Self::State) -> Self::State;

    /// The outcome recorded for a subtree skipped against the published
    /// incumbent (no nodes, no result, flagged as skipped if the solver
    /// tracks that).
    fn skipped(&self) -> Self::Outcome;

    /// The publishable value of an outcome: `Some(cost)` when the
    /// subtree produced a real candidate, `None` otherwise.
    fn value(&self, outcome: &Self::Outcome) -> Option<f64>;

    /// Nodes the outcome consumed (charged against the global budget
    /// for the seed phase).
    fn nodes(&self, outcome: &Self::Outcome) -> u64;

    /// Whether a subtree with root lower bound `lb` may be skipped
    /// against the published incumbent `bound`. The default is the
    /// strict comparison; searches whose bounds can be exactly tight
    /// override this with [`above_with_slack`].
    fn skip_above(&self, lb: f64, bound: f64) -> bool {
        lb > bound
    }

    /// Folds one worker's final scratch state back into the main state
    /// after the fan completes (called once per worker, in spawn order,
    /// on the calling thread — the scope join provides the
    /// happens-before edge, so no extra synchronization is needed).
    /// Since states are memo caches of pure functions, merged entries
    /// are bit-identical to what the main state would have computed;
    /// merging must not change any other behavior. The default keeps
    /// worker state private (discarded), which is always sound.
    fn merge_state(&self, _main: &mut Self::State, _worker: Self::State) {}
}

/// Runs the deterministic subtree fan-out (see the module docs): seed
/// phase, budget split, published incumbent, claim queue — returning
/// one outcome per prefix **in canonical prefix order** for the caller
/// to reduce with strict improvement.
///
/// `bounds[i]` must be the deterministic root lower bound of
/// `prefixes[i]`; `initial_bound` is the greedy incumbent's value (or
/// `f64::INFINITY`), used as the seed subtree's outer bound; the seed's
/// node consumption is charged against `node_limit` before the
/// remainder is split evenly. With an effective worker count of 1 the
/// whole fan runs inline on the calling thread and spawns nothing.
pub fn fan_subtrees<T: SubtreeSearch>(
    search: &T,
    prefixes: &[T::Prefix],
    bounds: &[f64],
    state: &mut T::State,
    initial_bound: f64,
    node_limit: u64,
    workers: usize,
) -> Vec<T::Outcome> {
    debug_assert_eq!(prefixes.len(), bounds.len());
    if prefixes.is_empty() {
        return Vec::new();
    }

    // Seed phase: the subtree with the smallest root lower bound
    // (earliest on ties) is explored first, alone, with the full node
    // budget — it is the most likely home of the optimum. Its result
    // tightens the bound every other subtree starts from —
    // deterministically, since the choice of seed and its search depend
    // on nothing timing-related. This recovers most of the pruning
    // power a serial DFS gets from its evolving incumbent.
    let mut seed_idx = 0usize;
    for j in 1..prefixes.len() {
        if bounds[j].total_cmp(&bounds[seed_idx]).is_lt() {
            seed_idx = j;
        }
    }
    let seed_out = search.explore(state, &prefixes[seed_idx], initial_bound, node_limit);
    let seed_val = search.value(&seed_out).unwrap_or(initial_bound);

    // The seed's consumption is charged against the global node limit;
    // only the remainder is split over the other subtrees. When the
    // search is exact the seed finishes cheaply and the others keep a
    // full share; when the limit is exhausted the others degrade to
    // zero-budget probes instead of doubling the total node spend. The
    // split is a pure function of the (deterministic) seed search, so
    // results stay independent of worker count and thread timing.
    let node_budget =
        node_limit.saturating_sub(search.nodes(&seed_out)) / prefixes.len().max(1) as u64;

    // Fan the remaining subtrees over the workers. The published
    // incumbent only ever *skips* whole subtrees (never steers a
    // running search): a subtree that could win the deterministic
    // reduction has a lower bound at most the final minimum and is
    // therefore never skipped, so the result is independent of thread
    // timing. Claim subtrees most-promising-first (a fixed permutation)
    // so the published bound tightens as early as possible.
    let published = Incumbent::new(seed_val);
    let queue = ClaimQueue::new();
    let slots: Vec<Mutex<Option<T::Outcome>>> =
        (0..prefixes.len()).map(|_| Mutex::new(None)).collect();
    let claim_order: Vec<usize> = {
        let mut idx: Vec<usize> = (0..prefixes.len()).collect();
        idx.sort_by(|&a, &b| bounds[a].total_cmp(&bounds[b]).then(a.cmp(&b)));
        idx
    };
    let run = |state: &mut T::State| {
        while let Some(c) = queue.claim(claim_order.len()) {
            let j = claim_order[c];
            if j == seed_idx {
                continue; // already explored in the seed phase
            }
            let out = if search.skip_above(bounds[j], published.get()) {
                search.skipped()
            } else {
                search.explore(state, &prefixes[j], seed_val, node_budget)
            };
            if let Some(val) = search.value(&out) {
                published.publish_min(val);
            }
            // A poisoned slot lock can only come from a sibling worker
            // panicking mid-store; the slot itself is a plain `Option`,
            // so recovering the lock is always safe.
            *slots[j].lock().unwrap_or_else(|p| p.into_inner()) = Some(out);
        }
    };

    let fan_workers = workers.min(prefixes.len());
    if fan_workers <= 1 {
        // Straight serial path: the claim loop runs inline on the
        // calling thread, in canonical claim order, spawning nothing.
        run(state);
    } else {
        // Workers return their final scratch state so memo entries
        // discovered inside subtrees (block prices, port requirements)
        // survive the fan — [`SubtreeSearch::merge_state`] folds them
        // back in spawn order on this thread, after every join.
        let returned = thread::scope(|scope| {
            let handles: Vec<_> = (0..fan_workers)
                .map(|_| {
                    let mut worker_state = search.clone_state(state);
                    note_thread_spawn();
                    scope.spawn(move || {
                        run(&mut worker_state);
                        worker_state
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    // memx-lint: allow(no-panic-paths) — a scoped worker panicking would abort the scope anyway; joining merely forwards it.
                    h.join().expect("fan worker panicked")
                })
                .collect::<Vec<T::State>>()
        });
        for worker_state in returned {
            search.merge_state(state, worker_state);
        }
    }

    // Hand the outcomes back in canonical prefix order (the seed in its
    // slot), for the caller's strict-improvement reduction.
    let mut seed_slot = Some(seed_out);
    slots
        .into_iter()
        .enumerate()
        .map(|(j, slot)| {
            if j == seed_idx {
                // memx-lint: allow(no-panic-paths) — the seed outcome is moved out exactly once.
                seed_slot.take().expect("seed outcome handed back once")
            } else {
                slot.into_inner()
                    .unwrap_or_else(|p| p.into_inner())
                    // memx-lint: allow(no-panic-paths) — the claim queue hands out every index exactly once, so each non-seed slot was filled.
                    .expect("every non-seed subtree claimed and stored")
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy search: prefixes are integer "costs", exploring returns the
    /// cost, bounds equal the costs. Lets the harness logic be checked
    /// without dragging a solver in.
    struct Toy;

    #[derive(Debug, PartialEq)]
    struct ToyOutcome {
        val: Option<f64>,
        nodes: u64,
        skipped: bool,
    }

    impl SubtreeSearch for Toy {
        type Prefix = f64;
        type State = u64;
        type Outcome = ToyOutcome;

        fn explore(&self, state: &mut u64, p: &f64, outer: f64, _budget: u64) -> ToyOutcome {
            *state += 1;
            ToyOutcome {
                val: (*p < outer).then_some(*p),
                nodes: 1,
                skipped: false,
            }
        }
        fn clone_state(&self, s: &u64) -> u64 {
            *s
        }
        fn skipped(&self) -> ToyOutcome {
            ToyOutcome {
                val: None,
                nodes: 0,
                skipped: true,
            }
        }
        fn value(&self, o: &ToyOutcome) -> Option<f64> {
            o.val
        }
        fn nodes(&self, o: &ToyOutcome) -> u64 {
            o.nodes
        }
    }

    #[test]
    fn outcomes_come_back_in_canonical_order_for_every_worker_count() {
        let prefixes = [5.0, 3.0, 9.0, 1.0, 7.0];
        let reference: Vec<ToyOutcome> = {
            let mut state = 0;
            fan_subtrees(&Toy, &prefixes, &prefixes, &mut state, 8.0, 100, 1)
        };
        for workers in [2, 4, 8] {
            let mut state = 0;
            let got = fan_subtrees(&Toy, &prefixes, &prefixes, &mut state, 8.0, 100, workers);
            // The seed (index 3, smallest bound) always explores; 9.0 is
            // skipped against the published 1.0... except values above
            // the incumbent are skipped nondeterministically, so only
            // compare the *reduction-relevant* view: values.
            let vals: Vec<Option<f64>> = got.iter().map(|o| o.val).collect();
            let ref_vals: Vec<Option<f64>> = reference.iter().map(|o| o.val).collect();
            assert_eq!(vals, ref_vals, "workers={workers}");
        }
    }

    #[test]
    fn seed_gets_the_initial_bound_and_others_get_the_seed_value() {
        // Seed is 1.0 (smallest bound), explored against 8.0 → value 1.0
        // published; every other subtree explores against 1.0 and none
        // beats it, or is skipped outright (bound above incumbent).
        let prefixes = [5.0, 3.0, 1.0];
        let mut state = 0;
        let out = fan_subtrees(&Toy, &prefixes, &prefixes, &mut state, 8.0, 100, 1);
        assert_eq!(out[2].val, Some(1.0));
        assert_eq!(out[0].val, None);
        assert_eq!(out[1].val, None);
    }

    #[test]
    fn empty_prefixes_fan_to_nothing() {
        let mut state = 0;
        let out = fan_subtrees(&Toy, &[], &[], &mut state, f64::INFINITY, 100, 8);
        assert!(out.is_empty());
    }

    #[test]
    fn claim_queue_hands_out_each_index_once() {
        let q = ClaimQueue::new();
        let mut got: Vec<usize> = std::iter::from_fn(|| q.claim(5)).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.claim(5), None);
    }

    #[test]
    fn incumbent_is_a_monotone_minimum() {
        let inc = Incumbent::new(f64::INFINITY);
        inc.publish_min(5.0);
        inc.publish_min(7.0);
        assert_eq!(inc.get(), 5.0);
        inc.publish_min(2.5);
        assert_eq!(inc.get(), 2.5);
    }

    #[test]
    fn slack_admits_ties_and_near_ties() {
        assert!(!above_with_slack(1.0, 1.0));
        assert!(!above_with_slack(1.0 + 1e-15, 1.0));
        assert!(above_with_slack(1.0 + 1e-9, 1.0));
        assert!(above_with_slack(1.0, 0.5));
    }
}
