//! Storage-cycle-budget distribution (§4.5, Table 3).
//!
//! The real-time constraint gives an overall *storage cycle budget*; this
//! stage distributes it over the loop bodies and orders the memory
//! accesses of each body — **flow-graph balancing** — such that the
//! required memory bandwidth (simultaneous accesses, and thus ports and
//! separate memories) is minimized.
//!
//! Two cooperating pieces:
//!
//! * [`schedule_body`]: given a per-body cycle budget, place each access
//!   (with its technology-dependent duration, see
//!   [`memx_memlib::timing`]) in a start cycle between its ASAP and ALAP
//!   bounds, greedily minimizing overlap pressure (same-group overlaps
//!   are worst, off-chip/off-chip overlaps next — they force multi-port
//!   memories).
//! * [`distribute`]: assign every body its minimum (critical-path)
//!   budget, then spend the remaining global budget where it relieves
//!   the most pressure per cycle — each grant costs
//!   `iterations` cycles of global budget, which produces the paper's
//!   characteristic budget jumps ("a decrease of the budget of one loop
//!   body, which is executed 300 000 times, reduces the overall budget
//!   with 300 000 cycles").
//!
//! # Sparse occupancy
//!
//! Schedules are stored *sparsely*: per access a placed interval, plus
//! the list of busy cycles with their occupants. Memory and time scale
//! with the number of accesses and their durations, **not** with the
//! cycle budget — budgets derived from real-time constraints easily
//! reach 10⁸ cycles, where the former dense per-cycle table
//! (`vec![Vec::new(); budget]`) would allocate gigabytes and the
//! balancing scan over the `[ASAP, ALAP]` window would never terminate.
//! The balancer only evaluates the *breakpoints* of the piecewise-linear
//! overlap-cost function (interval endpoints shifted by the access
//! duration), which provably contains the leftmost cost minimizer, so
//! sparse and dense scheduling place every access identically.

use std::collections::BTreeMap;

use memx_ir::{AppSpec, BasicGroupId, LoopNest, LoopNestId, Placement};

use crate::macp::{access_duration, body_critical_path};
use crate::ExploreError;

// memx-lint: fingerprinted(SCBD_ALGO_REVISION) — result-affecting changes
// to this scheduler (pressure weights aside, which are hashed directly)
// must bump the revision in `core::cache`.

/// Pressure cost of two accesses to the *same group* overlapping in one
/// cycle (forces a multi-port memory or a group split). `pub(crate)` so
/// the persistent cache can fold it into its model fingerprint: a
/// changed constant changes the schedules, so it must miss old entries.
pub(crate) const SAME_GROUP_COST: f64 = 8.0;
/// Pressure cost of two off-chip accesses overlapping (forces a
/// multi-port or second off-chip memory).
pub(crate) const OFF_CHIP_PAIR_COST: f64 = 4.0;
/// Pressure cost of two on-chip accesses overlapping (forces the groups
/// into different on-chip memories, or a multi-port module).
pub(crate) const ON_CHIP_PAIR_COST: f64 = 2.0;
/// Pressure cost of an on-chip access overlapping an off-chip one:
/// nearly free, since the groups live in different memories anyway.
pub(crate) const MIXED_PAIR_COST: f64 = 0.25;

/// Grant lookahead of the marginal-relief loop in
/// [`distribute_with_budget`]: how many extra cycles a body may be
/// offered at once to escape plateaus where one cycle alone does not
/// reduce pressure yet. `pub(crate)` so the persistent cache folds it
/// into its knobs fingerprint — tuning it changes the schedules, so it
/// must re-key every cached entry automatically.
pub(crate) const GRANT_LOOKAHEAD: u64 = 4;

/// Pressure contributed by two overlapping occupants.
fn pair_cost(a: &Occupant, b: &Occupant) -> f64 {
    if a.group == b.group {
        SAME_GROUP_COST
    } else if a.off_chip && b.off_chip {
        OFF_CHIP_PAIR_COST
    } else if !a.off_chip && !b.off_chip {
        ON_CHIP_PAIR_COST
    } else {
        MIXED_PAIR_COST
    }
}

/// One access occupying cycles of a body schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Occupant {
    /// The accessed basic group.
    pub group: BasicGroupId,
    /// Whether the target is off-chip (placement at scheduling time).
    pub off_chip: bool,
}

/// One scheduled access: which cycles of the body it occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacedAccess {
    /// The occupant (group and placement).
    pub occupant: Occupant,
    /// First occupied cycle.
    pub start: u64,
    /// Occupied cycle count (the access duration).
    pub duration: u64,
}

impl PlacedAccess {
    /// One past the last occupied cycle.
    pub fn end(&self) -> u64 {
        self.start + self.duration
    }
}

/// The occupants of one *busy* cycle of a body schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccupancySlot {
    /// The cycle within the body budget.
    pub cycle: u64,
    /// Accesses overlapping this cycle (at least one).
    pub occupants: Vec<Occupant>,
}

/// The balanced schedule of one loop body.
#[derive(Debug, Clone)]
pub struct BodySchedule {
    /// The scheduled nest.
    pub nest: LoopNestId,
    /// Nest name (for reports).
    pub name: String,
    /// Body executions per application execution.
    pub iterations: u64,
    /// Cycles allotted to one body execution.
    pub budget: u64,
    /// Placed interval of every access, in access order.
    placements: Vec<PlacedAccess>,
    /// Sparse occupancy: busy cycles (ascending) with their occupants.
    slots: Vec<OccupancySlot>,
}

impl BodySchedule {
    /// Builds a schedule from its placed intervals, deriving the sparse
    /// occupancy table. `pub(crate)` so the persistent cache can
    /// rehydrate schedules from their serialized placements — the
    /// derived slots are always recomputed, never trusted from disk.
    pub(crate) fn new(
        nest: LoopNestId,
        name: String,
        iterations: u64,
        budget: u64,
        placements: Vec<PlacedAccess>,
    ) -> Self {
        let mut by_cycle: BTreeMap<u64, Vec<Occupant>> = BTreeMap::new();
        for p in &placements {
            for t in p.start..p.end() {
                by_cycle.entry(t).or_default().push(p.occupant);
            }
        }
        let slots = by_cycle
            .into_iter()
            .map(|(cycle, occupants)| OccupancySlot { cycle, occupants })
            .collect();
        BodySchedule {
            nest,
            name,
            iterations,
            budget,
            placements,
            slots,
        }
    }

    /// The placed interval of every access, in flow-graph access order.
    pub fn placements(&self) -> &[PlacedAccess] {
        &self.placements
    }

    /// The busy cycles of the schedule (ascending), each with the
    /// accesses overlapping it. Cycles without any access are not
    /// stored — memory is proportional to the access count, not the
    /// budget.
    pub fn busy_slots(&self) -> &[OccupancySlot] {
        &self.slots
    }

    /// Number of cycles in which at least one access is in flight.
    pub fn busy_cycles(&self) -> usize {
        self.slots.len()
    }

    /// Pressure cost of this schedule (see module docs), *per body
    /// execution*.
    pub fn pressure(&self) -> f64 {
        let mut cost = 0.0;
        for slot in &self.slots {
            for (i, a) in slot.occupants.iter().enumerate() {
                for b in &slot.occupants[i + 1..] {
                    cost += pair_cost(a, b);
                }
            }
        }
        cost
    }
}

/// Result of storage-cycle-budget distribution.
#[derive(Debug, Clone)]
pub struct ScbdResult {
    /// Balanced schedules, one per non-empty loop body.
    pub bodies: Vec<BodySchedule>,
    /// Cycles consumed: `sum(iterations x budget)`.
    pub used_cycles: u64,
    /// The global budget that was distributed.
    pub total_budget: u64,
}

impl ScbdResult {
    /// Unused cycles (available to the data-path scheduler, Table 3's
    /// "extra cycles for data-path").
    pub fn slack(&self) -> u64 {
        self.total_budget.saturating_sub(self.used_cycles)
    }

    /// Maximum number of simultaneous accesses to groups selected by
    /// `members`, over all bodies and cycles — the port requirement of a
    /// memory storing exactly those groups.
    pub fn required_ports(&self, mut members: impl FnMut(BasicGroupId) -> bool) -> u32 {
        let mut max = 0;
        for body in &self.bodies {
            for slot in body.busy_slots() {
                let n = slot.occupants.iter().filter(|o| members(o.group)).count();
                max = max.max(n);
            }
        }
        max as u32
    }

    /// Number of cycle slots (weighted by body iterations) in which two
    /// or more *on-chip* accesses overlap. Zero means the on-chip
    /// organization is bandwidth-unconstrained; the first budget at
    /// which this turns positive is the Table 3 crossover where the
    /// on-chip cost starts to rise.
    pub fn on_chip_overlap_weight(&self) -> f64 {
        let mut weight = 0.0;
        for body in &self.bodies {
            for slot in body.busy_slots() {
                if slot.occupants.iter().filter(|o| !o.off_chip).count() >= 2 {
                    weight += body.iterations as f64;
                }
            }
        }
        weight
    }

    /// `true` if accesses to `a` and `b` ever overlap (the groups then
    /// cannot share a single-port memory).
    pub fn conflicts(&self, a: BasicGroupId, b: BasicGroupId) -> bool {
        for body in &self.bodies {
            for slot in body.busy_slots() {
                let has_a = slot.occupants.iter().any(|o| o.group == a);
                let has_b = slot.occupants.iter().any(|o| o.group == b);
                if has_a && has_b {
                    return true;
                }
            }
        }
        false
    }
}

/// Balances the flow graph of one body into `budget` cycles.
///
/// Accesses are placed in topological order; each picks the start cycle
/// in its `[ASAP, ALAP]` window that adds the least overlap pressure
/// (earliest on ties). Placing every access at or before its static ALAP
/// keeps all successors feasible, so the schedule always fits.
///
/// # Errors
///
/// Returns [`ExploreError::BudgetTooTight`] if the body's critical path
/// exceeds `budget`.
pub fn schedule_body(
    spec: &AppSpec,
    nest: &LoopNest,
    budget: u64,
) -> Result<BodySchedule, ExploreError> {
    schedule_body_with(spec, nest, budget, true)
}

/// Naive baseline scheduler: packs every access as-soon-as-possible
/// without balancing. Exposed for the ablation study of the balancing
/// design choice — ASAP packing maximizes overlap and therefore port
/// and separate-memory requirements.
///
/// # Errors
///
/// Returns [`ExploreError::BudgetTooTight`] if the body's critical path
/// exceeds `budget`.
pub fn schedule_body_asap(
    spec: &AppSpec,
    nest: &LoopNest,
    budget: u64,
) -> Result<BodySchedule, ExploreError> {
    schedule_body_with(spec, nest, budget, false)
}

/// Overlap cost of starting `occupant` (duration `dur`) at cycle `s`
/// against the accesses placed so far.
fn placement_cost(placed: &[PlacedAccess], occupant: &Occupant, s: u64, dur: u64) -> f64 {
    let mut cost = 0.0;
    for p in placed {
        let lo = s.max(p.start);
        let hi = (s + dur).min(p.end());
        if hi > lo {
            cost += (hi - lo) as f64 * pair_cost(&p.occupant, occupant);
        }
    }
    cost
}

fn schedule_body_with(
    spec: &AppSpec,
    nest: &LoopNest,
    budget: u64,
    balance: bool,
) -> Result<BodySchedule, ExploreError> {
    let n = nest.accesses().len();
    let cp = body_critical_path(spec, nest);
    if cp > budget {
        return Err(ExploreError::BudgetTooTight {
            nest: nest.name().to_owned(),
            required: cp,
            available: budget,
        });
    }
    let dur: Vec<u64> = nest
        .accesses()
        .iter()
        .map(|a| access_duration(spec, a))
        .collect();

    // ASAP (longest path from sources) and ALAP (budget minus longest
    // path to sinks).
    let topo = topo_order(nest);
    let mut asap = vec![0u64; n];
    for &i in &topo {
        for s in nest.successors(memx_ir::AccessId::from_index(i)) {
            let j = s.index();
            asap[j] = asap[j].max(asap[i] + dur[i]);
        }
    }
    let mut tail = dur.clone(); // longest path from start of i to end
    for &i in topo.iter().rev() {
        for s in nest.successors(memx_ir::AccessId::from_index(i)) {
            let j = s.index();
            tail[i] = tail[i].max(dur[i] + tail[j]);
        }
    }
    let alap: Vec<u64> = (0..n).map(|i| budget - tail[i]).collect();

    let mut placed: Vec<PlacedAccess> = Vec::with_capacity(n);
    let mut start = vec![0u64; n];
    let mut placement_of = vec![usize::MAX; n]; // access index -> placed index
    for &i in &topo {
        let a = &nest.accesses()[i];
        let occupant = Occupant {
            group: a.group(),
            off_chip: spec.group(a.group()).placement() == Placement::OffChip,
        };
        // Earliest start after scheduled predecessors.
        let mut earliest = asap[i];
        for pfrom in nest.predecessors(memx_ir::AccessId::from_index(i)) {
            let p = pfrom.index();
            earliest = earliest.max(start[p] + dur[p]);
        }
        debug_assert!(earliest <= alap[i], "window collapsed for access {i}");
        let mut best = earliest;
        if balance && !placed.is_empty() {
            // The overlap cost is piecewise linear in the start cycle;
            // its leftmost minimizer over [earliest, alap] is either a
            // window endpoint or a breakpoint — an endpoint of a placed
            // interval, possibly shifted left by this access's duration.
            // Evaluating only those candidates (ascending, strict
            // improvement, early exit on zero) picks exactly the cycle a
            // full per-cycle scan would.
            let mut cands: Vec<u64> = Vec::with_capacity(4 * placed.len() + 2);
            cands.push(earliest);
            cands.push(alap[i]);
            for p in &placed {
                for c in [
                    Some(p.start),
                    Some(p.end()),
                    p.start.checked_sub(dur[i]),
                    p.end().checked_sub(dur[i]),
                ]
                .into_iter()
                .flatten()
                {
                    if c > earliest && c < alap[i] {
                        cands.push(c);
                    }
                }
            }
            cands.sort_unstable();
            cands.dedup();
            let mut best_cost = f64::INFINITY;
            for &s in &cands {
                let cost = placement_cost(&placed, &occupant, s, dur[i]);
                if cost < best_cost {
                    best_cost = cost;
                    best = s;
                    if cost == 0.0 {
                        break;
                    }
                }
            }
        }
        start[i] = best;
        placement_of[i] = placed.len();
        placed.push(PlacedAccess {
            occupant,
            start: best,
            duration: dur[i],
        });
    }
    // Report placements in access order, not topological order.
    let mut placements = Vec::with_capacity(n);
    for i in 0..n {
        placements.push(placed[placement_of[i]]);
    }
    Ok(BodySchedule::new(
        nest.id(),
        nest.name().to_owned(),
        nest.iterations(),
        budget,
        placements,
    ))
}

fn topo_order(nest: &LoopNest) -> Vec<usize> {
    let n = nest.accesses().len();
    let mut indeg = vec![0usize; n];
    for e in nest.dependencies() {
        indeg[e.to.index()] += 1;
    }
    let mut stack: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    stack.reverse(); // deterministic: prefer low indices first
    let mut order = Vec::with_capacity(n);
    while let Some(i) = stack.pop() {
        order.push(i);
        for e in nest.dependencies().iter().filter(|e| e.from.index() == i) {
            let j = e.to.index();
            indeg[j] -= 1;
            if indeg[j] == 0 {
                stack.push(j);
            }
        }
    }
    debug_assert_eq!(order.len(), n);
    order
}

/// Distributes the spec's storage cycle budget over its loop bodies (see
/// module docs).
///
/// # Errors
///
/// Returns [`ExploreError::BudgetTooTight`] if even the per-body
/// critical paths do not fit the global budget.
pub fn distribute(spec: &AppSpec) -> Result<ScbdResult, ExploreError> {
    distribute_with_budget(spec, spec.cycle_budget())
}

/// Naive baseline distribution for the balancing ablation: every body
/// gets its critical-path budget and is packed ASAP — no balancing, no
/// marginal-relief grants. This is what a schedule looks like *without*
/// the paper's flow-graph balancing.
///
/// # Errors
///
/// Returns [`ExploreError::BudgetTooTight`] if even the per-body
/// critical paths do not fit the global budget.
pub fn distribute_asap(spec: &AppSpec, budget: u64) -> Result<ScbdResult, ExploreError> {
    let nests: Vec<&LoopNest> = spec
        .loop_nests()
        .iter()
        .filter(|n| !n.accesses().is_empty())
        .collect();
    let budgets: Vec<u64> = nests.iter().map(|n| body_critical_path(spec, n)).collect();
    let used: u64 = nests
        .iter()
        .zip(&budgets)
        .map(|(n, &b)| n.iterations() * b)
        .sum();
    if used > budget {
        let worst = nests
            .iter()
            .zip(&budgets)
            .max_by_key(|(n, &b)| n.iterations() * b)
            .map(|(n, _)| n.name().to_owned())
            .unwrap_or_default();
        return Err(ExploreError::BudgetTooTight {
            nest: worst,
            required: used,
            available: budget,
        });
    }
    let bodies = nests
        .iter()
        .zip(&budgets)
        .map(|(n, &b)| schedule_body_asap(spec, n, b))
        .collect::<Result<_, _>>()?;
    Ok(ScbdResult {
        bodies,
        used_cycles: used,
        total_budget: budget,
    })
}

/// Like [`distribute`], but with an explicit global budget — the knob
/// the designer turns in Table 3 ("the designer can opt for a lower
/// storage cycle budget, to allow more cycles for the data processing").
///
/// Thanks to the sparse schedule representation this handles budgets of
/// any magnitude (10⁸-cycle real-time budgets and beyond): cost is
/// proportional to the number of accesses, not the budget.
///
/// # Errors
///
/// Returns [`ExploreError::BudgetTooTight`] if the budget is below the
/// sum of per-body critical paths.
pub fn distribute_with_budget(spec: &AppSpec, budget: u64) -> Result<ScbdResult, ExploreError> {
    let nests: Vec<&LoopNest> = spec
        .loop_nests()
        .iter()
        .filter(|n| !n.accesses().is_empty())
        .collect();
    // Start at the critical-path minimum per body.
    let mut budgets: Vec<u64> = nests.iter().map(|n| body_critical_path(spec, n)).collect();
    let serial: Vec<u64> = nests
        .iter()
        .map(|n| n.accesses().iter().map(|a| access_duration(spec, a)).sum())
        .collect();
    let mut used: u64 = nests
        .iter()
        .zip(&budgets)
        .map(|(n, &b)| n.iterations() * b)
        .sum();
    if used > budget {
        // Report the heaviest body for diagnosis.
        let worst = nests
            .iter()
            .zip(&budgets)
            .max_by_key(|(n, &b)| n.iterations() * b)
            .map(|(n, _)| n.name().to_owned())
            .unwrap_or_default();
        return Err(ExploreError::BudgetTooTight {
            nest: worst,
            required: used,
            available: budget,
        });
    }

    let mut schedules: Vec<BodySchedule> = nests
        .iter()
        .zip(&budgets)
        .map(|(n, &b)| schedule_body(spec, n, b))
        .collect::<Result<_, _>>()?;
    let mut pressures: Vec<f64> = schedules.iter().map(BodySchedule::pressure).collect();

    // Greedy marginal-relief loop: grant extra cycles to the body with
    // the best pressure relief per global-budget cycle. A small
    // lookahead (several cycles at once) escapes plateaus where one
    // extra cycle alone does not reduce pressure yet.
    loop {
        let mut best: Option<(usize, u64, BodySchedule, f64)> = None;
        for (i, nest) in nests.iter().enumerate() {
            if pressures[i] == 0.0 {
                continue;
            }
            let step = nest.iterations();
            let max_extra = GRANT_LOOKAHEAD
                .min(serial[i].saturating_sub(budgets[i]))
                .min(budget.saturating_sub(used) / step.max(1));
            for extra in 1..=max_extra {
                let candidate = schedule_body(spec, nest, budgets[i] + extra)?;
                let relief = (pressures[i] - candidate.pressure()) * step as f64;
                let relief_per_cycle = relief / (extra * step) as f64;
                if relief_per_cycle > 0.0
                    && best
                        .as_ref()
                        .map(|(_, _, _, r)| relief_per_cycle > *r)
                        .unwrap_or(true)
                {
                    best = Some((i, extra, candidate, relief_per_cycle));
                }
            }
        }
        match best {
            Some((i, extra, candidate, _)) => {
                budgets[i] += extra;
                used += extra * nests[i].iterations();
                pressures[i] = candidate.pressure();
                schedules[i] = candidate;
            }
            None => break,
        }
    }

    Ok(ScbdResult {
        bodies: schedules,
        used_cycles: used,
        total_budget: budget,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use memx_ir::{AccessKind, AppSpecBuilder};

    /// Two independent reads of different groups plus a dependent write.
    fn small_spec(budget: u64) -> AppSpec {
        let mut b = AppSpecBuilder::new("t");
        let x = b.basic_group("x", 64, 8).unwrap();
        let y = b.basic_group("y", 64, 8).unwrap();
        let n = b.loop_nest("l", 100).unwrap();
        let rx = b.access(n, x, AccessKind::Read).unwrap();
        let ry = b.access(n, y, AccessKind::Read).unwrap();
        let w = b.access(n, x, AccessKind::Write).unwrap();
        b.depend(n, rx, w).unwrap();
        b.depend(n, ry, w).unwrap();
        b.cycle_budget(budget);
        b.build().unwrap()
    }

    #[test]
    fn tight_budget_forces_overlap() {
        let spec = small_spec(200); // 2 cycles/body: reads must overlap
        let result = distribute(&spec).unwrap();
        assert_eq!(result.bodies[0].budget, 2);
        // The two reads overlap -> x and y conflict.
        let x = memx_ir::BasicGroupId::from_index(0);
        let y = memx_ir::BasicGroupId::from_index(1);
        assert!(result.conflicts(x, y));
    }

    #[test]
    fn loose_budget_removes_conflicts() {
        let spec = small_spec(1000);
        let result = distribute(&spec).unwrap();
        assert!(result.bodies[0].budget >= 3);
        let x = memx_ir::BasicGroupId::from_index(0);
        let y = memx_ir::BasicGroupId::from_index(1);
        assert!(!result.conflicts(x, y));
        assert_eq!(result.bodies[0].pressure(), 0.0);
    }

    #[test]
    fn infeasible_budget_errors() {
        let spec = small_spec(200);
        let err = distribute_with_budget(&spec, 150).unwrap_err();
        assert!(matches!(err, ExploreError::BudgetTooTight { .. }));
    }

    #[test]
    fn slack_accounts_unused_cycles() {
        let spec = small_spec(1000);
        let result = distribute(&spec).unwrap();
        assert_eq!(result.slack(), 1000 - result.used_cycles);
        assert!(result.used_cycles <= 1000);
    }

    #[test]
    fn required_ports_counts_same_group_overlap() {
        // Two independent reads of the SAME group with budget 1 slot
        // each... they must overlap when the budget is the critical path.
        let mut b = AppSpecBuilder::new("t");
        let x = b.basic_group("x", 64, 8).unwrap();
        let n = b.loop_nest("l", 10).unwrap();
        b.access(n, x, AccessKind::Read).unwrap();
        b.access(n, x, AccessKind::Read).unwrap();
        b.cycle_budget(10); // 1 cycle per body
        let spec = b.build().unwrap();
        let result = distribute(&spec).unwrap();
        let ports = result.required_ports(|g| g == x);
        assert_eq!(ports, 2);
    }

    #[test]
    fn budget_grants_go_to_the_hottest_body() {
        // One hot body (many iterations) and one cold body compete for
        // slack; relief per global cycle favours the hot one only if its
        // pressure drop is worth iterations x 1 cycle... with equal
        // bodies the cold one is cheaper to relieve.
        let mut b = AppSpecBuilder::new("t");
        let x = b.basic_group("x", 64, 8).unwrap();
        let y = b.basic_group("y", 64, 8).unwrap();
        let hot = b.loop_nest("hot", 1000).unwrap();
        b.access(hot, x, AccessKind::Read).unwrap();
        b.access(hot, y, AccessKind::Read).unwrap();
        let cold = b.loop_nest("cold", 10).unwrap();
        b.access(cold, x, AccessKind::Read).unwrap();
        b.access(cold, y, AccessKind::Read).unwrap();
        // Enough for cold to relax (adds 10 cycles) but not hot (needs
        // 1000).
        b.cycle_budget(1000 + 10 + 10 + 5);
        let spec = b.build().unwrap();
        let result = distribute(&spec).unwrap();
        let hot_sched = result.bodies.iter().find(|s| s.name == "hot").unwrap();
        let cold_sched = result.bodies.iter().find(|s| s.name == "cold").unwrap();
        assert_eq!(hot_sched.budget, 1);
        assert_eq!(cold_sched.budget, 2);
    }

    #[test]
    fn off_chip_durations_respected() {
        let mut b = AppSpecBuilder::new("t");
        let g = b
            .basic_group_placed("g", 1 << 20, 8, memx_ir::Placement::OffChip)
            .unwrap();
        let n = b.loop_nest("l", 10).unwrap();
        b.access(n, g, AccessKind::Read).unwrap();
        b.cycle_budget(40);
        let spec = b.build().unwrap();
        let result = distribute(&spec).unwrap();
        // A single random off-chip access occupies 4 cycles.
        assert_eq!(result.bodies[0].budget, 4);
        assert_eq!(result.bodies[0].busy_cycles(), 4);
    }

    #[test]
    fn asap_packing_never_beats_balancing() {
        let spec = small_spec(1000);
        let balanced = distribute(&spec).unwrap();
        let naive = distribute_asap(&spec, 1000).unwrap();
        let bp: f64 = balanced.bodies.iter().map(BodySchedule::pressure).sum();
        let np: f64 = naive.bodies.iter().map(BodySchedule::pressure).sum();
        assert!(bp <= np, "balanced {bp} > naive {np}");
        // With a loose budget the balanced schedule is conflict-free
        // while ASAP still packs the two reads together.
        assert_eq!(bp, 0.0);
        assert!(np > 0.0);
    }

    #[test]
    fn empty_nests_are_skipped() {
        let mut b = AppSpecBuilder::new("t");
        let g = b.basic_group("g", 64, 8).unwrap();
        let n = b.loop_nest("real", 10).unwrap();
        b.access(n, g, AccessKind::Read).unwrap();
        b.loop_nest("empty", 1000).unwrap();
        b.cycle_budget(100);
        let spec = b.build().unwrap();
        let result = distribute(&spec).unwrap();
        assert_eq!(result.bodies.len(), 1);
    }

    #[test]
    fn hundred_million_cycle_budget_schedules_sparsely() {
        // A production-scale budget derived from a real-time constraint.
        // The dense per-cycle table would allocate 10^8 slot vectors;
        // the sparse schedule stays proportional to the access count.
        let spec = small_spec(100_000_000);
        let result = distribute_with_budget(&spec, 100_000_000).unwrap();
        let body = &result.bodies[0];
        // 3 accesses of 1 cycle each: at most 3 busy cycles stored.
        assert!(body.busy_cycles() <= 3);
        assert_eq!(body.placements().len(), 3);
        assert_eq!(body.pressure(), 0.0);
        assert!(result.used_cycles <= 100_000_000);
    }

    #[test]
    fn astronomical_body_budget_is_fine() {
        // Near-u64::MAX budgets must neither overflow nor allocate.
        let spec = small_spec(400);
        let nest = &spec.loop_nests()[0];
        let sched = schedule_body(&spec, nest, u64::MAX / 2).unwrap();
        assert!(sched.busy_cycles() <= 3);
        assert_eq!(sched.pressure(), 0.0);
    }

    #[test]
    fn busy_slots_match_placements() {
        let spec = small_spec(1000);
        let result = distribute(&spec).unwrap();
        for body in &result.bodies {
            let occupant_cycles: usize = body.busy_slots().iter().map(|s| s.occupants.len()).sum();
            let durations: u64 = body.placements().iter().map(|p| p.duration).sum();
            assert_eq!(occupant_cycles as u64, durations);
            for p in body.placements() {
                assert!(p.end() <= body.budget);
            }
            for w in body.busy_slots().windows(2) {
                assert!(w[0].cycle < w[1].cycle, "slots must be ascending");
            }
        }
    }
}
