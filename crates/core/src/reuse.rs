//! Automatic data-reuse analysis: deriving memory-hierarchy candidates.
//!
//! The paper takes the hierarchy decision manually from cost feedback
//! (§4.4) and cites the formalized methodology of Wuytack et al. (its
//! reference 18) as the systematic alternative. This module implements
//! that systematic step: it analyzes how often each basic group's data
//! is *re-read* and proposes candidate layer chains
//! ([`HierarchyLayer`]s) for [`crate::hierarchy::apply_hierarchy`],
//! together with a driver that evaluates all candidates and keeps the
//! best ([`auto_hierarchy`]).
//!
//! The reuse model is pragmatic, matching the information available in
//! the pruned IR: a group read `r` times per loop iteration from a
//! working set that advances slowly has intra-body reuse `r` (the reads
//! of one iteration share a small window) and cross-iteration reuse
//! bounded by the total read-per-word ratio.

use memx_ir::{AppSpec, BasicGroupId, Placement};
use memx_memlib::MemLibrary;

use crate::explore::{evaluate, CostReport, EvaluateOptions};
use crate::hierarchy::{apply_hierarchy, HierarchyLayer};
use crate::ExploreError;

/// A proposed hierarchy (possibly empty = "no hierarchy") for one group.
#[derive(Debug, Clone, PartialEq)]
pub struct ReuseCandidate {
    /// The group the layers would serve.
    pub group: BasicGroupId,
    /// Proposed chain, innermost first; empty = keep direct access.
    pub layers: Vec<HierarchyLayer>,
    /// Estimated read traffic removed from the backing store, per
    /// application execution.
    pub reads_absorbed: f64,
}

/// Per-group reuse statistics extracted from the specification.
#[derive(Debug, Clone, PartialEq)]
pub struct ReuseStats {
    /// The analyzed group.
    pub group: BasicGroupId,
    /// Total (weighted) reads per application execution.
    pub reads: f64,
    /// Total reads divided by the number of words: the average number
    /// of times each word is read. Values above 1 mean a hierarchy can
    /// pay off at all.
    pub reads_per_word: f64,
    /// Maximum reads of the group inside one loop body (the intra-body
    /// window reuse a small register layer can capture).
    pub max_reads_per_iteration: f64,
}

/// Analyzes the read-reuse of every basic group.
pub fn analyze(spec: &AppSpec) -> Vec<ReuseStats> {
    spec.basic_groups()
        .iter()
        .map(|g| {
            let (reads, _) = spec.total_accesses(g.id());
            let max_reads_per_iteration = spec
                .loop_nests()
                .iter()
                .map(|n| {
                    n.accesses()
                        .iter()
                        .filter(|a| a.group() == g.id() && a.kind().is_read())
                        .map(memx_ir::Access::weight)
                        .sum::<f64>()
                })
                .fold(0.0, f64::max);
            ReuseStats {
                group: g.id(),
                reads,
                reads_per_word: reads / g.words() as f64,
                max_reads_per_iteration,
            }
        })
        .collect()
}

/// Proposes hierarchy candidates for `group`.
///
/// Candidates are only proposed for off-chip groups with genuine reuse
/// (`reads_per_word > 1`): a register window capturing the intra-body
/// reuse, a small buffer capturing cross-iteration reuse, and the
/// two-level chain combining them.
pub fn candidates(spec: &AppSpec, group: BasicGroupId) -> Vec<ReuseCandidate> {
    let g = spec.group(group);
    let stats = analyze(spec)
        .into_iter()
        .find(|s| s.group == group)
        // memx-lint: allow(no-panic-paths) — `analyze` emits one stats row for every group of the spec.
        .expect("group belongs to spec");
    let mut out = vec![ReuseCandidate {
        group,
        layers: Vec::new(),
        reads_absorbed: 0.0,
    }];
    if g.placement() != Placement::OffChip || stats.reads_per_word <= 1.0 {
        return out;
    }
    let window_reuse = stats
        .max_reads_per_iteration
        .max(1.0)
        .min(stats.reads_per_word);
    // Register window: a few words more than one iteration touches,
    // dual-ported because it is filled while being read.
    if window_reuse > 1.2 {
        let words = (stats.max_reads_per_iteration.ceil() as u64 * 3).clamp(4, 64);
        out.push(ReuseCandidate {
            group,
            layers: vec![HierarchyLayer::new(
                format!("{}_window", g.name()),
                words,
                2,
                (window_reuse / 1.5).max(1.0),
            )],
            reads_absorbed: stats.reads * (1.0 - 1.5 / window_reuse.max(1.5)),
        });
    }
    // Buffer layer: ~a row of the structure, capturing most of the
    // total reuse with page-mode fills.
    let buffer_words = (g.words() as f64).sqrt().ceil() as u64 * 4;
    if buffer_words < g.words() && stats.reads_per_word > 1.5 {
        let buffer = HierarchyLayer::new(
            format!("{}_buffer", g.name()),
            buffer_words.max(64),
            2,
            stats.reads_per_word,
        );
        out.push(ReuseCandidate {
            group,
            layers: vec![buffer.clone()],
            reads_absorbed: stats.reads * (1.0 - 1.0 / stats.reads_per_word),
        });
        if window_reuse > 1.2 {
            let words = (stats.max_reads_per_iteration.ceil() as u64 * 3).clamp(4, 64);
            let window = HierarchyLayer::new(
                format!("{}_window", g.name()),
                words,
                2,
                (window_reuse / 1.5).max(1.0),
            );
            let mut feeding = buffer;
            feeding.ports = 1; // only fills the window's copy loop
            if feeding.words > words && feeding.reuse >= window.reuse {
                out.push(ReuseCandidate {
                    group,
                    layers: vec![window, feeding],
                    reads_absorbed: stats.reads * (1.0 - 1.0 / stats.reads_per_word),
                });
            }
        }
    }
    out
}

/// The automatic hierarchy decision: evaluates every candidate of every
/// reusable group and returns the cheapest specification (possibly the
/// input, when no hierarchy pays off) with its report.
///
/// This is a one-group-at-a-time greedy pass, mirroring the paper's
/// "for every basic group, a separate memory hierarchy decision is
/// made".
///
/// # Errors
///
/// Propagates evaluation errors of the *baseline* spec; candidate
/// variants that fail to evaluate are skipped.
pub fn auto_hierarchy(
    spec: &AppSpec,
    lib: &MemLibrary,
    options: &EvaluateOptions,
) -> Result<(AppSpec, CostReport), ExploreError> {
    let mut best_spec = spec.clone();
    let mut best_report = evaluate(spec, lib, options)?;
    let groups: Vec<BasicGroupId> = spec.basic_groups().iter().map(|g| g.id()).collect();
    for group in groups {
        let mut improved: Option<(AppSpec, CostReport)> = None;
        for cand in candidates(&best_spec, group) {
            if cand.layers.is_empty() {
                continue;
            }
            let Ok(variant) = apply_hierarchy(&best_spec, group, &cand.layers) else {
                continue;
            };
            let Ok(report) = evaluate(&variant.spec, lib, options) else {
                continue;
            };
            let better_than_best = report.cost.scalar(1.0, 1.0)
                < improved
                    .as_ref()
                    .map(|(_, r)| r.cost.scalar(1.0, 1.0))
                    .unwrap_or_else(|| best_report.cost.scalar(1.0, 1.0));
            if better_than_best {
                improved = Some((variant.spec, report));
            }
        }
        if let Some((spec2, report2)) = improved {
            best_spec = spec2;
            best_report = report2;
        }
    }
    Ok((best_spec, best_report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use memx_ir::{AccessKind, AppSpecBuilder};

    fn frame_spec() -> (AppSpec, BasicGroupId) {
        let mut b = AppSpecBuilder::new("t");
        let image = b
            .basic_group_placed("image", 1 << 18, 8, Placement::OffChip)
            .unwrap();
        let out = b
            .basic_group_placed("out", 1 << 18, 8, Placement::OffChip)
            .unwrap();
        let n = b.loop_nest("conv", 1 << 18).unwrap();
        let mut reads = Vec::new();
        for _ in 0..9 {
            reads.push(b.access(n, image, AccessKind::Read).unwrap());
        }
        let w = b.access(n, out, AccessKind::Write).unwrap();
        for r in reads {
            b.depend(n, r, w).unwrap();
        }
        b.cycle_budget(30_000_000).real_time_seconds(0.5);
        (b.build().unwrap(), image)
    }

    #[test]
    fn analyze_reports_reuse() {
        let (spec, image) = frame_spec();
        let stats = analyze(&spec);
        let s = stats.iter().find(|s| s.group == image).unwrap();
        assert_eq!(s.reads_per_word, 9.0);
        assert_eq!(s.max_reads_per_iteration, 9.0);
        // The write-only output has no read reuse.
        let out = &stats[1];
        assert_eq!(out.reads, 0.0);
    }

    #[test]
    fn candidates_include_no_hierarchy_and_layers() {
        let (spec, image) = frame_spec();
        let cands = candidates(&spec, image);
        assert!(cands.len() >= 3, "only {} candidates", cands.len());
        assert!(cands[0].layers.is_empty());
        assert!(cands.iter().any(|c| c.layers.len() == 1));
        assert!(cands.iter().any(|c| c.layers.len() == 2));
        for c in &cands {
            for l in &c.layers {
                assert!(l.words < spec.group(image).words());
                assert!(l.reuse >= 1.0);
            }
        }
    }

    #[test]
    fn no_candidates_for_write_only_or_on_chip_groups() {
        let (spec, _) = frame_spec();
        let out = memx_ir::BasicGroupId::from_index(1);
        let cands = candidates(&spec, out);
        assert_eq!(cands.len(), 1);
        assert!(cands[0].layers.is_empty());
    }

    #[test]
    fn auto_hierarchy_improves_a_reuse_heavy_spec() {
        let (spec, _) = frame_spec();
        let lib = MemLibrary::default_07um();
        let options = EvaluateOptions::default();
        let baseline = evaluate(&spec, &lib, &options).unwrap();
        let (improved_spec, improved) = auto_hierarchy(&spec, &lib, &options).unwrap();
        assert!(
            improved.cost.scalar(1.0, 1.0) <= baseline.cost.scalar(1.0, 1.0),
            "auto hierarchy made things worse"
        );
        // With 9x reuse a layer must pay off.
        assert!(improved_spec.basic_groups().len() > spec.basic_groups().len());
        assert!(improved.cost.off_chip_power_mw < baseline.cost.off_chip_power_mw);
    }

    #[test]
    fn auto_hierarchy_keeps_reuse_free_specs_unchanged() {
        let mut b = AppSpecBuilder::new("t");
        let g = b
            .basic_group_placed("stream", 1 << 16, 8, Placement::OffChip)
            .unwrap();
        let n = b.loop_nest("scan", 1 << 16).unwrap();
        b.access(n, g, AccessKind::Read).unwrap();
        b.cycle_budget(1 << 20).real_time_seconds(0.1);
        let spec = b.build().unwrap();
        let lib = MemLibrary::default_07um();
        let (unchanged, _) = auto_hierarchy(&spec, &lib, &EvaluateOptions::default()).unwrap();
        assert_eq!(unchanged.basic_groups().len(), spec.basic_groups().len());
    }
}
