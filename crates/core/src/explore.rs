//! The Figure-1 feedback driver: evaluate a specification variant
//! end-to-end and report the three cost figures.
//!
//! Every decision step of the methodology (structuring, hierarchy,
//! budget, allocation) produces *variant specifications*; this module
//! runs a variant through storage-cycle-budget distribution and memory
//! allocation/assignment and returns the accurate area/power feedback
//! that steers the next decision. [`Exploration`] batches variants and
//! keeps their reports side by side, like the tables of the paper.

use std::fmt;

use memx_ir::AppSpec;
use memx_memlib::{CostBreakdown, MemLibrary};

use crate::alloc::{
    assign_with_stats_cached, check_cost_weights, AllocOptions, AllocStats, Organization,
};
use crate::cache::{self, EvalCache};
use crate::macp;
use crate::scbd::ScbdResult;
use crate::ExploreError;

/// Options for a single end-to-end evaluation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EvaluateOptions {
    /// Override of the spec's storage cycle budget (Table 3 knob).
    pub cycle_budget: Option<u64>,
    /// Allocation/assignment options (Table 4 knob).
    pub alloc: AllocOptions,
}

/// The feedback of one evaluated variant.
#[derive(Debug, Clone)]
pub struct CostReport {
    /// Variant label (e.g. `"ridge and pyr merged"`).
    pub label: String,
    /// The paper's three figures.
    pub cost: CostBreakdown,
    /// The designed memory organization behind the figures.
    pub organization: Organization,
    /// The distributed schedule (for inspecting budgets/conflicts).
    pub schedule: ScbdResult,
    /// Memory-access critical path of the variant.
    pub macp_cycles: u64,
    /// Search-effort counters of the allocation solver (branch-and-bound
    /// nodes, sweep skips, off-chip partitions) — how hard the solver
    /// worked, not part of the deterministic result.
    pub alloc_stats: AllocStats,
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:<28} {}", self.label, self.cost)
    }
}

/// Runs SCBD + allocation/assignment on one variant.
///
/// # Errors
///
/// Propagates [`ExploreError`]s from the stages (tight budgets,
/// infeasible assignments).
pub fn evaluate(
    spec: &AppSpec,
    lib: &MemLibrary,
    options: &EvaluateOptions,
) -> Result<CostReport, ExploreError> {
    evaluate_with_cache(spec, lib, None, options)
}

/// Runs SCBD + allocation/assignment on one variant, serving *both
/// stages* from the persistent evaluation cache when one is given (and
/// publishing freshly computed schedules and allocation solutions to
/// it). Results are bit-identical to [`evaluate`] — the cache only
/// changes the work, not the answer (see [`crate::cache`]).
///
/// # Errors
///
/// Propagates [`ExploreError`]s from the stages; the cache itself never
/// fails an evaluation.
pub fn evaluate_with_cache(
    spec: &AppSpec,
    lib: &MemLibrary,
    eval_cache: Option<&EvalCache>,
    options: &EvaluateOptions,
) -> Result<CostReport, ExploreError> {
    let budget = options.cycle_budget.unwrap_or_else(|| spec.cycle_budget());
    let schedule = cache::distribute_cached(spec, budget, eval_cache)?;
    evaluate_scheduled_cached(spec, lib, schedule, options, eval_cache)
}

/// Runs allocation/assignment on an already-distributed schedule.
///
/// This is [`evaluate`] with the storage-cycle-budget stage factored
/// out, so callers that evaluate many variants of one spec at the same
/// budget (e.g. a Table-4 allocation sweep, or the engine's memoized
/// batch evaluation — see [`crate::engine`]) can share one schedule
/// instead of redistributing it per variant.
///
/// # Errors
///
/// Propagates [`ExploreError`]s from allocation/assignment.
pub fn evaluate_scheduled(
    spec: &AppSpec,
    lib: &MemLibrary,
    schedule: ScbdResult,
    options: &EvaluateOptions,
) -> Result<CostReport, ExploreError> {
    evaluate_scheduled_cached(spec, lib, schedule, options, None)
}

/// [`evaluate_scheduled`] with an optional persistent cache for the
/// allocation stage: a cached allocation solution short-circuits the
/// branch-and-bound entirely (stats replayed, results bit-identical —
/// see [`crate::alloc::assign_with_stats_cached`]).
///
/// # Errors
///
/// As for [`evaluate_scheduled`]; the cache itself never fails an
/// evaluation.
pub fn evaluate_scheduled_cached(
    spec: &AppSpec,
    lib: &MemLibrary,
    schedule: ScbdResult,
    options: &EvaluateOptions,
    eval_cache: Option<&EvalCache>,
) -> Result<CostReport, ExploreError> {
    let (organization, alloc_stats) =
        assign_with_stats_cached(spec, &schedule, lib, &options.alloc, eval_cache)?;
    let report = macp::analyze(spec);
    Ok(CostReport {
        label: spec.name().to_owned(),
        cost: organization.cost,
        organization,
        schedule,
        macp_cycles: report.total_cycles,
        alloc_stats,
    })
}

/// A batch of variant evaluations sharing one technology library — the
/// "try out a number of alternatives and compare" workflow of every
/// exploration table in the paper.
#[derive(Debug)]
pub struct Exploration<'a> {
    lib: &'a MemLibrary,
    reports: Vec<CostReport>,
}

impl<'a> Exploration<'a> {
    /// Creates an empty exploration over `lib`.
    pub fn new(lib: &'a MemLibrary) -> Self {
        Exploration {
            lib,
            reports: Vec::new(),
        }
    }

    /// Evaluates a variant and records its report under `label`.
    ///
    /// # Errors
    ///
    /// Propagates the evaluation error without recording a report.
    pub fn add(
        &mut self,
        label: impl Into<String>,
        spec: &AppSpec,
        options: &EvaluateOptions,
    ) -> Result<&CostReport, ExploreError> {
        let mut report = evaluate(spec, self.lib, options)?;
        report.label = label.into();
        self.reports.push(report);
        // memx-lint: allow(no-panic-paths) — the report was pushed on the line above.
        Ok(self.reports.last().expect("just pushed"))
    }

    /// Records an already-evaluated report (the fold target of the
    /// engine's batched evaluation, see [`crate::engine::Engine`]).
    pub fn push(&mut self, report: CostReport) {
        self.reports.push(report);
    }

    /// All recorded reports, in insertion order.
    pub fn reports(&self) -> &[CostReport] {
        &self.reports
    }

    /// The report with the lowest scalarized cost, or `Ok(None)` when no
    /// report has been recorded.
    ///
    /// Comparison uses [`f64::total_cmp`], so even degenerate (NaN)
    /// scalarized costs rank deterministically instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::BadCostWeights`] for NaN, infinite or
    /// negative weights.
    pub fn best(
        &self,
        area_weight: f64,
        power_weight: f64,
    ) -> Result<Option<&CostReport>, ExploreError> {
        check_cost_weights(area_weight, power_weight)?;
        Ok(self.reports.iter().min_by(|a, b| {
            a.cost
                .scalar(area_weight, power_weight)
                .total_cmp(&b.cost.scalar(area_weight, power_weight))
        }))
    }

    /// The Pareto-optimal reports: variants not dominated on all three
    /// cost axes by any other recorded variant. Exposes the genuine
    /// area/power trade-offs the designer must weigh (e.g. Table 2's
    /// layer-1-vs-layer-0 choice).
    pub fn pareto_front(&self) -> Vec<&CostReport> {
        pareto_front(&self.reports)
    }

    /// Renders the reports as a paper-style table.
    pub fn to_table(&self, title: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("{title}\n"));
        out.push_str(&format!(
            "{:<28} {:>16} {:>16} {:>16}\n",
            "Version", "on-chip area", "on-chip power", "off-chip power"
        ));
        out.push_str(&format!(
            "{:<28} {:>16} {:>16} {:>16}\n",
            "", "[mm2]", "[mW]", "[mW]"
        ));
        for r in &self.reports {
            out.push_str(&format!(
                "{:<28} {:>16.1} {:>16.1} {:>16.1}\n",
                r.label, r.cost.on_chip_area_mm2, r.cost.on_chip_power_mw, r.cost.off_chip_power_mw
            ));
        }
        out
    }
}

/// Filters `reports` down to the Pareto front over the three cost axes
/// (on-chip area, on-chip power, off-chip power).
///
/// Duplicate cost points are all kept: they are distinct design options
/// with identical cost, which the designer may still prefer for other
/// reasons (layout, bus structure — the paper's §4.6 closing remark).
pub fn pareto_front(reports: &[CostReport]) -> Vec<&CostReport> {
    let costs: Vec<CostBreakdown> = reports.iter().map(|r| r.cost).collect();
    pareto_indices(&costs)
        .into_iter()
        .map(|i| &reports[i])
        .collect()
}

/// Indices of the Pareto-optimal cost points, in input order.
///
/// A point is kept unless some *other* point dominates it strictly
/// (better-or-equal on every axis and the candidate does not dominate
/// back). Duplicate cost points therefore all survive — the §4.6
/// semantics [`pareto_front`] documents — and the kept *set* is
/// invariant under permutation of the input.
pub fn pareto_indices(costs: &[CostBreakdown]) -> Vec<usize> {
    (0..costs.len())
        .filter(|&i| {
            !costs.iter().enumerate().any(|(j, other)| {
                j != i && other.dominates(&costs[i]) && !costs[i].dominates(other)
            })
            // (kept explicit: "strictly better on some axis" semantics)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use memx_ir::{AccessKind, AppSpecBuilder};

    fn spec() -> AppSpec {
        let mut b = AppSpecBuilder::new("t");
        let x = b.basic_group("x", 1024, 8).unwrap();
        let y = b.basic_group("y", 512, 16).unwrap();
        let n = b.loop_nest("l", 10_000).unwrap();
        let rx = b.access(n, x, AccessKind::Read).unwrap();
        let wy = b.access(n, y, AccessKind::Write).unwrap();
        b.depend(n, rx, wy).unwrap();
        b.cycle_budget(100_000).real_time_seconds(0.01);
        b.build().unwrap()
    }

    #[test]
    fn evaluate_produces_costs_and_schedule() {
        let lib = MemLibrary::default_07um();
        let report = evaluate(&spec(), &lib, &EvaluateOptions::default()).unwrap();
        assert!(report.cost.on_chip_area_mm2 > 0.0);
        assert_eq!(report.macp_cycles, 20_000);
        assert!(!report.schedule.bodies.is_empty());
    }

    #[test]
    fn budget_override_tightens_schedule() {
        let lib = MemLibrary::default_07um();
        let loose = evaluate(&spec(), &lib, &EvaluateOptions::default()).unwrap();
        let tight = evaluate(
            &spec(),
            &lib,
            &EvaluateOptions {
                cycle_budget: Some(20_000),
                ..EvaluateOptions::default()
            },
        )
        .unwrap();
        assert!(tight.schedule.total_budget < loose.schedule.total_budget);
    }

    #[test]
    fn exploration_collects_and_ranks() {
        let lib = MemLibrary::default_07um();
        let mut exp = Exploration::new(&lib);
        exp.add("base", &spec(), &EvaluateOptions::default())
            .unwrap();
        exp.add(
            "tight",
            &spec(),
            &EvaluateOptions {
                cycle_budget: Some(20_000),
                ..EvaluateOptions::default()
            },
        )
        .unwrap();
        assert_eq!(exp.reports().len(), 2);
        assert!(exp.best(1.0, 1.0).expect("weights valid").is_some());
        let table = exp.to_table("Table X");
        assert!(table.contains("Table X"));
        assert!(table.contains("base"));
        assert!(table.contains("tight"));
    }

    #[test]
    fn pareto_front_drops_dominated_variants() {
        let lib = MemLibrary::default_07um();
        let mut exp = Exploration::new(&lib);
        exp.add("loose", &spec(), &EvaluateOptions::default())
            .unwrap();
        exp.add(
            "tight",
            &spec(),
            &EvaluateOptions {
                cycle_budget: Some(20_000),
                ..EvaluateOptions::default()
            },
        )
        .unwrap();
        let front = exp.pareto_front();
        assert!(!front.is_empty());
        // Every front member is undominated.
        for f in &front {
            for r in exp.reports() {
                if !std::ptr::eq(*f, r) {
                    let strictly_dominated =
                        r.cost.dominates(&f.cost) && !f.cost.dominates(&r.cost);
                    assert!(!strictly_dominated);
                }
            }
        }
    }

    #[test]
    fn best_rejects_bad_weights_without_panicking() {
        let lib = MemLibrary::default_07um();
        let mut exp = Exploration::new(&lib);
        exp.add("base", &spec(), &EvaluateOptions::default())
            .unwrap();
        // The regression this guards: NaN weights used to panic inside
        // the comparison ("costs are finite").
        for (aw, pw) in [
            (f64::NAN, 1.0),
            (1.0, f64::NAN),
            (f64::NEG_INFINITY, 1.0),
            (-2.0, 1.0),
            (1.0, -0.1),
        ] {
            let err = exp.best(aw, pw).unwrap_err();
            assert!(
                matches!(err, ExploreError::BadCostWeights { .. }),
                "weights ({aw}, {pw})"
            );
        }
        // An empty exploration with valid weights is None, not an error.
        let empty = Exploration::new(&lib);
        assert!(empty.best(1.0, 1.0).unwrap().is_none());
    }

    #[test]
    fn pareto_indices_keep_duplicates_and_drop_dominated() {
        let costs = vec![
            CostBreakdown::new(1.0, 1.0, 1.0),
            CostBreakdown::new(1.0, 1.0, 1.0), // duplicate: kept too
            CostBreakdown::new(2.0, 2.0, 2.0), // dominated: dropped
            CostBreakdown::new(0.5, 3.0, 1.0), // trade-off: kept
        ];
        assert_eq!(pareto_indices(&costs), vec![0, 1, 3]);
    }

    #[test]
    fn infeasible_variant_is_not_recorded() {
        let lib = MemLibrary::default_07um();
        let mut exp = Exploration::new(&lib);
        let result = exp.add(
            "impossible",
            &spec(),
            &EvaluateOptions {
                cycle_budget: Some(10),
                ..EvaluateOptions::default()
            },
        );
        assert!(result.is_err());
        assert!(exp.reports().is_empty());
    }
}
