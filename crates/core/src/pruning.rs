//! Specification pruning (§4.1).
//!
//! "The tools simply don't consider scalar-level processing which isn't
//! related to memory transfers, and loops which hardly contribute to the
//! total cycle count." This stage drops loop nests whose contribution to
//! the total access count falls below a threshold, and reports basic
//! groups that end up unreferenced (scalar-level data the later stages
//! can ignore).

use memx_ir::{AppSpec, BasicGroupId};

use crate::ExploreError;

/// Outcome of pruning: the focused spec plus a record of what was cut.
#[derive(Debug, Clone)]
pub struct PruneReport {
    /// The pruned specification.
    pub spec: AppSpec,
    /// Names of loop nests removed (below the contribution threshold).
    pub dropped_nests: Vec<String>,
    /// Groups no longer accessed by any remaining nest; the memory
    /// stages treat them as foreground (scalar-level) data.
    pub scalar_groups: Vec<BasicGroupId>,
    /// Fraction of total accesses retained (0, 1].
    pub retained_fraction: f64,
}

/// Prunes loop nests contributing less than `min_share` (e.g. `0.001`)
/// of the total access count.
///
/// Basic groups are never removed — ids stay stable across pruning so
/// later transforms can still refer to them — but groups left without
/// accesses are listed in [`PruneReport::scalar_groups`].
///
/// # Errors
///
/// Returns [`ExploreError::BadTransform`] if `min_share` is not in
/// `[0, 1)`.
pub fn prune(spec: &AppSpec, min_share: f64) -> Result<PruneReport, ExploreError> {
    if !(0.0..1.0).contains(&min_share) {
        return Err(ExploreError::BadTransform {
            reason: format!("min_share {min_share} outside [0, 1)"),
        });
    }
    let total: f64 = spec.total_access_count();
    // Rebuild from scratch: keep qualifying nests only.
    let mut kept_builder = memx_ir::AppSpecBuilder::new(spec.name());
    for g in spec.basic_groups() {
        kept_builder.basic_group_full(
            g.name(),
            g.words(),
            g.bitwidth(),
            g.placement(),
            g.min_ports(),
        )?;
    }
    let mut dropped = Vec::new();
    let mut retained_accesses = 0.0;
    for nest in spec.loop_nests() {
        let weight: f64 = nest
            .accesses()
            .iter()
            .map(|a| a.weight() * nest.iterations() as f64)
            .sum();
        if total > 0.0 && weight / total < min_share {
            dropped.push(nest.name().to_owned());
            continue;
        }
        retained_accesses += weight;
        let id = kept_builder.loop_nest(nest.name(), nest.iterations())?;
        for a in nest.accesses() {
            kept_builder.access_full(id, a.group(), a.kind(), a.weight(), a.is_burst())?;
        }
        for e in nest.dependencies() {
            kept_builder.depend(id, e.from, e.to)?;
        }
    }
    kept_builder
        .cycle_budget(spec.cycle_budget())
        .real_time_seconds(spec.real_time_seconds());
    let pruned = kept_builder.build()?;
    let scalar_groups = pruned
        .basic_groups()
        .iter()
        .filter(|g| {
            let (r, w) = pruned.total_accesses(g.id());
            r + w == 0.0
        })
        .map(|g| g.id())
        .collect();
    Ok(PruneReport {
        spec: pruned,
        dropped_nests: dropped,
        scalar_groups,
        retained_fraction: if total > 0.0 {
            retained_accesses / total
        } else {
            1.0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use memx_ir::{AccessKind, AppSpecBuilder};

    fn spec_with_minor_nest() -> AppSpec {
        let mut b = AppSpecBuilder::new("t");
        let big = b.basic_group("big", 1024, 8).unwrap();
        let tiny = b.basic_group("tiny", 16, 8).unwrap();
        let hot = b.loop_nest("hot", 100_000).unwrap();
        b.access(hot, big, AccessKind::Read).unwrap();
        let cold = b.loop_nest("cold", 3).unwrap();
        b.access(cold, tiny, AccessKind::Write).unwrap();
        b.cycle_budget(1_000_000);
        b.build().unwrap()
    }

    #[test]
    fn cold_nests_are_dropped() {
        let spec = spec_with_minor_nest();
        let report = prune(&spec, 0.001).unwrap();
        assert_eq!(report.dropped_nests, vec!["cold".to_string()]);
        assert_eq!(report.spec.loop_nests().len(), 1);
        assert!(report.retained_fraction > 0.999);
    }

    #[test]
    fn unreferenced_groups_become_scalar() {
        let spec = spec_with_minor_nest();
        let report = prune(&spec, 0.001).unwrap();
        assert_eq!(report.scalar_groups.len(), 1);
        let name = report.spec.group(report.scalar_groups[0]).name();
        assert_eq!(name, "tiny");
    }

    #[test]
    fn zero_threshold_keeps_everything() {
        let spec = spec_with_minor_nest();
        let report = prune(&spec, 0.0).unwrap();
        assert!(report.dropped_nests.is_empty());
        assert_eq!(report.spec.loop_nests().len(), 2);
        assert_eq!(report.retained_fraction, 1.0);
    }

    #[test]
    fn bad_threshold_rejected() {
        let spec = spec_with_minor_nest();
        assert!(prune(&spec, 1.0).is_err());
        assert!(prune(&spec, -0.1).is_err());
    }

    #[test]
    fn group_ids_are_stable() {
        let spec = spec_with_minor_nest();
        let report = prune(&spec, 0.001).unwrap();
        assert_eq!(report.spec.basic_groups().len(), spec.basic_groups().len());
        for (a, b) in spec.basic_groups().iter().zip(report.spec.basic_groups()) {
            assert_eq!(a.name(), b.name());
        }
    }
}
