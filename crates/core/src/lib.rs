//! # memx-core — system-level memory organization exploration
//!
//! The paper's contribution: a stepwise, feedback-driven methodology that
//! lets a designer explore system-level data-transfer-and-storage
//! decisions with *accurate* area/power/performance estimates of the
//! resulting custom memory organization.
//!
//! The pipeline mirrors Figure 1 of the paper:
//!
//! 1. [`pruning`] — focus the specification on what matters (§4.1);
//! 2. [`macp`] — memory-access critical-path analysis (§4.2);
//! 3. [`structuring`] — basic-group compaction and merging (§4.3);
//! 4. [`hierarchy`] — custom memory-hierarchy insertion (§4.4);
//! 5. [`scbd`] — storage-cycle-budget distribution via flow-graph
//!    balancing (§4.5);
//! 6. [`alloc`] — memory allocation and signal-to-memory assignment
//!    (§4.6);
//! 7. [`explore`] — the feedback driver tying the stages together and
//!    producing the paper's three-figure cost reports.
//!
//! Beyond the paper's manual flow, [`reuse`] implements the formalized
//! data-reuse analysis its §4.4 cites as the systematic alternative:
//! automatic derivation and evaluation of hierarchy-layer candidates.
//! [`engine`] batches design-point evaluations across a worker pool
//! (with memoized scheduling), so sweeps and variant comparisons run as
//! fast as the hardware allows while returning bit-identical results to
//! the serial path; [`cache`] makes that memoization durable — a
//! disk-backed, content-addressed store that carries schedules across
//! processes and CI runs.
//!
//! # Example
//!
//! ```
//! use memx_core::explore::{evaluate, EvaluateOptions};
//! use memx_ir::{AppSpecBuilder, AccessKind};
//! use memx_memlib::MemLibrary;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = AppSpecBuilder::new("demo");
//! let xs = b.basic_group("xs", 4096, 12)?;
//! let nest = b.loop_nest("scan", 4096)?;
//! b.access(nest, xs, AccessKind::Read)?;
//! b.cycle_budget(20_000).real_time_seconds(1e-3);
//! let spec = b.build()?;
//!
//! let lib = MemLibrary::default_07um();
//! let report = evaluate(&spec, &lib, &EvaluateOptions::default())?;
//! assert!(report.cost.on_chip_area_mm2 > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod alloc;
pub mod cache;
pub mod corpus;
pub mod engine;
mod error;
pub mod explore;
pub mod fan;
pub mod hierarchy;
pub mod macp;
pub mod pruning;
pub mod report;
pub mod reuse;
pub mod scbd;
pub mod structuring;

pub use error::ExploreError;
