//! Error type shared by the exploration stages.

use std::error::Error;
use std::fmt;

use memx_ir::BuildSpecError;
use memx_memlib::SelectPartError;

/// Errors raised by the exploration pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum ExploreError {
    /// The cycle budget cannot accommodate the access flow graphs even at
    /// maximal memory parallelism.
    BudgetTooTight {
        /// Loop nest that cannot be scheduled.
        nest: String,
        /// Cycles needed by that body's critical path (with access
        /// durations).
        required: u64,
        /// Cycles available for that body.
        available: u64,
    },
    /// A requested transform referred to a basic group that does not
    /// exist or does not qualify.
    BadTransform {
        /// Explanation of the rejected transform.
        reason: String,
    },
    /// No legal signal-to-memory assignment exists under the given
    /// allocation (e.g. more mutually-conflicting off-chip groups than
    /// ports).
    NoFeasibleAssignment {
        /// Explanation of the infeasibility.
        reason: String,
    },
    /// The off-chip branch-and-bound could not prove an optimal
    /// partition of the off-chip groups within its node budget.
    /// Partition counts grow as Bell numbers, so instances with many
    /// mutually compatible off-chip groups can outgrow any budget; the
    /// signal is deterministic (identical for every worker count) and
    /// the budget is configurable through `AllocOptions::node_limit`
    /// (the binaries' `MEMX_NODE_LIMIT` knob). Note the budget is split
    /// evenly over the deterministic search subtrees (unused shares are
    /// not redistributed — doing so would make truncation depend on
    /// thread timing), so a skewed tree can raise this signal with much
    /// of the nominal budget unspent; raising the limit is still the
    /// right lever, it scales every share.
    TooManyOffChipGroups {
        /// Accessed off-chip groups in the specification.
        count: usize,
        /// The branch-and-bound node budget that was exhausted.
        node_limit: u64,
    },
    /// The off-chip pricing inputs cannot produce finite power figures:
    /// the specification's real-time window is zero, negative or
    /// non-finite (power divides energy by it), or some off-chip
    /// group's weighted traffic is non-finite. A NaN/∞ power floor
    /// would silently disable bound pruning instead of failing loudly,
    /// so the instance is rejected before the search starts.
    BadOffChipPricing {
        /// The specification's real-time window in seconds.
        time_s: f64,
    },
    /// Cost weights handed to a ranking or assignment API were not
    /// finite non-negative numbers; comparing scalarized costs built
    /// from them would be meaningless (and used to panic).
    BadCostWeights {
        /// The offending area weight.
        area_weight: f64,
        /// The offending power weight.
        power_weight: f64,
    },
    /// Re-building a transformed specification failed.
    Spec(BuildSpecError),
    /// Off-chip part selection failed.
    Part(SelectPartError),
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::BudgetTooTight {
                nest,
                required,
                available,
            } => write!(
                f,
                "cycle budget too tight: body `{nest}` needs {required} cycles, {available} available"
            ),
            ExploreError::BadTransform { reason } => write!(f, "invalid transform: {reason}"),
            ExploreError::NoFeasibleAssignment { reason } => {
                write!(f, "no feasible signal-to-memory assignment: {reason}")
            }
            ExploreError::TooManyOffChipGroups { count, node_limit } => write!(
                f,
                "off-chip partition search over {count} groups could not prove \
                 an optimum within its {node_limit}-node budget, split evenly \
                 over deterministic search subtrees \
                 (raise AllocOptions::node_limit / MEMX_NODE_LIMIT)"
            ),
            ExploreError::BadOffChipPricing { time_s } => write!(
                f,
                "off-chip pricing needs a positive finite real-time window and \
                 finite group traffic (real_time_seconds = {time_s}); a \
                 non-finite power floor would silently disable bound pruning"
            ),
            ExploreError::BadCostWeights {
                area_weight,
                power_weight,
            } => write!(
                f,
                "cost weights must be finite and non-negative: \
                 area {area_weight}, power {power_weight}"
            ),
            ExploreError::Spec(e) => write!(f, "specification error: {e}"),
            ExploreError::Part(e) => write!(f, "part selection error: {e}"),
        }
    }
}

impl Error for ExploreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExploreError::Spec(e) => Some(e),
            ExploreError::Part(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BuildSpecError> for ExploreError {
    fn from(e: BuildSpecError) -> Self {
        ExploreError::Spec(e)
    }
}

impl From<SelectPartError> for ExploreError {
    fn from(e: SelectPartError) -> Self {
        ExploreError::Part(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ExploreError::BudgetTooTight {
            nest: "refine".into(),
            required: 30,
            available: 20,
        };
        assert!(e.to_string().contains("refine"));
        let e = ExploreError::TooManyOffChipGroups {
            count: 20,
            node_limit: 1_000,
        };
        assert!(e.to_string().contains("20 groups"));
        assert!(e.to_string().contains("1000-node budget"));
        assert!(e.to_string().contains("MEMX_NODE_LIMIT"));
        let e = ExploreError::BadOffChipPricing { time_s: 0.0 };
        assert!(e.to_string().contains("real_time_seconds = 0"));
        assert!(e.to_string().contains("positive finite"));
        let e = ExploreError::from(BuildSpecError::MissingCycleBudget);
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_err<T: Error + Send + Sync + 'static>() {}
        assert_err::<ExploreError>();
    }
}
