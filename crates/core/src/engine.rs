//! The batched, parallel exploration engine.
//!
//! Every table of the paper is a *batch* of design-point evaluations:
//! budget sweeps (Table 3), allocation sweeps (Table 4), structuring and
//! hierarchy variants (Tables 1–2). The feedback loop only turns as
//! fast as the slowest batch, so the [`Engine`] fans a set of
//! [`DesignPoint`]s across a worker pool and folds the reports back in
//! input order — results are **bit-identical** to evaluating the points
//! one by one (the allocation search itself is deterministic for every
//! worker count, see [`crate::alloc`]).
//!
//! The engine also memoizes storage-cycle-budget distribution across the
//! batch: design points whose `(spec content hash, cycle budget)` match
//! share one [`ScbdResult`] instead of re-balancing the flow graphs per
//! point — a Table-4 sweep schedules once, not once per allocation.
//!
//! # Example
//!
//! ```
//! use memx_core::engine::{DesignPoint, Engine};
//! use memx_core::explore::EvaluateOptions;
//! use memx_ir::{AccessKind, AppSpecBuilder};
//! use memx_memlib::MemLibrary;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = AppSpecBuilder::new("fir");
//! let taps = b.basic_group("taps", 64, 12)?;
//! let nest = b.loop_nest("mac", 100_000)?;
//! b.access(nest, taps, AccessKind::Read)?;
//! b.cycle_budget(400_000).real_time_seconds(1e-2);
//! let spec = b.build()?;
//!
//! let lib = MemLibrary::default_07um();
//! let engine = Engine::new(&lib);
//! let points: Vec<DesignPoint> = [300_000u64, 350_000, 400_000]
//!     .iter()
//!     .map(|&budget| {
//!         DesignPoint::new(
//!             format!("budget {budget}"),
//!             &spec,
//!             EvaluateOptions {
//!                 cycle_budget: Some(budget),
//!                 ..EvaluateOptions::default()
//!             },
//!         )
//!     })
//!     .collect();
//! let exploration = engine.explore(&points)?;
//! assert_eq!(exploration.reports().len(), 3);
//! # Ok(())
//! # }
//! ```

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::{mpsc, Arc, Mutex};
use std::thread;

use memx_ir::AppSpec;
use memx_memlib::MemLibrary;

use crate::cache::{self, EvalCache};
use crate::explore::{evaluate_scheduled_cached, CostReport, EvaluateOptions, Exploration};
use crate::fan::ClaimQueue;
use crate::scbd::ScbdResult;
use crate::ExploreError;

/// Worker count for "one per available core" requests.
pub fn auto_workers() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

thread_local! {
    /// Worker threads spawned *from this thread* by the crate's fan-out
    /// machinery. Thread-local so concurrent test runners never see each
    /// other's spawns.
    static THREAD_SPAWNS: Cell<u64> = const { Cell::new(0) };
}

/// Number of worker threads this crate has spawned from the current
/// thread — instrumentation backing the guarantee that an effective
/// worker count of 1 takes the straight serial path (no thread is
/// spawned, by [`parallel_map`] or any allocation fan-out).
#[doc(hidden)]
pub fn thread_spawns_on_current_thread() -> u64 {
    THREAD_SPAWNS.with(|c| c.get())
}

/// Records one worker-thread spawn (called right before every
/// `scope.spawn` in this crate).
pub(crate) fn note_thread_spawn() {
    THREAD_SPAWNS.with(|c| c.set(c.get() + 1));
}

/// One labeled variant to evaluate: a specification plus the evaluation
/// knobs (budget override, allocation options).
#[derive(Debug, Clone)]
pub struct DesignPoint<'a> {
    /// Label the resulting report carries (row name in tables).
    pub label: String,
    /// The variant specification.
    pub spec: &'a AppSpec,
    /// Evaluation options for this point.
    pub options: EvaluateOptions,
}

impl<'a> DesignPoint<'a> {
    /// Creates a design point.
    pub fn new(label: impl Into<String>, spec: &'a AppSpec, options: EvaluateOptions) -> Self {
        DesignPoint {
            label: label.into(),
            spec,
            options,
        }
    }
}

/// The batched evaluation engine: a technology library, a worker pool
/// size, and optionally a persistent evaluation cache (see module docs).
#[derive(Debug)]
pub struct Engine<'l> {
    lib: &'l MemLibrary,
    workers: usize,
    cache: Option<Arc<EvalCache>>,
}

/// Configures and constructs an [`Engine`]: worker pool size and an
/// optional persistent evaluation cache, settable in any order before
/// [`EngineBuilder::build`].
#[derive(Debug)]
pub struct EngineBuilder<'l> {
    lib: &'l MemLibrary,
    workers: usize,
    cache: Option<Arc<EvalCache>>,
}

impl<'l> EngineBuilder<'l> {
    /// Sets the worker pool size (`0` = one per available core, `1` =
    /// evaluate on the calling thread). Defaults to `0`.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Attaches a persistent evaluation cache: schedule distributions
    /// and allocation solutions are then served from / published to
    /// disk (see [`crate::cache`]). Results are bit-identical with or
    /// without a cache — only the work to produce them changes.
    ///
    /// Accepts an `Arc<EvalCache>` directly or an `Option` for callers
    /// threading a maybe-configured cache through.
    pub fn eval_cache(mut self, cache: impl Into<Option<Arc<EvalCache>>>) -> Self {
        self.cache = cache.into();
        self
    }

    /// Builds the engine, resolving `workers == 0` to one per core.
    pub fn build(self) -> Engine<'l> {
        Engine {
            lib: self.lib,
            workers: match self.workers {
                0 => auto_workers(),
                n => n,
            },
            cache: self.cache,
        }
    }
}

impl<'l> Engine<'l> {
    /// Engine over `lib` with one worker per available core.
    pub fn new(lib: &'l MemLibrary) -> Self {
        Self::builder(lib).build()
    }

    /// Starts configuring an engine over `lib`:
    /// `Engine::builder(lib).workers(n).eval_cache(cache).build()`.
    pub fn builder(lib: &'l MemLibrary) -> EngineBuilder<'l> {
        EngineBuilder {
            lib,
            workers: 0,
            cache: None,
        }
    }

    /// Engine over `lib` with an explicit worker count (`0` = one per
    /// available core, `1` = evaluate on the calling thread).
    #[deprecated(note = "use `Engine::builder(lib).workers(n).build()`")]
    pub fn with_workers(lib: &'l MemLibrary, workers: usize) -> Self {
        Self::builder(lib).workers(workers).build()
    }

    /// Attaches a persistent evaluation cache.
    #[deprecated(note = "use `Engine::builder(lib).eval_cache(cache).build()`")]
    pub fn with_eval_cache(mut self, cache: Option<Arc<EvalCache>>) -> Self {
        self.cache = cache;
        self
    }

    /// The attached persistent cache, if any.
    pub fn eval_cache(&self) -> Option<&EvalCache> {
        self.cache.as_deref()
    }

    /// The resolved worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Evaluates every design point, streaming each [`CostReport`] to
    /// `visit` **in input order** as soon as it (and all its
    /// predecessors) complete — the visitor is called exactly once per
    /// point, on the calling thread.
    ///
    /// This is the memory-frugal path for very large batches: reports
    /// carry full schedules, and a materializing API
    /// ([`Engine::evaluate_many`]) keeps every one of them alive at
    /// once. Here a report's lifetime is the visitor call. With one
    /// worker the batch truly streams: schedules are distributed
    /// lazily, memoized only while a later point still shares them, and
    /// dropped after their last use — a unique-budget sweep (Table 3)
    /// holds one schedule and one report at a time, whatever the row
    /// count. With many workers the unique schedules are distributed up
    /// front across the pool (and retained for the stream's duration),
    /// and out-of-order completions wait in a reorder window bounded by
    /// the evaluation skew, not the batch size.
    ///
    /// Points sharing a `(spec, budget)` pair reuse one memoized
    /// schedule, served from the persistent cache when one is attached
    /// — each freshly computed schedule is published to disk as it
    /// completes. Results are bit-identical to calling
    /// [`crate::explore::evaluate`] per point, for any worker count,
    /// cached or not.
    pub fn evaluate_stream<F>(&self, points: &[DesignPoint], mut visit: F)
    where
        F: FnMut(usize, Result<CostReport, ExploreError>),
    {
        // Key every point by (spec content, budget) and record each
        // key's last use, so the serial path can drop schedules the
        // moment no later point shares them.
        let mut key_of_point: Vec<(u64, u64)> = Vec::with_capacity(points.len());
        let mut last_use: BTreeMap<(u64, u64), usize> = BTreeMap::new();
        for (i, point) in points.iter().enumerate() {
            let budget = point
                .options
                .cycle_budget
                .unwrap_or_else(|| point.spec.cycle_budget());
            let key = (point.spec.content_hash(), budget);
            key_of_point.push(key);
            last_use.insert(key, i);
        }

        // Points whose allocation search is on auto (`workers == 0`)
        // get the pool split between the levels, so a batch does not
        // oversubscribe cores²-style. (The allocation solver spends its
        // share first on the off-chip partition subtrees, then splits
        // it between the k-sweep and each size's subtree search — three
        // cooperating levels in total; see `crate::alloc`.)
        let point_workers = self.workers.min(points.len().max(1));
        let alloc_workers = (self.workers / point_workers).max(1);
        let evaluate_scheduled_point = |point: &DesignPoint,
                                        schedule: Result<ScbdResult, ExploreError>|
         -> Result<CostReport, ExploreError> {
            let mut options = point.options.clone();
            if options.alloc.workers == 0 {
                options.alloc.workers = alloc_workers;
            }
            // The cache serves both stages: schedules in phase 1 (see
            // `distribute_cached` below) and allocation solutions here.
            let mut report = evaluate_scheduled_cached(
                point.spec,
                self.lib,
                schedule?,
                &options,
                self.cache.as_deref(),
            )?;
            report.label = point.label.clone();
            Ok(report)
        };

        if point_workers <= 1 || points.len() <= 1 {
            // Straight serial path: no thread, no buffering. Schedules
            // are computed lazily at their first use, memoized only
            // while a later point still shares them, and handed over
            // (not cloned) at their last use.
            let mut memo: BTreeMap<(u64, u64), Result<ScbdResult, ExploreError>> = BTreeMap::new();
            for (i, point) in points.iter().enumerate() {
                let key = key_of_point[i];
                let distribute =
                    || cache::distribute_cached(point.spec, key.1, self.cache.as_deref());
                let schedule = if last_use[&key] == i {
                    memo.remove(&key).unwrap_or_else(distribute)
                } else {
                    memo.entry(key).or_insert_with(distribute).clone()
                };
                visit(i, evaluate_scheduled_point(point, schedule));
            }
            return;
        }

        // Parallel phase 1: one SCBD distribution per unique key,
        // fanned over the full pool; the map lives for the whole
        // stream (workers consume schedules in claim order, so no
        // per-key lifetime can be tracked without synchronizing on the
        // visitor — the reports themselves still stream).
        let mut unique: Vec<(&DesignPoint, u64)> = Vec::new();
        let mut seen: BTreeMap<(u64, u64), usize> = BTreeMap::new();
        for (i, point) in points.iter().enumerate() {
            seen.entry(key_of_point[i]).or_insert_with(|| {
                unique.push((point, key_of_point[i].1));
                unique.len() - 1
            });
        }
        let schedules = parallel_map(&unique, self.workers, |_, &(point, budget)| {
            cache::distribute_cached(point.spec, budget, self.cache.as_deref())
        });
        let scheduled: BTreeMap<(u64, u64), Result<ScbdResult, ExploreError>> = seen
            .into_iter()
            .map(|(key, idx)| (key, schedules[idx].clone()))
            .collect();
        let evaluate_point = |i: usize, point: &DesignPoint| {
            let schedule = scheduled
                .get(&key_of_point[i])
                // memx-lint: allow(no-panic-paths) — `seen` was filled from the same `key_of_point` entries, so every key is pre-scheduled.
                .expect("every key pre-scheduled")
                .clone();
            evaluate_scheduled_point(point, schedule)
        };

        // Parallel phase 2: workers claim indices dynamically and send
        // completions over a channel; the calling thread reorders them
        // into input order. Equivalent to `parallel_map` but without
        // the all-results-alive slot vector.
        let queue = ClaimQueue::new();
        let (tx, rx) = mpsc::channel::<(usize, Result<CostReport, ExploreError>)>();
        thread::scope(|scope| {
            for _ in 0..point_workers {
                let tx = tx.clone();
                note_thread_spawn();
                scope.spawn(|| {
                    let tx = tx; // move the clone, not the original
                    while let Some(i) = queue.claim(points.len()) {
                        if tx.send((i, evaluate_point(i, &points[i]))).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            let mut pending: BTreeMap<usize, Result<CostReport, ExploreError>> = BTreeMap::new();
            let mut expected = 0usize;
            for (i, result) in rx {
                pending.insert(i, result);
                while let Some(result) = pending.remove(&expected) {
                    visit(expected, result);
                    expected += 1;
                }
            }
            debug_assert!(pending.is_empty(), "every completion delivered in order");
        });
    }

    /// Evaluates every design point, fanning the batch across the worker
    /// pool, and returns the per-point results in input order.
    ///
    /// This is the materializing convenience over
    /// [`Engine::evaluate_stream`]; prefer the streaming path when the
    /// batch is large or reports are consumed one at a time.
    pub fn evaluate_many(&self, points: &[DesignPoint]) -> Vec<Result<CostReport, ExploreError>> {
        let mut results: Vec<Option<Result<CostReport, ExploreError>>> =
            (0..points.len()).map(|_| None).collect();
        self.evaluate_stream(points, |i, result| results[i] = Some(result));
        results
            .into_iter()
            // memx-lint: allow(no-panic-paths) — `evaluate_stream` calls the visitor exactly once per input index.
            .map(|slot| slot.expect("stream visits every point exactly once"))
            .collect()
    }

    /// Evaluates every design point and folds the reports into an
    /// [`Exploration`] in input order — the batched equivalent of
    /// repeated [`Exploration::add`] calls.
    ///
    /// # Errors
    ///
    /// Returns the first (by input order) failing point's error; the
    /// exploration is not partially populated in that case.
    pub fn explore(&self, points: &[DesignPoint]) -> Result<Exploration<'l>, ExploreError> {
        let mut exploration = Exploration::new(self.lib);
        let mut first_error: Option<ExploreError> = None;
        self.evaluate_stream(points, |_, result| {
            if first_error.is_none() {
                match result {
                    Ok(report) => exploration.push(report),
                    Err(e) => first_error = Some(e),
                }
            }
        });
        match first_error {
            Some(e) => Err(e),
            None => Ok(exploration),
        }
    }
}

/// Order-preserving parallel map over a slice: applies `f(index, item)`
/// on up to `workers` threads (`0` = one per available core) and
/// returns the results in input order.
///
/// The scheduling is dynamic (an atomic claim counter), but since every
/// result lands in its input slot the output is independent of timing.
/// With one resolved worker or fewer than two items the map runs inline
/// on the calling thread.
pub fn parallel_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = match workers {
        0 => auto_workers(),
        w => w,
    }
    .min(n.max(1));
    if workers <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let queue = ClaimQueue::new();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    thread::scope(|scope| {
        for _ in 0..workers {
            note_thread_spawn();
            scope.spawn(|| {
                while let Some(i) = queue.claim(n) {
                    let r = f(i, &items[i]);
                    // A poisoned slot lock can only come from a sibling
                    // worker panicking mid-store; the slot is a plain
                    // `Option`, so recovering the lock is always safe.
                    *slots[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(r);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|p| p.into_inner())
                // memx-lint: allow(no-panic-paths) — the claim queue hands out every index exactly once, so each slot was filled.
                .expect("every slot filled by a worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::AllocOptions;
    use crate::explore::evaluate;
    use memx_ir::{AccessKind, AppSpecBuilder};

    fn spec(name: &str) -> AppSpec {
        let mut b = AppSpecBuilder::new(name);
        let x = b.basic_group("x", 1024, 8).unwrap();
        let y = b.basic_group("y", 512, 16).unwrap();
        let n = b.loop_nest("l", 10_000).unwrap();
        let rx = b.access(n, x, AccessKind::Read).unwrap();
        let wy = b.access(n, y, AccessKind::Write).unwrap();
        b.depend(n, rx, wy).unwrap();
        b.cycle_budget(100_000).real_time_seconds(0.01);
        b.build().unwrap()
    }

    fn budget_points(spec: &AppSpec) -> Vec<DesignPoint<'_>> {
        [100_000u64, 50_000, 20_000, 10]
            .iter()
            .map(|&budget| {
                DesignPoint::new(
                    format!("budget {budget}"),
                    spec,
                    EvaluateOptions {
                        cycle_budget: Some(budget),
                        ..EvaluateOptions::default()
                    },
                )
            })
            .collect()
    }

    #[test]
    fn evaluate_many_matches_individual_evaluation() {
        let lib = MemLibrary::default_07um();
        let spec = spec("t");
        let points = budget_points(&spec);
        for workers in [1, 4] {
            let engine = Engine::builder(&lib).workers(workers).build();
            let batch = engine.evaluate_many(&points);
            assert_eq!(batch.len(), points.len());
            for (result, point) in batch.iter().zip(&points) {
                let solo = evaluate(&spec, &lib, &point.options);
                match (result, solo) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a.label, point.label);
                        assert_eq!(a.cost, b.cost);
                        assert_eq!(a.organization, b.organization);
                        assert_eq!(a.macp_cycles, b.macp_cycles);
                    }
                    (Err(a), Err(b)) => assert_eq!(a, &b),
                    (a, b) => panic!("batch {a:?} vs solo {b:?}"),
                }
            }
        }
    }

    #[test]
    fn allocation_sweep_shares_one_schedule() {
        // Same spec and budget, different allocation counts: the
        // memoized schedule must not change any result.
        let lib = MemLibrary::default_07um();
        let spec = spec("t");
        let points: Vec<DesignPoint> = [1u32, 2]
            .iter()
            .map(|&k| {
                DesignPoint::new(
                    format!("k={k}"),
                    &spec,
                    EvaluateOptions {
                        cycle_budget: None,
                        alloc: AllocOptions {
                            on_chip_memories: Some(k),
                            ..AllocOptions::default()
                        },
                    },
                )
            })
            .collect();
        let engine = Engine::builder(&lib).workers(2).build();
        for (result, point) in engine.evaluate_many(&points).iter().zip(&points) {
            let solo = evaluate(&spec, &lib, &point.options).unwrap();
            let batch = result.as_ref().unwrap();
            assert_eq!(batch.cost, solo.cost);
            assert_eq!(batch.organization, solo.organization);
        }
    }

    #[test]
    fn explore_folds_in_input_order_or_fails_fast() {
        let lib = MemLibrary::default_07um();
        let spec = spec("t");
        let good: Vec<DesignPoint> = budget_points(&spec).into_iter().take(3).collect();
        let engine = Engine::builder(&lib).workers(3).build();
        let exploration = engine.explore(&good).unwrap();
        let labels: Vec<&str> = exploration
            .reports()
            .iter()
            .map(|r| r.label.as_str())
            .collect();
        assert_eq!(labels, ["budget 100000", "budget 50000", "budget 20000"]);
        // An infeasible point fails the fold with its error.
        let bad = budget_points(&spec);
        assert!(matches!(
            engine.explore(&bad),
            Err(ExploreError::BudgetTooTight { .. })
        ));
    }

    #[test]
    fn one_worker_parallel_map_spawns_no_threads() {
        let items: Vec<usize> = (0..64).collect();
        let before = thread_spawns_on_current_thread();
        let got = parallel_map(&items, 1, |_, &x| x + 1);
        assert_eq!(got.len(), 64);
        assert_eq!(
            thread_spawns_on_current_thread(),
            before,
            "workers=1 parallel_map spawned a thread"
        );
        // Single-item maps stay inline too, whatever the worker count.
        let before = thread_spawns_on_current_thread();
        parallel_map(&items[..1], 8, |_, &x| x + 1);
        assert_eq!(thread_spawns_on_current_thread(), before);
        // And the instrument itself moves when threads really spawn.
        let before = thread_spawns_on_current_thread();
        parallel_map(&items, 3, |_, &x| x + 1);
        assert_eq!(thread_spawns_on_current_thread(), before + 3);
    }

    #[test]
    fn evaluate_stream_visits_in_input_order_without_materializing() {
        let lib = MemLibrary::default_07um();
        let spec = spec("t");
        let points = budget_points(&spec);
        let many = Engine::builder(&lib)
            .workers(1)
            .build()
            .evaluate_many(&points);
        for workers in [1, 2, 8] {
            let engine = Engine::builder(&lib).workers(workers).build();
            let mut visited: Vec<usize> = Vec::new();
            engine.evaluate_stream(&points, |i, result| {
                visited.push(i);
                match (&result, &many[i]) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a.label, b.label);
                        assert_eq!(a.cost, b.cost);
                        assert_eq!(a.organization, b.organization);
                    }
                    (Err(a), Err(b)) => assert_eq!(a, b),
                    (a, b) => panic!("stream {a:?} vs many {b:?}"),
                }
            });
            assert_eq!(visited, vec![0, 1, 2, 3], "workers={workers}");
        }
    }

    #[test]
    fn one_worker_stream_spawns_no_threads() {
        let lib = MemLibrary::default_07um();
        let spec = spec("t");
        let points = budget_points(&spec);
        let engine = Engine::builder(&lib).workers(1).build();
        let before = thread_spawns_on_current_thread();
        let mut n = 0;
        engine.evaluate_stream(&points, |_, _| n += 1);
        assert_eq!(n, points.len());
        assert_eq!(
            thread_spawns_on_current_thread(),
            before,
            "workers=1 stream spawned a thread"
        );
    }

    #[test]
    fn cached_engine_matches_uncached_bit_for_bit() {
        let dir = std::env::temp_dir().join(format!(
            "memx-engine-cache-{}-{:?}",
            std::process::id(),
            thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let cache = Arc::new(EvalCache::open(&dir).unwrap());
        let lib = MemLibrary::default_07um();
        let spec = spec("t");
        let points = budget_points(&spec);
        let plain = Engine::builder(&lib)
            .workers(2)
            .build()
            .evaluate_many(&points);
        // Cold pass fills the cache, warm pass is served from it; both
        // must equal the uncached reports exactly.
        let mut cold_stats = None;
        for pass in ["cold", "warm"] {
            let engine = Engine::builder(&lib)
                .workers(2)
                .eval_cache(Arc::clone(&cache))
                .build();
            for (result, reference) in engine.evaluate_many(&points).iter().zip(&plain) {
                match (result, reference) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a.cost, b.cost, "{pass}");
                        assert_eq!(a.organization, b.organization, "{pass}");
                        assert_eq!(a.alloc_stats, b.alloc_stats, "{pass}: replayed stats");
                        assert_eq!(a.schedule.bodies.len(), b.schedule.bodies.len(), "{pass}");
                        for (x, y) in a.schedule.bodies.iter().zip(&b.schedule.bodies) {
                            assert_eq!(x.placements(), y.placements(), "{pass}");
                        }
                    }
                    (Err(a), Err(b)) => assert_eq!(a, b, "{pass}"),
                    (a, b) => panic!("{pass}: cached {a:?} vs plain {b:?}"),
                }
            }
            if pass == "cold" {
                cold_stats = Some(cache.stats());
            }
        }
        let stats = cache.stats();
        // Three schedulable unique budgets; the fourth fails (too
        // tight) and errors are never cached.
        assert_eq!(stats.scbd_misses, 3, "cold pass computes each schedule");
        assert_eq!(stats.scbd_hits, 3, "warm pass serves each from disk");
        // Every successful evaluation resolves its allocation against
        // the cache exactly once; the cold pass may already share
        // entries between points (the instance fingerprint ignores the
        // budget when the conflict structure coincides), so only the
        // sum is pinned cold while the warm pass must be all hits.
        let cold = cold_stats.unwrap();
        assert_eq!(
            cold.alloc_hits + cold.alloc_misses,
            3,
            "cold pass resolves each allocation once"
        );
        assert!(cold.alloc_misses >= 1, "a cold cache cannot hit first");
        assert_eq!(
            stats.alloc_misses, cold.alloc_misses,
            "warm pass recomputes no allocation"
        );
        assert_eq!(
            stats.alloc_hits,
            cold.alloc_hits + 3,
            "warm pass serves every allocation from disk"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..37).collect();
        let expected: Vec<usize> = items.iter().map(|i| i * i).collect();
        for workers in [0, 1, 3, 8, 64] {
            let got = parallel_map(&items, workers, |i, &x| {
                assert_eq!(i, x);
                x * x
            });
            assert_eq!(got, expected, "workers={workers}");
        }
    }

    #[test]
    fn engine_resolves_auto_workers() {
        let lib = MemLibrary::default_07um();
        assert!(Engine::new(&lib).workers() >= 1);
        assert_eq!(Engine::builder(&lib).workers(5).build().workers(), 5);
    }

    /// The deprecated constructors stay behaviour-identical shims over
    /// the builder until external callers have migrated.
    #[test]
    #[allow(deprecated)]
    fn deprecated_constructors_match_builder() {
        let lib = MemLibrary::default_07um();
        assert_eq!(
            Engine::with_workers(&lib, 5).workers(),
            Engine::builder(&lib).workers(5).build().workers()
        );
        let shim = Engine::with_workers(&lib, 1).with_eval_cache(None);
        assert!(shim.eval_cache().is_none());
        assert_eq!(shim.workers(), 1);
    }
}
