//! Memory allocation and signal-to-memory assignment (§4.6, Table 4).
//!
//! Given the bandwidth constraints from [`crate::scbd`] (which accesses
//! overlap in time), this stage chooses the number and type of memories
//! and assigns every basic group to one of them, minimizing a weighted
//! area/power cost with the technology models of [`memx_memlib`]:
//!
//! * groups whose accesses overlap force multi-port memories when they
//!   share one (or must be split over several);
//! * storing narrow groups in wide memories wastes cell area
//!   ("bitwidth waste");
//! * splitting on-chip storage over more memories lowers energy per
//!   access (smaller arrays) but pays per-module overhead area — the
//!   Table 4 trade-off.
//!
//! The solver has **three levels**, all exact and all parallel:
//!
//! 1. the *off-chip* side runs a branch-and-bound over set partitions
//!    of the off-chip groups in canonical (restricted-growth) order:
//!    committed blocks are priced exactly against the part catalog,
//!    every partial partition is charged an admissible per-group
//!    dynamic-power floor for its unassigned suffix, and subtrees prune
//!    against a deterministic incumbent — so the retired exhaustive
//!    scan's 12-group cap (Bell(12) ≈ 4.2 M partitions) is gone, and the
//!    only remaining ceiling is the 64-accessed-group u64-mask limit
//!    shared by every partition search here;
//! 2. the *on-chip sweep* tries every allocation size `k = 1..n`
//!    (unless [`AllocOptions::on_chip_memories`] pins one), fanning the
//!    independent searches over the pool;
//! 3. each size runs a *branch-and-bound* over canonical partitions of
//!    the on-chip groups, itself split into deterministic subtrees that
//!    workers claim from a shared queue.
//!
//! # The off-chip lower bound
//!
//! At a partial partition the committed blocks are priced exactly (the
//! same catalog selection a complete partition pays) and every
//! unassigned group `g` contributes its **dynamic-power floor**: `g`'s
//! energy-weighted access rate priced at the cheapest per-access energy
//! any single-ported catalog configuration covering `g`'s width can
//! offer. The floor is admissible whether `g` later joins a committed
//! block or opens a new one — a block's per-access energy is monotone in
//! its width (it gangs at least `ceil(width / part_width)` devices) and
//! the dual-bank factors only add — so pruning never cuts the true
//! optimum. Static power is deliberately *not* charged to unassigned
//! groups (a join may reuse a committed block's rank slack), which is
//! the price of admissibility: instances whose groups are mutually
//! compatible and tie-heavy prune slowly and may exhaust the node
//! budget instead (see below).
//!
//! The search reproduces the retired exhaustive scan **bit for bit**:
//! complete partitions evaluate as the same fresh block-order float sum,
//! leaves are accepted only on strict improvement, and partial
//! partitions are pruned strictly against bounds derived from real
//! leaves — so the canonical-first minimum partition (the exhaustive
//! scan's tie-break) always survives.
//!
//! # Symmetric-group dominance
//!
//! Tie plateaus are factorial: `n` mutually compatible groups with
//! identical dimensions and traffic induce whole orbits of partitions
//! that are permutations of one another, every one priced bit-for-bit
//! identically — the floor cannot separate them, so the search revisits
//! each orbit once per permutation. The off-chip search collapses these
//! orbits with a dominance rule over *adjacent symmetric groups*
//! ([`AllocOptions::off_chip_dominance`]): groups `i-1` and `i` are
//! symmetric when their words, bitwidth, port minimum and weighted
//! traffic are bitwise identical and neither appears in any
//! port-conflict slot. For such a pair only assignments where `i`'s
//! block-choice index is `>=` `i-1`'s are explored (joining an
//! earlier-indexed block than the previous twin did is *dominated*;
//! opening a fresh block is always allowed, its choice index being the
//! largest).
//!
//! **Soundness — the canonical-first optimum survives.** The canonical
//! DFS tries children in ascending choice-index order, so complete
//! partitions are visited in lexicographic choice-vector order and the
//! first-found minimum is the lex-smallest among equal minima. Suppose
//! a partition `P` violates the rule at an adjacent symmetric pair:
//! group `i-1` chose index `c`, group `i` chose `c' < c`. Swapping the
//! two groups' assignments yields a partition `P'` with a lex-smaller
//! choice vector whose every block prices to the *same bits*:
//!
//! * the two groups' (words, bitwidth, min-ports, traffic) tuples are
//!   bitwise identical, and because their local indices are *adjacent*
//!   no other member sorts between them — each affected block's
//!   member-order dimension fold consumes bitwise-equal values at the
//!   same positions;
//! * block creation order is unchanged: block `c'` existed before
//!   either group was placed, and if `c` was freshly opened by `i-1`
//!   in `P`, then in `P'` it is opened — at the same index — by `i`,
//!   with no other open in between;
//! * neither group appears in any conflict slot, so every subset's
//!   port requirement (and hence feasibility) is unchanged.
//!
//! So `P'` is feasible, costs bit-identically, and precedes `P` in
//! visiting order. Iterating the swap (each strictly lex-decreasing,
//! over a finite orbit) reaches a rule-satisfying partition of equal
//! cost bits — hence the lex-smallest minimum satisfies the rule and
//! the pruned search returns bit-identical results; the property tests
//! pin this against the dominance-free exhaustive reference. A pure
//! plateau of `n` twins shrinks from `Bell(n)` partitions to the
//! `2^(n-1)` nondecreasing choice vectors
//! ([`AllocStats::off_chip_dominance_cuts`] counts the suppressed
//! branches).
//!
//! # Incremental bounds
//!
//! Both solvers maintain their bound state under assign/unassign
//! deltas instead of recomputing it from scratch per node
//! ([`AllocStats::bound_incremental_updates`]):
//!
//! * the off-chip search threads a running committed-block sum
//!   (`BlockSum`) through the recursion: changing one block's price
//!   refolds only the prefix-sum tail from that block's index onward,
//!   in the same left-to-right block order the retired exhaustive scan
//!   accumulated — so the running total is *bit-identical* to a fresh
//!   block-order summation at every node (debug builds assert exactly
//!   that, node by node), and backtracking refolds the restored prices
//!   back to the previous bits;
//! * the on-chip search maintains the still-to-open memory count as an
//!   integer delta and derives `node_bound` from it
//!   (`SuffixBound::bound_with`) — the float expression is evaluated
//!   fresh from the same table entries as the from-scratch bound,
//!   never accumulated across nodes, so no float drift is possible.
//!
//! # Off-chip node budget
//!
//! The off-chip search shares [`AllocOptions::node_limit`]. Unlike the
//! on-chip levels (which degrade to their greedy incumbent), an
//! exhausted off-chip search returns
//! [`ExploreError::TooManyOffChipGroups`] — a *deterministic* signal
//! (identical for every worker count: a truncated subtree only raises
//! it when its lower bound does not already prove it irrelevant) that
//! the instance needs a bigger budget, not a silently unproven answer.
//!
//! # Lower bounds
//!
//! Subtree skipping lives or dies by the suffix lower bound. Two are
//! available ([`AllocOptions::bound`]):
//!
//! * [`BoundKind::Solo`] — each unassigned group contributes at least
//!   the cell area and access energy of a private 1-port module (the
//!   original, loose bound; kept as a measurable baseline);
//! * [`BoundKind::Pairwise`] (default) — on top of the solo floor, each
//!   group pays its minimum-port floor, and the pigeonhole principle
//!   forces `remaining − free bins` of the unassigned groups to *join*
//!   a non-empty memory: each such join costs at least the group's
//!   cheapest precomputed **pairwise-conflict extra** (the width waste
//!   and port/cycle-conflict penalty of co-assignment with its most
//!   compatible partner). The bound is admissible — it never exceeds
//!   the true optimal completion cost — so exact results are unchanged;
//!   it only skips more of the tree (nodes visited are reported in
//!   [`AllocStats`]).
//!
//! # Parallel search
//!
//! All three levels fan out over worker threads
//! ([`AllocOptions::workers`]) and all three return **bit-identical**
//! results for every worker count. The shared choreography — seed
//! phase, budget split, published atomic incumbent, claim queue,
//! canonical-order reduction — lives in one audited copy in
//! [`crate::fan`]; this module only supplies the explore functions and
//! skip predicates:
//!
//! * the off-chip level splits its canonical partition tree into
//!   deterministic prefix subtrees exactly like the on-chip search
//!   below: workers claim subtrees from a shared queue, the best
//!   incumbent value is published through an atomic and used *only* to
//!   skip whole subtrees whose lower bound is clearly above it, and the
//!   results reduce in canonical order with strict improvement;
//! * the on-chip sweep explores a deterministically-chosen *seed size*
//!   first (the one with the smallest root lower bound), publishes its
//!   cost through an atomic (`f64` bits in an `AtomicU64`), and uses it
//!   *only* to skip whole sizes whose root bound already exceeds it — a
//!   size that could win the canonical reduction is never skipped;
//! * the branch-and-bound splits the canonical partition tree into a
//!   fixed number of prefix subtrees, workers claim subtrees from a
//!   shared queue, and the best incumbent value is published the same
//!   way, again only ever skipping whole subtrees. Three properties
//!   keep it deterministic:
//!
//!   1. each subtree is explored against its own deterministic node
//!      budget and a bound derived only from the (deterministic) greedy
//!      incumbent and a deterministically-chosen *seed subtree* explored
//!      up front — never from timing-dependent cross-thread state;
//!   2. the shared atomic bound is used *only* to skip entire subtrees
//!      whose lower bound strictly exceeds it — a subtree containing a
//!      best-so-far solution can never be skipped, so skipping only
//!      removes subtrees that lose the reduction anyway;
//!   3. subtree results are reduced in canonical depth-first order with
//!      strict improvement, reproducing the serial first-found-minimum
//!      tie-break.
//!
//! When the effective worker count is 1 every level runs inline on the
//! calling thread — no worker threads are spawned at all (see
//! [`crate::engine::thread_spawns_on_current_thread`]).

use std::collections::BTreeMap;

// memx-lint: fingerprinted(ALLOC_ALGO_REVISION) — result-affecting changes
// to the allocation solver (bounds, tie-breaks, traversal order, greedy
// seed, float accumulation) must bump the revision in `core::cache`.
// memx-lint: fingerprinted(OFF_CHIP_BLOCKS_ALGO_REVISION) — changes to how
// the pricer costs a group subset must bump the revision in `core::cache`.
use std::sync::Arc;

use memx_ir::hash::StableHasher;
use memx_ir::{AppSpec, BasicGroupId, Placement};
use memx_memlib::{timing, CostBreakdown, MemLibrary, OffChipSelection, OnChipSpec};

use crate::cache::{self, EvalCache};
use crate::engine::parallel_map;
use crate::fan::{above_with_slack, fan_subtrees, Incumbent, SubtreeSearch, TARGET_SUBTREES};
use crate::scbd::ScbdResult;
use crate::ExploreError;

/// Number of set partitions of `n` elements (the Bell number),
/// saturating at `u64::MAX`.
///
/// This is the partition count the retired exhaustive off-chip scan had
/// to stream through; [`AllocStats::off_chip_exhaustive_partitions`]
/// reports it next to the branch-and-bound's actual node count so the
/// pruning gain stays measurable.
pub fn bell_number(n: usize) -> u64 {
    let mut row = vec![1u64];
    for _ in 0..n {
        let mut next = Vec::with_capacity(row.len() + 1);
        let mut acc = *row.last().unwrap_or(&1);
        next.push(acc);
        for &v in &row {
            acc = acc.saturating_add(v);
            next.push(acc);
        }
        row = next;
    }
    row[0]
}

/// Which suffix lower bound the on-chip branch-and-bound prunes with
/// (see the module docs). Both bounds are admissible, so the *result*
/// is identical; only the number of nodes visited differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BoundKind {
    /// The original per-group solo-1-port floor. Loose; kept so pruning
    /// gains of the pairwise bound stay measurable.
    Solo,
    /// Solo floor + per-group minimum-port floor + pairwise-conflict
    /// extras for the merges the pigeonhole principle forces.
    #[default]
    Pairwise,
}

/// Options steering allocation and assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocOptions {
    /// Exact number of on-chip memories to allocate; `None` sweeps all
    /// counts and keeps the cheapest (by the scalarized cost).
    pub on_chip_memories: Option<u32>,
    /// Weight of on-chip area \[per mm²\] in the scalarized cost.
    pub area_weight: f64,
    /// Weight of total power \[per mW\] in the scalarized cost.
    pub power_weight: f64,
    /// Largest port count the on-chip module generator offers.
    pub max_on_chip_ports: u32,
    /// Branch-and-bound node budget before falling back to the best
    /// incumbent found so far (split evenly over the search subtrees).
    pub node_limit: u64,
    /// Worker threads for the allocation solver: `0` spawns one per
    /// available core, `1` runs everything on the calling thread.
    /// Parallel and serial runs return bit-identical organizations.
    pub workers: usize,
    /// Suffix lower bound used for branch-and-bound pruning.
    pub bound: BoundKind,
    /// Prune dominated assignments of adjacent symmetric off-chip
    /// groups (see the module docs' soundness proof). The result is
    /// bit-identical either way; disabling is a measurable baseline
    /// for the node cut on tie plateaus.
    pub off_chip_dominance: bool,
}

impl Default for AllocOptions {
    fn default() -> Self {
        AllocOptions {
            on_chip_memories: None,
            area_weight: 1.0,
            power_weight: 1.0,
            max_on_chip_ports: 4,
            node_limit: 2_000_000,
            workers: 0,
            bound: BoundKind::Pairwise,
            off_chip_dominance: true,
        }
    }
}

/// Search-effort counters of one [`assign_with_stats`] run, so pruning
/// gains (e.g. of [`BoundKind::Pairwise`]) are measurable.
///
/// The counters are *not* part of the deterministic result: in parallel
/// runs the atomic incumbent may skip different subtrees depending on
/// thread timing, so node counts can vary run to run even though the
/// returned [`Organization`] never does. With `workers: 1` the counters
/// are fully deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Branch-and-bound nodes expanded across every on-chip search
    /// (seed subtrees, fanned subtrees and complete-prefix probes).
    pub bb_nodes: u64,
    /// On-chip allocation sizes skipped outright because their root
    /// lower bound exceeded the published sweep incumbent.
    pub sweep_skips: u64,
    /// Complete off-chip set partitions reached by the search.
    pub off_chip_partitions: u64,
    /// Branch-and-bound nodes expanded by the off-chip partition search
    /// (complete-prefix probes included).
    pub off_chip_bb_nodes: u64,
    /// Off-chip search subtrees skipped outright because their lower
    /// bound exceeded the published incumbent.
    pub off_chip_pruned_subtrees: u64,
    /// Size of the off-chip set-partition space ([`bell_number`] of the
    /// off-chip group count, saturating): what the retired exhaustive
    /// enumeration had to scan. `off_chip_bb_nodes` sitting below this
    /// is the branch-and-bound's pruning gain.
    pub off_chip_exhaustive_partitions: u64,
    /// Off-chip branches suppressed by the symmetric-group dominance
    /// rule ([`AllocOptions::off_chip_dominance`]): join candidates
    /// below the previous twin's choice index that were never expanded.
    pub off_chip_dominance_cuts: u64,
    /// Assign/unassign delta applications to incrementally-maintained
    /// bound state, across both solvers (off-chip running committed
    /// sums and on-chip open-count deltas) — each replaces a
    /// from-scratch recomputation.
    pub bound_incremental_updates: u64,
}

/// Where an allocated memory lives.
#[derive(Debug, Clone, PartialEq)]
pub enum MemoryKind {
    /// A generated on-chip SRAM module.
    OnChip,
    /// An off-chip DRAM configuration from the part catalog.
    OffChip(OffChipSelection),
}

/// One allocated memory with its assigned basic groups.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryInstance {
    /// Assigned groups.
    pub groups: Vec<BasicGroupId>,
    /// Total words (sum over groups).
    pub words: u64,
    /// Word width in bits (maximum over groups — narrower groups waste
    /// the upper bits).
    pub width: u32,
    /// Ports provisioned (from overlap analysis and group minimums).
    pub ports: u32,
    /// On-chip module or off-chip part configuration.
    pub kind: MemoryKind,
    /// This memory's contribution to the organization cost.
    pub cost: CostBreakdown,
}

/// A complete memory organization with its cost — the feedback the whole
/// methodology revolves around.
#[derive(Debug, Clone, PartialEq)]
pub struct Organization {
    /// All allocated memories (on-chip first).
    pub memories: Vec<MemoryInstance>,
    /// Total cost (the paper's three figures).
    pub cost: CostBreakdown,
}

impl Organization {
    /// Number of on-chip memories.
    pub fn on_chip_count(&self) -> usize {
        self.memories
            .iter()
            .filter(|m| matches!(m.kind, MemoryKind::OnChip))
            .count()
    }

    /// Number of off-chip memories.
    pub fn off_chip_count(&self) -> usize {
        self.memories.len() - self.on_chip_count()
    }

    /// Maximum port count over the off-chip memories (Table 2's "a
    /// two-port off-chip memory is needed").
    pub fn max_off_chip_ports(&self) -> u32 {
        self.memories
            .iter()
            .filter(|m| matches!(m.kind, MemoryKind::OffChip(_)))
            .map(|m| m.ports)
            .max()
            .unwrap_or(0)
    }
}

/// Validates scalarization weights: comparing scalar costs built from
/// non-finite or negative weights is meaningless (and NaN used to panic
/// deep inside comparison callbacks).
pub(crate) fn check_cost_weights(area_weight: f64, power_weight: f64) -> Result<(), ExploreError> {
    if area_weight.is_finite()
        && power_weight.is_finite()
        && area_weight >= 0.0
        && power_weight >= 0.0
    {
        Ok(())
    } else {
        Err(ExploreError::BadCostWeights {
            area_weight,
            power_weight,
        })
    }
}

/// Weighted random/burst access traffic of one group.
#[derive(Debug, Clone, Copy, Default)]
struct Traffic {
    random: f64,
    burst: f64,
}

impl Traffic {
    fn total(&self) -> f64 {
        self.random + self.burst
    }

    /// Energy-equivalent access count: bursts are discounted.
    fn energy_accesses(&self) -> f64 {
        self.random + self.burst * timing::OFF_CHIP_BURST_ENERGY_FACTOR
    }
}

fn group_traffic(spec: &AppSpec) -> Vec<Traffic> {
    let mut traffic = vec![Traffic::default(); spec.basic_groups().len()];
    for nest in spec.loop_nests() {
        let it = nest.iterations() as f64;
        for a in nest.accesses() {
            let t = &mut traffic[a.group().index()];
            if a.is_burst() {
                t.burst += a.weight() * it;
            } else {
                t.random += a.weight() * it;
            }
        }
    }
    traffic
}

/// Per-slot access-count table for fast port-requirement queries over
/// group subsets (bitmask-indexed, memoized).
///
/// Cloning is cheap: the slot table is shared behind an [`Arc`] and each
/// clone keeps its own memoization cache, so every branch-and-bound
/// worker thread can query ports without synchronization.
#[derive(Clone)]
struct PortOracle {
    /// Each entry: (group index, simultaneous accesses) per busy cycle.
    slots: Arc<Vec<Vec<(usize, u32)>>>,
    min_ports: Arc<Vec<u32>>,
    cache: BTreeMap<u64, u32>,
}

impl PortOracle {
    fn new(spec: &AppSpec, scbd: &ScbdResult) -> Self {
        let mut slots = Vec::new();
        for body in &scbd.bodies {
            for slot in body.busy_slots() {
                if slot.occupants.len() < 2 {
                    // A single occupant can never force multiple ports
                    // by overlap (group minimums are handled separately).
                    continue;
                }
                let mut counts: BTreeMap<usize, u32> = BTreeMap::new();
                for o in &slot.occupants {
                    *counts.entry(o.group.index()).or_insert(0) += 1;
                }
                let mut entry: Vec<(usize, u32)> = counts.into_iter().collect();
                entry.sort_unstable();
                slots.push(entry);
            }
        }
        slots.sort();
        slots.dedup();
        PortOracle {
            slots: Arc::new(slots),
            min_ports: Arc::new(spec.basic_groups().iter().map(|g| g.min_ports()).collect()),
            cache: BTreeMap::new(),
        }
    }

    /// Ports required by a memory storing exactly the groups in `mask`.
    fn required(&mut self, mask: u64) -> u32 {
        if let Some(&p) = self.cache.get(&mask) {
            return p;
        }
        let mut ports = 1u32;
        // Visit only the set bits — this is the innermost pricing
        // primitive and masks are sparse, so scanning all 64 positions
        // per uncached mask was measurable. `get` keeps the historical
        // behavior of ignoring bits beyond the group table.
        let mut m = mask;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            if let Some(&mp) = self.min_ports.get(i) {
                ports = ports.max(mp);
            }
            m &= m - 1;
        }
        for slot in self.slots.iter() {
            let overlap: u32 = slot
                .iter()
                .filter(|(g, _)| mask & (1 << *g) != 0)
                .map(|&(_, c)| c)
                .sum();
            ports = ports.max(overlap);
        }
        self.cache.insert(mask, ports);
        ports
    }

    /// Feeds the deduplicated conflict-slot table into an instance
    /// fingerprint (see [`alloc_instance_fingerprint`]). Per-group port
    /// minimums are hashed with the groups themselves — only accessed
    /// groups ever enter a mask.
    fn hash_slots(&self, h: &mut StableHasher) {
        h.write_u64(self.slots.len() as u64);
        for slot in self.slots.iter() {
            h.write_u64(slot.len() as u64);
            for &(g, c) in slot {
                h.write_u64(g as u64);
                h.write_u64(u64::from(c));
            }
        }
    }
}

/// Hashes everything about one accessed group that the allocation
/// solver reads: its identity (index — results carry indices, not
/// names), dimensions, port minimum and weighted traffic.
fn hash_group(h: &mut StableHasher, spec: &AppSpec, traffic: &[Traffic], g: BasicGroupId) {
    let info = spec.group(g);
    h.write_u64(g.index() as u64);
    h.write_u64(info.words());
    h.write_u64(u64::from(info.bitwidth()));
    h.write_u64(u64::from(info.min_ports()));
    h.write_f64(traffic[g.index()].random);
    h.write_f64(traffic[g.index()].burst);
}

/// Stable fingerprint of one allocation instance: every solver input
/// besides the technology model and the options — the accessed groups,
/// the schedule's port-conflict slot table and the real-time window.
/// Two specs (or the same spec at two cycle budgets) that induce the
/// same instance deliberately share one cache entry.
fn alloc_instance_fingerprint(
    spec: &AppSpec,
    traffic: &[Traffic],
    oracle: &PortOracle,
    off_groups: &[BasicGroupId],
    on_groups: &[BasicGroupId],
    time_s: f64,
) -> u64 {
    let mut h = StableHasher::new();
    h.write_str("alloc-instance");
    h.write_f64(time_s);
    for (tag, groups) in [("off", off_groups), ("on", on_groups)] {
        h.write_str(tag);
        h.write_u64(groups.len() as u64);
        for &g in groups {
            hash_group(&mut h, spec, traffic, g);
        }
    }
    oracle.hash_slots(&mut h);
    h.finish()
}

/// Stable fingerprint of one off-chip pricing instance — like
/// [`alloc_instance_fingerprint`] restricted to the off-chip groups, so
/// the priced block catalog survives option changes (different node
/// limits, bounds, weights) that re-key the allocation entry itself.
fn off_chip_blocks_fingerprint(
    spec: &AppSpec,
    traffic: &[Traffic],
    oracle: &PortOracle,
    groups: &[BasicGroupId],
    time_s: f64,
) -> u64 {
    let mut h = StableHasher::new();
    h.write_str("off-chip-blocks-instance");
    h.write_f64(time_s);
    h.write_u64(groups.len() as u64);
    for &g in groups {
        hash_group(&mut h, spec, traffic, g);
    }
    oracle.hash_slots(&mut h);
    h.finish()
}

/// Allocates memories and assigns every accessed basic group.
///
/// Groups without any access are treated as foreground (scalar-level)
/// data and skipped, as the paper's pruning step prescribes.
///
/// # Errors
///
/// Returns [`ExploreError::NoFeasibleAssignment`] when the bandwidth
/// constraints cannot be met (e.g. off-chip overlap needing more than
/// two ports), [`ExploreError::BadCostWeights`] for non-finite or
/// negative scalarization weights,
/// [`ExploreError::TooManyOffChipGroups`] when the off-chip partition
/// enumeration would be intractable, and [`ExploreError::Part`] if no
/// off-chip part covers a group.
pub fn assign(
    spec: &AppSpec,
    scbd: &ScbdResult,
    lib: &MemLibrary,
    options: &AllocOptions,
) -> Result<Organization, ExploreError> {
    assign_with_stats(spec, scbd, lib, options).map(|(org, _)| org)
}

/// [`assign`], additionally reporting the search-effort counters of the
/// run (see [`AllocStats`]).
///
/// # Errors
///
/// As for [`assign`].
pub fn assign_with_stats(
    spec: &AppSpec,
    scbd: &ScbdResult,
    lib: &MemLibrary,
    options: &AllocOptions,
) -> Result<(Organization, AllocStats), ExploreError> {
    assign_with_stats_cached(spec, scbd, lib, options, None)
}

/// [`assign_with_stats`] with an optional persistent cache: a valid
/// allocation entry short-circuits the whole branch-and-bound, replaying
/// the stored [`Organization`] *and* [`AllocStats`] bit-identically (so
/// node-count telemetry reports what the stored solve actually cost,
/// not a free lunch). On a miss the solver runs as usual — pre-seeding
/// its off-chip block pricer from a cached catalog when one exists —
/// and the solution is stored for the next process. Errors are never
/// cached.
///
/// # Errors
///
/// As for [`assign`]; the cache itself never fails an assignment.
pub fn assign_with_stats_cached(
    spec: &AppSpec,
    scbd: &ScbdResult,
    lib: &MemLibrary,
    options: &AllocOptions,
    cache: Option<&EvalCache>,
) -> Result<(Organization, AllocStats), ExploreError> {
    check_cost_weights(options.area_weight, options.power_weight)?;
    let traffic = group_traffic(spec);
    let time_s = spec.real_time_seconds();
    let mut oracle = PortOracle::new(spec, scbd);
    let mut stats = AllocStats::default();

    let (off_groups, on_groups) = split_accessed_groups(spec, &traffic)?;

    let alloc_key = cache.map(|_| {
        let instance =
            alloc_instance_fingerprint(spec, &traffic, &oracle, &off_groups, &on_groups, time_s);
        cache::CacheKey::alloc(instance, lib, options)
    });
    if let (Some(cache), Some(key)) = (cache, alloc_key.as_ref()) {
        if let Some((org, stats)) = cache.load_alloc(key) {
            cache.note_alloc_hit();
            return Ok((org, stats));
        }
    }

    let workers = match options.workers {
        0 => crate::engine::auto_workers(),
        n => n,
    };

    // --- Off-chip side: branch-and-bound over set partitions. -----------
    let off_memories = assign_off_chip(
        spec,
        &traffic,
        &mut oracle,
        lib,
        &off_groups,
        time_s,
        options,
        workers,
        &mut stats,
        cache,
    )?;

    // --- On-chip side: branch-and-bound per allocation size. ------------
    let org = if on_groups.is_empty() {
        // A purely off-chip application (or one whose on-chip data is
        // all foreground): nothing to allocate on chip.
        if let Some(k) = options.on_chip_memories {
            if k > 0 {
                return Err(ExploreError::NoFeasibleAssignment {
                    reason: format!("{k} on-chip memories requested but no on-chip groups exist"),
                });
            }
        }
        let cost = off_memories.iter().map(|m| m.cost).sum();
        Organization {
            memories: off_memories,
            cost,
        }
    } else {
        let counts: Vec<usize> = match options.on_chip_memories {
            Some(k) => (k >= 1 && k as usize <= on_groups.len())
                .then_some(k as usize)
                .into_iter()
                .collect(),
            None => (1..=on_groups.len()).collect(),
        };
        let best = sweep_on_chip(
            spec,
            &traffic,
            &mut oracle,
            lib,
            &on_groups,
            &counts,
            time_s,
            options,
            workers,
            &mut stats,
        );
        let (_, mut memories) = best.ok_or_else(|| ExploreError::NoFeasibleAssignment {
            reason: match options.on_chip_memories {
                Some(k) => format!("no feasible on-chip assignment with {k} memories"),
                None => "no feasible on-chip assignment".to_owned(),
            },
        })?;

        memories.extend(off_memories);
        let cost = memories.iter().map(|m| m.cost).sum();
        Organization { memories, cost }
    };

    // Only successful solves are cached (and counted): like SCBD
    // entries, errors are cheap to rediscover and never stored.
    if let (Some(cache), Some(key)) = (cache, alloc_key.as_ref()) {
        cache.note_alloc_miss();
        cache.store_alloc(key, &org, &stats);
    }
    Ok((org, stats))
}

/// The [`cache::CacheKey`] under which [`assign_with_stats_cached`]
/// would store this instance's solution — exposed for the cross-process
/// cache tests, which need to hammer one concrete key.
///
/// # Errors
///
/// The key requires the accessed-group split, so an infeasible group
/// layout errors exactly as [`assign`] would.
#[doc(hidden)]
pub fn alloc_cache_key(
    spec: &AppSpec,
    scbd: &ScbdResult,
    lib: &MemLibrary,
    options: &AllocOptions,
) -> Result<cache::CacheKey, ExploreError> {
    let traffic = group_traffic(spec);
    let time_s = spec.real_time_seconds();
    let oracle = PortOracle::new(spec, scbd);
    let (off_groups, on_groups) = split_accessed_groups(spec, &traffic)?;
    let instance =
        alloc_instance_fingerprint(spec, &traffic, &oracle, &off_groups, &on_groups, time_s);
    Ok(cache::CacheKey::alloc(instance, lib, options))
}

/// Splits the accessed basic groups into off-chip and on-chip candidate
/// sets, validating the 64-bit mask indexing both searches rely on.
fn split_accessed_groups(
    spec: &AppSpec,
    traffic: &[Traffic],
) -> Result<(Vec<BasicGroupId>, Vec<BasicGroupId>), ExploreError> {
    let mut off_groups = Vec::new();
    let mut on_groups = Vec::new();
    for g in spec.basic_groups() {
        if traffic[g.id().index()].total() == 0.0 {
            continue; // foreground data
        }
        match g.placement() {
            Placement::OffChip => off_groups.push(g.id()),
            // `Any` groups are small working arrays; on-chip storage
            // dominates them on both power and latency, so the
            // assignment considers them on-chip candidates.
            Placement::OnChip | Placement::Any => on_groups.push(g.id()),
        }
    }
    if on_groups.len() > 60 {
        return Err(ExploreError::NoFeasibleAssignment {
            reason: format!(
                "{} on-chip groups exceed the 60-group assignment limit",
                on_groups.len()
            ),
        });
    }
    // The partition searches index groups by bit position in a u64 mask,
    // so any *accessed* group must sit below index 64 (unaccessed
    // foreground groups beyond that are fine — they never enter a mask).
    if let Some(g) = off_groups
        .iter()
        .chain(&on_groups)
        .find(|g| g.index() >= u64::BITS as usize)
    {
        return Err(ExploreError::NoFeasibleAssignment {
            reason: format!(
                "accessed group `{}` has index {}, beyond the 64-group mask limit",
                spec.group(*g).name(),
                g.index()
            ),
        });
    }
    Ok((off_groups, on_groups))
}

/// Shared read-only context of one off-chip partition search.
struct OffChipCtx<'a> {
    spec: &'a AppSpec,
    traffic: &'a [Traffic],
    lib: &'a MemLibrary,
    groups: &'a [BasicGroupId],
    time_s: f64,
    /// `floor_suffix[i]` = Σ over `groups[i..]` of the per-group
    /// dynamic-power floor (see [`off_chip_group_floor`]).
    floor_suffix: Vec<f64>,
    /// `sym_prev[i]` — group `i` is symmetric to its predecessor
    /// `i-1` (see [`off_chip_symmetry`]), enabling the dominance rule
    /// at depth `i`. All-false when dominance is disabled.
    sym_prev: Vec<bool>,
}

impl OffChipCtx<'_> {
    fn n(&self) -> usize {
        self.groups.len()
    }

    /// Global group-index mask of a local subset mask.
    fn global_mask(&self, mask: u64) -> u64 {
        (0..self.n())
            .filter(|&i| mask & (1 << i) != 0)
            .map(|i| 1u64 << self.groups[i].index())
            .sum()
    }

    /// Block dimensions and energy-weighted access rate of a subset, in
    /// canonical member order (the float accumulation matches the
    /// retired exhaustive scan exactly).
    fn block_dims(&self, mask: u64) -> (u64, u32, f64) {
        let mut words = 0u64;
        let mut width = 0u32;
        let mut t = Traffic::default();
        for i in 0..self.n() {
            if mask & (1 << i) != 0 {
                let g = self.groups[i];
                words += self.spec.group(g).words();
                width = width.max(self.spec.group(g).bitwidth());
                t = Traffic {
                    random: t.random + self.traffic[g.index()].random,
                    burst: t.burst + self.traffic[g.index()].burst,
                };
            }
        }
        (words, width, t.energy_accesses() / self.time_s)
    }

    /// Builds the ready-made instance of a feasible winning block.
    fn build_memory(&self, pricer: &mut OffChipPricer<'_>, mask: u64) -> MemoryInstance {
        let members: Vec<BasicGroupId> = (0..self.n())
            .filter(|&i| mask & (1 << i) != 0)
            .map(|i| self.groups[i])
            .collect();
        let ports = pricer.oracle.required(self.global_mask(mask));
        let (words, width, rate_energy) = self.block_dims(mask);
        let sel = self
            .lib
            .off_chip()
            .select(words, width, ports, rate_energy)
            // memx-lint: allow(no-panic-paths) — only blocks the pricer already priced `Some` reach here, so selection cannot fail.
            .expect("winning blocks are feasible");
        let mw = sel.static_mw() + sel.energy_pj_per_access() * rate_energy / 1e9;
        MemoryInstance {
            groups: members,
            words,
            width,
            ports,
            cost: CostBreakdown::new(0.0, 0.0, mw),
            kind: MemoryKind::OffChip(sel),
        }
    }
}

/// Computes `sym_prev` for the dominance rule: `sym_prev[i]` holds when
/// groups `i-1` and `i` are interchangeable everywhere the solver can
/// tell them apart — bitwise-identical words, bitwidth, port minimum
/// and weighted traffic, and neither appears in any port-conflict slot
/// (a slot occupant's overlap contribution would not survive the swap).
/// Adjacency in local index is what makes the swap argument in the
/// module docs airtight: no other member can sort between the twins in
/// a block's dimension fold.
fn off_chip_symmetry(
    spec: &AppSpec,
    traffic: &[Traffic],
    oracle: &PortOracle,
    groups: &[BasicGroupId],
    enabled: bool,
) -> Vec<bool> {
    let n = groups.len();
    if !enabled || n == 0 {
        return vec![false; n];
    }
    let in_conflict_slot = |g: BasicGroupId| {
        oracle
            .slots
            .iter()
            .any(|slot| slot.iter().any(|&(idx, _)| idx == g.index()))
    };
    let key = |g: BasicGroupId| {
        let info = spec.group(g);
        (
            info.words(),
            info.bitwidth(),
            info.min_ports(),
            traffic[g.index()].random.to_bits(),
            traffic[g.index()].burst.to_bits(),
        )
    };
    let mut sym = vec![false; n];
    for i in 1..n {
        sym[i] = key(groups[i]) == key(groups[i - 1])
            && !in_conflict_slot(groups[i])
            && !in_conflict_slot(groups[i - 1]);
    }
    sym
}

/// Per-worker lazy block pricer: each worker owns a clone of the port
/// oracle plus its own price memo, so pricing needs no synchronization.
#[derive(Clone)]
struct OffChipPricer<'a> {
    ctx: &'a OffChipCtx<'a>,
    oracle: PortOracle,
    cache: BTreeMap<u64, Option<f64>>,
}

impl OffChipPricer<'_> {
    /// Power (mW) of the cheapest off-chip configuration holding exactly
    /// the groups in `mask`, or `None` when the subset's overlap needs
    /// more than the two ports DRAM systems offer. Infallible otherwise:
    /// the catalog is checked non-empty up front and ports are pre-gated,
    /// the only ways selection can fail.
    fn price(&mut self, mask: u64) -> Option<f64> {
        if let Some(&p) = self.cache.get(&mask) {
            return p;
        }
        let ports = self.oracle.required(self.ctx.global_mask(mask));
        let mw = (ports <= 2).then(|| {
            let (words, width, rate_energy) = self.ctx.block_dims(mask);
            let sel = self
                .ctx
                .lib
                .off_chip()
                .select(words, width, ports, rate_energy)
                // memx-lint: allow(no-panic-paths) — the catalog is checked non-empty up front and ports are pre-gated to <= 2, the only selection failure modes.
                .expect("catalog non-empty and ports pre-gated");
            sel.static_mw() + sel.energy_pj_per_access() * rate_energy / 1e9
        });
        self.cache.insert(mask, mw);
        mw
    }

    /// Fresh block-order power sum of a committed partial partition —
    /// the exact float accumulation the exhaustive scan performed per
    /// complete partition, so tie-breaks stay bit-identical.
    fn committed(&mut self, blocks: &[u64]) -> f64 {
        let mut sum = 0.0;
        for &m in blocks {
            // memx-lint: allow(no-panic-paths) — every committed block was price-gated `Some` before being committed.
            sum += self.price(m).expect("committed blocks are feasible");
        }
        sum
    }
}

/// Admissible per-group power floor of the off-chip suffix bound: the
/// group's energy-weighted access rate priced at the cheapest per-access
/// energy any catalog configuration covering the group's width can
/// offer. Every block holding the group — joined or newly opened,
/// single- or dual-ported — pays at least this much *for this group's
/// accesses*, because a block at least `width` bits wide gangs at least
/// `ceil(width / part_width)` devices of whatever part it selects, and
/// the dual-bank energy factor only adds. Static power is deliberately
/// excluded (a join may reuse a committed block's rank slack).
fn off_chip_group_floor(
    spec: &AppSpec,
    traffic: &[Traffic],
    lib: &MemLibrary,
    time_s: f64,
    g: BasicGroupId,
) -> f64 {
    let width = spec.group(g).bitwidth();
    let floor_e = lib
        .off_chip()
        .parts()
        .iter()
        .map(|p| p.energy_pj() * f64::from(width.div_ceil(p.width())))
        .min_by(f64::total_cmp)
        // memx-lint: allow(no-panic-paths) — `assign_off_chip` rejects an empty part catalog before any floor is computed.
        .expect("catalog checked non-empty");
    floor_e * (traffic[g.index()].energy_accesses() / time_s) / 1e9
}

/// The incrementally-maintained committed-block sum of a partial
/// partition, with the float fold order pinned to block index.
///
/// `prefix[j]` is the left-to-right sum `0.0 + prices[0] + … +
/// prices[j]` — exactly the accumulation [`OffChipPricer::committed`]
/// performs — so [`BlockSum::total`] is bit-identical to a fresh
/// block-order summation at every node, and a delta touching block `b`
/// only refolds `prefix[b..]`. Restoring a block's previous price and
/// refolding reproduces the previous bits exactly (the fold consumes
/// identical values in identical order), so backtracking is lossless.
#[derive(Clone, Default)]
struct BlockSum {
    blocks: Vec<u64>,
    prices: Vec<f64>,
    prefix: Vec<f64>,
}

impl BlockSum {
    fn len(&self) -> usize {
        self.blocks.len()
    }

    /// The committed sum: bitwise what `pricer.committed(&self.blocks)`
    /// would return.
    fn total(&self) -> f64 {
        self.prefix.last().copied().unwrap_or(0.0)
    }

    /// Refolds `prefix[from..]` from the prices.
    fn refold(&mut self, from: usize) {
        self.prefix.truncate(from);
        let mut acc = if from == 0 {
            0.0
        } else {
            self.prefix[from - 1]
        };
        for j in from..self.prices.len() {
            acc += self.prices[j];
            self.prefix.push(acc);
        }
    }

    /// Replaces block `b` (grow or restore), refolding the tail.
    fn set(&mut self, b: usize, mask: u64, price: f64) {
        self.blocks[b] = mask;
        self.prices[b] = price;
        self.refold(b);
    }

    /// Opens a new block at the end.
    fn push(&mut self, mask: u64, price: f64) {
        self.blocks.push(mask);
        self.prices.push(price);
        let from = self.prefix.len();
        self.refold(from);
    }

    /// Closes the last block again.
    fn pop(&mut self) {
        self.blocks.pop();
        self.prices.pop();
        self.prefix.pop();
    }
}

/// A partial canonical partition of the first `depth` off-chip groups.
#[derive(Clone)]
struct OffChipPrefix {
    sum: BlockSum,
    depth: usize,
    /// Block-choice index of group `depth - 1` (0 when `depth == 0`;
    /// only read when `sym_prev[depth]` holds, which implies
    /// `depth > 0`) — the dominance rule's lower limit for the next
    /// group's join candidates.
    prev_choice: usize,
}

/// Outcome of one explored off-chip subtree.
struct OffChipSubtreeResult {
    val: f64,
    blocks: Option<Vec<u64>>,
    nodes: u64,
    partitions: u64,
    truncated: bool,
    skipped: bool,
    dominance_cuts: u64,
    updates: u64,
}

/// The off-chip solver's instantiation of the generic fan harness
/// ([`crate::fan`]): per-worker state is the memoizing block pricer, and
/// subtree skipping uses the ulp-guarded comparison because the suffix
/// floor can be exactly tight in real arithmetic.
struct OffChipFan<'a> {
    ctx: &'a OffChipCtx<'a>,
}

impl<'a> SubtreeSearch for OffChipFan<'a> {
    type Prefix = OffChipPrefix;
    type State = OffChipPricer<'a>;
    type Outcome = OffChipSubtreeResult;

    fn explore(
        &self,
        pricer: &mut OffChipPricer<'a>,
        p: &OffChipPrefix,
        outer: f64,
        budget: u64,
    ) -> OffChipSubtreeResult {
        if p.depth == self.ctx.n() {
            // The whole tree fit into the prefix expansion: the prefix
            // *is* a complete partition (already bounded by `outer`).
            let mw = p.sum.total();
            debug_assert_eq!(
                mw.to_bits(),
                pricer.committed(&p.sum.blocks).to_bits(),
                "running committed sum drifted from the fresh block-order fold"
            );
            return OffChipSubtreeResult {
                val: mw,
                blocks: Some(p.sum.blocks.clone()),
                nodes: 1,
                partitions: 1,
                truncated: false,
                skipped: false,
                dominance_cuts: 0,
                updates: 0,
            };
        }
        let mut dfs = OffChipDfs {
            ctx: self.ctx,
            outer,
            best_mw: f64::INFINITY,
            best: None,
            nodes: 0,
            node_limit: budget,
            truncated: false,
            partitions: 0,
            dominance_cuts: 0,
            updates: 0,
        };
        let mut sum = p.sum.clone();
        dfs.recurse(pricer, p.depth, &mut sum, p.prev_choice);
        OffChipSubtreeResult {
            val: if dfs.best.is_some() {
                dfs.best_mw
            } else {
                f64::INFINITY
            },
            blocks: dfs.best,
            nodes: dfs.nodes,
            partitions: dfs.partitions,
            truncated: dfs.truncated,
            skipped: false,
            dominance_cuts: dfs.dominance_cuts,
            updates: dfs.updates,
        }
    }

    fn clone_state(&self, pricer: &OffChipPricer<'a>) -> OffChipPricer<'a> {
        pricer.clone()
    }

    fn skipped(&self) -> OffChipSubtreeResult {
        OffChipSubtreeResult {
            val: f64::INFINITY,
            blocks: None,
            nodes: 0,
            partitions: 0,
            truncated: false,
            skipped: true,
            dominance_cuts: 0,
            updates: 0,
        }
    }

    fn value(&self, r: &OffChipSubtreeResult) -> Option<f64> {
        r.blocks.is_some().then_some(r.val)
    }

    fn nodes(&self, r: &OffChipSubtreeResult) -> u64 {
        r.nodes
    }

    fn skip_above(&self, lb: f64, bound: f64) -> bool {
        above_with_slack(lb, bound)
    }

    fn merge_state(&self, main: &mut OffChipPricer<'a>, worker: OffChipPricer<'a>) {
        // Prices and port requirements are pure functions of the
        // instance, so worker-discovered entries are bit-identical to
        // what the serial pricer would compute — merging them back only
        // completes the memo (and hence the persisted block catalog).
        main.cache.extend(worker.cache);
        main.oracle.cache.extend(worker.oracle.cache);
    }
}

/// Depth-first exploration of one off-chip subtree with a private node
/// budget against a fixed outer bound (see module docs).
struct OffChipDfs<'a> {
    ctx: &'a OffChipCtx<'a>,
    /// Strict upper bound from outside the subtree (the greedy or seed
    /// value — always the cost of a real partition): nodes are pruned
    /// only when strictly above it, so a leaf *equal* to the eventual
    /// optimum is never cut and the canonical first-found minimum of the
    /// exhaustive scan is reproduced exactly.
    outer: f64,
    best_mw: f64,
    best: Option<Vec<u64>>,
    nodes: u64,
    node_limit: u64,
    truncated: bool,
    partitions: u64,
    dominance_cuts: u64,
    updates: u64,
}

impl OffChipDfs<'_> {
    fn recurse(
        &mut self,
        pricer: &mut OffChipPricer<'_>,
        i: usize,
        sum: &mut BlockSum,
        prev_choice: usize,
    ) {
        if self.truncated {
            return;
        }
        self.nodes += 1;
        if self.nodes > self.node_limit {
            self.truncated = true;
            return;
        }
        let committed = sum.total();
        debug_assert_eq!(
            committed.to_bits(),
            pricer.committed(&sum.blocks).to_bits(),
            "running committed sum drifted from the fresh block-order fold"
        );
        let lb = committed + self.ctx.floor_suffix[i];
        // Ulp-guarded against the outer bound (a tie may hide the
        // canonical-first optimum), exact non-strict against a leaf
        // already found inside (an equal deeper leaf loses the
        // first-found tie-break anyway).
        if above_with_slack(lb, self.outer) || lb >= self.best_mw {
            return;
        }
        if i == self.ctx.n() {
            self.partitions += 1;
            if committed < self.best_mw {
                self.best_mw = committed;
                self.best = Some(sum.blocks.clone());
            }
            return;
        }
        let bit = 1u64 << i;
        // Dominance: a twin of the previous group only joins blocks at
        // or after the previous twin's choice (module docs prove the
        // canonical-first optimum survives this).
        let start = if self.ctx.sym_prev[i] { prev_choice } else { 0 };
        self.dominance_cuts += start as u64;
        for b in start..sum.len() {
            let grown = sum.blocks[b] | bit;
            // Infeasible grown blocks prune the branch — sound because
            // the port requirement is monotone in the group subset.
            if let Some(price) = pricer.price(grown) {
                let old_mask = sum.blocks[b];
                let old_price = sum.prices[b];
                sum.set(b, grown, price);
                self.updates += 1;
                self.recurse(pricer, i + 1, sum, b);
                sum.set(b, old_mask, old_price);
            }
        }
        if let Some(price) = pricer.price(bit) {
            let opened = sum.len();
            sum.push(bit, price);
            self.updates += 1;
            self.recurse(pricer, i + 1, sum, opened);
            sum.pop();
        }
    }
}

/// Deterministic greedy off-chip partition, seeding the search bound:
/// each group joins the feasible block whose power delta is smallest
/// (earliest block on ties), or opens its own block when that is
/// strictly cheaper. Returns `None` when some singleton is infeasible —
/// port requirements are monotone, so no partition is feasible at all
/// in that case.
fn off_chip_greedy(ctx: &OffChipCtx<'_>, pricer: &mut OffChipPricer<'_>) -> Option<f64> {
    let mut blocks: Vec<u64> = Vec::new();
    for i in 0..ctx.n() {
        let bit = 1u64 << i;
        let open_delta = pricer.price(bit)?;
        let mut choice: Option<(usize, f64)> = None;
        for (b, &mask) in blocks.iter().enumerate() {
            if let Some(grown) = pricer.price(mask | bit) {
                // memx-lint: allow(no-panic-paths) — blocks enter the greedy partition only after pricing `Some`.
                let delta = grown - pricer.price(mask).expect("existing blocks are feasible");
                if choice.map(|(_, d)| delta < d).unwrap_or(true) {
                    choice = Some((b, delta));
                }
            }
        }
        match choice {
            Some((b, delta)) if delta <= open_delta => blocks[b] |= bit,
            _ => blocks.push(bit),
        }
    }
    Some(pricer.committed(&blocks))
}

/// Expands the canonical off-chip partition tree breadth-first (children
/// in depth-first candidate order, so the prefix sequence preserves the
/// serial visiting order) until at least [`TARGET_SUBTREES`] prefixes
/// exist or every group is assigned. Children strictly above the greedy
/// bound, or growing an infeasible block, are dropped.
fn off_chip_expand(
    ctx: &OffChipCtx<'_>,
    pricer: &mut OffChipPricer<'_>,
    outer: f64,
    stats: &mut AllocStats,
) -> Vec<OffChipPrefix> {
    let n = ctx.n();
    let mut level = vec![OffChipPrefix {
        sum: BlockSum::default(),
        depth: 0,
        prev_choice: 0,
    }];
    while level.len() < TARGET_SUBTREES && level.iter().any(|p| p.depth < n) {
        let mut next: Vec<OffChipPrefix> = Vec::with_capacity(level.len() * 2);
        for p in &level {
            if p.depth == n {
                next.push(p.clone());
                continue;
            }
            let bit = 1u64 << p.depth;
            let mut push_child = |sum: BlockSum, choice: usize, pricer: &mut OffChipPricer<'_>| {
                debug_assert_eq!(
                    sum.total().to_bits(),
                    pricer.committed(&sum.blocks).to_bits(),
                    "running committed sum drifted from the fresh block-order fold"
                );
                let lb = sum.total() + ctx.floor_suffix[p.depth + 1];
                if above_with_slack(lb, outer) {
                    return; // clearly above a real partition's cost
                }
                next.push(OffChipPrefix {
                    sum,
                    depth: p.depth + 1,
                    prev_choice: choice,
                });
            };
            // Same dominance rule as the depth-first search: prefixes
            // dominated there are never materialized here either.
            let start = if ctx.sym_prev[p.depth] {
                p.prev_choice
            } else {
                0
            };
            stats.off_chip_dominance_cuts += start as u64;
            for b in start..p.sum.len() {
                let grown = p.sum.blocks[b] | bit;
                if let Some(price) = pricer.price(grown) {
                    let mut sum = p.sum.clone();
                    sum.set(b, grown, price);
                    stats.bound_incremental_updates += 1;
                    push_child(sum, b, pricer);
                }
            }
            if let Some(price) = pricer.price(bit) {
                let mut sum = p.sum.clone();
                let opened = sum.len();
                sum.push(bit, price);
                stats.bound_incremental_updates += 1;
                push_child(sum, opened, pricer);
            }
        }
        if next.is_empty() {
            return next; // every branch infeasible or bounded out
        }
        level = next;
    }
    level
}

/// Builds the cheapest off-chip memory set by branch-and-bound over set
/// partitions of the off-chip groups (see module docs): canonical
/// restricted-growth order, exact committed-block prices plus the
/// admissible per-group floor, deterministic prefix subtrees fanned over
/// the workers with an atomic incumbent used only to skip whole
/// subtrees. Bit-identical to the retired exhaustive scan for every
/// worker count.
#[allow(clippy::too_many_arguments)]
fn assign_off_chip(
    spec: &AppSpec,
    traffic: &[Traffic],
    oracle: &mut PortOracle,
    lib: &MemLibrary,
    groups: &[BasicGroupId],
    time_s: f64,
    options: &AllocOptions,
    workers: usize,
    stats: &mut AllocStats,
    cache: Option<&EvalCache>,
) -> Result<Vec<MemoryInstance>, ExploreError> {
    if groups.is_empty() {
        return Ok(Vec::new());
    }
    if lib.off_chip().parts().is_empty() {
        // Checked up front so block pricing is infallible everywhere.
        return Err(ExploreError::Part(
            memx_memlib::SelectPartError::EmptyCatalog,
        ));
    }
    // Power figures divide traffic by the real-time window: a
    // zero/negative/non-finite window (or non-finite traffic) would
    // make every floor NaN/∞, silently defeating `above_with_slack`
    // pruning instead of failing loudly. Reject the instance up front.
    if !(time_s.is_finite() && time_s > 0.0)
        || groups.iter().any(|&g| {
            !traffic[g.index()].random.is_finite() || !traffic[g.index()].burst.is_finite()
        })
    {
        return Err(ExploreError::BadOffChipPricing { time_s });
    }
    let n = groups.len();
    stats.off_chip_exhaustive_partitions = stats
        .off_chip_exhaustive_partitions
        .saturating_add(bell_number(n));
    let mut floor_suffix = vec![0.0; n + 1];
    for i in (0..n).rev() {
        floor_suffix[i] =
            floor_suffix[i + 1] + off_chip_group_floor(spec, traffic, lib, time_s, groups[i]);
    }
    let ctx = OffChipCtx {
        spec,
        traffic,
        lib,
        groups,
        time_s,
        floor_suffix,
        sym_prev: off_chip_symmetry(spec, traffic, oracle, groups, options.off_chip_dominance),
    };
    let mut pricer = OffChipPricer {
        ctx: &ctx,
        oracle: oracle.clone(),
        cache: BTreeMap::new(),
    };

    // Pre-seed the block pricer from a cached catalog when one exists.
    // Prices are pure functions of (groups, slots, library), so a seeded
    // memo changes nothing about the search — the same values would be
    // recomputed lazily — and worker pricers clone the serial pricer
    // *after* seeding, so every subtree benefits. Any subset superset
    // of what this run will query is fine; extra masks are ignored.
    let blocks_key = cache.map(|_| {
        let instance = off_chip_blocks_fingerprint(spec, traffic, oracle, groups, time_s);
        cache::CacheKey::off_chip_blocks(instance, lib)
    });
    let mut blocks_from_cache = false;
    if let (Some(cache), Some(key)) = (cache, blocks_key.as_ref()) {
        if let Some(entries) = cache.load_off_chip_blocks(key) {
            cache.note_blocks_hit();
            blocks_from_cache = true;
            pricer.cache.extend(entries);
        }
    }

    // Greedy incumbent: only ever a pruning bound, never a result — the
    // reduction starts empty, so the canonical-first optimum the
    // exhaustive scan returned is reproduced bit for bit.
    let Some(greedy_mw) = off_chip_greedy(&ctx, &mut pricer) else {
        return Err(ExploreError::NoFeasibleAssignment {
            reason: "off-chip groups overlap beyond dual-port bandwidth".to_owned(),
        });
    };

    // Split the canonical tree into deterministic subtrees and compute
    // each root's lower bound once (serially, so it is deterministic).
    let prefixes = off_chip_expand(&ctx, &mut pricer, greedy_mw, stats);
    let bounds: Vec<f64> = prefixes
        .iter()
        .map(|p| p.sum.total() + ctx.floor_suffix[p.depth])
        .collect();

    // Fan the subtrees through the generic harness ([`crate::fan`]):
    // seed phase, budget split, published incumbent, claim queue. Each
    // subtree's outcome is a pure function of (prefix, outer, budget),
    // so determinism only needs those chosen deterministically — which
    // the harness guarantees. The ulp-guarded skip predicate lives on
    // [`OffChipFan`].
    let collected = fan_subtrees(
        &OffChipFan { ctx: &ctx },
        &prefixes,
        &bounds,
        &mut pricer,
        greedy_mw,
        options.node_limit,
        workers,
    );

    // Deterministic reduction in canonical subtree order with strict
    // improvement — the exhaustive scan's first-found-minimum tie-break.
    let mut best_val = f64::INFINITY;
    let mut best_blocks: Option<Vec<u64>> = None;
    for r in &collected {
        stats.off_chip_bb_nodes += r.nodes;
        stats.off_chip_partitions += r.partitions;
        stats.off_chip_dominance_cuts += r.dominance_cuts;
        stats.bound_incremental_updates += r.updates;
        if r.skipped {
            stats.off_chip_pruned_subtrees += 1;
        }
        if r.val < best_val {
            if let Some(b) = &r.blocks {
                best_val = r.val;
                best_blocks = Some(b.clone());
            }
        }
    }

    // Exhaustion is raised only when a truncated subtree could actually
    // hide a better (or canonically-earlier equal) partition: truncated
    // subtrees whose bound already exceeds the reduced best prove
    // themselves irrelevant. Subtrees skipped by the atomic incumbent
    // always have bounds strictly above it, so the signal is identical
    // for every worker count and thread timing.
    let exhausted = collected
        .iter()
        .enumerate()
        .any(|(j, r)| r.truncated && !above_with_slack(bounds[j], best_val));
    if exhausted {
        return Err(ExploreError::TooManyOffChipGroups {
            count: n,
            node_limit: options.node_limit,
        });
    }
    let Some(blocks) = best_blocks else {
        return Err(ExploreError::NoFeasibleAssignment {
            reason: "off-chip groups overlap beyond dual-port bandwidth".to_owned(),
        });
    };
    // Persist the pricer's memo for the next process — including the
    // masks worker pricer clones discovered inside their subtrees,
    // which [`OffChipFan::merge_state`] folded back after the fan (so
    // a warm run re-seeds the *full* catalog, not just the serial
    // pre-seed). Only on a miss: on a hit the entry already exists.
    if let (Some(cache), Some(key)) = (cache, blocks_key.as_ref()) {
        if !blocks_from_cache {
            let mut entries: Vec<(u64, Option<f64>)> =
                pricer.cache.iter().map(|(&m, &p)| (m, p)).collect();
            entries.sort_unstable_by_key(|e| e.0);
            cache.note_blocks_miss();
            cache.store_off_chip_blocks(key, &entries);
        }
    }
    Ok(blocks
        .iter()
        .map(|&mask| ctx.build_memory(&mut pricer, mask))
        .collect())
}

/// The retired exhaustive streaming set-partition scan, kept as the
/// ground truth the branch-and-bound is property-tested against: returns
/// the off-chip memories of the optimal partition (canonical-first
/// strict minimum) plus the number of complete partitions scanned.
/// Enumeration cost grows as Bell numbers — test instrumentation for
/// small instances only.
///
/// # Errors
///
/// As for [`assign`] (minus the node-budget exhaustion signal, which the
/// exhaustive scan does not have).
///
/// # Panics
///
/// Panics on more than 16 off-chip groups (Bell(16) ≈ 10¹⁰ partitions —
/// the reference would effectively never finish).
#[doc(hidden)]
pub fn off_chip_exhaustive_reference(
    spec: &AppSpec,
    scbd: &ScbdResult,
    lib: &MemLibrary,
) -> Result<(Vec<MemoryInstance>, u64), ExploreError> {
    let traffic = group_traffic(spec);
    let time_s = spec.real_time_seconds();
    let oracle = PortOracle::new(spec, scbd);
    let (groups, _) = split_accessed_groups(spec, &traffic)?;
    if groups.is_empty() {
        return Ok((Vec::new(), 0));
    }
    assert!(
        groups.len() <= 16,
        "exhaustive reference is test instrumentation for small instances"
    );
    if lib.off_chip().parts().is_empty() {
        return Err(ExploreError::Part(
            memx_memlib::SelectPartError::EmptyCatalog,
        ));
    }
    let ctx = OffChipCtx {
        spec,
        traffic: &traffic,
        lib,
        groups: &groups,
        time_s,
        floor_suffix: vec![0.0; groups.len() + 1],
        // The ground truth stays dominance-free: every partition is
        // scanned, so the dominance property tests compare against the
        // genuinely unpruned canonical-first optimum.
        sym_prev: vec![false; groups.len()],
    };
    let mut pricer = OffChipPricer {
        ctx: &ctx,
        oracle,
        cache: BTreeMap::new(),
    };
    struct Scan<'a, 'b> {
        pricer: &'a mut OffChipPricer<'b>,
        n: usize,
        best: Option<(f64, Vec<u64>)>,
        partitions: u64,
    }
    impl Scan<'_, '_> {
        fn recurse(&mut self, i: usize, blocks: &mut Vec<u64>) {
            if i == self.n {
                self.partitions += 1;
                let power = self.pricer.committed(blocks);
                if self.best.as_ref().map(|(p, _)| power < *p).unwrap_or(true) {
                    self.best = Some((power, blocks.clone()));
                }
                return;
            }
            let bit = 1u64 << i;
            for b in 0..blocks.len() {
                let grown = blocks[b] | bit;
                if self.pricer.price(grown).is_some() {
                    let old = blocks[b];
                    blocks[b] = grown;
                    self.recurse(i + 1, blocks);
                    blocks[b] = old;
                }
            }
            if self.pricer.price(bit).is_some() {
                blocks.push(bit);
                self.recurse(i + 1, blocks);
                blocks.pop();
            }
        }
    }
    let mut scan = Scan {
        pricer: &mut pricer,
        n: groups.len(),
        best: None,
        partitions: 0,
    };
    scan.recurse(0, &mut Vec::new());
    let partitions = scan.partitions;
    let (_, blocks) = scan
        .best
        .ok_or_else(|| ExploreError::NoFeasibleAssignment {
            reason: "off-chip groups overlap beyond dual-port bandwidth".to_owned(),
        })?;
    let mems = blocks
        .iter()
        .map(|&mask| ctx.build_memory(&mut pricer, mask))
        .collect();
    Ok((mems, partitions))
}

/// Cost of one on-chip memory holding `members`.
fn on_chip_memory(
    spec: &AppSpec,
    traffic: &[Traffic],
    lib: &MemLibrary,
    members: &[BasicGroupId],
    ports: u32,
    time_s: f64,
) -> MemoryInstance {
    let words: u64 = members.iter().map(|&g| spec.group(g).words()).sum();
    let width = members
        .iter()
        .map(|&g| spec.group(g).bitwidth())
        .max()
        // memx-lint: allow(no-panic-paths) — callers only build memories for non-empty bins (the canonical partition never opens an empty one).
        .expect("memory not empty");
    let module = OnChipSpec::new(words, width, ports);
    let area = lib.on_chip().area_mm2(&module);
    let energy = lib.on_chip().energy_pj(&module);
    let accesses: f64 = members.iter().map(|&g| traffic[g.index()].total()).sum();
    let mw = energy * accesses / time_s / 1e9;
    MemoryInstance {
        groups: members.to_vec(),
        words,
        width,
        ports,
        kind: MemoryKind::OnChip,
        cost: CostBreakdown::new(area, mw, 0.0),
    }
}

/// Admissible per-group cost floor: the group's own cell area at the
/// block width `width`, plus its access energy in a module of at least
/// `words` words, `width` bits and `ports` ports. Any real memory
/// holding the group in a block with at least those dimensions costs at
/// least this much *for this group's share* — the cell array is at
/// least per-bit × own words × block width, and the energy model is
/// monotone in words, width and ports.
///
/// The [`BoundKind::Solo`] variant is the original loose floor (flat
/// cell area, whatever the module looks like); [`BoundKind::Pairwise`]
/// additionally mirrors the area model's banking penalty and per-port
/// area factor, both monotone in the module parameters and therefore
/// still admissible. All constants are read from the **active**
/// [`memx_memlib::OnChipModel`], so a custom technology library with
/// cheaper cells keeps the bound admissible (and one with dearer cells
/// prunes just as hard as the built-in model does).
#[allow(clippy::too_many_arguments)]
fn group_floor(
    spec: &AppSpec,
    traffic: &[Traffic],
    lib: &MemLibrary,
    options: &AllocOptions,
    time_s: f64,
    g: BasicGroupId,
    words: u64,
    width: u32,
    ports: u32,
    kind: BoundKind,
) -> f64 {
    let model = lib.on_chip();
    let grp = spec.group(g);
    let module = OnChipSpec::new(words, width, ports);
    let energy = model.energy_pj(&module);
    let mut cells = model.area_per_bit_mm2() * grp.words() as f64 * f64::from(width);
    if kind == BoundKind::Pairwise {
        // The cell array of any module holding these words is banked at
        // least this hard and pays at least this port area factor.
        let bank = 1.0 + (words as f64 / model.bank_words()).min(2.0);
        let port_factor = 1.0 + model.port_area_factor() * (f64::from(ports) - 1.0);
        cells *= bank * port_factor;
    }
    let mw = energy * traffic[g.index()].total() / time_s / 1e9;
    cells * options.area_weight + mw * options.power_weight
}

/// The suffix lower-bound table of the on-chip branch-and-bound, over a
/// fixed hardest-first group order (see the module docs).
///
/// `bound(i, open, k)` lower-bounds the cost every completion adds for
/// the unassigned groups `order[i..]`, given `open` non-empty memories
/// so far and `k` memories in total. It is admissible for both
/// [`BoundKind`]s; the pairwise variant additionally charges each
/// group's minimum-port floor, the fixed module overhead of every
/// memory still to be opened, and the `remaining − (k − open)` joins
/// the pigeonhole principle forces, each at the group's cheapest
/// pairwise-conflict extra.
struct SuffixBound {
    /// `base[i]` = Σ over `order[i..]` of the per-group floor (solo, or
    /// solo + minimum-port tightening for the pairwise bound).
    base: Vec<f64>,
    /// `merge[i][m]` = sum of the `m` smallest join extras among
    /// `order[i..]`; `None` for the solo bound.
    merge: Option<Vec<Vec<f64>>>,
    /// Area-weighted per-module overhead charged for every memory still
    /// to be opened (each of the `k − open` future blocks pays at least
    /// the module generator's fixed overhead). Zero for the solo bound.
    per_block: f64,
    n: usize,
}

impl SuffixBound {
    #[allow(clippy::too_many_arguments)]
    fn build(
        spec: &AppSpec,
        traffic: &[Traffic],
        lib: &MemLibrary,
        options: &AllocOptions,
        time_s: f64,
        order: &[BasicGroupId],
        oracle: &mut PortOracle,
        kind: BoundKind,
    ) -> SuffixBound {
        let n = order.len();
        let floor = |g: BasicGroupId, words: u64, width: u32, ports: u32| {
            group_floor(
                spec, traffic, lib, options, time_s, g, words, width, ports, kind,
            )
        };
        // The solo floor (1-port private module; flat cells for
        // `BoundKind::Solo`, model-mirrored for `BoundKind::Pairwise`).
        let solo: Vec<f64> = order
            .iter()
            .map(|&g| floor(g, spec.group(g).words(), spec.group(g).bitwidth(), 1))
            .collect();
        let (per_group, merge) = match kind {
            BoundKind::Solo => (solo, None),
            BoundKind::Pairwise => {
                // Tightening 1 (unary): every memory holding `g` needs at
                // least the group's own minimum port count.
                let tight: Vec<f64> = order
                    .iter()
                    .map(|&g| {
                        let grp = spec.group(g);
                        floor(g, grp.words(), grp.bitwidth(), grp.min_ports().max(1))
                    })
                    .collect();
                // Tightening 2 (pairwise): if `g` shares a memory with
                // *any* other group `h`, the block holds at least both
                // groups' words, is at least max(w_g, w_h) wide and
                // needs at least the ports their combined cycle
                // conflicts force — `g`'s floor rises by at least the
                // cheapest such extra over all partners (the energy
                // model is strictly monotone in module words, so every
                // co-assignment costs something).
                let join: Vec<f64> = order
                    .iter()
                    .enumerate()
                    .map(|(i, &g)| {
                        let grp = spec.group(g);
                        order
                            .iter()
                            .enumerate()
                            .filter(|&(j, _)| j != i)
                            .map(|(_, &h)| {
                                let other = spec.group(h);
                                let words = grp.words() + other.words();
                                let width = grp.bitwidth().max(other.bitwidth());
                                let ports =
                                    oracle.required((1u64 << g.index()) | (1u64 << h.index()));
                                (floor(g, words, width, ports) - tight[i]).max(0.0)
                            })
                            .min_by(f64::total_cmp)
                            .unwrap_or(0.0)
                    })
                    .collect();
                // merge[i][m]: the m smallest join extras of the suffix.
                let mut merge = Vec::with_capacity(n + 1);
                for i in 0..=n {
                    let mut tail: Vec<f64> = join[i..].to_vec();
                    tail.sort_by(f64::total_cmp);
                    let mut sums = Vec::with_capacity(tail.len() + 1);
                    let mut acc = 0.0;
                    sums.push(0.0);
                    for v in tail {
                        acc += v;
                        sums.push(acc);
                    }
                    merge.push(sums);
                }
                (tight, Some(merge))
            }
        };
        let mut base = vec![0.0; n + 1];
        for i in (0..n).rev() {
            base[i] = base[i + 1] + per_group[i];
        }
        let per_block = match kind {
            BoundKind::Solo => 0.0,
            BoundKind::Pairwise => lib.on_chip().module_overhead_mm2() * options.area_weight,
        };
        SuffixBound {
            base,
            merge,
            per_block,
            n,
        }
    }

    /// Lower bound on the cost the unassigned suffix `order[i..]` adds,
    /// with `open` non-empty memories so far and `k` memories in total.
    fn bound(&self, i: usize, open: usize, k: usize) -> f64 {
        self.bound_with(i, k.saturating_sub(open))
    }

    /// [`SuffixBound::bound`] from the incrementally-maintained
    /// still-to-open count instead of `(open, k)`. The float expression
    /// is evaluated fresh from the same table entries — only the
    /// *integer* delta is maintained across nodes, so the two paths are
    /// bit-identical by construction (debug builds assert it per node).
    fn bound_with(&self, i: usize, to_open: usize) -> f64 {
        let base = self.base[i] + self.per_block * to_open as f64;
        match &self.merge {
            None => base,
            Some(merge) => {
                let remaining = self.n - i;
                let forced = remaining.saturating_sub(to_open);
                base + merge[i][forced]
            }
        }
    }
}

/// Everything the on-chip sweep shares across allocation sizes: the
/// hardest-first group order and the suffix bound tables (both are
/// independent of `k`).
struct OnChipSweep<'a> {
    spec: &'a AppSpec,
    traffic: &'a [Traffic],
    lib: &'a MemLibrary,
    options: &'a AllocOptions,
    time_s: f64,
    order: Vec<BasicGroupId>,
    bound: SuffixBound,
}

impl<'a> OnChipSweep<'a> {
    #[allow(clippy::too_many_arguments)]
    fn build(
        spec: &'a AppSpec,
        traffic: &'a [Traffic],
        lib: &'a MemLibrary,
        groups: &[BasicGroupId],
        time_s: f64,
        options: &'a AllocOptions,
        oracle: &mut PortOracle,
    ) -> Self {
        // Hardest-first ordering: most-accessed groups first.
        let mut order: Vec<BasicGroupId> = groups.to_vec();
        order.sort_by(|a, b| {
            traffic[b.index()]
                .total()
                .total_cmp(&traffic[a.index()].total())
                .then(a.cmp(b))
        });
        let bound = SuffixBound::build(
            spec,
            traffic,
            lib,
            options,
            time_s,
            &order,
            oracle,
            options.bound,
        );
        OnChipSweep {
            spec,
            traffic,
            lib,
            options,
            time_s,
            order,
            bound,
        }
    }
}

/// Scalar cost of an on-chip memory set, exactly as the sweep reduction
/// compares candidates (sum of cost breakdowns, then scalarize).
fn on_chip_scalar(mems: &[MemoryInstance], options: &AllocOptions) -> f64 {
    let cost: CostBreakdown = mems.iter().map(|m| m.cost).sum();
    cost.scalar(options.area_weight, options.power_weight)
}

/// The `k = 1..n` allocation-size sweep, fanned over the worker pool.
///
/// A deterministically-chosen *seed size* (smallest root lower bound,
/// earliest on ties) is searched first with the full pool; its cost is
/// published through an atomic and used only to skip whole sizes whose
/// root bound strictly exceeds it. The remaining sizes fan over
/// [`parallel_map`] with the pool split between the sweep and each
/// size's subtree search, and the results reduce in ascending-`k` order
/// with strict improvement — bit-identical for every worker count.
#[allow(clippy::too_many_arguments)]
fn sweep_on_chip(
    spec: &AppSpec,
    traffic: &[Traffic],
    oracle: &mut PortOracle,
    lib: &MemLibrary,
    groups: &[BasicGroupId],
    counts: &[usize],
    time_s: f64,
    options: &AllocOptions,
    workers: usize,
    stats: &mut AllocStats,
) -> Option<(f64, Vec<MemoryInstance>)> {
    if counts.is_empty() {
        return None;
    }
    let sweep = OnChipSweep::build(spec, traffic, lib, groups, time_s, options, oracle);
    // Worker budgeting across the two on-chip levels: the sweep claims
    // at most one worker per size and each size's subtree search gets an
    // equal share of the rest, so a batch never oversubscribes the pool
    // cores²-style. Results are independent of the split.
    let sweep_workers = workers.min(counts.len()).max(1);
    let inner_workers = (workers / sweep_workers).max(1);

    let root_lb = |k: usize| sweep.bound.bound(0, 0, k);
    // Seed size: smallest root lower bound, earliest on ties.
    let mut seed_pos = 0usize;
    for i in 1..counts.len() {
        if root_lb(counts[i])
            .total_cmp(&root_lb(counts[seed_pos]))
            .is_lt()
        {
            seed_pos = i;
        }
    }
    // Seed phase: the whole pool works on the most promising size.
    let (seed_mems, seed_nodes, seed_updates) =
        assign_on_chip(&sweep, oracle, counts[seed_pos], workers);
    let shared = Incumbent::new(
        seed_mems
            .as_deref()
            .map(|m| on_chip_scalar(m, options))
            .unwrap_or(f64::INFINITY),
    );
    let others: Vec<usize> = counts
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != seed_pos)
        .map(|(_, &k)| k)
        .collect();
    let fanned = parallel_map(&others, sweep_workers, |_, &k| {
        if root_lb(k) > shared.get() {
            // Strictly above a published result: this size's search —
            // even node-limited, its outcome is a feasible organization
            // costing at least the root bound — can never win the
            // strict ascending-k reduction, so skipping it cannot
            // change the result regardless of thread timing.
            return (None, 0u64, 0u64, true);
        }
        let mut worker_oracle = oracle.clone();
        let (mems, nodes, updates) = assign_on_chip(&sweep, &mut worker_oracle, k, inner_workers);
        if let Some(m) = &mems {
            shared.publish_min(on_chip_scalar(m, options));
        }
        (mems, nodes, updates, false)
    });

    // Canonical reduction in ascending-k input order, strict improvement
    // — the serial sweep's first-found-minimum tie-break.
    let mut best: Option<(f64, Vec<MemoryInstance>)> = None;
    let mut seed_slot = Some((seed_mems, seed_nodes, seed_updates, false));
    let mut fanned = fanned.into_iter();
    for i in 0..counts.len() {
        let (mems, nodes, updates, skipped) = if i == seed_pos {
            // memx-lint: allow(no-panic-paths) — the seed slot is taken exactly once (at `i == seed_pos`).
            seed_slot.take().expect("seed reduced once")
        } else {
            // memx-lint: allow(no-panic-paths) — `parallel_map` returns exactly one result per non-seed size.
            fanned.next().expect("one fanned result per non-seed size")
        };
        stats.bb_nodes += nodes;
        stats.bound_incremental_updates += updates;
        if skipped {
            stats.sweep_skips += 1;
        }
        if let Some(m) = mems {
            let scalar = on_chip_scalar(&m, options);
            if best.as_ref().map(|(s, _)| scalar < *s).unwrap_or(true) {
                best = Some((scalar, m));
            }
        }
    }
    best
}

/// Shared, read-only context of one on-chip branch-and-bound run.
struct SearchCtx<'a> {
    sweep: &'a OnChipSweep<'a>,
    k: usize,
}

impl SearchCtx<'_> {
    /// Scalar cost of one memory holding `members`, or `None` when its
    /// port requirement exceeds the module generator's limit.
    fn memory_scalar(&self, oracle: &mut PortOracle, members: &[BasicGroupId]) -> Option<f64> {
        let mask: u64 = members.iter().map(|g| 1u64 << g.index()).sum();
        let ports = oracle.required(mask);
        if ports > self.sweep.options.max_on_chip_ports {
            return None;
        }
        let mem = on_chip_memory(
            self.sweep.spec,
            self.sweep.traffic,
            self.sweep.lib,
            members,
            ports,
            self.sweep.time_s,
        );
        Some(mem.cost.scalar(
            self.sweep.options.area_weight,
            self.sweep.options.power_weight,
        ))
    }

    fn order(&self) -> &[BasicGroupId] {
        &self.sweep.order
    }

    /// The admissible node bound: cost every completion of a node at
    /// depth `i` with `open` non-empty memories must still add.
    fn node_bound(&self, i: usize, open: usize) -> f64 {
        self.sweep.bound.bound(i, open, self.k)
    }

    /// [`SearchCtx::node_bound`] from the maintained still-to-open
    /// delta (see [`SuffixBound::bound_with`]).
    fn node_bound_with(&self, i: usize, to_open: usize) -> f64 {
        self.sweep.bound.bound_with(i, to_open)
    }
}

/// A partial canonical assignment of the first `depth` groups.
#[derive(Clone)]
struct Prefix {
    bins: Vec<Vec<BasicGroupId>>,
    bin_scalars: Vec<f64>,
    acc: f64,
    depth: usize,
}

/// Depth-first exploration of one subtree with a private node budget
/// and a bound seeded from the greedy incumbent only (see module docs).
struct Dfs<'a> {
    ctx: &'a SearchCtx<'a>,
    best_scalar: f64,
    best: Option<Vec<Vec<BasicGroupId>>>,
    nodes: u64,
    node_limit: u64,
    /// Memories still to open (`k − bins.len()`, saturating),
    /// maintained as an integer delta across assign/unassign instead of
    /// being re-derived per node.
    to_open: usize,
    updates: u64,
}

impl Dfs<'_> {
    fn recurse(
        &mut self,
        oracle: &mut PortOracle,
        i: usize,
        bins: &mut Vec<Vec<BasicGroupId>>,
        bin_scalars: &mut Vec<f64>,
        acc: f64,
    ) {
        self.nodes += 1;
        if self.nodes > self.node_limit {
            return;
        }
        let remaining = self.ctx.order().len() - i;
        if bins.len() + remaining < self.ctx.k {
            return; // cannot open enough memories any more
        }
        let node_bound = self.ctx.node_bound_with(i, self.to_open);
        debug_assert_eq!(
            node_bound.to_bits(),
            self.ctx.node_bound(i, bins.len()).to_bits(),
            "maintained to-open delta drifted from the from-scratch bound"
        );
        if acc + node_bound >= self.best_scalar {
            return;
        }
        if i == self.ctx.order().len() {
            if bins.len() == self.ctx.k {
                self.best_scalar = acc;
                self.best = Some(bins.clone());
            }
            return;
        }
        let g = self.ctx.order()[i];
        // Try existing memories.
        for b in 0..bins.len() {
            bins[b].push(g);
            if let Some(new_scalar) = self.ctx.memory_scalar(oracle, &bins[b]) {
                let old = bin_scalars[b];
                let acc2 = acc - old + new_scalar;
                bin_scalars[b] = new_scalar;
                self.recurse(oracle, i + 1, bins, bin_scalars, acc2);
                bin_scalars[b] = old;
            }
            bins[b].pop();
        }
        // Open a new memory (canonical: only one way).
        if bins.len() < self.ctx.k {
            bins.push(vec![g]);
            if let Some(scalar) = self.ctx.memory_scalar(oracle, &bins[bins.len() - 1]) {
                bin_scalars.push(scalar);
                self.to_open = self.to_open.saturating_sub(1);
                self.updates += 1;
                self.recurse(oracle, i + 1, bins, bin_scalars, acc + scalar);
                self.to_open += 1;
                bin_scalars.pop();
            }
            bins.pop();
        }
    }
}

/// Expands the canonical partition tree breadth-first (children in
/// depth-first candidate order, so the resulting prefix sequence is the
/// serial DFS visiting order) until at least [`TARGET_SUBTREES`]
/// prefixes exist or every group is assigned.
fn expand_prefixes(ctx: &SearchCtx<'_>, oracle: &mut PortOracle, greedy_bound: f64) -> Vec<Prefix> {
    let n = ctx.order().len();
    let mut level = vec![Prefix {
        bins: Vec::new(),
        bin_scalars: Vec::new(),
        acc: 0.0,
        depth: 0,
    }];
    while level.len() < TARGET_SUBTREES && level.iter().any(|p| p.depth < n) {
        let mut next: Vec<Prefix> = Vec::with_capacity(level.len() * 2);
        for p in &level {
            if p.depth == n {
                next.push(p.clone());
                continue;
            }
            let g = ctx.order()[p.depth];
            let remaining_after = n - p.depth - 1;
            let mut push_child = |bins: Vec<Vec<BasicGroupId>>, bin_scalars: Vec<f64>, acc: f64| {
                if bins.len() + remaining_after < ctx.k {
                    return; // cannot open enough memories any more
                }
                if acc + ctx.node_bound(p.depth + 1, bins.len()) >= greedy_bound {
                    return; // cannot strictly beat the greedy incumbent
                }
                next.push(Prefix {
                    bins,
                    bin_scalars,
                    acc,
                    depth: p.depth + 1,
                });
            };
            // Children in DFS candidate order: existing bins, then a
            // fresh bin.
            for b in 0..p.bins.len() {
                let mut bins = p.bins.clone();
                bins[b].push(g);
                if let Some(scalar) = ctx.memory_scalar(oracle, &bins[b]) {
                    let mut bin_scalars = p.bin_scalars.clone();
                    let acc = p.acc - bin_scalars[b] + scalar;
                    bin_scalars[b] = scalar;
                    push_child(bins, bin_scalars, acc);
                }
            }
            if p.bins.len() < ctx.k {
                if let Some(scalar) = ctx.memory_scalar(oracle, std::slice::from_ref(&g)) {
                    let mut bins = p.bins.clone();
                    bins.push(vec![g]);
                    let mut bin_scalars = p.bin_scalars.clone();
                    bin_scalars.push(scalar);
                    push_child(bins, bin_scalars, p.acc + scalar);
                }
            }
        }
        if next.is_empty() {
            return next; // every branch infeasible or bounded out
        }
        level = next;
    }
    level
}

/// Outcome of one explored subtree: the best strict improvement over
/// the greedy incumbent found inside it, if any, plus the nodes the
/// exploration consumed.
struct SubtreeResult {
    val: f64,
    bins: Option<Vec<Vec<BasicGroupId>>>,
    nodes: u64,
    updates: u64,
}

/// The on-chip solver's instantiation of the generic fan harness
/// ([`crate::fan`]): per-worker state is the memoizing port oracle, and
/// subtree skipping uses the default strict comparison (a subtree
/// holding a solution equal to the final minimum is never skipped).
struct OnChipFan<'a> {
    ctx: &'a SearchCtx<'a>,
}

impl SubtreeSearch for OnChipFan<'_> {
    type Prefix = Prefix;
    type State = PortOracle;
    type Outcome = SubtreeResult;

    fn explore(
        &self,
        oracle: &mut PortOracle,
        p: &Prefix,
        outer: f64,
        budget: u64,
    ) -> SubtreeResult {
        let ctx = self.ctx;
        if p.depth == ctx.order().len() {
            // The whole tree fit into the prefix expansion: the
            // prefix *is* a complete assignment.
            if p.bins.len() == ctx.k && p.acc < outer {
                return SubtreeResult {
                    val: p.acc,
                    bins: Some(p.bins.clone()),
                    nodes: 1,
                    updates: 0,
                };
            }
            return SubtreeResult {
                val: f64::INFINITY,
                bins: None,
                nodes: 1,
                updates: 0,
            };
        }
        let mut dfs = Dfs {
            ctx,
            best_scalar: outer,
            best: None,
            nodes: 0,
            node_limit: budget,
            to_open: ctx.k.saturating_sub(p.bins.len()),
            updates: 0,
        };
        let mut bins = p.bins.clone();
        let mut bin_scalars = p.bin_scalars.clone();
        dfs.recurse(oracle, p.depth, &mut bins, &mut bin_scalars, p.acc);
        SubtreeResult {
            val: if dfs.best.is_some() {
                dfs.best_scalar
            } else {
                f64::INFINITY
            },
            bins: dfs.best,
            nodes: dfs.nodes,
            updates: dfs.updates,
        }
    }

    fn clone_state(&self, oracle: &PortOracle) -> PortOracle {
        oracle.clone()
    }

    fn skipped(&self) -> SubtreeResult {
        SubtreeResult {
            val: f64::INFINITY,
            bins: None,
            nodes: 0,
            updates: 0,
        }
    }

    fn value(&self, r: &SubtreeResult) -> Option<f64> {
        r.bins.is_some().then_some(r.val)
    }

    fn nodes(&self, r: &SubtreeResult) -> u64 {
        r.nodes
    }

    fn merge_state(&self, main: &mut PortOracle, worker: PortOracle) {
        // Port requirements are pure functions of the slot table, so
        // worker-memoized entries are bit-identical to the serial
        // oracle's; merging only warms the memo.
        main.cache.extend(worker.cache);
    }
}

/// Branch-and-bound assignment of the sweep's groups into exactly `k`
/// on-chip memories, fanned out over `workers` threads. Returns `None`
/// when infeasible under the port limit, plus the branch-and-bound
/// nodes and incremental bound updates consumed. Deterministic: the
/// result is bit-identical for every worker count (see module docs);
/// the counters are deterministic for `workers <= 1`.
fn assign_on_chip(
    sweep: &OnChipSweep<'_>,
    oracle: &mut PortOracle,
    k: usize,
    workers: usize,
) -> (Option<Vec<MemoryInstance>>, u64, u64) {
    if sweep.order.is_empty() || k > sweep.order.len() {
        return (None, 0, 0);
    }
    let ctx = SearchCtx { sweep, k };
    let options = sweep.options;

    // Greedy incumbent: the first k groups open their own memories, the
    // rest join wherever the scalar cost grows least. Seeds the bound so
    // the node limit degrades to "greedy + partial improvement" instead
    // of "no answer".
    let greedy: Option<(f64, Vec<Vec<BasicGroupId>>)> = {
        let mut bins: Vec<Vec<BasicGroupId>> = Vec::new();
        let mut bin_scalars: Vec<f64> = Vec::new();
        let mut feasible = true;
        for (i, &g) in ctx.order().iter().enumerate() {
            if i < k {
                bins.push(vec![g]);
                match ctx.memory_scalar(oracle, &bins[i]) {
                    Some(s) => bin_scalars.push(s),
                    None => {
                        feasible = false;
                        break;
                    }
                }
                continue;
            }
            let mut choice: Option<(usize, f64, f64)> = None;
            for b in 0..bins.len() {
                bins[b].push(g);
                if let Some(s) = ctx.memory_scalar(oracle, &bins[b]) {
                    let delta = s - bin_scalars[b];
                    if choice.map(|(_, d, _)| delta < d).unwrap_or(true) {
                        choice = Some((b, delta, s));
                    }
                }
                bins[b].pop();
            }
            match choice {
                Some((b, _, s)) => {
                    bins[b].push(g);
                    bin_scalars[b] = s;
                }
                None => {
                    feasible = false;
                    break;
                }
            }
        }
        (feasible && bins.len() == k).then(|| (bin_scalars.iter().sum(), bins))
    };
    let greedy_val = greedy.as_ref().map(|(v, _)| *v).unwrap_or(f64::INFINITY);

    // Split the canonical tree into deterministic subtrees.
    let prefixes = expand_prefixes(&ctx, oracle, greedy_val);

    // Root lower bound of each subtree, computed once (serially, so it
    // is deterministic).
    let lower_bound = |p: &Prefix| p.acc + ctx.node_bound(p.depth, p.bins.len());
    let bounds: Vec<f64> = prefixes.iter().map(lower_bound).collect();

    // Fan the subtrees through the generic harness ([`crate::fan`]):
    // seed phase, budget split, published incumbent, claim queue. Each
    // subtree's outcome is a pure function of (prefix, outer, budget),
    // so determinism only needs those chosen deterministically — which
    // the harness guarantees. The strict skip predicate is the
    // [`SubtreeSearch`] default.
    let collected = fan_subtrees(
        &OnChipFan { ctx: &ctx },
        &prefixes,
        &bounds,
        oracle,
        greedy_val,
        options.node_limit,
        workers,
    );

    // Deterministic reduction: greedy incumbent, then the subtrees in
    // canonical depth-first order (the seed in its slot — a non-seed
    // subtree strictly improves on the seed's value or returns nothing,
    // so no cross-subtree tie can reorder the outcome), each winning
    // only on strict improvement — the serial first-found-minimum
    // tie-break.
    let mut nodes = 0;
    let mut updates = 0;
    let mut best_val = greedy_val;
    let mut best_bins = greedy.map(|(_, b)| b);
    for r in &collected {
        nodes += r.nodes;
        updates += r.updates;
        if r.val < best_val {
            if let Some(b) = &r.bins {
                best_val = r.val;
                best_bins = Some(b.clone());
            }
        }
    }

    let Some(bins) = best_bins else {
        return (None, nodes, updates);
    };
    let mems = bins
        .iter()
        .map(|members| {
            let mask: u64 = members.iter().map(|g| 1u64 << g.index()).sum();
            let ports = oracle.required(mask);
            on_chip_memory(
                sweep.spec,
                sweep.traffic,
                sweep.lib,
                members,
                ports,
                sweep.time_s,
            )
        })
        .collect();
    (Some(mems), nodes, updates)
}

/// Root lower bounds of the on-chip search for `k` memories, as
/// `(solo, pairwise)` — test instrumentation for the admissibility and
/// dominance properties (the pairwise bound must sit between the solo
/// bound and the true optimal on-chip cost). Returns `Ok(None)` when the
/// spec has no on-chip candidate groups or `k` is out of range.
///
/// # Errors
///
/// Returns [`ExploreError::BadCostWeights`] for invalid weights and
/// [`ExploreError::NoFeasibleAssignment`] for group sets beyond the
/// mask limits, mirroring [`assign`].
#[doc(hidden)]
pub fn root_lower_bounds(
    spec: &AppSpec,
    scbd: &ScbdResult,
    lib: &MemLibrary,
    options: &AllocOptions,
    k: u32,
) -> Result<Option<(f64, f64)>, ExploreError> {
    check_cost_weights(options.area_weight, options.power_weight)?;
    let traffic = group_traffic(spec);
    let time_s = spec.real_time_seconds();
    let mut oracle = PortOracle::new(spec, scbd);
    let (_, on_groups) = split_accessed_groups(spec, &traffic)?;
    if on_groups.is_empty() || k == 0 || k as usize > on_groups.len() {
        return Ok(None);
    }
    let mut order = on_groups;
    order.sort_by(|a, b| {
        traffic[b.index()]
            .total()
            .total_cmp(&traffic[a.index()].total())
            .then(a.cmp(b))
    });
    let build = |kind, oracle: &mut PortOracle| {
        SuffixBound::build(spec, &traffic, lib, options, time_s, &order, oracle, kind)
    };
    let solo = build(BoundKind::Solo, &mut oracle);
    let pairwise = build(BoundKind::Pairwise, &mut oracle);
    let k = k as usize;
    Ok(Some((solo.bound(0, 0, k), pairwise.bound(0, 0, k))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scbd;
    use memx_ir::{AccessKind, AppSpecBuilder};

    fn lib() -> MemLibrary {
        MemLibrary::default_07um()
    }

    /// Spec with several on-chip groups of differing widths plus one
    /// off-chip frame store.
    fn mixed_spec(budget: u64) -> AppSpec {
        let mut b = AppSpecBuilder::new("t");
        let frame = b
            .basic_group_placed("frame", 1 << 20, 8, Placement::OffChip)
            .unwrap();
        let narrow = b.basic_group("narrow", 512, 2).unwrap();
        let wide = b.basic_group("wide", 512, 20).unwrap();
        let mid = b.basic_group("mid", 256, 8).unwrap();
        let n = b.loop_nest("l", 100_000).unwrap();
        let a0 = b.access(n, frame, AccessKind::Read).unwrap();
        let a1 = b.access(n, narrow, AccessKind::Read).unwrap();
        let a2 = b.access(n, wide, AccessKind::Read).unwrap();
        let a3 = b.access(n, mid, AccessKind::Write).unwrap();
        b.depend(n, a0, a3).unwrap();
        b.depend(n, a1, a3).unwrap();
        b.depend(n, a2, a3).unwrap();
        b.cycle_budget(budget).real_time_seconds(0.1);
        b.build().unwrap()
    }

    /// Spec with four overlapping off-chip stores (so the off-chip
    /// partition enumeration has real work) plus two on-chip groups.
    fn off_heavy_spec() -> AppSpec {
        let mut b = AppSpecBuilder::new("t");
        let frames: Vec<_> = (0..4)
            .map(|i| {
                b.basic_group_placed(
                    format!("frame{i}"),
                    (1 << 18) << i,
                    8 + 2 * i as u32,
                    Placement::OffChip,
                )
                .unwrap()
            })
            .collect();
        let small = b.basic_group("small", 512, 8).unwrap();
        let tiny = b.basic_group("tiny", 128, 4).unwrap();
        let n = b.loop_nest("l", 50_000).unwrap();
        let mut reads = Vec::new();
        for &f in &frames {
            reads.push(b.access(n, f, AccessKind::Read).unwrap());
        }
        let w0 = b.access(n, small, AccessKind::Write).unwrap();
        let w1 = b.access(n, tiny, AccessKind::Write).unwrap();
        for &r in &reads {
            b.depend(n, r, w0).unwrap();
        }
        b.depend(n, w0, w1).unwrap();
        // Tight enough that the frame reads overlap each other.
        b.cycle_budget(400_000).real_time_seconds(0.05);
        b.build().unwrap()
    }

    #[test]
    fn assignment_produces_positive_costs() {
        let spec = mixed_spec(2_000_000);
        let s = scbd::distribute(&spec).unwrap();
        let org = assign(&spec, &s, &lib(), &AllocOptions::default()).unwrap();
        assert!(org.cost.on_chip_area_mm2 > 0.0);
        assert!(org.cost.on_chip_power_mw > 0.0);
        assert!(org.cost.off_chip_power_mw > 0.0);
        assert_eq!(org.off_chip_count(), 1);
        assert!(org.on_chip_count() >= 1);
    }

    #[test]
    fn fixed_allocation_count_is_respected() {
        let spec = mixed_spec(2_000_000);
        let s = scbd::distribute(&spec).unwrap();
        for k in 1..=3 {
            let options = AllocOptions {
                on_chip_memories: Some(k),
                ..AllocOptions::default()
            };
            let org = assign(&spec, &s, &lib(), &options).unwrap();
            assert_eq!(org.on_chip_count(), k as usize, "k={k}");
        }
    }

    #[test]
    fn more_memories_less_on_chip_power() {
        // Table 4's monotone power column.
        let spec = mixed_spec(2_000_000);
        let s = scbd::distribute(&spec).unwrap();
        let power = |k: u32| {
            let options = AllocOptions {
                on_chip_memories: Some(k),
                ..AllocOptions::default()
            };
            assign(&spec, &s, &lib(), &options)
                .unwrap()
                .cost
                .on_chip_power_mw
        };
        assert!(power(3) <= power(1));
    }

    #[test]
    fn one_memory_wastes_bitwidth() {
        let spec = mixed_spec(2_000_000);
        let s = scbd::distribute(&spec).unwrap();
        let options = AllocOptions {
            on_chip_memories: Some(1),
            ..AllocOptions::default()
        };
        let org = assign(&spec, &s, &lib(), &options).unwrap();
        let on_chip = org
            .memories
            .iter()
            .find(|m| matches!(m.kind, MemoryKind::OnChip))
            .unwrap();
        // The single memory is as wide as the widest group.
        assert_eq!(on_chip.width, 20);
        assert_eq!(on_chip.words, 512 + 512 + 256);
    }

    #[test]
    fn tight_budget_forces_multiport_or_split() {
        // Two parallel reads funnel into one write under a 2-cycle
        // budget: the reads must overlap, so sharing one memory needs
        // two ports while two memories stay single-ported.
        let mut b = AppSpecBuilder::new("t");
        let narrow = b.basic_group("narrow", 512, 2).unwrap();
        let wide = b.basic_group("wide", 512, 20).unwrap();
        let n = b.loop_nest("l", 1000).unwrap();
        let a0 = b.access(n, narrow, AccessKind::Read).unwrap();
        let a1 = b.access(n, wide, AccessKind::Read).unwrap();
        let a2 = b.access(n, narrow, AccessKind::Write).unwrap();
        b.depend(n, a0, a2).unwrap();
        b.depend(n, a1, a2).unwrap();
        b.cycle_budget(2000).real_time_seconds(0.01);
        let spec = b.build().unwrap();
        let s = scbd::distribute(&spec).unwrap();
        let options = AllocOptions {
            on_chip_memories: Some(1),
            ..AllocOptions::default()
        };
        let org = assign(&spec, &s, &lib(), &options).unwrap();
        let on_chip = org
            .memories
            .iter()
            .find(|m| matches!(m.kind, MemoryKind::OnChip))
            .unwrap();
        assert!(on_chip.ports >= 2, "ports = {}", on_chip.ports);
        // Splitting into two memories avoids the multi-port penalty.
        let options2 = AllocOptions {
            on_chip_memories: Some(2),
            ..AllocOptions::default()
        };
        let org2 = assign(&spec, &s, &lib(), &options2).unwrap();
        let max_ports = org2
            .memories
            .iter()
            .filter(|m| matches!(m.kind, MemoryKind::OnChip))
            .map(|m| m.ports)
            .max()
            .unwrap();
        assert_eq!(max_ports, 1);
    }

    #[test]
    fn sweep_finds_a_no_worse_organization_than_any_fixed_k() {
        let spec = mixed_spec(2_000_000);
        let s = scbd::distribute(&spec).unwrap();
        let sweep = assign(&spec, &s, &lib(), &AllocOptions::default()).unwrap();
        let sweep_scalar = sweep.cost.scalar(1.0, 1.0);
        for k in 1..=3 {
            let options = AllocOptions {
                on_chip_memories: Some(k),
                ..AllocOptions::default()
            };
            let fixed = assign(&spec, &s, &lib(), &options).unwrap();
            assert!(sweep_scalar <= fixed.cost.scalar(1.0, 1.0) + 1e-9, "k={k}");
        }
    }

    #[test]
    fn min_ports_respected() {
        let mut b = AppSpecBuilder::new("t");
        let g = b
            .basic_group_full("buf", 5 * 1024, 8, Placement::OnChip, 2)
            .unwrap();
        let n = b.loop_nest("l", 1000).unwrap();
        b.access(n, g, AccessKind::Read).unwrap();
        b.cycle_budget(100_000).real_time_seconds(0.01);
        let spec = b.build().unwrap();
        let s = scbd::distribute(&spec).unwrap();
        let org = assign(&spec, &s, &lib(), &AllocOptions::default()).unwrap();
        assert_eq!(org.memories[0].ports, 2);
    }

    #[test]
    fn bell_numbers_match_the_oeis_prefix() {
        for (n, expect) in [
            (0u64, 1u64),
            (1, 1),
            (2, 2),
            (3, 5),
            (4, 15),
            (5, 52),
            (6, 203),
            (12, 4_213_597),
            (14, 190_899_322),
        ] {
            assert_eq!(bell_number(n as usize), expect, "Bell({n})");
        }
        // Saturates instead of overflowing for absurd group counts.
        assert_eq!(bell_number(64), u64::MAX);
    }

    #[test]
    fn off_chip_search_reports_partition_and_node_counters() {
        let spec = off_heavy_spec();
        let s = scbd::distribute(&spec).unwrap();
        let (_, stats) = assign_with_stats(&spec, &s, &lib(), &AllocOptions::default()).unwrap();
        // 4 off-chip groups -> at most Bell(4) = 15 partitions reached
        // (fewer when bandwidth or the bound prunes some), at least 1.
        assert!(stats.off_chip_partitions >= 1);
        assert!(stats.off_chip_partitions <= 15, "{stats:?}");
        assert_eq!(stats.off_chip_exhaustive_partitions, 15, "{stats:?}");
        assert!(stats.off_chip_bb_nodes >= 1);
        assert!(
            stats.off_chip_bb_nodes <= stats.off_chip_exhaustive_partitions,
            "{stats:?}"
        );
    }

    #[test]
    fn off_chip_bb_matches_the_exhaustive_reference() {
        // The branch-and-bound must return the exhaustive scan's exact
        // canonical-first optimum — same blocks, same order, same bits.
        for spec in [off_heavy_spec(), mixed_spec(2_000_000)] {
            let s = scbd::distribute(&spec).unwrap();
            let (reference, ref_partitions) =
                off_chip_exhaustive_reference(&spec, &s, &lib()).unwrap();
            for workers in [1usize, 2, 8] {
                let (org, stats) = assign_with_stats(
                    &spec,
                    &s,
                    &lib(),
                    &AllocOptions {
                        workers,
                        ..AllocOptions::default()
                    },
                )
                .unwrap();
                let off: Vec<&MemoryInstance> = org
                    .memories
                    .iter()
                    .filter(|m| matches!(m.kind, MemoryKind::OffChip(_)))
                    .collect();
                assert_eq!(off.len(), reference.len(), "workers={workers}");
                for (got, want) in off.iter().zip(&reference) {
                    assert_eq!(*got, want, "workers={workers}");
                }
                assert!(
                    stats.off_chip_partitions <= ref_partitions,
                    "workers={workers}: {stats:?} vs reference {ref_partitions}"
                );
            }
        }
    }

    #[test]
    fn zero_access_groups_are_foreground() {
        let mut b = AppSpecBuilder::new("t");
        let used = b.basic_group("used", 64, 8).unwrap();
        let _unused = b.basic_group("unused", 64, 8).unwrap();
        let n = b.loop_nest("l", 10).unwrap();
        b.access(n, used, AccessKind::Read).unwrap();
        b.cycle_budget(1000);
        let spec = b.build().unwrap();
        let s = scbd::distribute(&spec).unwrap();
        let org = assign(&spec, &s, &lib(), &AllocOptions::default()).unwrap();
        let assigned: usize = org.memories.iter().map(|m| m.groups.len()).sum();
        assert_eq!(assigned, 1);
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let spec = mixed_spec(2_000_000);
        let s = scbd::distribute(&spec).unwrap();
        for on_chip_memories in [None, Some(1), Some(2), Some(3)] {
            let serial = assign(
                &spec,
                &s,
                &lib(),
                &AllocOptions {
                    on_chip_memories,
                    workers: 1,
                    ..AllocOptions::default()
                },
            )
            .unwrap();
            for workers in [2, 4, 7] {
                let parallel = assign(
                    &spec,
                    &s,
                    &lib(),
                    &AllocOptions {
                        on_chip_memories,
                        workers,
                        ..AllocOptions::default()
                    },
                )
                .unwrap();
                assert_eq!(serial, parallel, "k={on_chip_memories:?} workers={workers}");
            }
        }
    }

    #[test]
    fn off_chip_and_sweep_parallel_match_serial_for_all_worker_counts() {
        // The issue's determinism matrix: off-chip enumeration and the
        // k-sweep must be bit-identical for workers in {1, 2, 8}.
        let spec = off_heavy_spec();
        let s = scbd::distribute(&spec).unwrap();
        for bound in [BoundKind::Solo, BoundKind::Pairwise] {
            let serial = assign(
                &spec,
                &s,
                &lib(),
                &AllocOptions {
                    workers: 1,
                    bound,
                    ..AllocOptions::default()
                },
            )
            .unwrap();
            assert!(serial.off_chip_count() >= 1);
            for workers in [2, 8] {
                let parallel = assign(
                    &spec,
                    &s,
                    &lib(),
                    &AllocOptions {
                        workers,
                        bound,
                        ..AllocOptions::default()
                    },
                )
                .unwrap();
                assert_eq!(serial, parallel, "bound={bound:?} workers={workers}");
            }
        }
    }

    #[test]
    fn node_limit_exhaustion_returns_deterministic_incumbent() {
        let spec = mixed_spec(2_000_000);
        let s = scbd::distribute(&spec).unwrap();
        // A node limit this small exhausts every subtree immediately:
        // the search must still return the greedy incumbent (never an
        // error) and do so identically across runs and worker counts.
        let run = |workers: usize| {
            assign(
                &spec,
                &s,
                &lib(),
                &AllocOptions {
                    node_limit: 1,
                    workers,
                    ..AllocOptions::default()
                },
            )
            .expect("incumbent, not an error")
        };
        let serial_a = run(1);
        let serial_b = run(1);
        assert_eq!(serial_a, serial_b, "serial runs must be reproducible");
        for workers in [2, 4, 8] {
            assert_eq!(serial_a, run(workers), "workers={workers}");
        }
        // The exhausted search still yields a complete organization.
        assert!(serial_a.on_chip_count() >= 1);
    }

    #[test]
    fn sweep_exhaustion_is_deterministic_on_the_off_heavy_spec() {
        // Same exhaustion matrix, but on a spec that exercises both the
        // off-chip enumeration and a multi-size k-sweep.
        let spec = off_heavy_spec();
        let s = scbd::distribute(&spec).unwrap();
        let run = |workers: usize| {
            assign(
                &spec,
                &s,
                &lib(),
                &AllocOptions {
                    node_limit: 1,
                    workers,
                    ..AllocOptions::default()
                },
            )
            .expect("incumbent, not an error")
        };
        let serial = run(1);
        for workers in [2, 8] {
            assert_eq!(serial, run(workers), "workers={workers}");
        }
    }

    #[test]
    fn solo_and_pairwise_bounds_agree_on_exact_results() {
        // Both bounds are admissible, so with an unexhausted node budget
        // the search returns the same optimum either way.
        let spec = mixed_spec(2_000_000);
        let s = scbd::distribute(&spec).unwrap();
        for on_chip_memories in [None, Some(1), Some(2), Some(3)] {
            let solo = assign(
                &spec,
                &s,
                &lib(),
                &AllocOptions {
                    on_chip_memories,
                    bound: BoundKind::Solo,
                    ..AllocOptions::default()
                },
            )
            .unwrap();
            let pairwise = assign(
                &spec,
                &s,
                &lib(),
                &AllocOptions {
                    on_chip_memories,
                    bound: BoundKind::Pairwise,
                    ..AllocOptions::default()
                },
            )
            .unwrap();
            assert_eq!(solo, pairwise, "k={on_chip_memories:?}");
        }
    }

    /// Many on-chip groups with mixed widths and a tight enough budget
    /// to create real port conflicts — large enough that the
    /// branch-and-bound actually expands nodes.
    fn many_group_spec() -> AppSpec {
        let mut b = AppSpecBuilder::new("t");
        let groups: Vec<_> = (0..8)
            .map(|i| {
                b.basic_group(format!("g{i}"), 128 << (i % 4), 2 + 3 * (i as u32 % 5))
                    .unwrap()
            })
            .collect();
        let n = b.loop_nest("l", 10_000).unwrap();
        let mut reads = Vec::new();
        for &g in &groups[..7] {
            reads.push(b.access(n, g, AccessKind::Read).unwrap());
        }
        let w = b.access(n, groups[7], AccessKind::Write).unwrap();
        for &r in &reads {
            b.depend(n, r, w).unwrap();
        }
        // Tight: the seven reads must overlap heavily.
        b.cycle_budget(30_000).real_time_seconds(0.01);
        b.build().unwrap()
    }

    #[test]
    fn pairwise_bound_visits_no_more_nodes_than_solo() {
        let spec = many_group_spec();
        let s = scbd::distribute(&spec).unwrap();
        let nodes = |bound| {
            let (_, stats) = assign_with_stats(
                &spec,
                &s,
                &lib(),
                &AllocOptions {
                    workers: 1,
                    bound,
                    ..AllocOptions::default()
                },
            )
            .unwrap();
            stats.bb_nodes
        };
        let solo = nodes(BoundKind::Solo);
        let pairwise = nodes(BoundKind::Pairwise);
        assert!(pairwise <= solo, "pairwise {pairwise} > solo {solo}");
        assert!(solo > 0);
    }

    #[test]
    fn root_bounds_are_ordered_and_admissible_on_the_mixed_spec() {
        let spec = mixed_spec(2_000_000);
        let s = scbd::distribute(&spec).unwrap();
        let options = AllocOptions::default();
        for k in 1..=3u32 {
            let (solo, pairwise) = root_lower_bounds(&spec, &s, &lib(), &options, k)
                .unwrap()
                .expect("on-chip groups exist");
            assert!(solo <= pairwise + 1e-12, "k={k}");
            // Admissibility against the exact fixed-k optimum (the
            // sweep's on-chip memories only).
            let org = assign(
                &spec,
                &s,
                &lib(),
                &AllocOptions {
                    on_chip_memories: Some(k),
                    ..AllocOptions::default()
                },
            )
            .unwrap();
            let on_chip: CostBreakdown = org
                .memories
                .iter()
                .filter(|m| matches!(m.kind, MemoryKind::OnChip))
                .map(|m| m.cost)
                .sum();
            let optimum = on_chip.scalar(options.area_weight, options.power_weight);
            assert!(
                pairwise <= optimum + 1e-9,
                "k={k}: pairwise bound {pairwise} exceeds optimum {optimum}"
            );
        }
    }

    #[test]
    fn accessed_groups_beyond_mask_limit_are_rejected_not_ub() {
        // 70 groups, only the last two accessed: their indices (68, 69)
        // cannot be bitmask positions in a u64. This must surface as a
        // clean error, not a shift overflow / aliased-mask organization.
        let mut b = AppSpecBuilder::new("t");
        for i in 0..68 {
            b.basic_group(format!("fg{i}"), 16, 8).unwrap();
        }
        let hi_a = b.basic_group("hi_a", 64, 8).unwrap();
        let hi_b = b.basic_group("hi_b", 64, 8).unwrap();
        let n = b.loop_nest("l", 100).unwrap();
        b.access(n, hi_a, AccessKind::Read).unwrap();
        b.access(n, hi_b, AccessKind::Read).unwrap();
        b.cycle_budget(10_000);
        let spec = b.build().unwrap();
        let s = scbd::distribute(&spec).unwrap();
        let err = assign(&spec, &s, &lib(), &AllocOptions::default()).unwrap_err();
        assert!(matches!(err, ExploreError::NoFeasibleAssignment { .. }));
        assert!(err.to_string().contains("mask limit"), "{err}");
    }

    #[test]
    fn nan_weights_are_rejected_not_panicking() {
        let spec = mixed_spec(2_000_000);
        let s = scbd::distribute(&spec).unwrap();
        for (aw, pw) in [
            (f64::NAN, 1.0),
            (1.0, f64::NAN),
            (f64::INFINITY, 1.0),
            (-1.0, 1.0),
            (1.0, -0.5),
        ] {
            let err = assign(
                &spec,
                &s,
                &lib(),
                &AllocOptions {
                    area_weight: aw,
                    power_weight: pw,
                    ..AllocOptions::default()
                },
            )
            .unwrap_err();
            assert!(
                matches!(err, ExploreError::BadCostWeights { .. }),
                "weights ({aw}, {pw})"
            );
        }
    }

    #[test]
    fn serial_assignment_spawns_no_threads() {
        // The 1-worker path must be a genuinely straight serial path:
        // the spawn counter (thread-local, so parallel test runners do
        // not interfere) must not move.
        let spec = off_heavy_spec();
        let s = scbd::distribute(&spec).unwrap();
        let before = crate::engine::thread_spawns_on_current_thread();
        let org = assign(
            &spec,
            &s,
            &lib(),
            &AllocOptions {
                workers: 1,
                ..AllocOptions::default()
            },
        )
        .unwrap();
        assert!(org.on_chip_count() >= 1);
        assert_eq!(
            crate::engine::thread_spawns_on_current_thread(),
            before,
            "workers=1 assignment spawned a thread"
        );
        // Sanity check of the instrument itself: a parallel run spawns.
        // (The plateau spec guarantees a wide off-chip subtree fan; the
        // off-heavy spec above collapses to a single subtree now that
        // the bound prunes the off-chip tree.)
        let spec = plateau_off_chip_spec(10);
        let s = scbd::distribute(&spec).unwrap();
        let before = crate::engine::thread_spawns_on_current_thread();
        assign(
            &spec,
            &s,
            &lib(),
            &AllocOptions {
                workers: 4,
                ..AllocOptions::default()
            },
        )
        .unwrap();
        assert!(crate::engine::thread_spawns_on_current_thread() > before);
    }

    /// `count` mutually-compatible off-chip groups (light, non-overlapping
    /// reads): the workload class the retired exhaustive enumeration
    /// rejected beyond 12 groups.
    fn many_off_chip_spec(count: usize) -> AppSpec {
        let mut b = AppSpecBuilder::new("t");
        let groups: Vec<_> = (0..count)
            .map(|i| {
                b.basic_group_placed(format!("f{i}"), 2048, 8, Placement::OffChip)
                    .unwrap()
            })
            .collect();
        let n = b.loop_nest("l", 10).unwrap();
        for &g in &groups {
            b.access(n, g, AccessKind::Read).unwrap();
        }
        b.cycle_budget(100_000);
        b.build().unwrap()
    }

    #[test]
    fn thirteen_off_chip_groups_no_longer_rejected() {
        // The exact instance the retired exhaustive enumeration refused
        // with `TooManyOffChipGroups` (13 > the old 12-group cap): the
        // branch-and-bound proves its optimum within the default budget.
        let spec = many_off_chip_spec(13);
        let s = scbd::distribute(&spec).unwrap();
        let (org, stats) = assign_with_stats(&spec, &s, &lib(), &AllocOptions::default()).unwrap();
        assert!(org.off_chip_count() >= 1);
        assert_eq!(
            org.memories.iter().map(|m| m.groups.len()).sum::<usize>(),
            13
        );
        assert_eq!(stats.off_chip_exhaustive_partitions, bell_number(13));
        assert!(
            stats.off_chip_bb_nodes < bell_number(13),
            "no pruning: {stats:?}"
        );
    }

    /// ≥14 off-chip frame stores whose reads all overlap pairwise twice
    /// (every group is read twice in parallel): singletons need two
    /// ports, any co-assignment needs four — so the only feasible
    /// partition keeps every frame in its own dual-bank memory.
    fn fourteen_conflicting_frames_spec() -> AppSpec {
        let mut b = AppSpecBuilder::new("t");
        let groups: Vec<_> = (0..14)
            .map(|i| {
                b.basic_group_placed(format!("frame{i}"), 1 << 18, 8, Placement::OffChip)
                    .unwrap()
            })
            .collect();
        let sink = b.basic_group("sink", 64, 8).unwrap();
        let n = b.loop_nest("l", 1_000).unwrap();
        let w = b.access(n, sink, AccessKind::Write).unwrap();
        for &g in &groups {
            // Two independent reads per frame, both feeding the write:
            // under a tight budget they must overlap each other.
            let r0 = b.access(n, g, AccessKind::Read).unwrap();
            let r1 = b.access(n, g, AccessKind::Read).unwrap();
            b.depend(n, r0, w).unwrap();
            b.depend(n, r1, w).unwrap();
        }
        // Exactly the read->write critical path (4 + 1 cycles per
        // iteration): every read occupies cycles 0-3, so each frame's
        // two reads overlap themselves and every other frame's.
        b.cycle_budget(5_000).real_time_seconds(0.01);
        b.build().unwrap()
    }

    #[test]
    fn fourteen_off_chip_groups_reach_a_proven_optimum() {
        // The lifted-limit acceptance scenario: 14 off-chip groups
        // (Bell(14) ≈ 1.9 x 10^8 — hopeless for the retired exhaustive
        // scan even without the cap) allocate to a proven optimum, with
        // identical results for every worker count.
        let spec = fourteen_conflicting_frames_spec();
        let s = scbd::distribute(&spec).unwrap();
        let run = |workers: usize| {
            assign_with_stats(
                &spec,
                &s,
                &lib(),
                &AllocOptions {
                    workers,
                    ..AllocOptions::default()
                },
            )
            .expect("proven optimum, not exhaustion")
        };
        let (serial, stats) = run(1);
        assert_eq!(serial.off_chip_count(), 14, "conflicts force singletons");
        for m in serial
            .memories
            .iter()
            .filter(|m| matches!(m.kind, MemoryKind::OffChip(_)))
        {
            assert_eq!(m.groups.len(), 1);
            assert_eq!(m.ports, 2, "parallel self-reads need the dual bank");
        }
        assert!(
            stats.off_chip_bb_nodes < bell_number(14),
            "search must prune, not enumerate: {stats:?}"
        );
        for workers in [2usize, 8] {
            let (parallel, _) = run(workers);
            assert_eq!(serial, parallel, "workers={workers}");
        }
    }

    /// Worst-case plateau: `count` off-chip groups of exactly one
    /// 4M-device each, so *every* partition prices identically (k merged
    /// groups need k devices of the same part either way) and the bound
    /// cannot cut the Bell-number tree down. The groups are bitwise
    /// symmetric (same size, width, traffic, no conflicts), which makes
    /// this the symmetric-group dominance rule's home turf: with it the
    /// surviving tree collapses to the 2^(count-1) nondecreasing-choice
    /// prefixes.
    fn plateau_off_chip_spec(count: usize) -> AppSpec {
        let mut b = AppSpecBuilder::new("t");
        let groups: Vec<_> = (0..count)
            .map(|i| {
                b.basic_group_placed(format!("f{i}"), 4 << 20, 8, Placement::OffChip)
                    .unwrap()
            })
            .collect();
        let n = b.loop_nest("l", 10).unwrap();
        for &g in &groups {
            b.access(n, g, AccessKind::Read).unwrap();
        }
        b.cycle_budget(100_000);
        b.build().unwrap()
    }

    #[test]
    fn off_chip_exhaustion_is_a_deterministic_signal() {
        // A tie-heavy plateau with a starved node budget: the search
        // cannot prove an optimum and must say so — with the same error
        // for every worker count, never a silently unproven
        // organization. (16 groups: even the dominance-collapsed tree
        // has ~2^15 surviving prefixes, far beyond a 3-node budget.)
        let spec = plateau_off_chip_spec(16);
        let s = scbd::distribute(&spec).unwrap();
        let run = |workers: usize| {
            assign(
                &spec,
                &s,
                &lib(),
                &AllocOptions {
                    node_limit: 3,
                    workers,
                    ..AllocOptions::default()
                },
            )
        };
        let serial = run(1);
        assert!(
            matches!(
                serial,
                Err(ExploreError::TooManyOffChipGroups {
                    count: 16,
                    node_limit: 3
                })
            ),
            "{serial:?}"
        );
        for workers in [2usize, 8] {
            assert_eq!(
                run(workers).unwrap_err(),
                serial.as_ref().unwrap_err().clone(),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn dominance_preserves_the_exhaustive_optimum_on_a_plateau() {
        // The dominance rule prunes only symmetric *duplicates*: on a
        // plateau of 8 bitwise-identical groups the search must still
        // return the exhaustive scan's canonical-first optimum — same
        // blocks, same order, same bits — while actually cutting nodes.
        let spec = plateau_off_chip_spec(8);
        let s = scbd::distribute(&spec).unwrap();
        let (reference, ref_partitions) = off_chip_exhaustive_reference(&spec, &s, &lib()).unwrap();
        for workers in [1usize, 2, 8] {
            let (org, stats) = assign_with_stats(
                &spec,
                &s,
                &lib(),
                &AllocOptions {
                    workers,
                    ..AllocOptions::default()
                },
            )
            .unwrap();
            let off: Vec<&MemoryInstance> = org
                .memories
                .iter()
                .filter(|m| matches!(m.kind, MemoryKind::OffChip(_)))
                .collect();
            assert_eq!(off.len(), reference.len(), "workers={workers}");
            for (got, want) in off.iter().zip(&reference) {
                assert_eq!(*got, want, "workers={workers}");
            }
            assert!(
                stats.off_chip_dominance_cuts > 0,
                "workers={workers}: symmetric plateau produced no cuts: {stats:?}"
            );
            assert!(
                stats.bound_incremental_updates > 0,
                "workers={workers}: {stats:?}"
            );
            assert!(
                stats.off_chip_partitions < ref_partitions,
                "workers={workers}: dominance left the full Bell tree: {stats:?}"
            );
        }
    }

    #[test]
    fn dominance_collapses_the_sixteen_group_tie_plateau() {
        // The ROADMAP acceptance fixture: 16 mutually compatible
        // symmetric groups. Without dominance every one of the ~10^10
        // partitions prices identically, so the bound prunes nothing and
        // any practical budget exhausts. With the rule (the default) the
        // surviving tree is 2^16 - 1 nodes and the *default* budget
        // proves the optimum, identically for every worker count.
        let spec = plateau_off_chip_spec(16);
        let s = scbd::distribute(&spec).unwrap();
        let run = |workers: usize| {
            assign_with_stats(
                &spec,
                &s,
                &lib(),
                &AllocOptions {
                    workers,
                    ..AllocOptions::default()
                },
            )
            .expect("dominance must collapse the plateau within the default budget")
        };
        let (serial, stats) = run(1);
        assert_eq!(
            serial
                .memories
                .iter()
                .map(|m| m.groups.len())
                .sum::<usize>(),
            16
        );
        assert!(stats.off_chip_dominance_cuts > 0, "{stats:?}");
        assert!(
            stats.off_chip_bb_nodes < 200_000,
            "collapsed tree should be tiny: {stats:?}"
        );
        for workers in [2usize, 8] {
            let (parallel, _) = run(workers);
            assert_eq!(serial, parallel, "workers={workers}");
        }
        // Disabling the rule restores the plateau: the same instance
        // exhausts even a budget comfortably above the dominance run's
        // entire node count.
        let err = assign(
            &spec,
            &s,
            &lib(),
            &AllocOptions {
                off_chip_dominance: false,
                node_limit: 200_000,
                ..AllocOptions::default()
            },
        )
        .unwrap_err();
        assert!(
            matches!(err, ExploreError::TooManyOffChipGroups { count: 16, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn incremental_sums_match_fresh_folds_across_budgets_and_workers() {
        // Differential property test for the incremental bound state:
        // `debug_assert!`s inside both solvers compare the maintained
        // running committed sum (off-chip) and the maintained open-count
        // (on-chip) against a from-scratch recomputation at *every
        // visited node* — this test's job is to drive those assertions
        // across the workers x node-limit matrix, accepting either a
        // proven result or the deterministic exhaustion signal, and to
        // pin bit-identical results across worker counts at every
        // budget.
        let specs = [
            off_heavy_spec(),
            plateau_off_chip_spec(6),
            many_group_spec(),
        ];
        for (si, spec) in specs.iter().enumerate() {
            let s = scbd::distribute(spec).unwrap();
            for node_limit in [1u64, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 600] {
                let run = |workers: usize| {
                    assign(
                        spec,
                        &s,
                        &lib(),
                        &AllocOptions {
                            node_limit,
                            workers,
                            ..AllocOptions::default()
                        },
                    )
                };
                let serial = run(1);
                match &serial {
                    Ok(org) => assert!(org.on_chip_count() + org.off_chip_count() >= 1),
                    Err(ExploreError::TooManyOffChipGroups { .. }) => {}
                    Err(e) => panic!("spec {si} limit {node_limit}: unexpected error {e}"),
                }
                for workers in [2usize, 8] {
                    assert_eq!(
                        serial,
                        run(workers),
                        "spec {si} limit {node_limit} workers={workers}"
                    );
                }
            }
        }
    }

    #[test]
    fn nonpositive_real_time_window_is_rejected_before_the_search() {
        // A zero or negative real-time window would turn every power
        // floor into NaN/∞ and silently defeat bound pruning; the search
        // must reject the instance up front with a typed error.
        for time_s in [0.0f64, -1.0] {
            let mut b = AppSpecBuilder::new("t");
            let g = b
                .basic_group_placed("f", 2048, 8, Placement::OffChip)
                .unwrap();
            let n = b.loop_nest("l", 10).unwrap();
            b.access(n, g, AccessKind::Read).unwrap();
            b.cycle_budget(100_000).real_time_seconds(time_s);
            let spec = b.build().unwrap();
            let s = scbd::distribute(&spec).unwrap();
            let err = assign(&spec, &s, &lib(), &AllocOptions::default()).unwrap_err();
            assert_eq!(err, ExploreError::BadOffChipPricing { time_s });
            assert!(err.to_string().contains("real-time window"), "{err}");
        }
    }

    #[test]
    fn worker_priced_masks_are_persisted_in_the_block_catalog() {
        // A parallel run prices many masks inside *worker* pricer
        // clones; `OffChipFan::merge_state` must fold those memos back
        // before `store_off_chip_blocks`, so a cold parallel run
        // persists the same full catalog as a cold serial run (and a
        // warm run re-seeds all of it). Dominance is disabled so the
        // plateau fans real pricing work into the worker subtrees.
        let spec = plateau_off_chip_spec(8);
        let s = scbd::distribute(&spec).unwrap();
        let options = |workers: usize| AllocOptions {
            workers,
            off_chip_dominance: false,
            ..AllocOptions::default()
        };
        let blocks_key = || {
            let traffic = group_traffic(&spec);
            let oracle = PortOracle::new(&spec, &s);
            let (groups, _) = split_accessed_groups(&spec, &traffic).unwrap();
            let instance = off_chip_blocks_fingerprint(
                &spec,
                &traffic,
                &oracle,
                &groups,
                spec.real_time_seconds(),
            );
            cache::CacheKey::off_chip_blocks(instance, &lib())
        };
        let tmp =
            std::env::temp_dir().join(format!("memx-worker-catalog-merge-{}", std::process::id()));
        let cold_catalog = |label: &str, workers: usize| {
            let dir = tmp.join(label);
            let cache = EvalCache::open(&dir).unwrap();
            let (org, _) =
                assign_with_stats_cached(&spec, &s, &lib(), &options(workers), Some(&cache))
                    .unwrap();
            assert!(org.off_chip_count() >= 1);
            assert_eq!(cache.stats().blocks_misses, 1, "{label} run must be cold");
            cache
                .load_off_chip_blocks(&blocks_key())
                .expect("cold run stores the catalog")
        };
        let serial = cold_catalog("serial", 1);
        let parallel = cold_catalog("parallel", 8);
        assert!(serial.len() > 1, "plateau must price several masks");
        assert_eq!(
            serial, parallel,
            "worker-discovered masks must be merged back before the store"
        );
        // Warm re-run against the parallel store, under a different
        // (keyed) node budget so the *allocation* entry misses and the
        // solver actually runs: the catalog is served from disk and
        // nothing is re-stored.
        let cache = EvalCache::open(tmp.join("parallel")).unwrap();
        let warm = AllocOptions {
            node_limit: AllocOptions::default().node_limit + 1,
            ..options(8)
        };
        assign_with_stats_cached(&spec, &s, &lib(), &warm, Some(&cache)).unwrap();
        assert_eq!(cache.stats().blocks_hits, 1);
        assert_eq!(cache.stats().blocks_misses, 0);
        std::fs::remove_dir_all(&tmp).ok();
    }

    #[test]
    fn custom_model_bounds_follow_the_active_library() {
        // The pairwise floor must be derived from the *active*
        // `OnChipModel`: with cheaper cells the bound has to shrink
        // (reading the default constants would over-prune and lose the
        // optimum), with dearer cells it has to grow (prune as hard as
        // the built-in model).
        use memx_memlib::{OffChipCatalog, OnChipModel};
        let spec = many_group_spec();
        let s = scbd::distribute(&spec).unwrap();
        let options = AllocOptions::default();
        let scaled_lib = |f: f64| {
            let m = OnChipModel::default_07um();
            MemLibrary::new(
                m.clone()
                    .with_area_per_bit_mm2(m.area_per_bit_mm2() * f)
                    .with_module_overhead_mm2(m.module_overhead_mm2() * f),
                OffChipCatalog::default_edo(),
            )
        };
        let default_lib = lib();
        for k in 1..=3u32 {
            let (_, default_bound) = root_lower_bounds(&spec, &s, &default_lib, &options, k)
                .unwrap()
                .expect("on-chip groups exist");
            let (_, cheap) = root_lower_bounds(&spec, &s, &scaled_lib(0.25), &options, k)
                .unwrap()
                .expect("on-chip groups exist");
            let (_, dear) = root_lower_bounds(&spec, &s, &scaled_lib(4.0), &options, k)
                .unwrap()
                .expect("on-chip groups exist");
            assert!(cheap < default_bound, "k={k}: {cheap} !< {default_bound}");
            assert!(dear > default_bound, "k={k}: {dear} !> {default_bound}");
        }
        // Both bounds stay admissible on the cheap library: solo and
        // pairwise searches agree on the exact optimum.
        for on_chip_memories in [None, Some(2)] {
            let cheap = scaled_lib(0.25);
            let solo = assign(
                &spec,
                &s,
                &cheap,
                &AllocOptions {
                    on_chip_memories,
                    bound: BoundKind::Solo,
                    ..AllocOptions::default()
                },
            )
            .unwrap();
            let pairwise = assign(
                &spec,
                &s,
                &cheap,
                &AllocOptions {
                    on_chip_memories,
                    bound: BoundKind::Pairwise,
                    ..AllocOptions::default()
                },
            )
            .unwrap();
            assert_eq!(solo, pairwise, "k={on_chip_memories:?}");
        }
    }
}
