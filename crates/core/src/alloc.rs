//! Memory allocation and signal-to-memory assignment (§4.6, Table 4).
//!
//! Given the bandwidth constraints from [`crate::scbd`] (which accesses
//! overlap in time), this stage chooses the number and type of memories
//! and assigns every basic group to one of them, minimizing a weighted
//! area/power cost with the technology models of [`memx_memlib`]:
//!
//! * groups whose accesses overlap force multi-port memories when they
//!   share one (or must be split over several);
//! * storing narrow groups in wide memories wastes cell area
//!   ("bitwidth waste");
//! * splitting on-chip storage over more memories lowers energy per
//!   access (smaller arrays) but pays per-module overhead area — the
//!   Table 4 trade-off.
//!
//! The on-chip assignment is exact branch-and-bound with canonical
//! partition enumeration and a greedy incumbent; the off-chip side (few
//! groups) is enumerated exhaustively.

use std::collections::HashMap;

use memx_ir::{AppSpec, BasicGroupId, Placement};
use memx_memlib::{timing, CostBreakdown, MemLibrary, OffChipSelection, OnChipSpec};

use crate::scbd::ScbdResult;
use crate::ExploreError;

/// Options steering allocation and assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocOptions {
    /// Exact number of on-chip memories to allocate; `None` sweeps all
    /// counts and keeps the cheapest (by the scalarized cost).
    pub on_chip_memories: Option<u32>,
    /// Weight of on-chip area \[per mm²\] in the scalarized cost.
    pub area_weight: f64,
    /// Weight of total power \[per mW\] in the scalarized cost.
    pub power_weight: f64,
    /// Largest port count the on-chip module generator offers.
    pub max_on_chip_ports: u32,
    /// Branch-and-bound node budget before falling back to the best
    /// incumbent found so far.
    pub node_limit: u64,
}

impl Default for AllocOptions {
    fn default() -> Self {
        AllocOptions {
            on_chip_memories: None,
            area_weight: 1.0,
            power_weight: 1.0,
            max_on_chip_ports: 4,
            node_limit: 2_000_000,
        }
    }
}

/// Where an allocated memory lives.
#[derive(Debug, Clone, PartialEq)]
pub enum MemoryKind {
    /// A generated on-chip SRAM module.
    OnChip,
    /// An off-chip DRAM configuration from the part catalog.
    OffChip(OffChipSelection),
}

/// One allocated memory with its assigned basic groups.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryInstance {
    /// Assigned groups.
    pub groups: Vec<BasicGroupId>,
    /// Total words (sum over groups).
    pub words: u64,
    /// Word width in bits (maximum over groups — narrower groups waste
    /// the upper bits).
    pub width: u32,
    /// Ports provisioned (from overlap analysis and group minimums).
    pub ports: u32,
    /// On-chip module or off-chip part configuration.
    pub kind: MemoryKind,
    /// This memory's contribution to the organization cost.
    pub cost: CostBreakdown,
}

/// A complete memory organization with its cost — the feedback the whole
/// methodology revolves around.
#[derive(Debug, Clone, PartialEq)]
pub struct Organization {
    /// All allocated memories (on-chip first).
    pub memories: Vec<MemoryInstance>,
    /// Total cost (the paper's three figures).
    pub cost: CostBreakdown,
}

impl Organization {
    /// Number of on-chip memories.
    pub fn on_chip_count(&self) -> usize {
        self.memories
            .iter()
            .filter(|m| matches!(m.kind, MemoryKind::OnChip))
            .count()
    }

    /// Number of off-chip memories.
    pub fn off_chip_count(&self) -> usize {
        self.memories.len() - self.on_chip_count()
    }

    /// Maximum port count over the off-chip memories (Table 2's "a
    /// two-port off-chip memory is needed").
    pub fn max_off_chip_ports(&self) -> u32 {
        self.memories
            .iter()
            .filter(|m| matches!(m.kind, MemoryKind::OffChip(_)))
            .map(|m| m.ports)
            .max()
            .unwrap_or(0)
    }
}

/// Weighted random/burst access traffic of one group.
#[derive(Debug, Clone, Copy, Default)]
struct Traffic {
    random: f64,
    burst: f64,
}

impl Traffic {
    fn total(&self) -> f64 {
        self.random + self.burst
    }

    /// Energy-equivalent access count: bursts are discounted.
    fn energy_accesses(&self) -> f64 {
        self.random + self.burst * timing::OFF_CHIP_BURST_ENERGY_FACTOR
    }
}

fn group_traffic(spec: &AppSpec) -> Vec<Traffic> {
    let mut traffic = vec![Traffic::default(); spec.basic_groups().len()];
    for nest in spec.loop_nests() {
        let it = nest.iterations() as f64;
        for a in nest.accesses() {
            let t = &mut traffic[a.group().index()];
            if a.is_burst() {
                t.burst += a.weight() * it;
            } else {
                t.random += a.weight() * it;
            }
        }
    }
    traffic
}

/// Per-slot access-count table for fast port-requirement queries over
/// group subsets (bitmask-indexed, memoized).
struct PortOracle {
    /// Each entry: (group index, simultaneous accesses) per busy cycle.
    slots: Vec<Vec<(usize, u32)>>,
    min_ports: Vec<u32>,
    cache: HashMap<u64, u32>,
}

impl PortOracle {
    fn new(spec: &AppSpec, scbd: &ScbdResult) -> Self {
        let mut slots = Vec::new();
        for body in &scbd.bodies {
            for slot in &body.occupancy {
                if slot.len() < 2 {
                    // A single occupant can never force multiple ports
                    // by overlap (group minimums are handled separately).
                    continue;
                }
                let mut counts: HashMap<usize, u32> = HashMap::new();
                for o in slot {
                    *counts.entry(o.group.index()).or_insert(0) += 1;
                }
                let mut entry: Vec<(usize, u32)> = counts.into_iter().collect();
                entry.sort_unstable();
                slots.push(entry);
            }
        }
        slots.sort();
        slots.dedup();
        PortOracle {
            slots,
            min_ports: spec.basic_groups().iter().map(|g| g.min_ports()).collect(),
            cache: HashMap::new(),
        }
    }

    /// Ports required by a memory storing exactly the groups in `mask`.
    fn required(&mut self, mask: u64) -> u32 {
        if let Some(&p) = self.cache.get(&mask) {
            return p;
        }
        let mut ports = 1u32;
        for (i, &mp) in self.min_ports.iter().enumerate() {
            if mask & (1 << i) != 0 {
                ports = ports.max(mp);
            }
        }
        for slot in &self.slots {
            let overlap: u32 = slot
                .iter()
                .filter(|(g, _)| mask & (1 << *g) != 0)
                .map(|&(_, c)| c)
                .sum();
            ports = ports.max(overlap);
        }
        self.cache.insert(mask, ports);
        ports
    }
}

/// Allocates memories and assigns every accessed basic group.
///
/// Groups without any access are treated as foreground (scalar-level)
/// data and skipped, as the paper's pruning step prescribes.
///
/// # Errors
///
/// Returns [`ExploreError::NoFeasibleAssignment`] when the bandwidth
/// constraints cannot be met (e.g. off-chip overlap needing more than
/// two ports), and [`ExploreError::Part`] if no off-chip part covers a
/// group.
pub fn assign(
    spec: &AppSpec,
    scbd: &ScbdResult,
    lib: &MemLibrary,
    options: &AllocOptions,
) -> Result<Organization, ExploreError> {
    let traffic = group_traffic(spec);
    let time_s = spec.real_time_seconds();
    let mut oracle = PortOracle::new(spec, scbd);

    let mut off_groups = Vec::new();
    let mut on_groups = Vec::new();
    for g in spec.basic_groups() {
        if traffic[g.id().index()].total() == 0.0 {
            continue; // foreground data
        }
        match g.placement() {
            Placement::OffChip => off_groups.push(g.id()),
            // `Any` groups are small working arrays; on-chip storage
            // dominates them on both power and latency, so the
            // assignment considers them on-chip candidates.
            Placement::OnChip | Placement::Any => on_groups.push(g.id()),
        }
    }
    if on_groups.len() > 60 {
        return Err(ExploreError::NoFeasibleAssignment {
            reason: format!(
                "{} on-chip groups exceed the 60-group assignment limit",
                on_groups.len()
            ),
        });
    }

    // --- Off-chip side: exhaustive partition enumeration. ---------------
    let off_memories = assign_off_chip(spec, &traffic, &mut oracle, lib, &off_groups, time_s)?;

    // --- On-chip side: branch-and-bound per allocation size. ------------
    if on_groups.is_empty() {
        // A purely off-chip application (or one whose on-chip data is
        // all foreground): nothing to allocate on chip.
        if let Some(k) = options.on_chip_memories {
            if k > 0 {
                return Err(ExploreError::NoFeasibleAssignment {
                    reason: format!("{k} on-chip memories requested but no on-chip groups exist"),
                });
            }
        }
        let cost = off_memories.iter().map(|m| m.cost).sum();
        return Ok(Organization {
            memories: off_memories,
            cost,
        });
    }
    let counts: Vec<u32> = match options.on_chip_memories {
        Some(k) => vec![k],
        None => (1..=on_groups.len() as u32).collect(),
    };
    let mut best: Option<(f64, Vec<MemoryInstance>)> = None;
    for k in counts {
        if k == 0 || k as usize > on_groups.len() {
            continue;
        }
        if let Some(mems) = assign_on_chip(
            spec,
            &traffic,
            &mut oracle,
            lib,
            &on_groups,
            k,
            time_s,
            options,
        ) {
            let cost: CostBreakdown = mems.iter().map(|m| m.cost).sum();
            let scalar = cost.scalar(options.area_weight, options.power_weight);
            if best.as_ref().map(|(s, _)| scalar < *s).unwrap_or(true) {
                best = Some((scalar, mems));
            }
        }
    }
    let (_, mut memories) = best.ok_or_else(|| ExploreError::NoFeasibleAssignment {
        reason: match options.on_chip_memories {
            Some(k) => format!("no feasible on-chip assignment with {k} memories"),
            None => "no feasible on-chip assignment".to_owned(),
        },
    })?;

    memories.extend(off_memories);
    let cost = memories.iter().map(|m| m.cost).sum();
    Ok(Organization { memories, cost })
}

/// Builds the cheapest off-chip memory set by enumerating partitions of
/// the (few) off-chip groups.
fn assign_off_chip(
    spec: &AppSpec,
    traffic: &[Traffic],
    oracle: &mut PortOracle,
    lib: &MemLibrary,
    groups: &[BasicGroupId],
    time_s: f64,
) -> Result<Vec<MemoryInstance>, ExploreError> {
    if groups.is_empty() {
        return Ok(Vec::new());
    }
    let partitions = enumerate_partitions(groups.len());
    let mut best: Option<(f64, Vec<MemoryInstance>)> = None;
    'part: for partition in &partitions {
        let mut mems = Vec::new();
        let mut power = 0.0;
        for block in partition {
            let members: Vec<BasicGroupId> = block.iter().map(|&i| groups[i]).collect();
            let mask: u64 = members.iter().map(|g| 1u64 << g.index()).sum();
            let ports = oracle.required(mask);
            if ports > 2 {
                continue 'part; // DRAM systems offer at most dual banks
            }
            let words: u64 = members.iter().map(|&g| spec.group(g).words()).sum();
            let width = members
                .iter()
                .map(|&g| spec.group(g).bitwidth())
                .max()
                .expect("block not empty");
            let t: Traffic = members.iter().fold(Traffic::default(), |acc, &g| Traffic {
                random: acc.random + traffic[g.index()].random,
                burst: acc.burst + traffic[g.index()].burst,
            });
            let rate_energy = t.energy_accesses() / time_s;
            let sel = lib.off_chip().select(words, width, ports, rate_energy)?;
            let mw = sel.static_mw() + sel.energy_pj_per_access() * rate_energy / 1e9;
            power += mw;
            mems.push(MemoryInstance {
                groups: members,
                words,
                width,
                ports,
                cost: CostBreakdown::new(0.0, 0.0, mw),
                kind: MemoryKind::OffChip(sel),
            });
        }
        if best.as_ref().map(|(p, _)| power < *p).unwrap_or(true) {
            best = Some((power, mems));
        }
    }
    best.map(|(_, mems)| mems)
        .ok_or_else(|| ExploreError::NoFeasibleAssignment {
            reason: "off-chip groups overlap beyond dual-port bandwidth".to_owned(),
        })
}

/// All set partitions of `{0..n}` (n is small: off-chip groups only).
fn enumerate_partitions(n: usize) -> Vec<Vec<Vec<usize>>> {
    let mut result = Vec::new();
    let mut current: Vec<Vec<usize>> = Vec::new();
    fn recurse(i: usize, n: usize, current: &mut Vec<Vec<usize>>, out: &mut Vec<Vec<Vec<usize>>>) {
        if i == n {
            out.push(current.clone());
            return;
        }
        for b in 0..current.len() {
            current[b].push(i);
            recurse(i + 1, n, current, out);
            current[b].pop();
        }
        current.push(vec![i]);
        recurse(i + 1, n, current, out);
        current.pop();
    }
    recurse(0, n, &mut current, &mut result);
    result
}

/// Cost of one on-chip memory holding `members`.
fn on_chip_memory(
    spec: &AppSpec,
    traffic: &[Traffic],
    lib: &MemLibrary,
    members: &[BasicGroupId],
    ports: u32,
    time_s: f64,
) -> MemoryInstance {
    let words: u64 = members.iter().map(|&g| spec.group(g).words()).sum();
    let width = members
        .iter()
        .map(|&g| spec.group(g).bitwidth())
        .max()
        .expect("memory not empty");
    let module = OnChipSpec::new(words, width, ports);
    let area = lib.on_chip().area_mm2(&module);
    let energy = lib.on_chip().energy_pj(&module);
    let accesses: f64 = members.iter().map(|&g| traffic[g.index()].total()).sum();
    let mw = energy * accesses / time_s / 1e9;
    MemoryInstance {
        groups: members.to_vec(),
        words,
        width,
        ports,
        kind: MemoryKind::OnChip,
        cost: CostBreakdown::new(area, mw, 0.0),
    }
}

/// Branch-and-bound assignment of `groups` into exactly `k` on-chip
/// memories. Returns `None` when infeasible under the port limit.
#[allow(clippy::too_many_arguments)]
fn assign_on_chip(
    spec: &AppSpec,
    traffic: &[Traffic],
    oracle: &mut PortOracle,
    lib: &MemLibrary,
    groups: &[BasicGroupId],
    k: u32,
    time_s: f64,
    options: &AllocOptions,
) -> Option<Vec<MemoryInstance>> {
    let k = k as usize;
    if groups.is_empty() || k > groups.len() {
        return None;
    }
    // Hardest-first ordering: most-accessed groups first.
    let mut order: Vec<BasicGroupId> = groups.to_vec();
    order.sort_by(|a, b| {
        traffic[b.index()]
            .total()
            .partial_cmp(&traffic[a.index()].total())
            .expect("traffic is finite")
            .then(a.cmp(b))
    });

    // Per-group lower bound on cost if stored alone in a 1-port module
    // (energy and cell area are monotone in words/width/ports).
    let solo_lb: Vec<f64> = order
        .iter()
        .map(|&g| {
            let grp = spec.group(g);
            let module = OnChipSpec::new(grp.words(), grp.bitwidth(), 1);
            let energy = lib.on_chip().energy_pj(&module);
            let cells = memx_memlib::calibration::ON_CHIP_AREA_PER_BIT_MM2 * grp.bits() as f64;
            let mw = energy * traffic[g.index()].total() / time_s / 1e9;
            cells * options.area_weight + mw * options.power_weight
        })
        .collect();
    let suffix_lb: Vec<f64> = {
        let mut s = vec![0.0; order.len() + 1];
        for i in (0..order.len()).rev() {
            s[i] = s[i + 1] + solo_lb[i];
        }
        s
    };

    struct Search<'a> {
        spec: &'a AppSpec,
        traffic: &'a [Traffic],
        lib: &'a MemLibrary,
        order: &'a [BasicGroupId],
        suffix_lb: &'a [f64],
        k: usize,
        time_s: f64,
        options: &'a AllocOptions,
        best_scalar: f64,
        best: Option<Vec<Vec<BasicGroupId>>>,
        nodes: u64,
    }

    impl Search<'_> {
        fn memory_scalar(&self, oracle: &mut PortOracle, members: &[BasicGroupId]) -> Option<f64> {
            let mask: u64 = members.iter().map(|g| 1u64 << g.index()).sum();
            let ports = oracle.required(mask);
            if ports > self.options.max_on_chip_ports {
                return None;
            }
            let mem = on_chip_memory(
                self.spec,
                self.traffic,
                self.lib,
                members,
                ports,
                self.time_s,
            );
            Some(
                mem.cost
                    .scalar(self.options.area_weight, self.options.power_weight),
            )
        }

        fn recurse(
            &mut self,
            oracle: &mut PortOracle,
            i: usize,
            bins: &mut Vec<Vec<BasicGroupId>>,
            bin_scalars: &mut Vec<f64>,
            acc: f64,
        ) {
            self.nodes += 1;
            if self.nodes > self.options.node_limit {
                return;
            }
            let remaining = self.order.len() - i;
            if bins.len() + remaining < self.k {
                return; // cannot open enough memories any more
            }
            if acc + self.suffix_lb[i] >= self.best_scalar {
                return;
            }
            if i == self.order.len() {
                if bins.len() == self.k {
                    self.best_scalar = acc;
                    self.best = Some(bins.clone());
                }
                return;
            }
            let g = self.order[i];
            // Try existing memories.
            for b in 0..bins.len() {
                bins[b].push(g);
                if let Some(new_scalar) = self.memory_scalar(oracle, &bins[b]) {
                    let old = bin_scalars[b];
                    let acc2 = acc - old + new_scalar;
                    bin_scalars[b] = new_scalar;
                    self.recurse(oracle, i + 1, bins, bin_scalars, acc2);
                    bin_scalars[b] = old;
                }
                bins[b].pop();
            }
            // Open a new memory (canonical: only one way).
            if bins.len() < self.k {
                bins.push(vec![g]);
                if let Some(scalar) = self.memory_scalar(oracle, &bins[bins.len() - 1]) {
                    bin_scalars.push(scalar);
                    self.recurse(oracle, i + 1, bins, bin_scalars, acc + scalar);
                    bin_scalars.pop();
                }
                bins.pop();
            }
        }
    }

    let mut search = Search {
        spec,
        traffic,
        lib,
        order: &order,
        suffix_lb: &suffix_lb,
        k,
        time_s,
        options,
        best_scalar: f64::INFINITY,
        best: None,
        nodes: 0,
    };

    // Greedy incumbent: the first k groups open their own memories, the
    // rest join wherever the scalar cost grows least. Seeds the bound so
    // the node limit degrades to "greedy + partial improvement" instead
    // of "no answer".
    {
        let mut bins: Vec<Vec<BasicGroupId>> = Vec::new();
        let mut bin_scalars: Vec<f64> = Vec::new();
        let mut feasible = true;
        for (i, &g) in order.iter().enumerate() {
            if i < k {
                bins.push(vec![g]);
                match search.memory_scalar(oracle, &bins[i]) {
                    Some(s) => bin_scalars.push(s),
                    None => {
                        feasible = false;
                        break;
                    }
                }
                continue;
            }
            let mut choice: Option<(usize, f64)> = None;
            for b in 0..bins.len() {
                bins[b].push(g);
                if let Some(s) = search.memory_scalar(oracle, &bins[b]) {
                    let delta = s - bin_scalars[b];
                    if choice.map(|(_, d)| delta < d).unwrap_or(true) {
                        choice = Some((b, delta));
                    }
                }
                bins[b].pop();
            }
            match choice {
                Some((b, _)) => {
                    bins[b].push(g);
                    bin_scalars[b] = search
                        .memory_scalar(oracle, &bins[b])
                        .expect("feasibility just checked");
                }
                None => {
                    feasible = false;
                    break;
                }
            }
        }
        if feasible && bins.len() == k {
            search.best_scalar = bin_scalars.iter().sum();
            search.best = Some(bins);
        }
    }

    let mut bins = Vec::new();
    let mut bin_scalars = Vec::new();
    search.recurse(oracle, 0, &mut bins, &mut bin_scalars, 0.0);
    let bins = search.best?;
    Some(
        bins.iter()
            .map(|members| {
                let mask: u64 = members.iter().map(|g| 1u64 << g.index()).sum();
                let ports = oracle.required(mask);
                on_chip_memory(spec, traffic, lib, members, ports, time_s)
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scbd;
    use memx_ir::{AccessKind, AppSpecBuilder};

    fn lib() -> MemLibrary {
        MemLibrary::default_07um()
    }

    /// Spec with several on-chip groups of differing widths plus one
    /// off-chip frame store.
    fn mixed_spec(budget: u64) -> AppSpec {
        let mut b = AppSpecBuilder::new("t");
        let frame = b
            .basic_group_placed("frame", 1 << 20, 8, Placement::OffChip)
            .unwrap();
        let narrow = b.basic_group("narrow", 512, 2).unwrap();
        let wide = b.basic_group("wide", 512, 20).unwrap();
        let mid = b.basic_group("mid", 256, 8).unwrap();
        let n = b.loop_nest("l", 100_000).unwrap();
        let a0 = b.access(n, frame, AccessKind::Read).unwrap();
        let a1 = b.access(n, narrow, AccessKind::Read).unwrap();
        let a2 = b.access(n, wide, AccessKind::Read).unwrap();
        let a3 = b.access(n, mid, AccessKind::Write).unwrap();
        b.depend(n, a0, a3).unwrap();
        b.depend(n, a1, a3).unwrap();
        b.depend(n, a2, a3).unwrap();
        b.cycle_budget(budget).real_time_seconds(0.1);
        b.build().unwrap()
    }

    #[test]
    fn assignment_produces_positive_costs() {
        let spec = mixed_spec(2_000_000);
        let s = scbd::distribute(&spec).unwrap();
        let org = assign(&spec, &s, &lib(), &AllocOptions::default()).unwrap();
        assert!(org.cost.on_chip_area_mm2 > 0.0);
        assert!(org.cost.on_chip_power_mw > 0.0);
        assert!(org.cost.off_chip_power_mw > 0.0);
        assert_eq!(org.off_chip_count(), 1);
        assert!(org.on_chip_count() >= 1);
    }

    #[test]
    fn fixed_allocation_count_is_respected() {
        let spec = mixed_spec(2_000_000);
        let s = scbd::distribute(&spec).unwrap();
        for k in 1..=3 {
            let options = AllocOptions {
                on_chip_memories: Some(k),
                ..AllocOptions::default()
            };
            let org = assign(&spec, &s, &lib(), &options).unwrap();
            assert_eq!(org.on_chip_count(), k as usize, "k={k}");
        }
    }

    #[test]
    fn more_memories_less_on_chip_power() {
        // Table 4's monotone power column.
        let spec = mixed_spec(2_000_000);
        let s = scbd::distribute(&spec).unwrap();
        let power = |k: u32| {
            let options = AllocOptions {
                on_chip_memories: Some(k),
                ..AllocOptions::default()
            };
            assign(&spec, &s, &lib(), &options)
                .unwrap()
                .cost
                .on_chip_power_mw
        };
        assert!(power(3) <= power(1));
    }

    #[test]
    fn one_memory_wastes_bitwidth() {
        let spec = mixed_spec(2_000_000);
        let s = scbd::distribute(&spec).unwrap();
        let options = AllocOptions {
            on_chip_memories: Some(1),
            ..AllocOptions::default()
        };
        let org = assign(&spec, &s, &lib(), &options).unwrap();
        let on_chip = org
            .memories
            .iter()
            .find(|m| matches!(m.kind, MemoryKind::OnChip))
            .unwrap();
        // The single memory is as wide as the widest group.
        assert_eq!(on_chip.width, 20);
        assert_eq!(on_chip.words, 512 + 512 + 256);
    }

    #[test]
    fn tight_budget_forces_multiport_or_split() {
        // Two parallel reads funnel into one write under a 2-cycle
        // budget: the reads must overlap, so sharing one memory needs
        // two ports while two memories stay single-ported.
        let mut b = AppSpecBuilder::new("t");
        let narrow = b.basic_group("narrow", 512, 2).unwrap();
        let wide = b.basic_group("wide", 512, 20).unwrap();
        let n = b.loop_nest("l", 1000).unwrap();
        let a0 = b.access(n, narrow, AccessKind::Read).unwrap();
        let a1 = b.access(n, wide, AccessKind::Read).unwrap();
        let a2 = b.access(n, narrow, AccessKind::Write).unwrap();
        b.depend(n, a0, a2).unwrap();
        b.depend(n, a1, a2).unwrap();
        b.cycle_budget(2000).real_time_seconds(0.01);
        let spec = b.build().unwrap();
        let s = scbd::distribute(&spec).unwrap();
        let options = AllocOptions {
            on_chip_memories: Some(1),
            ..AllocOptions::default()
        };
        let org = assign(&spec, &s, &lib(), &options).unwrap();
        let on_chip = org
            .memories
            .iter()
            .find(|m| matches!(m.kind, MemoryKind::OnChip))
            .unwrap();
        assert!(on_chip.ports >= 2, "ports = {}", on_chip.ports);
        // Splitting into two memories avoids the multi-port penalty.
        let options2 = AllocOptions {
            on_chip_memories: Some(2),
            ..AllocOptions::default()
        };
        let org2 = assign(&spec, &s, &lib(), &options2).unwrap();
        let max_ports = org2
            .memories
            .iter()
            .filter(|m| matches!(m.kind, MemoryKind::OnChip))
            .map(|m| m.ports)
            .max()
            .unwrap();
        assert_eq!(max_ports, 1);
    }

    #[test]
    fn sweep_finds_a_no_worse_organization_than_any_fixed_k() {
        let spec = mixed_spec(2_000_000);
        let s = scbd::distribute(&spec).unwrap();
        let sweep = assign(&spec, &s, &lib(), &AllocOptions::default()).unwrap();
        let sweep_scalar = sweep.cost.scalar(1.0, 1.0);
        for k in 1..=3 {
            let options = AllocOptions {
                on_chip_memories: Some(k),
                ..AllocOptions::default()
            };
            let fixed = assign(&spec, &s, &lib(), &options).unwrap();
            assert!(sweep_scalar <= fixed.cost.scalar(1.0, 1.0) + 1e-9, "k={k}");
        }
    }

    #[test]
    fn min_ports_respected() {
        let mut b = AppSpecBuilder::new("t");
        let g = b
            .basic_group_full("buf", 5 * 1024, 8, Placement::OnChip, 2)
            .unwrap();
        let n = b.loop_nest("l", 1000).unwrap();
        b.access(n, g, AccessKind::Read).unwrap();
        b.cycle_budget(100_000).real_time_seconds(0.01);
        let spec = b.build().unwrap();
        let s = scbd::distribute(&spec).unwrap();
        let org = assign(&spec, &s, &lib(), &AllocOptions::default()).unwrap();
        assert_eq!(org.memories[0].ports, 2);
    }

    #[test]
    fn partition_enumeration_counts_bell_numbers() {
        assert_eq!(enumerate_partitions(1).len(), 1);
        assert_eq!(enumerate_partitions(2).len(), 2);
        assert_eq!(enumerate_partitions(3).len(), 5);
        assert_eq!(enumerate_partitions(4).len(), 15);
    }

    #[test]
    fn zero_access_groups_are_foreground() {
        let mut b = AppSpecBuilder::new("t");
        let used = b.basic_group("used", 64, 8).unwrap();
        let _unused = b.basic_group("unused", 64, 8).unwrap();
        let n = b.loop_nest("l", 10).unwrap();
        b.access(n, used, AccessKind::Read).unwrap();
        b.cycle_budget(1000);
        let spec = b.build().unwrap();
        let s = scbd::distribute(&spec).unwrap();
        let org = assign(&spec, &s, &lib(), &AllocOptions::default()).unwrap();
        let assigned: usize = org.memories.iter().map(|m| m.groups.len()).sum();
        assert_eq!(assigned, 1);
    }
}
