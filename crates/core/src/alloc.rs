//! Memory allocation and signal-to-memory assignment (§4.6, Table 4).
//!
//! Given the bandwidth constraints from [`crate::scbd`] (which accesses
//! overlap in time), this stage chooses the number and type of memories
//! and assigns every basic group to one of them, minimizing a weighted
//! area/power cost with the technology models of [`memx_memlib`]:
//!
//! * groups whose accesses overlap force multi-port memories when they
//!   share one (or must be split over several);
//! * storing narrow groups in wide memories wastes cell area
//!   ("bitwidth waste");
//! * splitting on-chip storage over more memories lowers energy per
//!   access (smaller arrays) but pays per-module overhead area — the
//!   Table 4 trade-off.
//!
//! The on-chip assignment is exact branch-and-bound with canonical
//! partition enumeration and a greedy incumbent; the off-chip side (few
//! groups) is enumerated exhaustively.
//!
//! # Parallel search
//!
//! The branch-and-bound fans out over worker threads
//! ([`AllocOptions::workers`]): the canonical partition tree is split
//! into a fixed number of prefix subtrees, workers claim subtrees from a
//! shared queue, and the best incumbent value is published through an
//! atomic (`f64` bits in an `AtomicU64`) so whole subtrees whose lower
//! bound cannot beat it are skipped. Three properties make parallel and
//! serial runs return **bit-identical** organizations:
//!
//! 1. each subtree is explored against its own deterministic node
//!    budget and a bound derived only from the (deterministic) greedy
//!    incumbent and a deterministically-chosen *seed subtree* explored
//!    up front — never from timing-dependent cross-thread state;
//! 2. the shared atomic bound is used *only* to skip entire subtrees
//!    whose lower bound strictly exceeds it — a subtree containing a
//!    best-so-far solution can never be skipped, so skipping only
//!    removes subtrees that lose the reduction anyway;
//! 3. subtree results are reduced in canonical depth-first order with
//!    strict improvement, reproducing the serial first-found-minimum
//!    tie-break.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

use memx_ir::{AppSpec, BasicGroupId, Placement};
use memx_memlib::{timing, CostBreakdown, MemLibrary, OffChipSelection, OnChipSpec};

use crate::scbd::ScbdResult;
use crate::ExploreError;

/// How many canonical-prefix subtrees the branch-and-bound splits into.
/// Deliberately a constant (not a function of the worker count) so the
/// per-subtree node budgets — and therefore the search result — do not
/// depend on the machine the search runs on.
const TARGET_SUBTREES: usize = 512;

/// Options steering allocation and assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocOptions {
    /// Exact number of on-chip memories to allocate; `None` sweeps all
    /// counts and keeps the cheapest (by the scalarized cost).
    pub on_chip_memories: Option<u32>,
    /// Weight of on-chip area \[per mm²\] in the scalarized cost.
    pub area_weight: f64,
    /// Weight of total power \[per mW\] in the scalarized cost.
    pub power_weight: f64,
    /// Largest port count the on-chip module generator offers.
    pub max_on_chip_ports: u32,
    /// Branch-and-bound node budget before falling back to the best
    /// incumbent found so far (split evenly over the search subtrees).
    pub node_limit: u64,
    /// Worker threads for the on-chip branch-and-bound: `0` spawns one
    /// per available core, `1` searches on the calling thread. Parallel
    /// and serial runs return bit-identical organizations.
    pub workers: usize,
}

impl Default for AllocOptions {
    fn default() -> Self {
        AllocOptions {
            on_chip_memories: None,
            area_weight: 1.0,
            power_weight: 1.0,
            max_on_chip_ports: 4,
            node_limit: 2_000_000,
            workers: 0,
        }
    }
}

/// Where an allocated memory lives.
#[derive(Debug, Clone, PartialEq)]
pub enum MemoryKind {
    /// A generated on-chip SRAM module.
    OnChip,
    /// An off-chip DRAM configuration from the part catalog.
    OffChip(OffChipSelection),
}

/// One allocated memory with its assigned basic groups.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryInstance {
    /// Assigned groups.
    pub groups: Vec<BasicGroupId>,
    /// Total words (sum over groups).
    pub words: u64,
    /// Word width in bits (maximum over groups — narrower groups waste
    /// the upper bits).
    pub width: u32,
    /// Ports provisioned (from overlap analysis and group minimums).
    pub ports: u32,
    /// On-chip module or off-chip part configuration.
    pub kind: MemoryKind,
    /// This memory's contribution to the organization cost.
    pub cost: CostBreakdown,
}

/// A complete memory organization with its cost — the feedback the whole
/// methodology revolves around.
#[derive(Debug, Clone, PartialEq)]
pub struct Organization {
    /// All allocated memories (on-chip first).
    pub memories: Vec<MemoryInstance>,
    /// Total cost (the paper's three figures).
    pub cost: CostBreakdown,
}

impl Organization {
    /// Number of on-chip memories.
    pub fn on_chip_count(&self) -> usize {
        self.memories
            .iter()
            .filter(|m| matches!(m.kind, MemoryKind::OnChip))
            .count()
    }

    /// Number of off-chip memories.
    pub fn off_chip_count(&self) -> usize {
        self.memories.len() - self.on_chip_count()
    }

    /// Maximum port count over the off-chip memories (Table 2's "a
    /// two-port off-chip memory is needed").
    pub fn max_off_chip_ports(&self) -> u32 {
        self.memories
            .iter()
            .filter(|m| matches!(m.kind, MemoryKind::OffChip(_)))
            .map(|m| m.ports)
            .max()
            .unwrap_or(0)
    }
}

/// Validates scalarization weights: comparing scalar costs built from
/// non-finite or negative weights is meaningless (and NaN used to panic
/// deep inside comparison callbacks).
pub(crate) fn check_cost_weights(area_weight: f64, power_weight: f64) -> Result<(), ExploreError> {
    if area_weight.is_finite()
        && power_weight.is_finite()
        && area_weight >= 0.0
        && power_weight >= 0.0
    {
        Ok(())
    } else {
        Err(ExploreError::BadCostWeights {
            area_weight,
            power_weight,
        })
    }
}

/// Weighted random/burst access traffic of one group.
#[derive(Debug, Clone, Copy, Default)]
struct Traffic {
    random: f64,
    burst: f64,
}

impl Traffic {
    fn total(&self) -> f64 {
        self.random + self.burst
    }

    /// Energy-equivalent access count: bursts are discounted.
    fn energy_accesses(&self) -> f64 {
        self.random + self.burst * timing::OFF_CHIP_BURST_ENERGY_FACTOR
    }
}

fn group_traffic(spec: &AppSpec) -> Vec<Traffic> {
    let mut traffic = vec![Traffic::default(); spec.basic_groups().len()];
    for nest in spec.loop_nests() {
        let it = nest.iterations() as f64;
        for a in nest.accesses() {
            let t = &mut traffic[a.group().index()];
            if a.is_burst() {
                t.burst += a.weight() * it;
            } else {
                t.random += a.weight() * it;
            }
        }
    }
    traffic
}

/// Per-slot access-count table for fast port-requirement queries over
/// group subsets (bitmask-indexed, memoized).
///
/// Cloning is cheap: the slot table is shared behind an [`Arc`] and each
/// clone keeps its own memoization cache, so every branch-and-bound
/// worker thread can query ports without synchronization.
#[derive(Clone)]
struct PortOracle {
    /// Each entry: (group index, simultaneous accesses) per busy cycle.
    slots: Arc<Vec<Vec<(usize, u32)>>>,
    min_ports: Arc<Vec<u32>>,
    cache: HashMap<u64, u32>,
}

impl PortOracle {
    fn new(spec: &AppSpec, scbd: &ScbdResult) -> Self {
        let mut slots = Vec::new();
        for body in &scbd.bodies {
            for slot in body.busy_slots() {
                if slot.occupants.len() < 2 {
                    // A single occupant can never force multiple ports
                    // by overlap (group minimums are handled separately).
                    continue;
                }
                let mut counts: HashMap<usize, u32> = HashMap::new();
                for o in &slot.occupants {
                    *counts.entry(o.group.index()).or_insert(0) += 1;
                }
                let mut entry: Vec<(usize, u32)> = counts.into_iter().collect();
                entry.sort_unstable();
                slots.push(entry);
            }
        }
        slots.sort();
        slots.dedup();
        PortOracle {
            slots: Arc::new(slots),
            min_ports: Arc::new(spec.basic_groups().iter().map(|g| g.min_ports()).collect()),
            cache: HashMap::new(),
        }
    }

    /// Ports required by a memory storing exactly the groups in `mask`.
    fn required(&mut self, mask: u64) -> u32 {
        if let Some(&p) = self.cache.get(&mask) {
            return p;
        }
        let mut ports = 1u32;
        // Only the first 64 groups can appear in a mask (assign rejects
        // accessed groups beyond that); `take` keeps the shift in range.
        for (i, &mp) in self.min_ports.iter().enumerate().take(u64::BITS as usize) {
            if mask & (1 << i) != 0 {
                ports = ports.max(mp);
            }
        }
        for slot in self.slots.iter() {
            let overlap: u32 = slot
                .iter()
                .filter(|(g, _)| mask & (1 << *g) != 0)
                .map(|&(_, c)| c)
                .sum();
            ports = ports.max(overlap);
        }
        self.cache.insert(mask, ports);
        ports
    }
}

/// Allocates memories and assigns every accessed basic group.
///
/// Groups without any access are treated as foreground (scalar-level)
/// data and skipped, as the paper's pruning step prescribes.
///
/// # Errors
///
/// Returns [`ExploreError::NoFeasibleAssignment`] when the bandwidth
/// constraints cannot be met (e.g. off-chip overlap needing more than
/// two ports), [`ExploreError::BadCostWeights`] for non-finite or
/// negative scalarization weights, and [`ExploreError::Part`] if no
/// off-chip part covers a group.
pub fn assign(
    spec: &AppSpec,
    scbd: &ScbdResult,
    lib: &MemLibrary,
    options: &AllocOptions,
) -> Result<Organization, ExploreError> {
    check_cost_weights(options.area_weight, options.power_weight)?;
    let traffic = group_traffic(spec);
    let time_s = spec.real_time_seconds();
    let mut oracle = PortOracle::new(spec, scbd);

    let mut off_groups = Vec::new();
    let mut on_groups = Vec::new();
    for g in spec.basic_groups() {
        if traffic[g.id().index()].total() == 0.0 {
            continue; // foreground data
        }
        match g.placement() {
            Placement::OffChip => off_groups.push(g.id()),
            // `Any` groups are small working arrays; on-chip storage
            // dominates them on both power and latency, so the
            // assignment considers them on-chip candidates.
            Placement::OnChip | Placement::Any => on_groups.push(g.id()),
        }
    }
    if on_groups.len() > 60 {
        return Err(ExploreError::NoFeasibleAssignment {
            reason: format!(
                "{} on-chip groups exceed the 60-group assignment limit",
                on_groups.len()
            ),
        });
    }
    // The partition searches index groups by bit position in a u64 mask,
    // so any *accessed* group must sit below index 64 (unaccessed
    // foreground groups beyond that are fine — they never enter a mask).
    if let Some(g) = off_groups
        .iter()
        .chain(&on_groups)
        .find(|g| g.index() >= u64::BITS as usize)
    {
        return Err(ExploreError::NoFeasibleAssignment {
            reason: format!(
                "accessed group `{}` has index {}, beyond the 64-group mask limit",
                spec.group(*g).name(),
                g.index()
            ),
        });
    }

    // --- Off-chip side: exhaustive partition enumeration. ---------------
    let off_memories = assign_off_chip(spec, &traffic, &mut oracle, lib, &off_groups, time_s)?;

    // --- On-chip side: branch-and-bound per allocation size. ------------
    if on_groups.is_empty() {
        // A purely off-chip application (or one whose on-chip data is
        // all foreground): nothing to allocate on chip.
        if let Some(k) = options.on_chip_memories {
            if k > 0 {
                return Err(ExploreError::NoFeasibleAssignment {
                    reason: format!("{k} on-chip memories requested but no on-chip groups exist"),
                });
            }
        }
        let cost = off_memories.iter().map(|m| m.cost).sum();
        return Ok(Organization {
            memories: off_memories,
            cost,
        });
    }
    let counts: Vec<u32> = match options.on_chip_memories {
        Some(k) => vec![k],
        None => (1..=on_groups.len() as u32).collect(),
    };
    let mut best: Option<(f64, Vec<MemoryInstance>)> = None;
    for k in counts {
        if k == 0 || k as usize > on_groups.len() {
            continue;
        }
        if let Some(mems) = assign_on_chip(
            spec,
            &traffic,
            &mut oracle,
            lib,
            &on_groups,
            k,
            time_s,
            options,
        ) {
            let cost: CostBreakdown = mems.iter().map(|m| m.cost).sum();
            let scalar = cost.scalar(options.area_weight, options.power_weight);
            if best.as_ref().map(|(s, _)| scalar < *s).unwrap_or(true) {
                best = Some((scalar, mems));
            }
        }
    }
    let (_, mut memories) = best.ok_or_else(|| ExploreError::NoFeasibleAssignment {
        reason: match options.on_chip_memories {
            Some(k) => format!("no feasible on-chip assignment with {k} memories"),
            None => "no feasible on-chip assignment".to_owned(),
        },
    })?;

    memories.extend(off_memories);
    let cost = memories.iter().map(|m| m.cost).sum();
    Ok(Organization { memories, cost })
}

/// Builds the cheapest off-chip memory set by enumerating partitions of
/// the (few) off-chip groups.
fn assign_off_chip(
    spec: &AppSpec,
    traffic: &[Traffic],
    oracle: &mut PortOracle,
    lib: &MemLibrary,
    groups: &[BasicGroupId],
    time_s: f64,
) -> Result<Vec<MemoryInstance>, ExploreError> {
    if groups.is_empty() {
        return Ok(Vec::new());
    }
    let partitions = enumerate_partitions(groups.len());
    let mut best: Option<(f64, Vec<MemoryInstance>)> = None;
    'part: for partition in &partitions {
        let mut mems = Vec::new();
        let mut power = 0.0;
        for block in partition {
            let members: Vec<BasicGroupId> = block.iter().map(|&i| groups[i]).collect();
            let mask: u64 = members.iter().map(|g| 1u64 << g.index()).sum();
            let ports = oracle.required(mask);
            if ports > 2 {
                continue 'part; // DRAM systems offer at most dual banks
            }
            let words: u64 = members.iter().map(|&g| spec.group(g).words()).sum();
            let width = members
                .iter()
                .map(|&g| spec.group(g).bitwidth())
                .max()
                .expect("block not empty");
            let t: Traffic = members.iter().fold(Traffic::default(), |acc, &g| Traffic {
                random: acc.random + traffic[g.index()].random,
                burst: acc.burst + traffic[g.index()].burst,
            });
            let rate_energy = t.energy_accesses() / time_s;
            let sel = lib.off_chip().select(words, width, ports, rate_energy)?;
            let mw = sel.static_mw() + sel.energy_pj_per_access() * rate_energy / 1e9;
            power += mw;
            mems.push(MemoryInstance {
                groups: members,
                words,
                width,
                ports,
                cost: CostBreakdown::new(0.0, 0.0, mw),
                kind: MemoryKind::OffChip(sel),
            });
        }
        if best.as_ref().map(|(p, _)| power < *p).unwrap_or(true) {
            best = Some((power, mems));
        }
    }
    best.map(|(_, mems)| mems)
        .ok_or_else(|| ExploreError::NoFeasibleAssignment {
            reason: "off-chip groups overlap beyond dual-port bandwidth".to_owned(),
        })
}

/// All set partitions of `{0..n}` (n is small: off-chip groups only).
fn enumerate_partitions(n: usize) -> Vec<Vec<Vec<usize>>> {
    let mut result = Vec::new();
    let mut current: Vec<Vec<usize>> = Vec::new();
    fn recurse(i: usize, n: usize, current: &mut Vec<Vec<usize>>, out: &mut Vec<Vec<Vec<usize>>>) {
        if i == n {
            out.push(current.clone());
            return;
        }
        for b in 0..current.len() {
            current[b].push(i);
            recurse(i + 1, n, current, out);
            current[b].pop();
        }
        current.push(vec![i]);
        recurse(i + 1, n, current, out);
        current.pop();
    }
    recurse(0, n, &mut current, &mut result);
    result
}

/// Cost of one on-chip memory holding `members`.
fn on_chip_memory(
    spec: &AppSpec,
    traffic: &[Traffic],
    lib: &MemLibrary,
    members: &[BasicGroupId],
    ports: u32,
    time_s: f64,
) -> MemoryInstance {
    let words: u64 = members.iter().map(|&g| spec.group(g).words()).sum();
    let width = members
        .iter()
        .map(|&g| spec.group(g).bitwidth())
        .max()
        .expect("memory not empty");
    let module = OnChipSpec::new(words, width, ports);
    let area = lib.on_chip().area_mm2(&module);
    let energy = lib.on_chip().energy_pj(&module);
    let accesses: f64 = members.iter().map(|&g| traffic[g.index()].total()).sum();
    let mw = energy * accesses / time_s / 1e9;
    MemoryInstance {
        groups: members.to_vec(),
        words,
        width,
        ports,
        kind: MemoryKind::OnChip,
        cost: CostBreakdown::new(area, mw, 0.0),
    }
}

/// Shared, read-only context of one on-chip branch-and-bound run.
struct SearchCtx<'a> {
    spec: &'a AppSpec,
    traffic: &'a [Traffic],
    lib: &'a MemLibrary,
    order: &'a [BasicGroupId],
    suffix_lb: &'a [f64],
    k: usize,
    time_s: f64,
    options: &'a AllocOptions,
}

impl SearchCtx<'_> {
    /// Scalar cost of one memory holding `members`, or `None` when its
    /// port requirement exceeds the module generator's limit.
    fn memory_scalar(&self, oracle: &mut PortOracle, members: &[BasicGroupId]) -> Option<f64> {
        let mask: u64 = members.iter().map(|g| 1u64 << g.index()).sum();
        let ports = oracle.required(mask);
        if ports > self.options.max_on_chip_ports {
            return None;
        }
        let mem = on_chip_memory(
            self.spec,
            self.traffic,
            self.lib,
            members,
            ports,
            self.time_s,
        );
        Some(
            mem.cost
                .scalar(self.options.area_weight, self.options.power_weight),
        )
    }
}

/// A partial canonical assignment of the first `depth` groups.
#[derive(Clone)]
struct Prefix {
    bins: Vec<Vec<BasicGroupId>>,
    bin_scalars: Vec<f64>,
    acc: f64,
    depth: usize,
}

/// Depth-first exploration of one subtree with a private node budget
/// and a bound seeded from the greedy incumbent only (see module docs).
struct Dfs<'a> {
    ctx: &'a SearchCtx<'a>,
    best_scalar: f64,
    best: Option<Vec<Vec<BasicGroupId>>>,
    nodes: u64,
    node_limit: u64,
}

impl Dfs<'_> {
    fn recurse(
        &mut self,
        oracle: &mut PortOracle,
        i: usize,
        bins: &mut Vec<Vec<BasicGroupId>>,
        bin_scalars: &mut Vec<f64>,
        acc: f64,
    ) {
        self.nodes += 1;
        if self.nodes > self.node_limit {
            return;
        }
        let remaining = self.ctx.order.len() - i;
        if bins.len() + remaining < self.ctx.k {
            return; // cannot open enough memories any more
        }
        if acc + self.ctx.suffix_lb[i] >= self.best_scalar {
            return;
        }
        if i == self.ctx.order.len() {
            if bins.len() == self.ctx.k {
                self.best_scalar = acc;
                self.best = Some(bins.clone());
            }
            return;
        }
        let g = self.ctx.order[i];
        // Try existing memories.
        for b in 0..bins.len() {
            bins[b].push(g);
            if let Some(new_scalar) = self.ctx.memory_scalar(oracle, &bins[b]) {
                let old = bin_scalars[b];
                let acc2 = acc - old + new_scalar;
                bin_scalars[b] = new_scalar;
                self.recurse(oracle, i + 1, bins, bin_scalars, acc2);
                bin_scalars[b] = old;
            }
            bins[b].pop();
        }
        // Open a new memory (canonical: only one way).
        if bins.len() < self.ctx.k {
            bins.push(vec![g]);
            if let Some(scalar) = self.ctx.memory_scalar(oracle, &bins[bins.len() - 1]) {
                bin_scalars.push(scalar);
                self.recurse(oracle, i + 1, bins, bin_scalars, acc + scalar);
                bin_scalars.pop();
            }
            bins.pop();
        }
    }
}

/// Expands the canonical partition tree breadth-first (children in
/// depth-first candidate order, so the resulting prefix sequence is the
/// serial DFS visiting order) until at least [`TARGET_SUBTREES`]
/// prefixes exist or every group is assigned.
fn expand_prefixes(ctx: &SearchCtx<'_>, oracle: &mut PortOracle, greedy_bound: f64) -> Vec<Prefix> {
    let n = ctx.order.len();
    let mut level = vec![Prefix {
        bins: Vec::new(),
        bin_scalars: Vec::new(),
        acc: 0.0,
        depth: 0,
    }];
    while level.len() < TARGET_SUBTREES && level.iter().any(|p| p.depth < n) {
        let mut next: Vec<Prefix> = Vec::with_capacity(level.len() * 2);
        for p in &level {
            if p.depth == n {
                next.push(p.clone());
                continue;
            }
            let g = ctx.order[p.depth];
            let remaining_after = n - p.depth - 1;
            let mut push_child = |bins: Vec<Vec<BasicGroupId>>, bin_scalars: Vec<f64>, acc: f64| {
                if bins.len() + remaining_after < ctx.k {
                    return; // cannot open enough memories any more
                }
                if acc + ctx.suffix_lb[p.depth + 1] >= greedy_bound {
                    return; // cannot strictly beat the greedy incumbent
                }
                next.push(Prefix {
                    bins,
                    bin_scalars,
                    acc,
                    depth: p.depth + 1,
                });
            };
            // Children in DFS candidate order: existing bins, then a
            // fresh bin.
            for b in 0..p.bins.len() {
                let mut bins = p.bins.clone();
                bins[b].push(g);
                if let Some(scalar) = ctx.memory_scalar(oracle, &bins[b]) {
                    let mut bin_scalars = p.bin_scalars.clone();
                    let acc = p.acc - bin_scalars[b] + scalar;
                    bin_scalars[b] = scalar;
                    push_child(bins, bin_scalars, acc);
                }
            }
            if p.bins.len() < ctx.k {
                let mut bins = p.bins.clone();
                bins.push(vec![g]);
                if let Some(scalar) = ctx.memory_scalar(oracle, bins.last().expect("just pushed")) {
                    let mut bin_scalars = p.bin_scalars.clone();
                    bin_scalars.push(scalar);
                    push_child(bins, bin_scalars, p.acc + scalar);
                }
            }
        }
        if next.is_empty() {
            return next; // every branch infeasible or bounded out
        }
        level = next;
    }
    level
}

/// Outcome of one explored subtree: the best strict improvement over
/// the greedy incumbent found inside it, if any.
struct SubtreeResult {
    val: f64,
    bins: Option<Vec<Vec<BasicGroupId>>>,
}

/// Lock-free monotone minimum over non-negative `f64`s (bit order and
/// value order coincide for non-negative IEEE-754 doubles, but compare
/// as floats anyway for clarity).
fn fetch_min_f64(atomic: &AtomicU64, val: f64) {
    let mut cur = atomic.load(Ordering::Relaxed);
    while val < f64::from_bits(cur) {
        match atomic.compare_exchange_weak(cur, val.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => break,
            Err(c) => cur = c,
        }
    }
}

/// Branch-and-bound assignment of `groups` into exactly `k` on-chip
/// memories, fanned out over [`AllocOptions::workers`] threads. Returns
/// `None` when infeasible under the port limit. Deterministic: the
/// result is bit-identical for every worker count (see module docs).
#[allow(clippy::too_many_arguments)]
fn assign_on_chip(
    spec: &AppSpec,
    traffic: &[Traffic],
    oracle: &mut PortOracle,
    lib: &MemLibrary,
    groups: &[BasicGroupId],
    k: u32,
    time_s: f64,
    options: &AllocOptions,
) -> Option<Vec<MemoryInstance>> {
    let k = k as usize;
    if groups.is_empty() || k > groups.len() {
        return None;
    }
    // Hardest-first ordering: most-accessed groups first.
    let mut order: Vec<BasicGroupId> = groups.to_vec();
    order.sort_by(|a, b| {
        traffic[b.index()]
            .total()
            .total_cmp(&traffic[a.index()].total())
            .then(a.cmp(b))
    });

    // Per-group lower bound on cost if stored alone in a 1-port module
    // (energy and cell area are monotone in words/width/ports).
    let solo_lb: Vec<f64> = order
        .iter()
        .map(|&g| {
            let grp = spec.group(g);
            let module = OnChipSpec::new(grp.words(), grp.bitwidth(), 1);
            let energy = lib.on_chip().energy_pj(&module);
            let cells = memx_memlib::calibration::ON_CHIP_AREA_PER_BIT_MM2 * grp.bits() as f64;
            let mw = energy * traffic[g.index()].total() / time_s / 1e9;
            cells * options.area_weight + mw * options.power_weight
        })
        .collect();
    let suffix_lb: Vec<f64> = {
        let mut s = vec![0.0; order.len() + 1];
        for i in (0..order.len()).rev() {
            s[i] = s[i + 1] + solo_lb[i];
        }
        s
    };

    let ctx = SearchCtx {
        spec,
        traffic,
        lib,
        order: &order,
        suffix_lb: &suffix_lb,
        k,
        time_s,
        options,
    };

    // Greedy incumbent: the first k groups open their own memories, the
    // rest join wherever the scalar cost grows least. Seeds the bound so
    // the node limit degrades to "greedy + partial improvement" instead
    // of "no answer".
    let greedy: Option<(f64, Vec<Vec<BasicGroupId>>)> = {
        let mut bins: Vec<Vec<BasicGroupId>> = Vec::new();
        let mut bin_scalars: Vec<f64> = Vec::new();
        let mut feasible = true;
        for (i, &g) in order.iter().enumerate() {
            if i < k {
                bins.push(vec![g]);
                match ctx.memory_scalar(oracle, &bins[i]) {
                    Some(s) => bin_scalars.push(s),
                    None => {
                        feasible = false;
                        break;
                    }
                }
                continue;
            }
            let mut choice: Option<(usize, f64)> = None;
            for b in 0..bins.len() {
                bins[b].push(g);
                if let Some(s) = ctx.memory_scalar(oracle, &bins[b]) {
                    let delta = s - bin_scalars[b];
                    if choice.map(|(_, d)| delta < d).unwrap_or(true) {
                        choice = Some((b, delta));
                    }
                }
                bins[b].pop();
            }
            match choice {
                Some((b, _)) => {
                    bins[b].push(g);
                    bin_scalars[b] = ctx
                        .memory_scalar(oracle, &bins[b])
                        .expect("feasibility just checked");
                }
                None => {
                    feasible = false;
                    break;
                }
            }
        }
        (feasible && bins.len() == k).then(|| (bin_scalars.iter().sum(), bins))
    };
    let greedy_val = greedy.as_ref().map(|(v, _)| *v).unwrap_or(f64::INFINITY);

    // Split the canonical tree into deterministic subtrees.
    let prefixes = expand_prefixes(&ctx, oracle, greedy_val);

    // Explore one subtree with a private node budget against a fixed
    // bound. The outcome is a pure function of (prefix, bound_val,
    // budget), so determinism only requires those to be chosen
    // deterministically. Returns the result and the nodes consumed.
    let explore_one = |oracle: &mut PortOracle,
                       p: &Prefix,
                       bound_val: f64,
                       budget: u64|
     -> (SubtreeResult, u64) {
        if p.depth == ctx.order.len() {
            // The whole tree fit into the prefix expansion: the
            // prefix *is* a complete assignment.
            if p.bins.len() == k && p.acc < bound_val {
                return (
                    SubtreeResult {
                        val: p.acc,
                        bins: Some(p.bins.clone()),
                    },
                    1,
                );
            }
            return (
                SubtreeResult {
                    val: f64::INFINITY,
                    bins: None,
                },
                1,
            );
        }
        let mut dfs = Dfs {
            ctx: &ctx,
            best_scalar: bound_val,
            best: None,
            nodes: 0,
            node_limit: budget,
        };
        let mut bins = p.bins.clone();
        let mut bin_scalars = p.bin_scalars.clone();
        dfs.recurse(oracle, p.depth, &mut bins, &mut bin_scalars, p.acc);
        (
            SubtreeResult {
                val: if dfs.best.is_some() {
                    dfs.best_scalar
                } else {
                    f64::INFINITY
                },
                bins: dfs.best,
            },
            dfs.nodes,
        )
    };

    // Seed phase: the subtree with the smallest lower bound (earliest on
    // ties) is explored first, alone, with the *full* node budget — it is
    // the most likely home of the optimum. Its result tightens the bound
    // every other subtree starts from — deterministically, since the
    // choice of seed and its search depend on nothing timing-related.
    // This recovers most of the pruning power a serial DFS gets from its
    // evolving incumbent.
    let lower_bound = |p: &Prefix| p.acc + ctx.suffix_lb[p.depth];
    let seed_idx = prefixes
        .iter()
        .enumerate()
        .min_by(|(i, a), (j, b)| lower_bound(a).total_cmp(&lower_bound(b)).then(i.cmp(j)))
        .map(|(i, _)| i);
    let (seed_res, seed_nodes) = match seed_idx {
        Some(i) => {
            let (r, n) = explore_one(oracle, &prefixes[i], greedy_val, options.node_limit);
            (Some(r), n)
        }
        None => (None, 0),
    };
    let seed_val = match &seed_res {
        Some(r) if r.bins.is_some() => r.val,
        _ => greedy_val,
    };

    // The seed's consumption is charged against the global node limit;
    // only the remainder is split over the other subtrees. When the
    // search is exact the seed finishes cheaply and the others keep a
    // full share; when the limit is exhausted the others degrade to
    // zero-budget probes instead of doubling the total node spend. The
    // split is a pure function of the (deterministic) seed search, so
    // results stay independent of worker count and thread timing.
    let node_budget = options.node_limit.saturating_sub(seed_nodes) / prefixes.len().max(1) as u64;

    // Fan the remaining subtrees over the workers. The published atomic
    // bound only ever *skips* whole subtrees (never steers a running
    // search): a subtree that could win the deterministic reduction has
    // a lower bound at most the final minimum and is therefore never
    // skipped, so the result is independent of thread timing.
    let bound = AtomicU64::new(seed_val.to_bits());
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<SubtreeResult>>> =
        (0..prefixes.len()).map(|_| Mutex::new(None)).collect();
    // Claim subtrees most-promising-first (a fixed permutation) so the
    // published bound tightens as early as possible.
    let claim_order: Vec<usize> = {
        let mut idx: Vec<usize> = (0..prefixes.len()).collect();
        idx.sort_by(|&a, &b| {
            lower_bound(&prefixes[a])
                .total_cmp(&lower_bound(&prefixes[b]))
                .then(a.cmp(&b))
        });
        idx
    };
    let explore = |worker_oracle: &mut PortOracle| loop {
        let c = next.fetch_add(1, Ordering::Relaxed);
        if c >= claim_order.len() {
            break;
        }
        let j = claim_order[c];
        if Some(j) == seed_idx {
            continue; // already explored in the seed phase
        }
        let p = &prefixes[j];
        let res = if lower_bound(p) > f64::from_bits(bound.load(Ordering::Relaxed)) {
            // Strictly above the best published incumbent: nothing in
            // this subtree can win the reduction. (Strict comparison: a
            // subtree holding a solution equal to the final minimum is
            // never skipped, so determinism is preserved.)
            SubtreeResult {
                val: f64::INFINITY,
                bins: None,
            }
        } else {
            explore_one(worker_oracle, p, seed_val, node_budget).0
        };
        if res.bins.is_some() {
            fetch_min_f64(&bound, res.val);
        }
        *results[j].lock().expect("no poisoned subtree slot") = Some(res);
    };

    let workers = match options.workers {
        0 => crate::engine::auto_workers(),
        n => n,
    }
    .min(prefixes.len().max(1));
    if workers <= 1 {
        explore(oracle);
    } else {
        thread::scope(|scope| {
            for _ in 0..workers {
                let mut worker_oracle = oracle.clone();
                scope.spawn(move || explore(&mut worker_oracle));
            }
        });
    }

    // Deterministic reduction: greedy incumbent, then the seed subtree,
    // then the remaining subtrees in canonical depth-first order, each
    // winning only on strict improvement — the serial first-found-
    // minimum tie-break.
    let mut best_val = greedy_val;
    let mut best_bins = greedy.map(|(_, b)| b);
    if let Some(r) = &seed_res {
        if let Some(b) = &r.bins {
            if r.val < best_val {
                best_val = r.val;
                best_bins = Some(b.clone());
            }
        }
    }
    for slot in &results {
        let res = slot.lock().expect("no poisoned subtree slot");
        if let Some(r) = res.as_ref() {
            if r.val < best_val {
                if let Some(b) = &r.bins {
                    best_val = r.val;
                    best_bins = Some(b.clone());
                }
            }
        }
    }

    let bins = best_bins?;
    Some(
        bins.iter()
            .map(|members| {
                let mask: u64 = members.iter().map(|g| 1u64 << g.index()).sum();
                let ports = oracle.required(mask);
                on_chip_memory(spec, traffic, lib, members, ports, time_s)
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scbd;
    use memx_ir::{AccessKind, AppSpecBuilder};

    fn lib() -> MemLibrary {
        MemLibrary::default_07um()
    }

    /// Spec with several on-chip groups of differing widths plus one
    /// off-chip frame store.
    fn mixed_spec(budget: u64) -> AppSpec {
        let mut b = AppSpecBuilder::new("t");
        let frame = b
            .basic_group_placed("frame", 1 << 20, 8, Placement::OffChip)
            .unwrap();
        let narrow = b.basic_group("narrow", 512, 2).unwrap();
        let wide = b.basic_group("wide", 512, 20).unwrap();
        let mid = b.basic_group("mid", 256, 8).unwrap();
        let n = b.loop_nest("l", 100_000).unwrap();
        let a0 = b.access(n, frame, AccessKind::Read).unwrap();
        let a1 = b.access(n, narrow, AccessKind::Read).unwrap();
        let a2 = b.access(n, wide, AccessKind::Read).unwrap();
        let a3 = b.access(n, mid, AccessKind::Write).unwrap();
        b.depend(n, a0, a3).unwrap();
        b.depend(n, a1, a3).unwrap();
        b.depend(n, a2, a3).unwrap();
        b.cycle_budget(budget).real_time_seconds(0.1);
        b.build().unwrap()
    }

    #[test]
    fn assignment_produces_positive_costs() {
        let spec = mixed_spec(2_000_000);
        let s = scbd::distribute(&spec).unwrap();
        let org = assign(&spec, &s, &lib(), &AllocOptions::default()).unwrap();
        assert!(org.cost.on_chip_area_mm2 > 0.0);
        assert!(org.cost.on_chip_power_mw > 0.0);
        assert!(org.cost.off_chip_power_mw > 0.0);
        assert_eq!(org.off_chip_count(), 1);
        assert!(org.on_chip_count() >= 1);
    }

    #[test]
    fn fixed_allocation_count_is_respected() {
        let spec = mixed_spec(2_000_000);
        let s = scbd::distribute(&spec).unwrap();
        for k in 1..=3 {
            let options = AllocOptions {
                on_chip_memories: Some(k),
                ..AllocOptions::default()
            };
            let org = assign(&spec, &s, &lib(), &options).unwrap();
            assert_eq!(org.on_chip_count(), k as usize, "k={k}");
        }
    }

    #[test]
    fn more_memories_less_on_chip_power() {
        // Table 4's monotone power column.
        let spec = mixed_spec(2_000_000);
        let s = scbd::distribute(&spec).unwrap();
        let power = |k: u32| {
            let options = AllocOptions {
                on_chip_memories: Some(k),
                ..AllocOptions::default()
            };
            assign(&spec, &s, &lib(), &options)
                .unwrap()
                .cost
                .on_chip_power_mw
        };
        assert!(power(3) <= power(1));
    }

    #[test]
    fn one_memory_wastes_bitwidth() {
        let spec = mixed_spec(2_000_000);
        let s = scbd::distribute(&spec).unwrap();
        let options = AllocOptions {
            on_chip_memories: Some(1),
            ..AllocOptions::default()
        };
        let org = assign(&spec, &s, &lib(), &options).unwrap();
        let on_chip = org
            .memories
            .iter()
            .find(|m| matches!(m.kind, MemoryKind::OnChip))
            .unwrap();
        // The single memory is as wide as the widest group.
        assert_eq!(on_chip.width, 20);
        assert_eq!(on_chip.words, 512 + 512 + 256);
    }

    #[test]
    fn tight_budget_forces_multiport_or_split() {
        // Two parallel reads funnel into one write under a 2-cycle
        // budget: the reads must overlap, so sharing one memory needs
        // two ports while two memories stay single-ported.
        let mut b = AppSpecBuilder::new("t");
        let narrow = b.basic_group("narrow", 512, 2).unwrap();
        let wide = b.basic_group("wide", 512, 20).unwrap();
        let n = b.loop_nest("l", 1000).unwrap();
        let a0 = b.access(n, narrow, AccessKind::Read).unwrap();
        let a1 = b.access(n, wide, AccessKind::Read).unwrap();
        let a2 = b.access(n, narrow, AccessKind::Write).unwrap();
        b.depend(n, a0, a2).unwrap();
        b.depend(n, a1, a2).unwrap();
        b.cycle_budget(2000).real_time_seconds(0.01);
        let spec = b.build().unwrap();
        let s = scbd::distribute(&spec).unwrap();
        let options = AllocOptions {
            on_chip_memories: Some(1),
            ..AllocOptions::default()
        };
        let org = assign(&spec, &s, &lib(), &options).unwrap();
        let on_chip = org
            .memories
            .iter()
            .find(|m| matches!(m.kind, MemoryKind::OnChip))
            .unwrap();
        assert!(on_chip.ports >= 2, "ports = {}", on_chip.ports);
        // Splitting into two memories avoids the multi-port penalty.
        let options2 = AllocOptions {
            on_chip_memories: Some(2),
            ..AllocOptions::default()
        };
        let org2 = assign(&spec, &s, &lib(), &options2).unwrap();
        let max_ports = org2
            .memories
            .iter()
            .filter(|m| matches!(m.kind, MemoryKind::OnChip))
            .map(|m| m.ports)
            .max()
            .unwrap();
        assert_eq!(max_ports, 1);
    }

    #[test]
    fn sweep_finds_a_no_worse_organization_than_any_fixed_k() {
        let spec = mixed_spec(2_000_000);
        let s = scbd::distribute(&spec).unwrap();
        let sweep = assign(&spec, &s, &lib(), &AllocOptions::default()).unwrap();
        let sweep_scalar = sweep.cost.scalar(1.0, 1.0);
        for k in 1..=3 {
            let options = AllocOptions {
                on_chip_memories: Some(k),
                ..AllocOptions::default()
            };
            let fixed = assign(&spec, &s, &lib(), &options).unwrap();
            assert!(sweep_scalar <= fixed.cost.scalar(1.0, 1.0) + 1e-9, "k={k}");
        }
    }

    #[test]
    fn min_ports_respected() {
        let mut b = AppSpecBuilder::new("t");
        let g = b
            .basic_group_full("buf", 5 * 1024, 8, Placement::OnChip, 2)
            .unwrap();
        let n = b.loop_nest("l", 1000).unwrap();
        b.access(n, g, AccessKind::Read).unwrap();
        b.cycle_budget(100_000).real_time_seconds(0.01);
        let spec = b.build().unwrap();
        let s = scbd::distribute(&spec).unwrap();
        let org = assign(&spec, &s, &lib(), &AllocOptions::default()).unwrap();
        assert_eq!(org.memories[0].ports, 2);
    }

    #[test]
    fn partition_enumeration_counts_bell_numbers() {
        assert_eq!(enumerate_partitions(1).len(), 1);
        assert_eq!(enumerate_partitions(2).len(), 2);
        assert_eq!(enumerate_partitions(3).len(), 5);
        assert_eq!(enumerate_partitions(4).len(), 15);
    }

    #[test]
    fn zero_access_groups_are_foreground() {
        let mut b = AppSpecBuilder::new("t");
        let used = b.basic_group("used", 64, 8).unwrap();
        let _unused = b.basic_group("unused", 64, 8).unwrap();
        let n = b.loop_nest("l", 10).unwrap();
        b.access(n, used, AccessKind::Read).unwrap();
        b.cycle_budget(1000);
        let spec = b.build().unwrap();
        let s = scbd::distribute(&spec).unwrap();
        let org = assign(&spec, &s, &lib(), &AllocOptions::default()).unwrap();
        let assigned: usize = org.memories.iter().map(|m| m.groups.len()).sum();
        assert_eq!(assigned, 1);
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let spec = mixed_spec(2_000_000);
        let s = scbd::distribute(&spec).unwrap();
        for on_chip_memories in [None, Some(1), Some(2), Some(3)] {
            let serial = assign(
                &spec,
                &s,
                &lib(),
                &AllocOptions {
                    on_chip_memories,
                    workers: 1,
                    ..AllocOptions::default()
                },
            )
            .unwrap();
            for workers in [2, 4, 7] {
                let parallel = assign(
                    &spec,
                    &s,
                    &lib(),
                    &AllocOptions {
                        on_chip_memories,
                        workers,
                        ..AllocOptions::default()
                    },
                )
                .unwrap();
                assert_eq!(serial, parallel, "k={on_chip_memories:?} workers={workers}");
            }
        }
    }

    #[test]
    fn node_limit_exhaustion_returns_deterministic_incumbent() {
        let spec = mixed_spec(2_000_000);
        let s = scbd::distribute(&spec).unwrap();
        // A node limit this small exhausts every subtree immediately:
        // the search must still return the greedy incumbent (never an
        // error) and do so identically across runs and worker counts.
        let run = |workers: usize| {
            assign(
                &spec,
                &s,
                &lib(),
                &AllocOptions {
                    node_limit: 1,
                    workers,
                    ..AllocOptions::default()
                },
            )
            .expect("incumbent, not an error")
        };
        let serial_a = run(1);
        let serial_b = run(1);
        assert_eq!(serial_a, serial_b, "serial runs must be reproducible");
        for workers in [2, 4] {
            assert_eq!(serial_a, run(workers), "workers={workers}");
        }
        // The exhausted search still yields a complete organization.
        assert!(serial_a.on_chip_count() >= 1);
    }

    #[test]
    fn accessed_groups_beyond_mask_limit_are_rejected_not_ub() {
        // 70 groups, only the last two accessed: their indices (68, 69)
        // cannot be bitmask positions in a u64. This must surface as a
        // clean error, not a shift overflow / aliased-mask organization.
        let mut b = AppSpecBuilder::new("t");
        for i in 0..68 {
            b.basic_group(format!("fg{i}"), 16, 8).unwrap();
        }
        let hi_a = b.basic_group("hi_a", 64, 8).unwrap();
        let hi_b = b.basic_group("hi_b", 64, 8).unwrap();
        let n = b.loop_nest("l", 100).unwrap();
        b.access(n, hi_a, AccessKind::Read).unwrap();
        b.access(n, hi_b, AccessKind::Read).unwrap();
        b.cycle_budget(10_000);
        let spec = b.build().unwrap();
        let s = scbd::distribute(&spec).unwrap();
        let err = assign(&spec, &s, &lib(), &AllocOptions::default()).unwrap_err();
        assert!(matches!(err, ExploreError::NoFeasibleAssignment { .. }));
        assert!(err.to_string().contains("mask limit"), "{err}");
    }

    #[test]
    fn nan_weights_are_rejected_not_panicking() {
        let spec = mixed_spec(2_000_000);
        let s = scbd::distribute(&spec).unwrap();
        for (aw, pw) in [
            (f64::NAN, 1.0),
            (1.0, f64::NAN),
            (f64::INFINITY, 1.0),
            (-1.0, 1.0),
            (1.0, -0.5),
        ] {
            let err = assign(
                &spec,
                &s,
                &lib(),
                &AllocOptions {
                    area_weight: aw,
                    power_weight: pw,
                    ..AllocOptions::default()
                },
            )
            .unwrap_err();
            assert!(
                matches!(err, ExploreError::BadCostWeights { .. }),
                "weights ({aw}, {pw})"
            );
        }
    }
}
