//! Memory allocation and signal-to-memory assignment (§4.6, Table 4).
//!
//! Given the bandwidth constraints from [`crate::scbd`] (which accesses
//! overlap in time), this stage chooses the number and type of memories
//! and assigns every basic group to one of them, minimizing a weighted
//! area/power cost with the technology models of [`memx_memlib`]:
//!
//! * groups whose accesses overlap force multi-port memories when they
//!   share one (or must be split over several);
//! * storing narrow groups in wide memories wastes cell area
//!   ("bitwidth waste");
//! * splitting on-chip storage over more memories lowers energy per
//!   access (smaller arrays) but pays per-module overhead area — the
//!   Table 4 trade-off.
//!
//! The solver has **three levels**, all exact and all parallel:
//!
//! 1. the *off-chip* side enumerates set partitions of the off-chip
//!    groups, with every candidate memory (subset of groups) priced once
//!    up front across the worker pool;
//! 2. the *on-chip sweep* tries every allocation size `k = 1..n`
//!    (unless [`AllocOptions::on_chip_memories`] pins one), fanning the
//!    independent searches over the pool;
//! 3. each size runs a *branch-and-bound* over canonical partitions of
//!    the on-chip groups, itself split into deterministic subtrees that
//!    workers claim from a shared queue.
//!
//! # Lower bounds
//!
//! Subtree skipping lives or dies by the suffix lower bound. Two are
//! available ([`AllocOptions::bound`]):
//!
//! * [`BoundKind::Solo`] — each unassigned group contributes at least
//!   the cell area and access energy of a private 1-port module (the
//!   original, loose bound; kept as a measurable baseline);
//! * [`BoundKind::Pairwise`] (default) — on top of the solo floor, each
//!   group pays its minimum-port floor, and the pigeonhole principle
//!   forces `remaining − free bins` of the unassigned groups to *join*
//!   a non-empty memory: each such join costs at least the group's
//!   cheapest precomputed **pairwise-conflict extra** (the width waste
//!   and port/cycle-conflict penalty of co-assignment with its most
//!   compatible partner). The bound is admissible — it never exceeds
//!   the true optimal completion cost — so exact results are unchanged;
//!   it only skips more of the tree (nodes visited are reported in
//!   [`AllocStats`]).
//!
//! # Parallel search
//!
//! All three levels fan out over worker threads
//! ([`AllocOptions::workers`]) and all three return **bit-identical**
//! results for every worker count:
//!
//! * the off-chip level prices candidate memories in parallel but picks
//!   the winning partition in one deterministic canonical scan;
//! * the on-chip sweep explores a deterministically-chosen *seed size*
//!   first (the one with the smallest root lower bound), publishes its
//!   cost through an atomic (`f64` bits in an `AtomicU64`), and uses it
//!   *only* to skip whole sizes whose root bound already exceeds it — a
//!   size that could win the canonical reduction is never skipped;
//! * the branch-and-bound splits the canonical partition tree into a
//!   fixed number of prefix subtrees, workers claim subtrees from a
//!   shared queue, and the best incumbent value is published the same
//!   way, again only ever skipping whole subtrees. Three properties
//!   keep it deterministic:
//!
//!   1. each subtree is explored against its own deterministic node
//!      budget and a bound derived only from the (deterministic) greedy
//!      incumbent and a deterministically-chosen *seed subtree* explored
//!      up front — never from timing-dependent cross-thread state;
//!   2. the shared atomic bound is used *only* to skip entire subtrees
//!      whose lower bound strictly exceeds it — a subtree containing a
//!      best-so-far solution can never be skipped, so skipping only
//!      removes subtrees that lose the reduction anyway;
//!   3. subtree results are reduced in canonical depth-first order with
//!      strict improvement, reproducing the serial first-found-minimum
//!      tie-break.
//!
//! When the effective worker count is 1 every level runs inline on the
//! calling thread — no worker threads are spawned at all (see
//! [`crate::engine::thread_spawns_on_current_thread`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

use memx_ir::{AppSpec, BasicGroupId, Placement};
use memx_memlib::{timing, CostBreakdown, MemLibrary, OffChipSelection, OnChipSpec};

use crate::engine::parallel_map;
use crate::scbd::ScbdResult;
use crate::ExploreError;

/// How many canonical-prefix subtrees the branch-and-bound splits into.
/// Deliberately a constant (not a function of the worker count) so the
/// per-subtree node budgets — and therefore the search result — do not
/// depend on the machine the search runs on.
const TARGET_SUBTREES: usize = 512;

/// Largest off-chip group count the exhaustive set-partition enumeration
/// accepts: partition counts grow as Bell numbers (Bell(12) ≈ 4.2 M),
/// so beyond this the enumeration would be intractable.
const MAX_OFF_CHIP_GROUPS: usize = 12;

/// Which suffix lower bound the on-chip branch-and-bound prunes with
/// (see the module docs). Both bounds are admissible, so the *result*
/// is identical; only the number of nodes visited differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BoundKind {
    /// The original per-group solo-1-port floor. Loose; kept so pruning
    /// gains of the pairwise bound stay measurable.
    Solo,
    /// Solo floor + per-group minimum-port floor + pairwise-conflict
    /// extras for the merges the pigeonhole principle forces.
    #[default]
    Pairwise,
}

/// Options steering allocation and assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocOptions {
    /// Exact number of on-chip memories to allocate; `None` sweeps all
    /// counts and keeps the cheapest (by the scalarized cost).
    pub on_chip_memories: Option<u32>,
    /// Weight of on-chip area \[per mm²\] in the scalarized cost.
    pub area_weight: f64,
    /// Weight of total power \[per mW\] in the scalarized cost.
    pub power_weight: f64,
    /// Largest port count the on-chip module generator offers.
    pub max_on_chip_ports: u32,
    /// Branch-and-bound node budget before falling back to the best
    /// incumbent found so far (split evenly over the search subtrees).
    pub node_limit: u64,
    /// Worker threads for the allocation solver: `0` spawns one per
    /// available core, `1` runs everything on the calling thread.
    /// Parallel and serial runs return bit-identical organizations.
    pub workers: usize,
    /// Suffix lower bound used for branch-and-bound pruning.
    pub bound: BoundKind,
}

impl Default for AllocOptions {
    fn default() -> Self {
        AllocOptions {
            on_chip_memories: None,
            area_weight: 1.0,
            power_weight: 1.0,
            max_on_chip_ports: 4,
            node_limit: 2_000_000,
            workers: 0,
            bound: BoundKind::Pairwise,
        }
    }
}

/// Search-effort counters of one [`assign_with_stats`] run, so pruning
/// gains (e.g. of [`BoundKind::Pairwise`]) are measurable.
///
/// The counters are *not* part of the deterministic result: in parallel
/// runs the atomic incumbent may skip different subtrees depending on
/// thread timing, so node counts can vary run to run even though the
/// returned [`Organization`] never does. With `workers: 1` the counters
/// are fully deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Branch-and-bound nodes expanded across every on-chip search
    /// (seed subtrees, fanned subtrees and complete-prefix probes).
    pub bb_nodes: u64,
    /// On-chip allocation sizes skipped outright because their root
    /// lower bound exceeded the published sweep incumbent.
    pub sweep_skips: u64,
    /// Complete off-chip set partitions scanned.
    pub off_chip_partitions: u64,
}

/// Where an allocated memory lives.
#[derive(Debug, Clone, PartialEq)]
pub enum MemoryKind {
    /// A generated on-chip SRAM module.
    OnChip,
    /// An off-chip DRAM configuration from the part catalog.
    OffChip(OffChipSelection),
}

/// One allocated memory with its assigned basic groups.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryInstance {
    /// Assigned groups.
    pub groups: Vec<BasicGroupId>,
    /// Total words (sum over groups).
    pub words: u64,
    /// Word width in bits (maximum over groups — narrower groups waste
    /// the upper bits).
    pub width: u32,
    /// Ports provisioned (from overlap analysis and group minimums).
    pub ports: u32,
    /// On-chip module or off-chip part configuration.
    pub kind: MemoryKind,
    /// This memory's contribution to the organization cost.
    pub cost: CostBreakdown,
}

/// A complete memory organization with its cost — the feedback the whole
/// methodology revolves around.
#[derive(Debug, Clone, PartialEq)]
pub struct Organization {
    /// All allocated memories (on-chip first).
    pub memories: Vec<MemoryInstance>,
    /// Total cost (the paper's three figures).
    pub cost: CostBreakdown,
}

impl Organization {
    /// Number of on-chip memories.
    pub fn on_chip_count(&self) -> usize {
        self.memories
            .iter()
            .filter(|m| matches!(m.kind, MemoryKind::OnChip))
            .count()
    }

    /// Number of off-chip memories.
    pub fn off_chip_count(&self) -> usize {
        self.memories.len() - self.on_chip_count()
    }

    /// Maximum port count over the off-chip memories (Table 2's "a
    /// two-port off-chip memory is needed").
    pub fn max_off_chip_ports(&self) -> u32 {
        self.memories
            .iter()
            .filter(|m| matches!(m.kind, MemoryKind::OffChip(_)))
            .map(|m| m.ports)
            .max()
            .unwrap_or(0)
    }
}

/// Validates scalarization weights: comparing scalar costs built from
/// non-finite or negative weights is meaningless (and NaN used to panic
/// deep inside comparison callbacks).
pub(crate) fn check_cost_weights(area_weight: f64, power_weight: f64) -> Result<(), ExploreError> {
    if area_weight.is_finite()
        && power_weight.is_finite()
        && area_weight >= 0.0
        && power_weight >= 0.0
    {
        Ok(())
    } else {
        Err(ExploreError::BadCostWeights {
            area_weight,
            power_weight,
        })
    }
}

/// Weighted random/burst access traffic of one group.
#[derive(Debug, Clone, Copy, Default)]
struct Traffic {
    random: f64,
    burst: f64,
}

impl Traffic {
    fn total(&self) -> f64 {
        self.random + self.burst
    }

    /// Energy-equivalent access count: bursts are discounted.
    fn energy_accesses(&self) -> f64 {
        self.random + self.burst * timing::OFF_CHIP_BURST_ENERGY_FACTOR
    }
}

fn group_traffic(spec: &AppSpec) -> Vec<Traffic> {
    let mut traffic = vec![Traffic::default(); spec.basic_groups().len()];
    for nest in spec.loop_nests() {
        let it = nest.iterations() as f64;
        for a in nest.accesses() {
            let t = &mut traffic[a.group().index()];
            if a.is_burst() {
                t.burst += a.weight() * it;
            } else {
                t.random += a.weight() * it;
            }
        }
    }
    traffic
}

/// Per-slot access-count table for fast port-requirement queries over
/// group subsets (bitmask-indexed, memoized).
///
/// Cloning is cheap: the slot table is shared behind an [`Arc`] and each
/// clone keeps its own memoization cache, so every branch-and-bound
/// worker thread can query ports without synchronization.
#[derive(Clone)]
struct PortOracle {
    /// Each entry: (group index, simultaneous accesses) per busy cycle.
    slots: Arc<Vec<Vec<(usize, u32)>>>,
    min_ports: Arc<Vec<u32>>,
    cache: HashMap<u64, u32>,
}

impl PortOracle {
    fn new(spec: &AppSpec, scbd: &ScbdResult) -> Self {
        let mut slots = Vec::new();
        for body in &scbd.bodies {
            for slot in body.busy_slots() {
                if slot.occupants.len() < 2 {
                    // A single occupant can never force multiple ports
                    // by overlap (group minimums are handled separately).
                    continue;
                }
                let mut counts: HashMap<usize, u32> = HashMap::new();
                for o in &slot.occupants {
                    *counts.entry(o.group.index()).or_insert(0) += 1;
                }
                let mut entry: Vec<(usize, u32)> = counts.into_iter().collect();
                entry.sort_unstable();
                slots.push(entry);
            }
        }
        slots.sort();
        slots.dedup();
        PortOracle {
            slots: Arc::new(slots),
            min_ports: Arc::new(spec.basic_groups().iter().map(|g| g.min_ports()).collect()),
            cache: HashMap::new(),
        }
    }

    /// Ports required by a memory storing exactly the groups in `mask`.
    fn required(&mut self, mask: u64) -> u32 {
        if let Some(&p) = self.cache.get(&mask) {
            return p;
        }
        let mut ports = 1u32;
        // Only the first 64 groups can appear in a mask (assign rejects
        // accessed groups beyond that); `take` keeps the shift in range.
        for (i, &mp) in self.min_ports.iter().enumerate().take(u64::BITS as usize) {
            if mask & (1 << i) != 0 {
                ports = ports.max(mp);
            }
        }
        for slot in self.slots.iter() {
            let overlap: u32 = slot
                .iter()
                .filter(|(g, _)| mask & (1 << *g) != 0)
                .map(|&(_, c)| c)
                .sum();
            ports = ports.max(overlap);
        }
        self.cache.insert(mask, ports);
        ports
    }
}

/// Allocates memories and assigns every accessed basic group.
///
/// Groups without any access are treated as foreground (scalar-level)
/// data and skipped, as the paper's pruning step prescribes.
///
/// # Errors
///
/// Returns [`ExploreError::NoFeasibleAssignment`] when the bandwidth
/// constraints cannot be met (e.g. off-chip overlap needing more than
/// two ports), [`ExploreError::BadCostWeights`] for non-finite or
/// negative scalarization weights,
/// [`ExploreError::TooManyOffChipGroups`] when the off-chip partition
/// enumeration would be intractable, and [`ExploreError::Part`] if no
/// off-chip part covers a group.
pub fn assign(
    spec: &AppSpec,
    scbd: &ScbdResult,
    lib: &MemLibrary,
    options: &AllocOptions,
) -> Result<Organization, ExploreError> {
    assign_with_stats(spec, scbd, lib, options).map(|(org, _)| org)
}

/// [`assign`], additionally reporting the search-effort counters of the
/// run (see [`AllocStats`]).
///
/// # Errors
///
/// As for [`assign`].
pub fn assign_with_stats(
    spec: &AppSpec,
    scbd: &ScbdResult,
    lib: &MemLibrary,
    options: &AllocOptions,
) -> Result<(Organization, AllocStats), ExploreError> {
    check_cost_weights(options.area_weight, options.power_weight)?;
    let traffic = group_traffic(spec);
    let time_s = spec.real_time_seconds();
    let mut oracle = PortOracle::new(spec, scbd);
    let mut stats = AllocStats::default();

    let (off_groups, on_groups) = split_accessed_groups(spec, &traffic)?;
    let workers = match options.workers {
        0 => crate::engine::auto_workers(),
        n => n,
    };

    // --- Off-chip side: exhaustive partition enumeration. ---------------
    let off_memories = assign_off_chip(
        spec,
        &traffic,
        &mut oracle,
        lib,
        &off_groups,
        time_s,
        workers,
        &mut stats,
    )?;

    // --- On-chip side: branch-and-bound per allocation size. ------------
    if on_groups.is_empty() {
        // A purely off-chip application (or one whose on-chip data is
        // all foreground): nothing to allocate on chip.
        if let Some(k) = options.on_chip_memories {
            if k > 0 {
                return Err(ExploreError::NoFeasibleAssignment {
                    reason: format!("{k} on-chip memories requested but no on-chip groups exist"),
                });
            }
        }
        let cost = off_memories.iter().map(|m| m.cost).sum();
        return Ok((
            Organization {
                memories: off_memories,
                cost,
            },
            stats,
        ));
    }
    let counts: Vec<usize> = match options.on_chip_memories {
        Some(k) => (k >= 1 && k as usize <= on_groups.len())
            .then_some(k as usize)
            .into_iter()
            .collect(),
        None => (1..=on_groups.len()).collect(),
    };
    let best = sweep_on_chip(
        spec,
        &traffic,
        &mut oracle,
        lib,
        &on_groups,
        &counts,
        time_s,
        options,
        workers,
        &mut stats,
    );
    let (_, mut memories) = best.ok_or_else(|| ExploreError::NoFeasibleAssignment {
        reason: match options.on_chip_memories {
            Some(k) => format!("no feasible on-chip assignment with {k} memories"),
            None => "no feasible on-chip assignment".to_owned(),
        },
    })?;

    memories.extend(off_memories);
    let cost = memories.iter().map(|m| m.cost).sum();
    Ok((Organization { memories, cost }, stats))
}

/// Splits the accessed basic groups into off-chip and on-chip candidate
/// sets, validating the 64-bit mask indexing both searches rely on.
fn split_accessed_groups(
    spec: &AppSpec,
    traffic: &[Traffic],
) -> Result<(Vec<BasicGroupId>, Vec<BasicGroupId>), ExploreError> {
    let mut off_groups = Vec::new();
    let mut on_groups = Vec::new();
    for g in spec.basic_groups() {
        if traffic[g.id().index()].total() == 0.0 {
            continue; // foreground data
        }
        match g.placement() {
            Placement::OffChip => off_groups.push(g.id()),
            // `Any` groups are small working arrays; on-chip storage
            // dominates them on both power and latency, so the
            // assignment considers them on-chip candidates.
            Placement::OnChip | Placement::Any => on_groups.push(g.id()),
        }
    }
    if on_groups.len() > 60 {
        return Err(ExploreError::NoFeasibleAssignment {
            reason: format!(
                "{} on-chip groups exceed the 60-group assignment limit",
                on_groups.len()
            ),
        });
    }
    // The partition searches index groups by bit position in a u64 mask,
    // so any *accessed* group must sit below index 64 (unaccessed
    // foreground groups beyond that are fine — they never enter a mask).
    if let Some(g) = off_groups
        .iter()
        .chain(&on_groups)
        .find(|g| g.index() >= u64::BITS as usize)
    {
        return Err(ExploreError::NoFeasibleAssignment {
            reason: format!(
                "accessed group `{}` has index {}, beyond the 64-group mask limit",
                spec.group(*g).name(),
                g.index()
            ),
        });
    }
    Ok((off_groups, on_groups))
}

/// One priced off-chip candidate memory (a subset of the off-chip
/// groups): its power contribution and the ready-made instance.
struct OffChipEval {
    mw: f64,
    mem: MemoryInstance,
}

/// Builds the cheapest off-chip memory set by enumerating set partitions
/// of the off-chip groups.
///
/// Every candidate memory (nonempty subset of the groups) is priced once
/// up front — the part-catalog searches fan over the worker pool — and
/// the partition scan itself is a single deterministic canonical
/// recursion over the table, so the result is bit-identical for every
/// worker count.
#[allow(clippy::too_many_arguments)]
fn assign_off_chip(
    spec: &AppSpec,
    traffic: &[Traffic],
    oracle: &mut PortOracle,
    lib: &MemLibrary,
    groups: &[BasicGroupId],
    time_s: f64,
    workers: usize,
    stats: &mut AllocStats,
) -> Result<Vec<MemoryInstance>, ExploreError> {
    if groups.is_empty() {
        return Ok(Vec::new());
    }
    let n = groups.len();
    if n > MAX_OFF_CHIP_GROUPS {
        return Err(ExploreError::TooManyOffChipGroups {
            count: n,
            limit: MAX_OFF_CHIP_GROUPS,
        });
    }
    // Port requirements for every nonempty subset, via the shared
    // memoizing oracle (cheap slot scans; done serially so the cache
    // warms for the rest of the assignment).
    let masks: Vec<u64> = (1..(1u64 << n)).collect();
    let ports: Vec<u32> = masks
        .iter()
        .map(|&m| {
            let global: u64 = (0..n)
                .filter(|&i| m & (1 << i) != 0)
                .map(|i| 1u64 << groups[i].index())
                .sum();
            oracle.required(global)
        })
        .collect();
    // Price every candidate memory across the pool (the part-catalog
    // search is the expensive half of the enumeration).
    let evals: Vec<Result<Option<OffChipEval>, ExploreError>> =
        parallel_map(&masks, workers, |idx, &m| {
            let p = ports[idx];
            if p > 2 {
                return Ok(None); // DRAM systems offer at most dual banks
            }
            let members: Vec<BasicGroupId> = (0..n)
                .filter(|&i| m & (1 << i) != 0)
                .map(|i| groups[i])
                .collect();
            let words: u64 = members.iter().map(|&g| spec.group(g).words()).sum();
            let width = members
                .iter()
                .map(|&g| spec.group(g).bitwidth())
                .max()
                .expect("mask not empty");
            let t: Traffic = members.iter().fold(Traffic::default(), |acc, &g| Traffic {
                random: acc.random + traffic[g.index()].random,
                burst: acc.burst + traffic[g.index()].burst,
            });
            let rate_energy = t.energy_accesses() / time_s;
            let sel = lib.off_chip().select(words, width, p, rate_energy)?;
            let mw = sel.static_mw() + sel.energy_pj_per_access() * rate_energy / 1e9;
            Ok(Some(OffChipEval {
                mw,
                mem: MemoryInstance {
                    groups: members,
                    words,
                    width,
                    ports: p,
                    cost: CostBreakdown::new(0.0, 0.0, mw),
                    kind: MemoryKind::OffChip(sel),
                },
            }))
        });
    // Table indexed directly by subset mask (entry 0 unused).
    let mut table: Vec<Result<Option<OffChipEval>, ExploreError>> = Vec::with_capacity(1usize << n);
    table.push(Ok(None));
    table.extend(evals);

    let mut scan = OffChipScan {
        table: &table,
        n,
        best: None,
        partitions: 0,
    };
    scan.recurse(0, &mut Vec::new())?;
    stats.off_chip_partitions += scan.partitions;
    let (_, blocks) = scan
        .best
        .ok_or_else(|| ExploreError::NoFeasibleAssignment {
            reason: "off-chip groups overlap beyond dual-port bandwidth".to_owned(),
        })?;
    Ok(blocks
        .iter()
        .map(|&mask| match &table[mask as usize] {
            Ok(Some(e)) => e.mem.clone(),
            _ => unreachable!("winning partition uses only feasible blocks"),
        })
        .collect())
}

/// Canonical set-partition scan over the pre-priced block table: visits
/// partitions in the same recursion order as a serial enumeration (each
/// element joins existing blocks in order, then opens a new one) and
/// keeps the first strict power minimum.
///
/// Branches whose growing block is infeasible are pruned — sound because
/// the port requirement is monotone in the group subset, so every
/// completion would be skipped anyway. A pricing error surfaces the
/// first time the scan touches the failing block.
struct OffChipScan<'a> {
    table: &'a [Result<Option<OffChipEval>, ExploreError>],
    n: usize,
    best: Option<(f64, Vec<u64>)>,
    partitions: u64,
}

impl OffChipScan<'_> {
    fn block_mw(&self, mask: u64) -> f64 {
        match &self.table[mask as usize] {
            Ok(Some(e)) => e.mw,
            _ => unreachable!("scan recurses only through feasible blocks"),
        }
    }

    fn recurse(&mut self, i: usize, blocks: &mut Vec<u64>) -> Result<(), ExploreError> {
        if i == self.n {
            self.partitions += 1;
            // Fresh block-order sum: the exact float accumulation a
            // serial per-partition evaluation performs.
            let power: f64 = blocks.iter().map(|&m| self.block_mw(m)).sum();
            if self.best.as_ref().map(|(p, _)| power < *p).unwrap_or(true) {
                self.best = Some((power, blocks.clone()));
            }
            return Ok(());
        }
        let bit = 1u64 << i;
        for b in 0..blocks.len() {
            let grown = blocks[b] | bit;
            match &self.table[grown as usize] {
                Err(e) => return Err(e.clone()),
                Ok(None) => continue,
                Ok(Some(_)) => {
                    let old = blocks[b];
                    blocks[b] = grown;
                    self.recurse(i + 1, blocks)?;
                    blocks[b] = old;
                }
            }
        }
        match &self.table[bit as usize] {
            Err(e) => Err(e.clone()),
            Ok(None) => Ok(()),
            Ok(Some(_)) => {
                blocks.push(bit);
                let r = self.recurse(i + 1, blocks);
                blocks.pop();
                r
            }
        }
    }
}

/// All set partitions of `{0..n}` — kept for tests (the production scan
/// streams partitions instead of materializing Bell-many vectors).
#[cfg(test)]
fn enumerate_partitions(n: usize) -> Vec<Vec<Vec<usize>>> {
    let mut result = Vec::new();
    let mut current: Vec<Vec<usize>> = Vec::new();
    fn recurse(i: usize, n: usize, current: &mut Vec<Vec<usize>>, out: &mut Vec<Vec<Vec<usize>>>) {
        if i == n {
            out.push(current.clone());
            return;
        }
        for b in 0..current.len() {
            current[b].push(i);
            recurse(i + 1, n, current, out);
            current[b].pop();
        }
        current.push(vec![i]);
        recurse(i + 1, n, current, out);
        current.pop();
    }
    recurse(0, n, &mut current, &mut result);
    result
}

/// Cost of one on-chip memory holding `members`.
fn on_chip_memory(
    spec: &AppSpec,
    traffic: &[Traffic],
    lib: &MemLibrary,
    members: &[BasicGroupId],
    ports: u32,
    time_s: f64,
) -> MemoryInstance {
    let words: u64 = members.iter().map(|&g| spec.group(g).words()).sum();
    let width = members
        .iter()
        .map(|&g| spec.group(g).bitwidth())
        .max()
        .expect("memory not empty");
    let module = OnChipSpec::new(words, width, ports);
    let area = lib.on_chip().area_mm2(&module);
    let energy = lib.on_chip().energy_pj(&module);
    let accesses: f64 = members.iter().map(|&g| traffic[g.index()].total()).sum();
    let mw = energy * accesses / time_s / 1e9;
    MemoryInstance {
        groups: members.to_vec(),
        words,
        width,
        ports,
        kind: MemoryKind::OnChip,
        cost: CostBreakdown::new(area, mw, 0.0),
    }
}

/// Admissible per-group cost floor: the group's own cell area at the
/// block width `width`, plus its access energy in a module of at least
/// `words` words, `width` bits and `ports` ports. Any real memory
/// holding the group in a block with at least those dimensions costs at
/// least this much *for this group's share* — the cell array is at
/// least per-bit × own words × block width, and the energy model is
/// monotone in words, width and ports.
///
/// The [`BoundKind::Solo`] variant is the original loose floor (flat
/// cell area, whatever the module looks like); [`BoundKind::Pairwise`]
/// additionally mirrors the area model's banking penalty and per-port
/// area factor, both monotone in the module parameters and therefore
/// still admissible. (Like the original bound, this reads the default
/// calibration constants; a custom [`memx_memlib::OnChipModel`] with a
/// cheaper cell array would need its own floor.)
#[allow(clippy::too_many_arguments)]
fn group_floor(
    spec: &AppSpec,
    traffic: &[Traffic],
    lib: &MemLibrary,
    options: &AllocOptions,
    time_s: f64,
    g: BasicGroupId,
    words: u64,
    width: u32,
    ports: u32,
    kind: BoundKind,
) -> f64 {
    use memx_memlib::calibration as cal;
    let grp = spec.group(g);
    let module = OnChipSpec::new(words, width, ports);
    let energy = lib.on_chip().energy_pj(&module);
    let mut cells = cal::ON_CHIP_AREA_PER_BIT_MM2 * grp.words() as f64 * f64::from(width);
    if kind == BoundKind::Pairwise {
        // The cell array of any module holding these words is banked at
        // least this hard and pays at least this port area factor.
        let bank = 1.0 + (words as f64 / cal::ON_CHIP_BANK_WORDS).min(2.0);
        let port_factor = 1.0 + cal::ON_CHIP_PORT_AREA_FACTOR * (f64::from(ports) - 1.0);
        cells *= bank * port_factor;
    }
    let mw = energy * traffic[g.index()].total() / time_s / 1e9;
    cells * options.area_weight + mw * options.power_weight
}

/// The suffix lower-bound table of the on-chip branch-and-bound, over a
/// fixed hardest-first group order (see the module docs).
///
/// `bound(i, open, k)` lower-bounds the cost every completion adds for
/// the unassigned groups `order[i..]`, given `open` non-empty memories
/// so far and `k` memories in total. It is admissible for both
/// [`BoundKind`]s; the pairwise variant additionally charges each
/// group's minimum-port floor, the fixed module overhead of every
/// memory still to be opened, and the `remaining − (k − open)` joins
/// the pigeonhole principle forces, each at the group's cheapest
/// pairwise-conflict extra.
struct SuffixBound {
    /// `base[i]` = Σ over `order[i..]` of the per-group floor (solo, or
    /// solo + minimum-port tightening for the pairwise bound).
    base: Vec<f64>,
    /// `merge[i][m]` = sum of the `m` smallest join extras among
    /// `order[i..]`; `None` for the solo bound.
    merge: Option<Vec<Vec<f64>>>,
    /// Area-weighted per-module overhead charged for every memory still
    /// to be opened (each of the `k − open` future blocks pays at least
    /// the module generator's fixed overhead). Zero for the solo bound.
    per_block: f64,
    n: usize,
}

impl SuffixBound {
    #[allow(clippy::too_many_arguments)]
    fn build(
        spec: &AppSpec,
        traffic: &[Traffic],
        lib: &MemLibrary,
        options: &AllocOptions,
        time_s: f64,
        order: &[BasicGroupId],
        oracle: &mut PortOracle,
        kind: BoundKind,
    ) -> SuffixBound {
        let n = order.len();
        let floor = |g: BasicGroupId, words: u64, width: u32, ports: u32| {
            group_floor(
                spec, traffic, lib, options, time_s, g, words, width, ports, kind,
            )
        };
        // The solo floor (1-port private module; flat cells for
        // `BoundKind::Solo`, model-mirrored for `BoundKind::Pairwise`).
        let solo: Vec<f64> = order
            .iter()
            .map(|&g| floor(g, spec.group(g).words(), spec.group(g).bitwidth(), 1))
            .collect();
        let (per_group, merge) = match kind {
            BoundKind::Solo => (solo, None),
            BoundKind::Pairwise => {
                // Tightening 1 (unary): every memory holding `g` needs at
                // least the group's own minimum port count.
                let tight: Vec<f64> = order
                    .iter()
                    .map(|&g| {
                        let grp = spec.group(g);
                        floor(g, grp.words(), grp.bitwidth(), grp.min_ports().max(1))
                    })
                    .collect();
                // Tightening 2 (pairwise): if `g` shares a memory with
                // *any* other group `h`, the block holds at least both
                // groups' words, is at least max(w_g, w_h) wide and
                // needs at least the ports their combined cycle
                // conflicts force — `g`'s floor rises by at least the
                // cheapest such extra over all partners (the energy
                // model is strictly monotone in module words, so every
                // co-assignment costs something).
                let join: Vec<f64> = order
                    .iter()
                    .enumerate()
                    .map(|(i, &g)| {
                        let grp = spec.group(g);
                        order
                            .iter()
                            .enumerate()
                            .filter(|&(j, _)| j != i)
                            .map(|(_, &h)| {
                                let other = spec.group(h);
                                let words = grp.words() + other.words();
                                let width = grp.bitwidth().max(other.bitwidth());
                                let ports =
                                    oracle.required((1u64 << g.index()) | (1u64 << h.index()));
                                (floor(g, words, width, ports) - tight[i]).max(0.0)
                            })
                            .min_by(f64::total_cmp)
                            .unwrap_or(0.0)
                    })
                    .collect();
                // merge[i][m]: the m smallest join extras of the suffix.
                let mut merge = Vec::with_capacity(n + 1);
                for i in 0..=n {
                    let mut tail: Vec<f64> = join[i..].to_vec();
                    tail.sort_by(f64::total_cmp);
                    let mut sums = Vec::with_capacity(tail.len() + 1);
                    let mut acc = 0.0;
                    sums.push(0.0);
                    for v in tail {
                        acc += v;
                        sums.push(acc);
                    }
                    merge.push(sums);
                }
                (tight, Some(merge))
            }
        };
        let mut base = vec![0.0; n + 1];
        for i in (0..n).rev() {
            base[i] = base[i + 1] + per_group[i];
        }
        let per_block = match kind {
            BoundKind::Solo => 0.0,
            BoundKind::Pairwise => {
                memx_memlib::calibration::ON_CHIP_MODULE_OVERHEAD_MM2 * options.area_weight
            }
        };
        SuffixBound {
            base,
            merge,
            per_block,
            n,
        }
    }

    /// Lower bound on the cost the unassigned suffix `order[i..]` adds,
    /// with `open` non-empty memories so far and `k` memories in total.
    fn bound(&self, i: usize, open: usize, k: usize) -> f64 {
        let to_open = k.saturating_sub(open);
        let base = self.base[i] + self.per_block * to_open as f64;
        match &self.merge {
            None => base,
            Some(merge) => {
                let remaining = self.n - i;
                let forced = remaining.saturating_sub(to_open);
                base + merge[i][forced]
            }
        }
    }
}

/// Everything the on-chip sweep shares across allocation sizes: the
/// hardest-first group order and the suffix bound tables (both are
/// independent of `k`).
struct OnChipSweep<'a> {
    spec: &'a AppSpec,
    traffic: &'a [Traffic],
    lib: &'a MemLibrary,
    options: &'a AllocOptions,
    time_s: f64,
    order: Vec<BasicGroupId>,
    bound: SuffixBound,
}

impl<'a> OnChipSweep<'a> {
    #[allow(clippy::too_many_arguments)]
    fn build(
        spec: &'a AppSpec,
        traffic: &'a [Traffic],
        lib: &'a MemLibrary,
        groups: &[BasicGroupId],
        time_s: f64,
        options: &'a AllocOptions,
        oracle: &mut PortOracle,
    ) -> Self {
        // Hardest-first ordering: most-accessed groups first.
        let mut order: Vec<BasicGroupId> = groups.to_vec();
        order.sort_by(|a, b| {
            traffic[b.index()]
                .total()
                .total_cmp(&traffic[a.index()].total())
                .then(a.cmp(b))
        });
        let bound = SuffixBound::build(
            spec,
            traffic,
            lib,
            options,
            time_s,
            &order,
            oracle,
            options.bound,
        );
        OnChipSweep {
            spec,
            traffic,
            lib,
            options,
            time_s,
            order,
            bound,
        }
    }
}

/// Scalar cost of an on-chip memory set, exactly as the sweep reduction
/// compares candidates (sum of cost breakdowns, then scalarize).
fn on_chip_scalar(mems: &[MemoryInstance], options: &AllocOptions) -> f64 {
    let cost: CostBreakdown = mems.iter().map(|m| m.cost).sum();
    cost.scalar(options.area_weight, options.power_weight)
}

/// The `k = 1..n` allocation-size sweep, fanned over the worker pool.
///
/// A deterministically-chosen *seed size* (smallest root lower bound,
/// earliest on ties) is searched first with the full pool; its cost is
/// published through an atomic and used only to skip whole sizes whose
/// root bound strictly exceeds it. The remaining sizes fan over
/// [`parallel_map`] with the pool split between the sweep and each
/// size's subtree search, and the results reduce in ascending-`k` order
/// with strict improvement — bit-identical for every worker count.
#[allow(clippy::too_many_arguments)]
fn sweep_on_chip(
    spec: &AppSpec,
    traffic: &[Traffic],
    oracle: &mut PortOracle,
    lib: &MemLibrary,
    groups: &[BasicGroupId],
    counts: &[usize],
    time_s: f64,
    options: &AllocOptions,
    workers: usize,
    stats: &mut AllocStats,
) -> Option<(f64, Vec<MemoryInstance>)> {
    if counts.is_empty() {
        return None;
    }
    let sweep = OnChipSweep::build(spec, traffic, lib, groups, time_s, options, oracle);
    // Worker budgeting across the two on-chip levels: the sweep claims
    // at most one worker per size and each size's subtree search gets an
    // equal share of the rest, so a batch never oversubscribes the pool
    // cores²-style. Results are independent of the split.
    let sweep_workers = workers.min(counts.len()).max(1);
    let inner_workers = (workers / sweep_workers).max(1);

    let root_lb = |k: usize| sweep.bound.bound(0, 0, k);
    let seed_pos = (0..counts.len())
        .min_by(|&a, &b| {
            root_lb(counts[a])
                .total_cmp(&root_lb(counts[b]))
                .then(a.cmp(&b))
        })
        .expect("counts not empty");
    // Seed phase: the whole pool works on the most promising size.
    let (seed_mems, seed_nodes) = assign_on_chip(&sweep, oracle, counts[seed_pos], workers);
    let shared = AtomicU64::new(
        seed_mems
            .as_deref()
            .map(|m| on_chip_scalar(m, options))
            .unwrap_or(f64::INFINITY)
            .to_bits(),
    );
    let others: Vec<usize> = counts
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != seed_pos)
        .map(|(_, &k)| k)
        .collect();
    let fanned = parallel_map(&others, sweep_workers, |_, &k| {
        if root_lb(k) > f64::from_bits(shared.load(Ordering::Relaxed)) {
            // Strictly above a published result: this size's search —
            // even node-limited, its outcome is a feasible organization
            // costing at least the root bound — can never win the
            // strict ascending-k reduction, so skipping it cannot
            // change the result regardless of thread timing.
            return (None, 0u64, true);
        }
        let mut worker_oracle = oracle.clone();
        let (mems, nodes) = assign_on_chip(&sweep, &mut worker_oracle, k, inner_workers);
        if let Some(m) = &mems {
            fetch_min_f64(&shared, on_chip_scalar(m, options));
        }
        (mems, nodes, false)
    });

    // Canonical reduction in ascending-k input order, strict improvement
    // — the serial sweep's first-found-minimum tie-break.
    let mut best: Option<(f64, Vec<MemoryInstance>)> = None;
    let mut seed_slot = Some((seed_mems, seed_nodes, false));
    let mut fanned = fanned.into_iter();
    for i in 0..counts.len() {
        let (mems, nodes, skipped) = if i == seed_pos {
            seed_slot.take().expect("seed reduced once")
        } else {
            fanned.next().expect("one fanned result per non-seed size")
        };
        stats.bb_nodes += nodes;
        if skipped {
            stats.sweep_skips += 1;
        }
        if let Some(m) = mems {
            let scalar = on_chip_scalar(&m, options);
            if best.as_ref().map(|(s, _)| scalar < *s).unwrap_or(true) {
                best = Some((scalar, m));
            }
        }
    }
    best
}

/// Shared, read-only context of one on-chip branch-and-bound run.
struct SearchCtx<'a> {
    sweep: &'a OnChipSweep<'a>,
    k: usize,
}

impl SearchCtx<'_> {
    /// Scalar cost of one memory holding `members`, or `None` when its
    /// port requirement exceeds the module generator's limit.
    fn memory_scalar(&self, oracle: &mut PortOracle, members: &[BasicGroupId]) -> Option<f64> {
        let mask: u64 = members.iter().map(|g| 1u64 << g.index()).sum();
        let ports = oracle.required(mask);
        if ports > self.sweep.options.max_on_chip_ports {
            return None;
        }
        let mem = on_chip_memory(
            self.sweep.spec,
            self.sweep.traffic,
            self.sweep.lib,
            members,
            ports,
            self.sweep.time_s,
        );
        Some(mem.cost.scalar(
            self.sweep.options.area_weight,
            self.sweep.options.power_weight,
        ))
    }

    fn order(&self) -> &[BasicGroupId] {
        &self.sweep.order
    }

    /// The admissible node bound: cost every completion of a node at
    /// depth `i` with `open` non-empty memories must still add.
    fn node_bound(&self, i: usize, open: usize) -> f64 {
        self.sweep.bound.bound(i, open, self.k)
    }
}

/// A partial canonical assignment of the first `depth` groups.
#[derive(Clone)]
struct Prefix {
    bins: Vec<Vec<BasicGroupId>>,
    bin_scalars: Vec<f64>,
    acc: f64,
    depth: usize,
}

/// Depth-first exploration of one subtree with a private node budget
/// and a bound seeded from the greedy incumbent only (see module docs).
struct Dfs<'a> {
    ctx: &'a SearchCtx<'a>,
    best_scalar: f64,
    best: Option<Vec<Vec<BasicGroupId>>>,
    nodes: u64,
    node_limit: u64,
}

impl Dfs<'_> {
    fn recurse(
        &mut self,
        oracle: &mut PortOracle,
        i: usize,
        bins: &mut Vec<Vec<BasicGroupId>>,
        bin_scalars: &mut Vec<f64>,
        acc: f64,
    ) {
        self.nodes += 1;
        if self.nodes > self.node_limit {
            return;
        }
        let remaining = self.ctx.order().len() - i;
        if bins.len() + remaining < self.ctx.k {
            return; // cannot open enough memories any more
        }
        if acc + self.ctx.node_bound(i, bins.len()) >= self.best_scalar {
            return;
        }
        if i == self.ctx.order().len() {
            if bins.len() == self.ctx.k {
                self.best_scalar = acc;
                self.best = Some(bins.clone());
            }
            return;
        }
        let g = self.ctx.order()[i];
        // Try existing memories.
        for b in 0..bins.len() {
            bins[b].push(g);
            if let Some(new_scalar) = self.ctx.memory_scalar(oracle, &bins[b]) {
                let old = bin_scalars[b];
                let acc2 = acc - old + new_scalar;
                bin_scalars[b] = new_scalar;
                self.recurse(oracle, i + 1, bins, bin_scalars, acc2);
                bin_scalars[b] = old;
            }
            bins[b].pop();
        }
        // Open a new memory (canonical: only one way).
        if bins.len() < self.ctx.k {
            bins.push(vec![g]);
            if let Some(scalar) = self.ctx.memory_scalar(oracle, &bins[bins.len() - 1]) {
                bin_scalars.push(scalar);
                self.recurse(oracle, i + 1, bins, bin_scalars, acc + scalar);
                bin_scalars.pop();
            }
            bins.pop();
        }
    }
}

/// Expands the canonical partition tree breadth-first (children in
/// depth-first candidate order, so the resulting prefix sequence is the
/// serial DFS visiting order) until at least [`TARGET_SUBTREES`]
/// prefixes exist or every group is assigned.
fn expand_prefixes(ctx: &SearchCtx<'_>, oracle: &mut PortOracle, greedy_bound: f64) -> Vec<Prefix> {
    let n = ctx.order().len();
    let mut level = vec![Prefix {
        bins: Vec::new(),
        bin_scalars: Vec::new(),
        acc: 0.0,
        depth: 0,
    }];
    while level.len() < TARGET_SUBTREES && level.iter().any(|p| p.depth < n) {
        let mut next: Vec<Prefix> = Vec::with_capacity(level.len() * 2);
        for p in &level {
            if p.depth == n {
                next.push(p.clone());
                continue;
            }
            let g = ctx.order()[p.depth];
            let remaining_after = n - p.depth - 1;
            let mut push_child = |bins: Vec<Vec<BasicGroupId>>, bin_scalars: Vec<f64>, acc: f64| {
                if bins.len() + remaining_after < ctx.k {
                    return; // cannot open enough memories any more
                }
                if acc + ctx.node_bound(p.depth + 1, bins.len()) >= greedy_bound {
                    return; // cannot strictly beat the greedy incumbent
                }
                next.push(Prefix {
                    bins,
                    bin_scalars,
                    acc,
                    depth: p.depth + 1,
                });
            };
            // Children in DFS candidate order: existing bins, then a
            // fresh bin.
            for b in 0..p.bins.len() {
                let mut bins = p.bins.clone();
                bins[b].push(g);
                if let Some(scalar) = ctx.memory_scalar(oracle, &bins[b]) {
                    let mut bin_scalars = p.bin_scalars.clone();
                    let acc = p.acc - bin_scalars[b] + scalar;
                    bin_scalars[b] = scalar;
                    push_child(bins, bin_scalars, acc);
                }
            }
            if p.bins.len() < ctx.k {
                let mut bins = p.bins.clone();
                bins.push(vec![g]);
                if let Some(scalar) = ctx.memory_scalar(oracle, bins.last().expect("just pushed")) {
                    let mut bin_scalars = p.bin_scalars.clone();
                    bin_scalars.push(scalar);
                    push_child(bins, bin_scalars, p.acc + scalar);
                }
            }
        }
        if next.is_empty() {
            return next; // every branch infeasible or bounded out
        }
        level = next;
    }
    level
}

/// Outcome of one explored subtree: the best strict improvement over
/// the greedy incumbent found inside it, if any, plus the nodes the
/// exploration consumed.
struct SubtreeResult {
    val: f64,
    bins: Option<Vec<Vec<BasicGroupId>>>,
    nodes: u64,
}

/// Lock-free monotone minimum over non-negative `f64`s (bit order and
/// value order coincide for non-negative IEEE-754 doubles, but compare
/// as floats anyway for clarity).
fn fetch_min_f64(atomic: &AtomicU64, val: f64) {
    let mut cur = atomic.load(Ordering::Relaxed);
    while val < f64::from_bits(cur) {
        match atomic.compare_exchange_weak(cur, val.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => break,
            Err(c) => cur = c,
        }
    }
}

/// Branch-and-bound assignment of the sweep's groups into exactly `k`
/// on-chip memories, fanned out over `workers` threads. Returns `None`
/// when infeasible under the port limit, plus the branch-and-bound
/// nodes consumed. Deterministic: the result is bit-identical for every
/// worker count (see module docs); the node count is deterministic for
/// `workers <= 1`.
fn assign_on_chip(
    sweep: &OnChipSweep<'_>,
    oracle: &mut PortOracle,
    k: usize,
    workers: usize,
) -> (Option<Vec<MemoryInstance>>, u64) {
    if sweep.order.is_empty() || k > sweep.order.len() {
        return (None, 0);
    }
    let ctx = SearchCtx { sweep, k };
    let options = sweep.options;

    // Greedy incumbent: the first k groups open their own memories, the
    // rest join wherever the scalar cost grows least. Seeds the bound so
    // the node limit degrades to "greedy + partial improvement" instead
    // of "no answer".
    let greedy: Option<(f64, Vec<Vec<BasicGroupId>>)> = {
        let mut bins: Vec<Vec<BasicGroupId>> = Vec::new();
        let mut bin_scalars: Vec<f64> = Vec::new();
        let mut feasible = true;
        for (i, &g) in ctx.order().iter().enumerate() {
            if i < k {
                bins.push(vec![g]);
                match ctx.memory_scalar(oracle, &bins[i]) {
                    Some(s) => bin_scalars.push(s),
                    None => {
                        feasible = false;
                        break;
                    }
                }
                continue;
            }
            let mut choice: Option<(usize, f64)> = None;
            for b in 0..bins.len() {
                bins[b].push(g);
                if let Some(s) = ctx.memory_scalar(oracle, &bins[b]) {
                    let delta = s - bin_scalars[b];
                    if choice.map(|(_, d)| delta < d).unwrap_or(true) {
                        choice = Some((b, delta));
                    }
                }
                bins[b].pop();
            }
            match choice {
                Some((b, _)) => {
                    bins[b].push(g);
                    bin_scalars[b] = ctx
                        .memory_scalar(oracle, &bins[b])
                        .expect("feasibility just checked");
                }
                None => {
                    feasible = false;
                    break;
                }
            }
        }
        (feasible && bins.len() == k).then(|| (bin_scalars.iter().sum(), bins))
    };
    let greedy_val = greedy.as_ref().map(|(v, _)| *v).unwrap_or(f64::INFINITY);

    // Split the canonical tree into deterministic subtrees.
    let prefixes = expand_prefixes(&ctx, oracle, greedy_val);

    // Explore one subtree with a private node budget against a fixed
    // bound. The outcome is a pure function of (prefix, bound_val,
    // budget), so determinism only requires those to be chosen
    // deterministically.
    let explore_one = |oracle: &mut PortOracle, p: &Prefix, bound_val: f64, budget: u64| {
        if p.depth == ctx.order().len() {
            // The whole tree fit into the prefix expansion: the
            // prefix *is* a complete assignment.
            if p.bins.len() == k && p.acc < bound_val {
                return SubtreeResult {
                    val: p.acc,
                    bins: Some(p.bins.clone()),
                    nodes: 1,
                };
            }
            return SubtreeResult {
                val: f64::INFINITY,
                bins: None,
                nodes: 1,
            };
        }
        let mut dfs = Dfs {
            ctx: &ctx,
            best_scalar: bound_val,
            best: None,
            nodes: 0,
            node_limit: budget,
        };
        let mut bins = p.bins.clone();
        let mut bin_scalars = p.bin_scalars.clone();
        dfs.recurse(oracle, p.depth, &mut bins, &mut bin_scalars, p.acc);
        SubtreeResult {
            val: if dfs.best.is_some() {
                dfs.best_scalar
            } else {
                f64::INFINITY
            },
            bins: dfs.best,
            nodes: dfs.nodes,
        }
    };

    // Seed phase: the subtree with the smallest lower bound (earliest on
    // ties) is explored first, alone, with the *full* node budget — it is
    // the most likely home of the optimum. Its result tightens the bound
    // every other subtree starts from — deterministically, since the
    // choice of seed and its search depend on nothing timing-related.
    // This recovers most of the pruning power a serial DFS gets from its
    // evolving incumbent.
    let lower_bound = |p: &Prefix| p.acc + ctx.node_bound(p.depth, p.bins.len());
    let seed_idx = prefixes
        .iter()
        .enumerate()
        .min_by(|(i, a), (j, b)| lower_bound(a).total_cmp(&lower_bound(b)).then(i.cmp(j)))
        .map(|(i, _)| i);
    let seed_res =
        seed_idx.map(|i| explore_one(oracle, &prefixes[i], greedy_val, options.node_limit));
    let seed_nodes = seed_res.as_ref().map(|r| r.nodes).unwrap_or(0);
    let seed_val = match &seed_res {
        Some(r) if r.bins.is_some() => r.val,
        _ => greedy_val,
    };

    // The seed's consumption is charged against the global node limit;
    // only the remainder is split over the other subtrees. When the
    // search is exact the seed finishes cheaply and the others keep a
    // full share; when the limit is exhausted the others degrade to
    // zero-budget probes instead of doubling the total node spend. The
    // split is a pure function of the (deterministic) seed search, so
    // results stay independent of worker count and thread timing.
    let node_budget = options.node_limit.saturating_sub(seed_nodes) / prefixes.len().max(1) as u64;

    // Fan the remaining subtrees over the workers. The published atomic
    // bound only ever *skips* whole subtrees (never steers a running
    // search): a subtree that could win the deterministic reduction has
    // a lower bound at most the final minimum and is therefore never
    // skipped, so the result is independent of thread timing.
    let bound = AtomicU64::new(seed_val.to_bits());
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<SubtreeResult>>> =
        (0..prefixes.len()).map(|_| Mutex::new(None)).collect();
    // Claim subtrees most-promising-first (a fixed permutation) so the
    // published bound tightens as early as possible.
    let claim_order: Vec<usize> = {
        let mut idx: Vec<usize> = (0..prefixes.len()).collect();
        idx.sort_by(|&a, &b| {
            lower_bound(&prefixes[a])
                .total_cmp(&lower_bound(&prefixes[b]))
                .then(a.cmp(&b))
        });
        idx
    };
    let explore = |worker_oracle: &mut PortOracle| loop {
        let c = next.fetch_add(1, Ordering::Relaxed);
        if c >= claim_order.len() {
            break;
        }
        let j = claim_order[c];
        if Some(j) == seed_idx {
            continue; // already explored in the seed phase
        }
        let p = &prefixes[j];
        let res = if lower_bound(p) > f64::from_bits(bound.load(Ordering::Relaxed)) {
            // Strictly above the best published incumbent: nothing in
            // this subtree can win the reduction. (Strict comparison: a
            // subtree holding a solution equal to the final minimum is
            // never skipped, so determinism is preserved.)
            SubtreeResult {
                val: f64::INFINITY,
                bins: None,
                nodes: 0,
            }
        } else {
            explore_one(worker_oracle, p, seed_val, node_budget)
        };
        if res.bins.is_some() {
            fetch_min_f64(&bound, res.val);
        }
        *results[j].lock().expect("no poisoned subtree slot") = Some(res);
    };

    let workers = workers.min(prefixes.len().max(1));
    if workers <= 1 {
        // Straight serial path: the claim loop runs inline on the
        // calling thread, in canonical claim order, spawning nothing.
        explore(oracle);
    } else {
        thread::scope(|scope| {
            for _ in 0..workers {
                let mut worker_oracle = oracle.clone();
                crate::engine::note_thread_spawn();
                scope.spawn(move || explore(&mut worker_oracle));
            }
        });
    }

    // Deterministic reduction: greedy incumbent, then the seed subtree,
    // then the remaining subtrees in canonical depth-first order, each
    // winning only on strict improvement — the serial first-found-
    // minimum tie-break.
    let mut nodes = seed_nodes;
    let mut best_val = greedy_val;
    let mut best_bins = greedy.map(|(_, b)| b);
    if let Some(r) = &seed_res {
        if let Some(b) = &r.bins {
            if r.val < best_val {
                best_val = r.val;
                best_bins = Some(b.clone());
            }
        }
    }
    for slot in &results {
        let res = slot.lock().expect("no poisoned subtree slot");
        if let Some(r) = res.as_ref() {
            nodes += r.nodes;
            if r.val < best_val {
                if let Some(b) = &r.bins {
                    best_val = r.val;
                    best_bins = Some(b.clone());
                }
            }
        }
    }

    let Some(bins) = best_bins else {
        return (None, nodes);
    };
    let mems = bins
        .iter()
        .map(|members| {
            let mask: u64 = members.iter().map(|g| 1u64 << g.index()).sum();
            let ports = oracle.required(mask);
            on_chip_memory(
                sweep.spec,
                sweep.traffic,
                sweep.lib,
                members,
                ports,
                sweep.time_s,
            )
        })
        .collect();
    (Some(mems), nodes)
}

/// Root lower bounds of the on-chip search for `k` memories, as
/// `(solo, pairwise)` — test instrumentation for the admissibility and
/// dominance properties (the pairwise bound must sit between the solo
/// bound and the true optimal on-chip cost). Returns `Ok(None)` when the
/// spec has no on-chip candidate groups or `k` is out of range.
///
/// # Errors
///
/// Returns [`ExploreError::BadCostWeights`] for invalid weights and
/// [`ExploreError::NoFeasibleAssignment`] for group sets beyond the
/// mask limits, mirroring [`assign`].
#[doc(hidden)]
pub fn root_lower_bounds(
    spec: &AppSpec,
    scbd: &ScbdResult,
    lib: &MemLibrary,
    options: &AllocOptions,
    k: u32,
) -> Result<Option<(f64, f64)>, ExploreError> {
    check_cost_weights(options.area_weight, options.power_weight)?;
    let traffic = group_traffic(spec);
    let time_s = spec.real_time_seconds();
    let mut oracle = PortOracle::new(spec, scbd);
    let (_, on_groups) = split_accessed_groups(spec, &traffic)?;
    if on_groups.is_empty() || k == 0 || k as usize > on_groups.len() {
        return Ok(None);
    }
    let mut order = on_groups;
    order.sort_by(|a, b| {
        traffic[b.index()]
            .total()
            .total_cmp(&traffic[a.index()].total())
            .then(a.cmp(b))
    });
    let build = |kind, oracle: &mut PortOracle| {
        SuffixBound::build(spec, &traffic, lib, options, time_s, &order, oracle, kind)
    };
    let solo = build(BoundKind::Solo, &mut oracle);
    let pairwise = build(BoundKind::Pairwise, &mut oracle);
    let k = k as usize;
    Ok(Some((solo.bound(0, 0, k), pairwise.bound(0, 0, k))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scbd;
    use memx_ir::{AccessKind, AppSpecBuilder};

    fn lib() -> MemLibrary {
        MemLibrary::default_07um()
    }

    /// Spec with several on-chip groups of differing widths plus one
    /// off-chip frame store.
    fn mixed_spec(budget: u64) -> AppSpec {
        let mut b = AppSpecBuilder::new("t");
        let frame = b
            .basic_group_placed("frame", 1 << 20, 8, Placement::OffChip)
            .unwrap();
        let narrow = b.basic_group("narrow", 512, 2).unwrap();
        let wide = b.basic_group("wide", 512, 20).unwrap();
        let mid = b.basic_group("mid", 256, 8).unwrap();
        let n = b.loop_nest("l", 100_000).unwrap();
        let a0 = b.access(n, frame, AccessKind::Read).unwrap();
        let a1 = b.access(n, narrow, AccessKind::Read).unwrap();
        let a2 = b.access(n, wide, AccessKind::Read).unwrap();
        let a3 = b.access(n, mid, AccessKind::Write).unwrap();
        b.depend(n, a0, a3).unwrap();
        b.depend(n, a1, a3).unwrap();
        b.depend(n, a2, a3).unwrap();
        b.cycle_budget(budget).real_time_seconds(0.1);
        b.build().unwrap()
    }

    /// Spec with four overlapping off-chip stores (so the off-chip
    /// partition enumeration has real work) plus two on-chip groups.
    fn off_heavy_spec() -> AppSpec {
        let mut b = AppSpecBuilder::new("t");
        let frames: Vec<_> = (0..4)
            .map(|i| {
                b.basic_group_placed(
                    format!("frame{i}"),
                    (1 << 18) << i,
                    8 + 2 * i as u32,
                    Placement::OffChip,
                )
                .unwrap()
            })
            .collect();
        let small = b.basic_group("small", 512, 8).unwrap();
        let tiny = b.basic_group("tiny", 128, 4).unwrap();
        let n = b.loop_nest("l", 50_000).unwrap();
        let mut reads = Vec::new();
        for &f in &frames {
            reads.push(b.access(n, f, AccessKind::Read).unwrap());
        }
        let w0 = b.access(n, small, AccessKind::Write).unwrap();
        let w1 = b.access(n, tiny, AccessKind::Write).unwrap();
        for &r in &reads {
            b.depend(n, r, w0).unwrap();
        }
        b.depend(n, w0, w1).unwrap();
        // Tight enough that the frame reads overlap each other.
        b.cycle_budget(400_000).real_time_seconds(0.05);
        b.build().unwrap()
    }

    #[test]
    fn assignment_produces_positive_costs() {
        let spec = mixed_spec(2_000_000);
        let s = scbd::distribute(&spec).unwrap();
        let org = assign(&spec, &s, &lib(), &AllocOptions::default()).unwrap();
        assert!(org.cost.on_chip_area_mm2 > 0.0);
        assert!(org.cost.on_chip_power_mw > 0.0);
        assert!(org.cost.off_chip_power_mw > 0.0);
        assert_eq!(org.off_chip_count(), 1);
        assert!(org.on_chip_count() >= 1);
    }

    #[test]
    fn fixed_allocation_count_is_respected() {
        let spec = mixed_spec(2_000_000);
        let s = scbd::distribute(&spec).unwrap();
        for k in 1..=3 {
            let options = AllocOptions {
                on_chip_memories: Some(k),
                ..AllocOptions::default()
            };
            let org = assign(&spec, &s, &lib(), &options).unwrap();
            assert_eq!(org.on_chip_count(), k as usize, "k={k}");
        }
    }

    #[test]
    fn more_memories_less_on_chip_power() {
        // Table 4's monotone power column.
        let spec = mixed_spec(2_000_000);
        let s = scbd::distribute(&spec).unwrap();
        let power = |k: u32| {
            let options = AllocOptions {
                on_chip_memories: Some(k),
                ..AllocOptions::default()
            };
            assign(&spec, &s, &lib(), &options)
                .unwrap()
                .cost
                .on_chip_power_mw
        };
        assert!(power(3) <= power(1));
    }

    #[test]
    fn one_memory_wastes_bitwidth() {
        let spec = mixed_spec(2_000_000);
        let s = scbd::distribute(&spec).unwrap();
        let options = AllocOptions {
            on_chip_memories: Some(1),
            ..AllocOptions::default()
        };
        let org = assign(&spec, &s, &lib(), &options).unwrap();
        let on_chip = org
            .memories
            .iter()
            .find(|m| matches!(m.kind, MemoryKind::OnChip))
            .unwrap();
        // The single memory is as wide as the widest group.
        assert_eq!(on_chip.width, 20);
        assert_eq!(on_chip.words, 512 + 512 + 256);
    }

    #[test]
    fn tight_budget_forces_multiport_or_split() {
        // Two parallel reads funnel into one write under a 2-cycle
        // budget: the reads must overlap, so sharing one memory needs
        // two ports while two memories stay single-ported.
        let mut b = AppSpecBuilder::new("t");
        let narrow = b.basic_group("narrow", 512, 2).unwrap();
        let wide = b.basic_group("wide", 512, 20).unwrap();
        let n = b.loop_nest("l", 1000).unwrap();
        let a0 = b.access(n, narrow, AccessKind::Read).unwrap();
        let a1 = b.access(n, wide, AccessKind::Read).unwrap();
        let a2 = b.access(n, narrow, AccessKind::Write).unwrap();
        b.depend(n, a0, a2).unwrap();
        b.depend(n, a1, a2).unwrap();
        b.cycle_budget(2000).real_time_seconds(0.01);
        let spec = b.build().unwrap();
        let s = scbd::distribute(&spec).unwrap();
        let options = AllocOptions {
            on_chip_memories: Some(1),
            ..AllocOptions::default()
        };
        let org = assign(&spec, &s, &lib(), &options).unwrap();
        let on_chip = org
            .memories
            .iter()
            .find(|m| matches!(m.kind, MemoryKind::OnChip))
            .unwrap();
        assert!(on_chip.ports >= 2, "ports = {}", on_chip.ports);
        // Splitting into two memories avoids the multi-port penalty.
        let options2 = AllocOptions {
            on_chip_memories: Some(2),
            ..AllocOptions::default()
        };
        let org2 = assign(&spec, &s, &lib(), &options2).unwrap();
        let max_ports = org2
            .memories
            .iter()
            .filter(|m| matches!(m.kind, MemoryKind::OnChip))
            .map(|m| m.ports)
            .max()
            .unwrap();
        assert_eq!(max_ports, 1);
    }

    #[test]
    fn sweep_finds_a_no_worse_organization_than_any_fixed_k() {
        let spec = mixed_spec(2_000_000);
        let s = scbd::distribute(&spec).unwrap();
        let sweep = assign(&spec, &s, &lib(), &AllocOptions::default()).unwrap();
        let sweep_scalar = sweep.cost.scalar(1.0, 1.0);
        for k in 1..=3 {
            let options = AllocOptions {
                on_chip_memories: Some(k),
                ..AllocOptions::default()
            };
            let fixed = assign(&spec, &s, &lib(), &options).unwrap();
            assert!(sweep_scalar <= fixed.cost.scalar(1.0, 1.0) + 1e-9, "k={k}");
        }
    }

    #[test]
    fn min_ports_respected() {
        let mut b = AppSpecBuilder::new("t");
        let g = b
            .basic_group_full("buf", 5 * 1024, 8, Placement::OnChip, 2)
            .unwrap();
        let n = b.loop_nest("l", 1000).unwrap();
        b.access(n, g, AccessKind::Read).unwrap();
        b.cycle_budget(100_000).real_time_seconds(0.01);
        let spec = b.build().unwrap();
        let s = scbd::distribute(&spec).unwrap();
        let org = assign(&spec, &s, &lib(), &AllocOptions::default()).unwrap();
        assert_eq!(org.memories[0].ports, 2);
    }

    #[test]
    fn partition_enumeration_counts_bell_numbers() {
        assert_eq!(enumerate_partitions(1).len(), 1);
        assert_eq!(enumerate_partitions(2).len(), 2);
        assert_eq!(enumerate_partitions(3).len(), 5);
        assert_eq!(enumerate_partitions(4).len(), 15);
    }

    #[test]
    fn off_chip_scan_counts_bell_partitions() {
        // The streaming scan visits exactly the Bell-number many
        // partitions the materializing enumeration used to.
        let spec = off_heavy_spec();
        let s = scbd::distribute(&spec).unwrap();
        let (_, stats) = assign_with_stats(&spec, &s, &lib(), &AllocOptions::default()).unwrap();
        // 4 off-chip groups -> at most Bell(4) = 15 partitions (fewer
        // only if bandwidth prunes some), and at least 1.
        assert!(stats.off_chip_partitions >= 1);
        assert!(stats.off_chip_partitions <= 15, "{stats:?}");
    }

    #[test]
    fn zero_access_groups_are_foreground() {
        let mut b = AppSpecBuilder::new("t");
        let used = b.basic_group("used", 64, 8).unwrap();
        let _unused = b.basic_group("unused", 64, 8).unwrap();
        let n = b.loop_nest("l", 10).unwrap();
        b.access(n, used, AccessKind::Read).unwrap();
        b.cycle_budget(1000);
        let spec = b.build().unwrap();
        let s = scbd::distribute(&spec).unwrap();
        let org = assign(&spec, &s, &lib(), &AllocOptions::default()).unwrap();
        let assigned: usize = org.memories.iter().map(|m| m.groups.len()).sum();
        assert_eq!(assigned, 1);
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let spec = mixed_spec(2_000_000);
        let s = scbd::distribute(&spec).unwrap();
        for on_chip_memories in [None, Some(1), Some(2), Some(3)] {
            let serial = assign(
                &spec,
                &s,
                &lib(),
                &AllocOptions {
                    on_chip_memories,
                    workers: 1,
                    ..AllocOptions::default()
                },
            )
            .unwrap();
            for workers in [2, 4, 7] {
                let parallel = assign(
                    &spec,
                    &s,
                    &lib(),
                    &AllocOptions {
                        on_chip_memories,
                        workers,
                        ..AllocOptions::default()
                    },
                )
                .unwrap();
                assert_eq!(serial, parallel, "k={on_chip_memories:?} workers={workers}");
            }
        }
    }

    #[test]
    fn off_chip_and_sweep_parallel_match_serial_for_all_worker_counts() {
        // The issue's determinism matrix: off-chip enumeration and the
        // k-sweep must be bit-identical for workers in {1, 2, 8}.
        let spec = off_heavy_spec();
        let s = scbd::distribute(&spec).unwrap();
        for bound in [BoundKind::Solo, BoundKind::Pairwise] {
            let serial = assign(
                &spec,
                &s,
                &lib(),
                &AllocOptions {
                    workers: 1,
                    bound,
                    ..AllocOptions::default()
                },
            )
            .unwrap();
            assert!(serial.off_chip_count() >= 1);
            for workers in [2, 8] {
                let parallel = assign(
                    &spec,
                    &s,
                    &lib(),
                    &AllocOptions {
                        workers,
                        bound,
                        ..AllocOptions::default()
                    },
                )
                .unwrap();
                assert_eq!(serial, parallel, "bound={bound:?} workers={workers}");
            }
        }
    }

    #[test]
    fn node_limit_exhaustion_returns_deterministic_incumbent() {
        let spec = mixed_spec(2_000_000);
        let s = scbd::distribute(&spec).unwrap();
        // A node limit this small exhausts every subtree immediately:
        // the search must still return the greedy incumbent (never an
        // error) and do so identically across runs and worker counts.
        let run = |workers: usize| {
            assign(
                &spec,
                &s,
                &lib(),
                &AllocOptions {
                    node_limit: 1,
                    workers,
                    ..AllocOptions::default()
                },
            )
            .expect("incumbent, not an error")
        };
        let serial_a = run(1);
        let serial_b = run(1);
        assert_eq!(serial_a, serial_b, "serial runs must be reproducible");
        for workers in [2, 4, 8] {
            assert_eq!(serial_a, run(workers), "workers={workers}");
        }
        // The exhausted search still yields a complete organization.
        assert!(serial_a.on_chip_count() >= 1);
    }

    #[test]
    fn sweep_exhaustion_is_deterministic_on_the_off_heavy_spec() {
        // Same exhaustion matrix, but on a spec that exercises both the
        // off-chip enumeration and a multi-size k-sweep.
        let spec = off_heavy_spec();
        let s = scbd::distribute(&spec).unwrap();
        let run = |workers: usize| {
            assign(
                &spec,
                &s,
                &lib(),
                &AllocOptions {
                    node_limit: 1,
                    workers,
                    ..AllocOptions::default()
                },
            )
            .expect("incumbent, not an error")
        };
        let serial = run(1);
        for workers in [2, 8] {
            assert_eq!(serial, run(workers), "workers={workers}");
        }
    }

    #[test]
    fn solo_and_pairwise_bounds_agree_on_exact_results() {
        // Both bounds are admissible, so with an unexhausted node budget
        // the search returns the same optimum either way.
        let spec = mixed_spec(2_000_000);
        let s = scbd::distribute(&spec).unwrap();
        for on_chip_memories in [None, Some(1), Some(2), Some(3)] {
            let solo = assign(
                &spec,
                &s,
                &lib(),
                &AllocOptions {
                    on_chip_memories,
                    bound: BoundKind::Solo,
                    ..AllocOptions::default()
                },
            )
            .unwrap();
            let pairwise = assign(
                &spec,
                &s,
                &lib(),
                &AllocOptions {
                    on_chip_memories,
                    bound: BoundKind::Pairwise,
                    ..AllocOptions::default()
                },
            )
            .unwrap();
            assert_eq!(solo, pairwise, "k={on_chip_memories:?}");
        }
    }

    /// Many on-chip groups with mixed widths and a tight enough budget
    /// to create real port conflicts — large enough that the
    /// branch-and-bound actually expands nodes.
    fn many_group_spec() -> AppSpec {
        let mut b = AppSpecBuilder::new("t");
        let groups: Vec<_> = (0..8)
            .map(|i| {
                b.basic_group(format!("g{i}"), 128 << (i % 4), 2 + 3 * (i as u32 % 5))
                    .unwrap()
            })
            .collect();
        let n = b.loop_nest("l", 10_000).unwrap();
        let mut reads = Vec::new();
        for &g in &groups[..7] {
            reads.push(b.access(n, g, AccessKind::Read).unwrap());
        }
        let w = b.access(n, groups[7], AccessKind::Write).unwrap();
        for &r in &reads {
            b.depend(n, r, w).unwrap();
        }
        // Tight: the seven reads must overlap heavily.
        b.cycle_budget(30_000).real_time_seconds(0.01);
        b.build().unwrap()
    }

    #[test]
    fn pairwise_bound_visits_no_more_nodes_than_solo() {
        let spec = many_group_spec();
        let s = scbd::distribute(&spec).unwrap();
        let nodes = |bound| {
            let (_, stats) = assign_with_stats(
                &spec,
                &s,
                &lib(),
                &AllocOptions {
                    workers: 1,
                    bound,
                    ..AllocOptions::default()
                },
            )
            .unwrap();
            stats.bb_nodes
        };
        let solo = nodes(BoundKind::Solo);
        let pairwise = nodes(BoundKind::Pairwise);
        assert!(pairwise <= solo, "pairwise {pairwise} > solo {solo}");
        assert!(solo > 0);
    }

    #[test]
    fn root_bounds_are_ordered_and_admissible_on_the_mixed_spec() {
        let spec = mixed_spec(2_000_000);
        let s = scbd::distribute(&spec).unwrap();
        let options = AllocOptions::default();
        for k in 1..=3u32 {
            let (solo, pairwise) = root_lower_bounds(&spec, &s, &lib(), &options, k)
                .unwrap()
                .expect("on-chip groups exist");
            assert!(solo <= pairwise + 1e-12, "k={k}");
            // Admissibility against the exact fixed-k optimum (the
            // sweep's on-chip memories only).
            let org = assign(
                &spec,
                &s,
                &lib(),
                &AllocOptions {
                    on_chip_memories: Some(k),
                    ..AllocOptions::default()
                },
            )
            .unwrap();
            let on_chip: CostBreakdown = org
                .memories
                .iter()
                .filter(|m| matches!(m.kind, MemoryKind::OnChip))
                .map(|m| m.cost)
                .sum();
            let optimum = on_chip.scalar(options.area_weight, options.power_weight);
            assert!(
                pairwise <= optimum + 1e-9,
                "k={k}: pairwise bound {pairwise} exceeds optimum {optimum}"
            );
        }
    }

    #[test]
    fn accessed_groups_beyond_mask_limit_are_rejected_not_ub() {
        // 70 groups, only the last two accessed: their indices (68, 69)
        // cannot be bitmask positions in a u64. This must surface as a
        // clean error, not a shift overflow / aliased-mask organization.
        let mut b = AppSpecBuilder::new("t");
        for i in 0..68 {
            b.basic_group(format!("fg{i}"), 16, 8).unwrap();
        }
        let hi_a = b.basic_group("hi_a", 64, 8).unwrap();
        let hi_b = b.basic_group("hi_b", 64, 8).unwrap();
        let n = b.loop_nest("l", 100).unwrap();
        b.access(n, hi_a, AccessKind::Read).unwrap();
        b.access(n, hi_b, AccessKind::Read).unwrap();
        b.cycle_budget(10_000);
        let spec = b.build().unwrap();
        let s = scbd::distribute(&spec).unwrap();
        let err = assign(&spec, &s, &lib(), &AllocOptions::default()).unwrap_err();
        assert!(matches!(err, ExploreError::NoFeasibleAssignment { .. }));
        assert!(err.to_string().contains("mask limit"), "{err}");
    }

    #[test]
    fn nan_weights_are_rejected_not_panicking() {
        let spec = mixed_spec(2_000_000);
        let s = scbd::distribute(&spec).unwrap();
        for (aw, pw) in [
            (f64::NAN, 1.0),
            (1.0, f64::NAN),
            (f64::INFINITY, 1.0),
            (-1.0, 1.0),
            (1.0, -0.5),
        ] {
            let err = assign(
                &spec,
                &s,
                &lib(),
                &AllocOptions {
                    area_weight: aw,
                    power_weight: pw,
                    ..AllocOptions::default()
                },
            )
            .unwrap_err();
            assert!(
                matches!(err, ExploreError::BadCostWeights { .. }),
                "weights ({aw}, {pw})"
            );
        }
    }

    #[test]
    fn serial_assignment_spawns_no_threads() {
        // The 1-worker path must be a genuinely straight serial path:
        // the spawn counter (thread-local, so parallel test runners do
        // not interfere) must not move.
        let spec = off_heavy_spec();
        let s = scbd::distribute(&spec).unwrap();
        let before = crate::engine::thread_spawns_on_current_thread();
        let org = assign(
            &spec,
            &s,
            &lib(),
            &AllocOptions {
                workers: 1,
                ..AllocOptions::default()
            },
        )
        .unwrap();
        assert!(org.on_chip_count() >= 1);
        assert_eq!(
            crate::engine::thread_spawns_on_current_thread(),
            before,
            "workers=1 assignment spawned a thread"
        );
        // Sanity check of the instrument itself: a parallel run spawns.
        let before = crate::engine::thread_spawns_on_current_thread();
        assign(
            &spec,
            &s,
            &lib(),
            &AllocOptions {
                workers: 4,
                ..AllocOptions::default()
            },
        )
        .unwrap();
        assert!(crate::engine::thread_spawns_on_current_thread() > before);
    }

    #[test]
    fn too_many_off_chip_groups_error_is_clean() {
        let mut b = AppSpecBuilder::new("t");
        let groups: Vec<_> = (0..13)
            .map(|i| {
                b.basic_group_placed(format!("f{i}"), 2048, 8, Placement::OffChip)
                    .unwrap()
            })
            .collect();
        let n = b.loop_nest("l", 10).unwrap();
        for &g in &groups {
            b.access(n, g, AccessKind::Read).unwrap();
        }
        b.cycle_budget(100_000);
        let spec = b.build().unwrap();
        let s = scbd::distribute(&spec).unwrap();
        let err = assign(&spec, &s, &lib(), &AllocOptions::default()).unwrap_err();
        assert!(
            matches!(
                err,
                ExploreError::TooManyOffChipGroups {
                    count: 13,
                    limit: MAX_OFF_CHIP_GROUPS
                }
            ),
            "{err}"
        );
    }
}
