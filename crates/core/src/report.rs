//! Designer-facing textual reports.
//!
//! The methodology lives and dies by the designer being able to *read*
//! the feedback: which arrays dominate the traffic, how the budget was
//! distributed, what the final memory organization looks like. This
//! module renders the intermediate artifacts as plain-text reports, the
//! way the paper's tables and figures present them.

use std::fmt::Write as _;

use memx_ir::AppSpec;

use crate::alloc::{AllocStats, MemoryKind, Organization};
use crate::scbd::ScbdResult;

/// Renders the pruned specification: groups ordered by traffic, loop
/// nests with their iteration counts and body sizes.
pub fn spec_report(spec: &AppSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Specification `{}`", spec.name());
    let _ = writeln!(
        out,
        "  cycle budget {} | real time {:.3} s | {:.2} M accesses/execution",
        spec.cycle_budget(),
        spec.real_time_seconds(),
        spec.total_access_count() / 1e6
    );
    let _ = writeln!(out, "  basic groups (by traffic):");
    let mut groups: Vec<_> = spec.basic_groups().iter().collect();
    groups.sort_by(|a, b| {
        let ta: f64 = {
            let (r, w) = spec.total_accesses(a.id());
            r + w
        };
        let tb: f64 = {
            let (r, w) = spec.total_accesses(b.id());
            r + w
        };
        tb.total_cmp(&ta)
    });
    for g in groups {
        let (r, w) = spec.total_accesses(g.id());
        let _ = writeln!(
            out,
            "    {:<16} {:>9} x {:>2} bit  {:<9} R {:>12.0} W {:>12.0}",
            g.name(),
            g.words(),
            g.bitwidth(),
            format!("{}", g.placement()),
            r,
            w
        );
    }
    let _ = writeln!(out, "  loop nests:");
    for n in spec.loop_nests() {
        let _ = writeln!(
            out,
            "    {:<16} x{:>9}  {} accesses, {} deps, critical path {}",
            n.name(),
            n.iterations(),
            n.accesses().len(),
            n.dependencies().len(),
            n.critical_path_len()
        );
    }
    out
}

/// Renders the distributed schedule: per-body budgets, pressure, and
/// the overall slack.
pub fn schedule_report(schedule: &ScbdResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Schedule: {} / {} cycles used (slack {})",
        schedule.used_cycles,
        schedule.total_budget,
        schedule.slack()
    );
    for body in &schedule.bodies {
        let busy = body.busy_cycles();
        let _ = writeln!(
            out,
            "  {:<16} budget {:>3} cycles ({} busy), x{:>9}, pressure {:.1}",
            body.name,
            body.budget,
            busy,
            body.iterations,
            body.pressure()
        );
    }
    out
}

/// Renders the final memory organization with its assignment, the way
/// §4.6 concludes the flow.
pub fn organization_report(spec: &AppSpec, org: &Organization) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Memory organization: {} on-chip + {} off-chip memories, {}",
        org.on_chip_count(),
        org.off_chip_count(),
        org.cost
    );
    for mem in &org.memories {
        let names: Vec<&str> = mem.groups.iter().map(|&g| spec.group(g).name()).collect();
        let kind = match &mem.kind {
            MemoryKind::OnChip => "on-chip SRAM".to_owned(),
            MemoryKind::OffChip(sel) => format!("off-chip {}", sel.part()),
        };
        let _ = writeln!(
            out,
            "  {:<26} {:>9} x {:>2} bit, {} port(s): {}",
            kind,
            mem.words,
            mem.width,
            mem.ports,
            names.join(", ")
        );
    }
    out
}

/// Renders an allocation run's search-effort counters ([`AllocStats`]):
/// how hard both branch-and-bound solvers worked, how much the
/// symmetric-group dominance rule cut, and how many incremental bound
/// updates replaced from-scratch recomputation. Telemetry only — none
/// of these numbers affect the organization — but they are what tells a
/// designer whether an instance is near its node budget.
pub fn search_report(stats: &AllocStats) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Allocation search effort: {} on-chip nodes ({} sweep skips)",
        stats.bb_nodes, stats.sweep_skips
    );
    let _ = writeln!(
        out,
        "  off-chip: {} nodes / {} partitions reached (exhaustive scan: {})",
        stats.off_chip_bb_nodes, stats.off_chip_partitions, stats.off_chip_exhaustive_partitions
    );
    let _ = writeln!(
        out,
        "  pruned {} subtree(s), dominance cut {} symmetric branch(es)",
        stats.off_chip_pruned_subtrees, stats.off_chip_dominance_cuts
    );
    let _ = writeln!(
        out,
        "  {} incremental bound updates (no full re-summations in the hot loops)",
        stats.bound_incremental_updates
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{assign, assign_with_stats, AllocOptions};
    use crate::scbd;
    use memx_ir::{AccessKind, AppSpecBuilder, Placement};
    use memx_memlib::MemLibrary;

    fn spec() -> AppSpec {
        let mut b = AppSpecBuilder::new("demo");
        let frame = b
            .basic_group_placed("frame", 1 << 16, 8, Placement::OffChip)
            .unwrap();
        let lut = b.basic_group("lut", 256, 12).unwrap();
        let n = b.loop_nest("scan", 1 << 16).unwrap();
        let r = b.access(n, frame, AccessKind::Read).unwrap();
        let l = b.access(n, lut, AccessKind::Read).unwrap();
        let w = b.access(n, frame, AccessKind::Write).unwrap();
        b.depend(n, r, w).unwrap();
        b.depend(n, l, w).unwrap();
        b.cycle_budget(1 << 20).real_time_seconds(0.05);
        b.build().unwrap()
    }

    #[test]
    fn spec_report_lists_groups_and_nests() {
        let s = spec_report(&spec());
        assert!(s.contains("frame"));
        assert!(s.contains("lut"));
        assert!(s.contains("scan"));
        assert!(s.contains("off-chip"));
        // Traffic ordering: frame (2 accesses/iter) before lut (1).
        let frame_pos = s.find("frame").unwrap();
        let lut_pos = s.find("lut").unwrap();
        assert!(frame_pos < lut_pos);
    }

    #[test]
    fn schedule_report_shows_budgets() {
        let spec = spec();
        let sched = scbd::distribute(&spec).unwrap();
        let s = schedule_report(&sched);
        assert!(s.contains("Schedule:"));
        assert!(s.contains("scan"));
        assert!(s.contains("pressure"));
    }

    #[test]
    fn organization_report_shows_assignment() {
        let spec = spec();
        let sched = scbd::distribute(&spec).unwrap();
        let lib = MemLibrary::default_07um();
        let org = assign(&spec, &sched, &lib, &AllocOptions::default()).unwrap();
        let s = organization_report(&spec, &org);
        assert!(s.contains("on-chip SRAM"));
        assert!(s.contains("off-chip EDO"));
        assert!(s.contains("frame"));
    }

    #[test]
    fn search_report_shows_every_counter() {
        let spec = spec();
        let sched = scbd::distribute(&spec).unwrap();
        let lib = MemLibrary::default_07um();
        let (_, stats) = assign_with_stats(&spec, &sched, &lib, &AllocOptions::default()).unwrap();
        let s = search_report(&stats);
        assert!(s.contains("Allocation search effort"));
        assert!(s.contains("dominance cut"));
        assert!(s.contains("incremental bound updates"));
        assert!(
            s.contains(&format!(
                "{} incremental bound updates",
                stats.bound_incremental_updates
            )),
            "{s}"
        );
        assert!(stats.bound_incremental_updates > 0, "{stats:?}");
    }
}
