//! Persistent, disk-backed evaluation cache.
//!
//! The engine memoizes storage-cycle-budget distributions per batch (see
//! [`crate::engine`]), but every binary run and every CI job used to
//! recompute identical schedules from scratch. This module makes the
//! memoization *durable*: a content-addressed store under a cache
//! directory, carried across processes (and, via the CI cache, across
//! whole workflow runs), turning the table/figure suite incremental.
//!
//! # Entry kinds
//!
//! The store holds three kinds of entries, each in its own
//! subdirectory with its own `kind` discriminant in the record header:
//!
//! * **SCBD schedules** ([`EvalCache::distribute`]) — the storage-cycle
//!   budget distribution of one spec at one budget,
//! * **allocation solutions** ([`EvalCache::load_alloc`]) — the full
//!   [`crate::alloc::Organization`] *and* the [`crate::alloc::AllocStats`]
//!   of one solved allocation instance, so a hit short-circuits the
//!   branch-and-bound entirely while `[alloc nodes: N]` telemetry
//!   replays exactly what the stored solve cost,
//! * **priced off-chip block catalogs**
//!   ([`EvalCache::load_off_chip_blocks`]) — the lazy block-pricer memo
//!   of one off-chip partition search, so even an allocation *miss*
//!   (e.g. under a different node limit) starts with every subset it
//!   will price already priced.
//!
//! # Keying
//!
//! An entry is addressed by a [`CacheKey`]:
//!
//! * a **content hash**: for SCBD entries the specification's
//!   [`AppSpec::content_hash`] (every field that influences
//!   scheduling); for allocation entries a fingerprint of the *solver
//!   inputs* — the accessed groups (dimensions, minimum ports,
//!   traffic), the schedule's port-conflict slot table and the
//!   real-time window — so two specs that induce the same allocation
//!   instance share one entry,
//! * a **budget**: the cycle budget for SCBD entries, the
//!   branch-and-bound node limit for allocation entries (the incumbent
//!   under an exhausted budget depends on it),
//! * a **model fingerprint** — a stable hash over the model constants
//!   feeding the result (access timing + scheduler pressure weights
//!   for SCBD; the full [`memx_memlib::OnChipModel`], the off-chip part
//!   catalog and the energy calibration factors for allocation), so
//!   recalibrating the technology model invalidates every stale entry
//!   by construction (the key changes, old entries simply stop being
//!   found),
//! * a **knobs fingerprint** for solver options: the per-kind
//!   algorithm revision, plus — for allocation — every
//!   [`crate::alloc::AllocOptions`] field that steers the result
//!   (bound kind, memory-count constraint, cost weights, port cap).
//!   Worker count is deliberately *excluded*: the solver is documented
//!   (and CI-enforced) bit-identical for every worker count, so one
//!   entry serves them all.
//!
//! # Format and robustness
//!
//! Entries are small binary files: a magic/version header, the full key
//! echoed back (so a 64-bit filename collision can never serve the
//! wrong schedule), a length-prefixed payload and an FNV-1a checksum.
//! Writes go through a tempfile in the same directory followed by an
//! atomic rename, so concurrent writers (two processes racing on the
//! same key) each publish a complete entry and readers never observe a
//! torn file. Reads are corruption-tolerant by design: *any* anomaly —
//! truncation, a wrong version, a checksum mismatch, a key echo that
//! does not match — degrades to a silent recompute, never an error.
//! Derived data (the sparse occupancy table) is always rebuilt from the
//! serialized placements rather than trusted from disk.
//!
//! Cache hits are bit-identical to recomputation: every field round
//! trips exactly (integers verbatim, floats by bit pattern), which is
//! what lets CI diff cached against uncached runs byte for byte.
//!
//! # Example
//!
//! ```
//! use memx_core::cache::EvalCache;
//! use memx_ir::{AccessKind, AppSpecBuilder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = AppSpecBuilder::new("demo");
//! let g = b.basic_group("g", 64, 8)?;
//! let n = b.loop_nest("l", 100)?;
//! b.access(n, g, AccessKind::Read)?;
//! b.cycle_budget(10_000);
//! let spec = b.build()?;
//!
//! let dir = std::env::temp_dir().join("memx-cache-doc");
//! let cache = EvalCache::open(&dir)?;
//! let cold = cache.distribute(&spec, 10_000)?; // computes, then stores
//! let warm = cache.distribute(&spec, 10_000)?; // served from disk
//! assert_eq!(cold.total_budget, warm.total_budget);
//! assert!(cache.stats().scbd_hits >= 1);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

use std::error::Error;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use memx_ir::hash::StableHasher;
use memx_ir::{AppSpec, BasicGroupId, LoopNestId};
use memx_memlib::{calibration, timing, CostBreakdown, MemLibrary, OffChipPart, OffChipSelection};

use crate::alloc::{AllocOptions, AllocStats, BoundKind, MemoryInstance, MemoryKind, Organization};
use crate::scbd::{self, BodySchedule, Occupant, PlacedAccess, ScbdResult};
use crate::ExploreError;

/// Magic bytes every cache entry starts with.
const MAGIC: &[u8; 8] = b"MEMXEVC\0";
/// On-disk format version. Bump on any layout change: old entries are
/// then unreadable and silently recomputed.
const FORMAT_VERSION: u32 = 1;
/// Entry kind tag for SCBD schedules.
const KIND_SCBD: u32 = 1;
/// Entry kind tag for full allocation solutions
/// ([`Organization`] + [`AllocStats`]).
const KIND_ALLOC: u32 = 2;
/// Entry kind tag for priced off-chip block catalogs (the block-pricer
/// memo of one off-chip partition search).
const KIND_OFF_CHIP_BLOCKS: u32 = 3;
/// Revision of the SCBD algorithm itself. Folded into the knobs
/// fingerprint: an algorithm change produces different schedules, so it
/// must miss all old entries.
///
/// **Bump this on any schedule-affecting code change** in
/// `core::scbd` (balancing/placement/grant logic) or `core::macp`
/// (access durations, critical paths). Numeric tunables — the pressure
/// weights, the grant lookahead, the timing constants — are hashed
/// directly into the fingerprints and need no manual bump; *structural*
/// changes are what this revision exists for. The backstop for a
/// forgotten bump is CI's `cache_roundtrip.sh`, which diffs runs served
/// from the cross-commit carried cache against an uncached reference
/// run of the current binaries.
const SCBD_ALGO_REVISION: u64 = 1;
/// Revision of the allocation solver. Folded into the knobs fingerprint
/// of [`KIND_ALLOC`] entries.
///
/// **Bump this on any result-affecting code change** in `core::alloc` —
/// bound formulas, tie-breaks, traversal order, the greedy seed, the
/// float accumulation order. Numeric model constants and
/// [`AllocOptions`] knobs are hashed into the fingerprints directly and
/// need no bump; *structural* solver changes are what this revision
/// exists for. Because cached entries replay [`AllocStats`] too, a
/// pruning improvement that leaves results identical but changes node
/// counts also warrants a bump, or warm `[alloc nodes: N]` lines keep
/// reporting the retired heuristic's effort.
///
/// Revision 2: symmetric-group dominance + incremental bounds (results
/// bit-identical, node counts and stats layout changed).
const ALLOC_ALGO_REVISION: u64 = 2;
/// Revision of the off-chip block pricer. Folded into the knobs
/// fingerprint of [`KIND_OFF_CHIP_BLOCKS`] entries; bump on any change
/// to how a group subset is priced (port gating, device ganging,
/// the power formula's accumulation order).
const OFF_CHIP_BLOCKS_ALGO_REVISION: u64 = 1;

/// Stable fingerprint of everything *besides the spec and budget* that
/// determines a storage-cycle-budget distribution: the access-timing
/// constants of the technology model and the scheduler's pressure
/// weights. Recalibrating any of them changes this fingerprint and
/// thereby the [`CacheKey`] — stale entries are never even looked at.
pub fn scbd_model_fingerprint() -> u64 {
    let mut h = StableHasher::new();
    h.write_str("scbd-model");
    h.write_u64(timing::ON_CHIP_CYCLES);
    h.write_u64(timing::OFF_CHIP_RANDOM_CYCLES);
    h.write_u64(timing::OFF_CHIP_BURST_CYCLES);
    h.write_f64(scbd::SAME_GROUP_COST);
    h.write_f64(scbd::OFF_CHIP_PAIR_COST);
    h.write_f64(scbd::ON_CHIP_PAIR_COST);
    h.write_f64(scbd::MIXED_PAIR_COST);
    h.finish()
}

/// Stable fingerprint of the technology-model constants feeding an
/// allocation result: the complete on-chip module-generator model, the
/// off-chip part catalog (every datasheet row), the dual-port
/// calibration factors and the burst energy discount. Recalibrating any
/// of them (or swapping the catalog) changes this fingerprint and
/// thereby the [`CacheKey`] of every allocation and block-catalog
/// entry — stale entries are never even looked at.
pub fn alloc_model_fingerprint(lib: &MemLibrary) -> u64 {
    let mut h = StableHasher::new();
    h.write_str("alloc-model");
    let on = lib.on_chip();
    h.write_f64(on.area_per_bit_mm2());
    h.write_f64(on.bank_words());
    h.write_f64(on.module_overhead_mm2());
    h.write_f64(on.decode_area_mm2());
    h.write_f64(on.port_area_factor());
    h.write_f64(on.energy_base_pj());
    h.write_f64(on.energy_per_sqrt_word_pj());
    h.write_f64(on.energy_width_offset());
    h.write_f64(on.energy_width_norm());
    h.write_f64(on.port_energy_factor());
    let parts = lib.off_chip().parts();
    h.write_u64(parts.len() as u64);
    for p in parts {
        h.write_str(p.name());
        h.write_u64(p.words());
        h.write_u64(u64::from(p.width()));
        h.write_f64(p.energy_pj());
        h.write_f64(p.static_mw());
    }
    h.write_f64(calibration::OFF_CHIP_TWO_PORT_ENERGY_FACTOR);
    h.write_f64(calibration::OFF_CHIP_TWO_PORT_STATIC_FACTOR);
    h.write_f64(timing::OFF_CHIP_BURST_ENERGY_FACTOR);
    h.finish()
}

/// The full content address of one cache entry (see the module docs).
///
/// The key is stored inside the entry and compared on read, so a
/// filename collision between two distinct keys degrades to a miss
/// instead of serving the wrong payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheKey {
    /// Content hash of the cached computation's input: the spec's
    /// [`AppSpec::content_hash`] for SCBD entries, the allocation
    /// instance fingerprint for allocation and block-catalog entries.
    pub content_hash: u64,
    /// The resource budget: cycle budget for SCBD entries, node limit
    /// for allocation entries, unused (0) for block catalogs.
    pub budget: u64,
    /// [`scbd_model_fingerprint`] or [`alloc_model_fingerprint`] at
    /// write time.
    pub model_fingerprint: u64,
    /// Solver-knob fingerprint (per-kind algorithm revision plus every
    /// result-steering option).
    pub knobs_fingerprint: u64,
}

impl CacheKey {
    /// The key under which `spec`'s distribution at `budget` is stored,
    /// using the current model and knob fingerprints.
    pub fn scbd(spec: &AppSpec, budget: u64) -> Self {
        let mut knobs = StableHasher::new();
        knobs.write_str("scbd-knobs");
        knobs.write_u64(SCBD_ALGO_REVISION);
        knobs.write_u64(scbd::GRANT_LOOKAHEAD);
        CacheKey {
            content_hash: spec.content_hash(),
            budget,
            model_fingerprint: scbd_model_fingerprint(),
            knobs_fingerprint: knobs.finish(),
        }
    }

    /// The key under which the allocation solution of the instance
    /// fingerprinted as `instance` is stored, for the given technology
    /// library and solver options.
    ///
    /// `options.workers` is deliberately not part of the key: the
    /// solver returns bit-identical organizations for every worker
    /// count (CI-enforced), so one entry serves them all. Everything
    /// else that steers the result — bound kind, memory-count
    /// constraint, cost weights, port cap, node limit — is keyed.
    pub fn alloc(instance: u64, lib: &MemLibrary, options: &AllocOptions) -> Self {
        let mut knobs = StableHasher::new();
        knobs.write_str("alloc-knobs");
        knobs.write_u64(ALLOC_ALGO_REVISION);
        knobs.write_u64(match options.bound {
            BoundKind::Solo => 0,
            BoundKind::Pairwise => 1,
        });
        match options.on_chip_memories {
            None => knobs.write_u64(0),
            Some(k) => {
                knobs.write_u64(1);
                knobs.write_u64(u64::from(k));
            }
        }
        knobs.write_f64(options.area_weight);
        knobs.write_f64(options.power_weight);
        knobs.write_u64(u64::from(options.max_on_chip_ports));
        // Dominance never changes the organization, but replayed stats
        // (node counts, dominance cuts) differ — key it so a baseline
        // run with dominance off is never served a with-dominance entry.
        knobs.write_u64(u64::from(options.off_chip_dominance));
        CacheKey {
            content_hash: instance,
            budget: options.node_limit,
            model_fingerprint: alloc_model_fingerprint(lib),
            knobs_fingerprint: knobs.finish(),
        }
    }

    /// The key under which the priced block catalog of the off-chip
    /// instance fingerprinted as `instance` is stored. Block prices are
    /// pure functions of the groups, the conflict slots and the
    /// technology library — no [`AllocOptions`] field influences them —
    /// so the budget slot is unused and the knobs fingerprint carries
    /// only the pricer revision.
    pub fn off_chip_blocks(instance: u64, lib: &MemLibrary) -> Self {
        let mut knobs = StableHasher::new();
        knobs.write_str("off-chip-blocks-knobs");
        knobs.write_u64(OFF_CHIP_BLOCKS_ALGO_REVISION);
        CacheKey {
            content_hash: instance,
            budget: 0,
            model_fingerprint: alloc_model_fingerprint(lib),
            knobs_fingerprint: knobs.finish(),
        }
    }

    /// The entry filename (16 hex digits) this key addresses.
    fn file_name(&self, kind: u32) -> String {
        let mut h = StableHasher::new();
        h.write_u64(u64::from(kind));
        h.write_u64(self.content_hash);
        h.write_u64(self.budget);
        h.write_u64(self.model_fingerprint);
        h.write_u64(self.knobs_fingerprint);
        format!("{:016x}.bin", h.finish())
    }
}

/// Counter snapshot of one [`EvalCache`] — the cache analogue of
/// [`crate::alloc::AllocStats`]: telemetry, not part of any result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Schedules served from disk.
    pub scbd_hits: u64,
    /// Schedules recomputed (absent, stale-keyed or corrupt entries).
    pub scbd_misses: u64,
    /// Schedule entry writes that failed (full disk, permissions).
    /// Failures are never fatal — the result was already computed — but
    /// a persistently failing cache directory is worth surfacing.
    pub scbd_write_failures: u64,
    /// Allocation solutions served from disk (each one a whole
    /// branch-and-bound run skipped).
    pub alloc_hits: u64,
    /// Allocation solutions recomputed.
    pub alloc_misses: u64,
    /// Allocation entry writes that failed.
    pub alloc_write_failures: u64,
    /// Priced off-chip block catalogs served from disk (pre-seeding the
    /// block pricer of an allocation recompute).
    pub blocks_hits: u64,
    /// Priced block catalogs recomputed.
    pub blocks_misses: u64,
    /// Block-catalog entry writes that failed.
    pub blocks_write_failures: u64,
}

impl CacheStats {
    /// Failed entry writes summed over every entry kind.
    pub fn write_failures(&self) -> u64 {
        self.scbd_write_failures + self.alloc_write_failures + self.blocks_write_failures
    }
}

/// Errors opening a cache directory.
///
/// Only [`EvalCache::open`] returns errors: once a cache is open, every
/// read anomaly degrades to a recompute and every write failure to a
/// counter tick, so evaluation itself can never fail *because of* the
/// cache.
#[derive(Debug)]
pub enum CacheError {
    /// The cache directory could not be created or is not writable.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::Io { path, source } => {
                write!(f, "cache directory {} unusable: {source}", path.display())
            }
        }
    }
}

impl Error for CacheError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CacheError::Io { source, .. } => Some(source),
        }
    }
}

/// A disk-backed, content-addressed store for evaluation intermediates
/// (see the module docs).
///
/// The handle is cheap to share (`Arc<EvalCache>`) and safe to use from
/// any number of threads; the counters are atomic and the on-disk
/// protocol tolerates concurrent writers across processes.
#[derive(Debug)]
pub struct EvalCache {
    root: PathBuf,
    scbd: KindCounters,
    alloc: KindCounters,
    blocks: KindCounters,
    tmp_seq: AtomicU64,
}

/// Hit/miss/write-failure counters of one entry kind.
#[derive(Debug, Default)]
struct KindCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    write_failures: AtomicU64,
}

impl KindCounters {
    fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    fn write_failure(&self) {
        self.write_failures.fetch_add(1, Ordering::Relaxed);
    }
}

impl EvalCache {
    /// Opens (creating if necessary) the cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::Io`] when the directory cannot be created —
    /// the only cache failure that surfaces as an error; everything
    /// after `open` degrades silently (see the module docs).
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, CacheError> {
        let root = dir.as_ref().to_path_buf();
        for kind_dir in ["scbd", "alloc", "offblocks"] {
            let dir = root.join(kind_dir);
            fs::create_dir_all(&dir).map_err(|source| CacheError::Io {
                path: dir.clone(),
                source,
            })?;
        }
        Ok(EvalCache {
            root,
            scbd: KindCounters::default(),
            alloc: KindCounters::default(),
            blocks: KindCounters::default(),
            tmp_seq: AtomicU64::new(0),
        })
    }

    /// The cache's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// A snapshot of the per-kind hit/miss/write-failure counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            scbd_hits: self.scbd.hits.load(Ordering::Relaxed),
            scbd_misses: self.scbd.misses.load(Ordering::Relaxed),
            scbd_write_failures: self.scbd.write_failures.load(Ordering::Relaxed),
            alloc_hits: self.alloc.hits.load(Ordering::Relaxed),
            alloc_misses: self.alloc.misses.load(Ordering::Relaxed),
            alloc_write_failures: self.alloc.write_failures.load(Ordering::Relaxed),
            blocks_hits: self.blocks.hits.load(Ordering::Relaxed),
            blocks_misses: self.blocks.misses.load(Ordering::Relaxed),
            blocks_write_failures: self.blocks.write_failures.load(Ordering::Relaxed),
        }
    }

    /// Distributes `spec`'s storage cycle budget like
    /// [`scbd::distribute_with_budget`], serving the result from disk
    /// when a valid entry exists and storing it otherwise. Hits are
    /// bit-identical to recomputation.
    ///
    /// Errors ([`ExploreError::BudgetTooTight`]) are never cached: they
    /// are cheap to rediscover and a budget that fails today may be
    /// retried under a changed spec tomorrow.
    ///
    /// # Errors
    ///
    /// Exactly those of [`scbd::distribute_with_budget`]; the cache
    /// itself never fails an evaluation.
    pub fn distribute(&self, spec: &AppSpec, budget: u64) -> Result<ScbdResult, ExploreError> {
        let key = CacheKey::scbd(spec, budget);
        if let Some(result) = self.load_scbd(&key) {
            self.scbd.hit();
            return Ok(result);
        }
        let result = scbd::distribute_with_budget(spec, budget)?;
        self.scbd.miss();
        self.store_scbd(&key, &result);
        Ok(result)
    }

    /// Reads the schedule entry addressed by `key`, or `None` on
    /// absence *or any corruption* (truncation, bad
    /// magic/version/checksum, key-echo mismatch). Does not touch the
    /// hit/miss counters — the policy layer ([`EvalCache::distribute`])
    /// owns those.
    pub fn load_scbd(&self, key: &CacheKey) -> Option<ScbdResult> {
        let bytes = fs::read(self.scbd_path(key)).ok()?;
        decode_scbd(decode_entry(&bytes, key, KIND_SCBD)?)
    }

    /// Publishes `result` under `key` via tempfile + atomic rename.
    /// Failures tick [`CacheStats::scbd_write_failures`] and are
    /// otherwise ignored — the caller already holds the computed result.
    pub fn store_scbd(&self, key: &CacheKey, result: &ScbdResult) {
        let bytes = encode_entry(key, KIND_SCBD, encode_scbd(result));
        if self
            .write_atomically(&self.scbd_path(key), &bytes)
            .is_none()
        {
            self.scbd.write_failure();
        }
    }

    /// Reads the allocation solution addressed by `key` — the complete
    /// [`Organization`] plus the [`AllocStats`] of the stored solve, so
    /// a hit replays the recorded search effort instead of reporting a
    /// free lunch. `None` on absence or any corruption; counters are
    /// owned by the policy layer
    /// ([`crate::alloc::assign_with_stats_cached`]).
    pub fn load_alloc(&self, key: &CacheKey) -> Option<(Organization, AllocStats)> {
        let bytes = fs::read(self.alloc_path(key)).ok()?;
        decode_alloc(decode_entry(&bytes, key, KIND_ALLOC)?)
    }

    /// Publishes an allocation solution under `key`. Failures tick
    /// [`CacheStats::alloc_write_failures`] and are otherwise ignored.
    pub fn store_alloc(&self, key: &CacheKey, org: &Organization, stats: &AllocStats) {
        let bytes = encode_entry(key, KIND_ALLOC, encode_alloc(org, stats));
        if self
            .write_atomically(&self.alloc_path(key), &bytes)
            .is_none()
        {
            self.alloc.write_failure();
        }
    }

    /// Reads the priced off-chip block catalog addressed by `key`: the
    /// `(subset mask, price)` memo a previous partition search built,
    /// used to pre-seed the block pricer. `None` on absence or any
    /// corruption.
    pub fn load_off_chip_blocks(&self, key: &CacheKey) -> Option<Vec<(u64, Option<f64>)>> {
        let bytes = fs::read(self.blocks_path(key)).ok()?;
        decode_blocks(decode_entry(&bytes, key, KIND_OFF_CHIP_BLOCKS)?)
    }

    /// Publishes a priced block catalog under `key`. Failures tick
    /// [`CacheStats::blocks_write_failures`] and are otherwise ignored.
    pub fn store_off_chip_blocks(&self, key: &CacheKey, entries: &[(u64, Option<f64>)]) {
        let bytes = encode_entry(key, KIND_OFF_CHIP_BLOCKS, encode_blocks(entries));
        if self
            .write_atomically(&self.blocks_path(key), &bytes)
            .is_none()
        {
            self.blocks.write_failure();
        }
    }

    /// Ticks the allocation hit counter (policy layer lives in
    /// `crate::alloc`, which owns the load/compute/store decision).
    pub(crate) fn note_alloc_hit(&self) {
        self.alloc.hit();
    }

    /// Ticks the allocation miss counter.
    pub(crate) fn note_alloc_miss(&self) {
        self.alloc.miss();
    }

    /// Ticks the block-catalog hit counter.
    pub(crate) fn note_blocks_hit(&self) {
        self.blocks.hit();
    }

    /// Ticks the block-catalog miss counter.
    pub(crate) fn note_blocks_miss(&self) {
        self.blocks.miss();
    }

    fn scbd_path(&self, key: &CacheKey) -> PathBuf {
        self.root.join("scbd").join(key.file_name(KIND_SCBD))
    }

    fn alloc_path(&self, key: &CacheKey) -> PathBuf {
        self.root.join("alloc").join(key.file_name(KIND_ALLOC))
    }

    fn blocks_path(&self, key: &CacheKey) -> PathBuf {
        self.root
            .join("offblocks")
            .join(key.file_name(KIND_OFF_CHIP_BLOCKS))
    }

    /// Tempfile-then-rename publication; `None` on any I/O failure.
    fn write_atomically(&self, path: &Path, bytes: &[u8]) -> Option<()> {
        let dir = path.parent()?;
        let seq = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
        let tmp = dir.join(format!(
            ".{}.{}.{seq}.tmp",
            path.file_name()?.to_str()?,
            std::process::id()
        ));
        let publish = (|| {
            let mut f = fs::File::create(&tmp).ok()?;
            f.write_all(bytes).ok()?;
            drop(f);
            fs::rename(&tmp, path).ok()
        })();
        if publish.is_none() {
            fs::remove_file(&tmp).ok();
        }
        publish
    }
}

/// Distributes via `cache` when one is configured, directly otherwise —
/// the single seam every cache-aware caller goes through (the engine's
/// batch phase, [`crate::explore::evaluate_with_cache`], binaries).
///
/// # Errors
///
/// Exactly those of [`scbd::distribute_with_budget`].
pub fn distribute_cached(
    spec: &AppSpec,
    budget: u64,
    cache: Option<&EvalCache>,
) -> Result<ScbdResult, ExploreError> {
    match cache {
        Some(cache) => cache.distribute(spec, budget),
        None => scbd::distribute_with_budget(spec, budget),
    }
}

// --- binary entry format -------------------------------------------------

/// Frames a payload with the shared record envelope: magic, version,
/// kind discriminant, full key echo, length prefix and checksum.
fn encode_entry(key: &CacheKey, kind: u32, payload: Vec<u8>) -> Vec<u8> {
    let mut checksum = StableHasher::new();
    checksum.write_bytes(&payload);

    let mut out = Vec::with_capacity(payload.len() + 64);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&kind.to_le_bytes());
    out.extend_from_slice(&key.content_hash.to_le_bytes());
    out.extend_from_slice(&key.budget.to_le_bytes());
    out.extend_from_slice(&key.model_fingerprint.to_le_bytes());
    out.extend_from_slice(&key.knobs_fingerprint.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&checksum.finish().to_le_bytes());
    out
}

/// Validates the shared envelope and returns the payload slice, or
/// `None` on any anomaly (the caller treats that as a miss).
fn decode_entry<'a>(bytes: &'a [u8], key: &CacheKey, kind: u32) -> Option<&'a [u8]> {
    let mut r = Reader::new(bytes);
    if r.take(MAGIC.len())? != MAGIC.as_slice() {
        return None;
    }
    if r.u32()? != FORMAT_VERSION || r.u32()? != kind {
        return None;
    }
    let echoed = CacheKey {
        content_hash: r.u64()?,
        budget: r.u64()?,
        model_fingerprint: r.u64()?,
        knobs_fingerprint: r.u64()?,
    };
    if echoed != *key {
        return None;
    }
    let len = usize::try_from(r.u64()?).ok()?;
    let payload = r.take(len)?;
    let mut checksum = StableHasher::new();
    checksum.write_bytes(payload);
    if r.u64()? != checksum.finish() || !r.at_end() {
        return None;
    }
    Some(payload)
}

fn encode_scbd(result: &ScbdResult) -> Vec<u8> {
    let mut out = Vec::new();
    push_u64(&mut out, result.bodies.len() as u64);
    for body in &result.bodies {
        push_u64(&mut out, body.nest.index() as u64);
        push_str(&mut out, &body.name);
        push_u64(&mut out, body.iterations);
        push_u64(&mut out, body.budget);
        push_u64(&mut out, body.placements().len() as u64);
        for p in body.placements() {
            push_u64(&mut out, p.occupant.group.index() as u64);
            out.push(u8::from(p.occupant.off_chip));
            push_u64(&mut out, p.start);
            push_u64(&mut out, p.duration);
        }
    }
    push_u64(&mut out, result.used_cycles);
    push_u64(&mut out, result.total_budget);
    out
}

/// Minimum encoded bytes per body record (empty name, no placements):
/// nest + name length + iterations + budget + placement count.
const MIN_BODY_BYTES: usize = 5 * 8;
/// Minimum encoded bytes per placement record: group + off-chip flag +
/// start + duration.
const MIN_PLACEMENT_BYTES: usize = 8 + 1 + 8 + 8;

fn decode_scbd(payload: &[u8]) -> Option<ScbdResult> {
    let mut r = Reader::new(payload);
    let body_count = r.count_prefix(MIN_BODY_BYTES)?;
    let mut bodies = Vec::with_capacity(body_count);
    for _ in 0..body_count {
        let nest = LoopNestId::from_index(usize::try_from(r.u64()?).ok()?);
        let name = r.string()?;
        let iterations = r.u64()?;
        let budget = r.u64()?;
        let placement_count = r.count_prefix(MIN_PLACEMENT_BYTES)?;
        let mut placements = Vec::with_capacity(placement_count);
        for _ in 0..placement_count {
            let group = BasicGroupId::from_index(usize::try_from(r.u64()?).ok()?);
            let off_chip = match r.u8()? {
                0 => false,
                1 => true,
                _ => return None,
            };
            let start = r.u64()?;
            let duration = r.u64()?;
            placements.push(PlacedAccess {
                occupant: Occupant { group, off_chip },
                start,
                duration,
            });
        }
        // The sparse occupancy table is *derived* state: always rebuilt
        // from the placements, never read from disk.
        bodies.push(BodySchedule::new(
            nest, name, iterations, budget, placements,
        ));
    }
    let used_cycles = r.u64()?;
    let total_budget = r.u64()?;
    if !r.at_end() {
        return None;
    }
    Some(ScbdResult {
        bodies,
        used_cycles,
        total_budget,
    })
}

/// Minimum encoded bytes per memory record (no groups, on-chip): group
/// count + words + width + ports + kind tag + cost triple.
const MIN_MEMORY_BYTES: usize = 4 * 8 + 1 + 3 * 8;

fn encode_alloc(org: &Organization, stats: &AllocStats) -> Vec<u8> {
    let mut out = Vec::new();
    push_u64(&mut out, org.memories.len() as u64);
    for m in &org.memories {
        push_u64(&mut out, m.groups.len() as u64);
        for g in &m.groups {
            push_u64(&mut out, g.index() as u64);
        }
        push_u64(&mut out, m.words);
        push_u64(&mut out, u64::from(m.width));
        push_u64(&mut out, u64::from(m.ports));
        match &m.kind {
            MemoryKind::OnChip => out.push(0),
            MemoryKind::OffChip(sel) => {
                out.push(1);
                push_str(&mut out, sel.part().name());
                push_u64(&mut out, sel.part().words());
                push_u64(&mut out, u64::from(sel.part().width()));
                push_f64(&mut out, sel.part().energy_pj());
                push_f64(&mut out, sel.part().static_mw());
                push_u64(&mut out, u64::from(sel.devices_wide()));
                push_u64(&mut out, u64::from(sel.ranks()));
                push_u64(&mut out, u64::from(sel.ports()));
            }
        }
        push_cost(&mut out, &m.cost);
    }
    push_cost(&mut out, &org.cost);
    push_u64(&mut out, stats.bb_nodes);
    push_u64(&mut out, stats.sweep_skips);
    push_u64(&mut out, stats.off_chip_partitions);
    push_u64(&mut out, stats.off_chip_bb_nodes);
    push_u64(&mut out, stats.off_chip_pruned_subtrees);
    push_u64(&mut out, stats.off_chip_exhaustive_partitions);
    push_u64(&mut out, stats.off_chip_dominance_cuts);
    push_u64(&mut out, stats.bound_incremental_updates);
    out
}

fn decode_alloc(payload: &[u8]) -> Option<(Organization, AllocStats)> {
    let mut r = Reader::new(payload);
    let memory_count = r.count_prefix(MIN_MEMORY_BYTES)?;
    let mut memories = Vec::with_capacity(memory_count);
    for _ in 0..memory_count {
        let group_count = r.count_prefix(8)?;
        let mut groups = Vec::with_capacity(group_count);
        for _ in 0..group_count {
            groups.push(BasicGroupId::from_index(usize::try_from(r.u64()?).ok()?));
        }
        let words = r.u64()?;
        let width = u32::try_from(r.u64()?).ok()?;
        let ports = u32::try_from(r.u64()?).ok()?;
        let kind = match r.u8()? {
            0 => MemoryKind::OnChip,
            1 => {
                // Every constructor precondition is validated *before*
                // construction: a corrupt entry must read as a miss,
                // not panic inside `OffChipPart::new`.
                let name = r.string()?;
                let part_words = r.u64()?;
                let part_width = u32::try_from(r.u64()?).ok()?;
                let energy_pj = r.f64()?;
                let static_mw = r.f64()?;
                let devices_wide = u32::try_from(r.u64()?).ok()?;
                let ranks = u32::try_from(r.u64()?).ok()?;
                let sel_ports = u32::try_from(r.u64()?).ok()?;
                if part_words == 0 || part_width == 0 {
                    return None;
                }
                if !(energy_pj.is_finite() && energy_pj > 0.0) {
                    return None;
                }
                if !(static_mw.is_finite() && static_mw > 0.0) {
                    return None;
                }
                if devices_wide == 0 || ranks == 0 || !(1..=2).contains(&sel_ports) {
                    return None;
                }
                let part = OffChipPart::new(name, part_words, part_width, energy_pj, static_mw);
                MemoryKind::OffChip(OffChipSelection::from_parts(
                    part,
                    devices_wide,
                    ranks,
                    sel_ports,
                ))
            }
            _ => return None,
        };
        let cost = read_cost(&mut r)?;
        memories.push(MemoryInstance {
            groups,
            words,
            width,
            ports,
            kind,
            cost,
        });
    }
    let cost = read_cost(&mut r)?;
    let stats = AllocStats {
        bb_nodes: r.u64()?,
        sweep_skips: r.u64()?,
        off_chip_partitions: r.u64()?,
        off_chip_bb_nodes: r.u64()?,
        off_chip_pruned_subtrees: r.u64()?,
        off_chip_exhaustive_partitions: r.u64()?,
        off_chip_dominance_cuts: r.u64()?,
        bound_incremental_updates: r.u64()?,
    };
    if !r.at_end() {
        return None;
    }
    Some((Organization { memories, cost }, stats))
}

/// Encoded bytes per block-catalog record: mask + presence flag (the
/// optional price only follows a `1` flag).
const MIN_BLOCK_BYTES: usize = 8 + 1;

fn encode_blocks(entries: &[(u64, Option<f64>)]) -> Vec<u8> {
    let mut out = Vec::new();
    push_u64(&mut out, entries.len() as u64);
    for &(mask, price) in entries {
        push_u64(&mut out, mask);
        match price {
            None => out.push(0),
            Some(p) => {
                out.push(1);
                push_f64(&mut out, p);
            }
        }
    }
    out
}

fn decode_blocks(payload: &[u8]) -> Option<Vec<(u64, Option<f64>)>> {
    let mut r = Reader::new(payload);
    let count = r.count_prefix(MIN_BLOCK_BYTES)?;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let mask = r.u64()?;
        let price = match r.u8()? {
            0 => None,
            1 => Some(r.f64()?),
            _ => return None,
        };
        entries.push((mask, price));
    }
    if !r.at_end() {
        return None;
    }
    Some(entries)
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Floats are stored by bit pattern, so every value (including -0.0 and
/// the exact accumulation results tie-breaks depend on) round trips
/// bit-identically.
fn push_f64(out: &mut Vec<u8>, v: f64) {
    push_u64(out, v.to_bits());
}

fn push_cost(out: &mut Vec<u8>, c: &CostBreakdown) {
    push_f64(out, c.on_chip_area_mm2);
    push_f64(out, c.on_chip_power_mw);
    push_f64(out, c.off_chip_power_mw);
}

fn read_cost(r: &mut Reader<'_>) -> Option<CostBreakdown> {
    Some(CostBreakdown {
        on_chip_area_mm2: r.f64()?,
        on_chip_power_mw: r.f64()?,
        off_chip_power_mw: r.f64()?,
    })
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked little-endian reader: every short read is a `None`,
/// which the entry decoder turns into a silent cache miss.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Sanity cap on length prefixes, so a corrupt length cannot ask for
    /// a multi-gigabyte allocation before the bounds check catches it.
    const MAX_LEN: u64 = 1 << 32;

    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    /// A float stored by bit pattern (see [`push_f64`]).
    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    /// A length prefix, rejected when absurd (see [`Self::MAX_LEN`]).
    fn len_prefix(&mut self) -> Option<usize> {
        let v = self.u64()?;
        if v > Self::MAX_LEN {
            return None;
        }
        usize::try_from(v).ok()
    }

    /// A record-count prefix, rejected when the remaining payload
    /// cannot possibly hold that many records of at least
    /// `min_record_bytes` each. This bounds every `Vec::with_capacity`
    /// the decoder performs by the actual entry size, so even a
    /// checksum-consistent corrupt count cannot request a giant
    /// allocation — it reads as a miss like every other anomaly.
    fn count_prefix(&mut self, min_record_bytes: usize) -> Option<usize> {
        let v = self.len_prefix()?;
        if v > self.remaining() / min_record_bytes {
            return None;
        }
        Some(v)
    }

    fn string(&mut self) -> Option<String> {
        let len = self.len_prefix()?;
        String::from_utf8(self.take(len)?.to_vec()).ok()
    }

    fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memx_ir::{AccessKind, AppSpecBuilder, Placement};

    fn spec() -> AppSpec {
        let mut b = AppSpecBuilder::new("cache-test");
        let x = b.basic_group("x", 64, 8).unwrap();
        let y = b.basic_group("y", 64, 8).unwrap();
        let far = b
            .basic_group_placed("far", 1 << 16, 16, Placement::OffChip)
            .unwrap();
        let n = b.loop_nest("l", 100).unwrap();
        let rx = b.access(n, x, AccessKind::Read).unwrap();
        let ry = b.access(n, y, AccessKind::Read).unwrap();
        let rf = b.access_full(n, far, AccessKind::Read, 0.5, true).unwrap();
        let w = b.access(n, x, AccessKind::Write).unwrap();
        b.depend(n, rx, w).unwrap();
        b.depend(n, ry, w).unwrap();
        b.depend(n, rf, w).unwrap();
        b.cycle_budget(10_000);
        b.build().unwrap()
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "memx-cache-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    fn assert_same(a: &ScbdResult, b: &ScbdResult) {
        assert_eq!(a.used_cycles, b.used_cycles);
        assert_eq!(a.total_budget, b.total_budget);
        assert_eq!(a.bodies.len(), b.bodies.len());
        for (x, y) in a.bodies.iter().zip(&b.bodies) {
            assert_eq!(x.nest, y.nest);
            assert_eq!(x.name, y.name);
            assert_eq!(x.iterations, y.iterations);
            assert_eq!(x.budget, y.budget);
            assert_eq!(x.placements(), y.placements());
            assert_eq!(x.busy_slots(), y.busy_slots());
            assert_eq!(x.pressure().to_bits(), y.pressure().to_bits());
        }
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let dir = tempdir("roundtrip");
        let cache = EvalCache::open(&dir).unwrap();
        let spec = spec();
        let direct = scbd::distribute_with_budget(&spec, 10_000).unwrap();
        let cold = cache.distribute(&spec, 10_000).unwrap();
        let warm = cache.distribute(&spec, 10_000).unwrap();
        assert_same(&direct, &cold);
        assert_same(&direct, &warm);
        let stats = cache.stats();
        assert_eq!((stats.scbd_hits, stats.scbd_misses), (1, 1));
        assert_eq!(stats.write_failures(), 0);
        // A second handle on the same directory hits immediately:
        // persistence across processes in miniature.
        let other = EvalCache::open(&dir).unwrap();
        assert_same(&direct, &other.distribute(&spec, 10_000).unwrap());
        assert_eq!(other.stats().scbd_hits, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn distinct_budgets_are_distinct_entries() {
        let dir = tempdir("budgets");
        let cache = EvalCache::open(&dir).unwrap();
        let spec = spec();
        let a = cache.distribute(&spec, 10_000).unwrap();
        let b = cache.distribute(&spec, 5_000).unwrap();
        assert_ne!(a.total_budget, b.total_budget);
        assert_eq!(cache.stats().scbd_misses, 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn errors_are_not_cached() {
        let dir = tempdir("errors");
        let cache = EvalCache::open(&dir).unwrap();
        let spec = spec();
        for _ in 0..2 {
            assert!(matches!(
                cache.distribute(&spec, 1),
                Err(ExploreError::BudgetTooTight { .. })
            ));
        }
        let stats = cache.stats();
        assert_eq!((stats.scbd_hits, stats.scbd_misses), (0, 0));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_entry_degrades_to_recompute() {
        let dir = tempdir("truncate");
        let cache = EvalCache::open(&dir).unwrap();
        let spec = spec();
        let original = cache.distribute(&spec, 10_000).unwrap();
        let path = cache.scbd_path(&CacheKey::scbd(&spec, 10_000));
        let bytes = fs::read(&path).unwrap();
        // Every possible truncation point must miss cleanly, including
        // cuts inside the header, the payload and the checksum.
        for keep in [0, 4, MAGIC.len(), 20, bytes.len() / 2, bytes.len() - 1] {
            fs::write(&path, &bytes[..keep]).unwrap();
            assert!(
                cache.load_scbd(&CacheKey::scbd(&spec, 10_000)).is_none(),
                "truncation to {keep} bytes must read as a miss"
            );
            // The policy layer recomputes and repairs the entry.
            let again = cache.distribute(&spec, 10_000).unwrap();
            assert_same(&original, &again);
            assert!(cache.load_scbd(&CacheKey::scbd(&spec, 10_000)).is_some());
            fs::write(&path, &bytes).unwrap();
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbage_and_flipped_bits_degrade_to_recompute() {
        let dir = tempdir("garbage");
        let cache = EvalCache::open(&dir).unwrap();
        let spec = spec();
        cache.distribute(&spec, 10_000).unwrap();
        let key = CacheKey::scbd(&spec, 10_000);
        let path = cache.scbd_path(&key);
        let good = fs::read(&path).unwrap();

        fs::write(&path, b"not a cache entry at all").unwrap();
        assert!(cache.load_scbd(&key).is_none());

        // A flipped payload bit fails the checksum.
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        fs::write(&path, &flipped).unwrap();
        assert!(cache.load_scbd(&key).is_none());

        // Trailing junk after a valid entry is rejected too.
        let mut padded = good.clone();
        padded.push(0);
        fs::write(&path, &padded).unwrap();
        assert!(cache.load_scbd(&key).is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checksum_consistent_giant_count_is_rejected_without_allocating() {
        // A corrupt (or adversarial — FNV is not cryptographic) entry
        // whose checksum *matches* but whose record count is absurd must
        // still read as a miss, without `Vec::with_capacity` attempting
        // a giant allocation first: counts are bounded by the bytes
        // actually present.
        let dir = tempdir("giant");
        let cache = EvalCache::open(&dir).unwrap();
        let spec = spec();
        let key = CacheKey::scbd(&spec, 10_000);
        for claimed in [u64::MAX / 2, 1 << 32, 1 << 20, 2] {
            let mut payload = Vec::new();
            push_u64(&mut payload, claimed); // body count, nothing behind it
            let mut checksum = StableHasher::new();
            checksum.write_bytes(&payload);
            let mut bytes = Vec::new();
            bytes.extend_from_slice(MAGIC);
            bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
            bytes.extend_from_slice(&KIND_SCBD.to_le_bytes());
            bytes.extend_from_slice(&key.content_hash.to_le_bytes());
            bytes.extend_from_slice(&key.budget.to_le_bytes());
            bytes.extend_from_slice(&key.model_fingerprint.to_le_bytes());
            bytes.extend_from_slice(&key.knobs_fingerprint.to_le_bytes());
            bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            bytes.extend_from_slice(&payload);
            bytes.extend_from_slice(&checksum.finish().to_le_bytes());
            fs::write(cache.scbd_path(&key), &bytes).unwrap();
            assert!(
                cache.load_scbd(&key).is_none(),
                "claimed count {claimed} must be a miss"
            );
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_version_header_is_a_miss() {
        let dir = tempdir("version");
        let cache = EvalCache::open(&dir).unwrap();
        let spec = spec();
        cache.distribute(&spec, 10_000).unwrap();
        let key = CacheKey::scbd(&spec, 10_000);
        let path = cache.scbd_path(&key);
        let mut bytes = fs::read(&path).unwrap();
        // The version field sits right after the magic.
        let future = (FORMAT_VERSION + 1).to_le_bytes();
        bytes[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&future);
        fs::write(&path, &bytes).unwrap();
        assert!(
            cache.load_scbd(&key).is_none(),
            "a future format version must be unreadable, not misparsed"
        );
        // And a wrong kind tag likewise.
        let mut bytes = fs::read(&path).unwrap();
        bytes[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes[MAGIC.len() + 4..MAGIC.len() + 8].copy_from_slice(&99u32.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        assert!(cache.load_scbd(&key).is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_key_from_model_constant_change_misses() {
        let dir = tempdir("stale");
        let cache = EvalCache::open(&dir).unwrap();
        let spec = spec();
        cache.distribute(&spec, 10_000).unwrap();
        let fresh = CacheKey::scbd(&spec, 10_000);
        assert!(cache.load_scbd(&fresh).is_some());
        // A recalibrated timing/pressure constant moves the model
        // fingerprint; the old entry must not be found under the new
        // key (this is exactly how a release with changed constants
        // invalidates a CI-carried cache).
        let recalibrated = CacheKey {
            model_fingerprint: fresh.model_fingerprint ^ 1,
            ..fresh
        };
        assert!(cache.load_scbd(&recalibrated).is_none());
        // Same for a changed algorithm revision (knobs fingerprint).
        let retuned = CacheKey {
            knobs_fingerprint: fresh.knobs_fingerprint.wrapping_add(1),
            ..fresh
        };
        assert!(cache.load_scbd(&retuned).is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn key_echo_guards_filename_collisions() {
        let dir = tempdir("echo");
        let cache = EvalCache::open(&dir).unwrap();
        let spec = spec();
        cache.distribute(&spec, 10_000).unwrap();
        let key = CacheKey::scbd(&spec, 10_000);
        // Forge a collision: copy the entry to the filename another key
        // would hash to. The echoed key inside the entry must reject it.
        let other = CacheKey {
            budget: 20_000,
            ..key
        };
        fs::copy(cache.scbd_path(&key), cache.scbd_path(&other)).unwrap();
        assert!(cache.load_scbd(&other).is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unwritable_directory_counts_failures_but_still_serves() {
        let dir = tempdir("unwritable");
        let cache = EvalCache::open(&dir).unwrap();
        let spec = spec();
        // Make the scbd subdirectory unwritable, then evaluate: the
        // compute path must succeed and only the failure counter moves.
        let scbd_dir = dir.join("scbd");
        let mut perms = fs::metadata(&scbd_dir).unwrap().permissions();
        let writable = perms.clone();
        perms.set_readonly(true);
        fs::set_permissions(&scbd_dir, perms).unwrap();
        let result = cache.distribute(&spec, 10_000);
        fs::set_permissions(&scbd_dir, writable).unwrap();
        // Root-privileged runners can write into read-only directories;
        // only assert the failure accounting when the write really
        // failed.
        result.unwrap();
        let stats = cache.stats();
        assert_eq!(stats.scbd_misses, 1);
        assert!(stats.scbd_write_failures <= 1);
        fs::remove_dir_all(&dir).ok();
    }

    // --- allocation and block-catalog entry kinds ------------------------

    fn alloc_solution() -> (Organization, AllocStats, memx_memlib::MemLibrary) {
        let spec = spec();
        let lib = memx_memlib::MemLibrary::default_07um();
        let schedule = scbd::distribute_with_budget(&spec, 10_000).unwrap();
        let (org, stats) =
            crate::alloc::assign_with_stats(&spec, &schedule, &lib, &AllocOptions::default())
                .unwrap();
        (org, stats, lib)
    }

    fn assert_same_org(a: &Organization, b: &Organization) {
        assert_eq!(a.memories.len(), b.memories.len());
        for (x, y) in a.memories.iter().zip(&b.memories) {
            assert_eq!(x, y);
            // `PartialEq` admits 0.0 == -0.0; the cache promises *bit*
            // identity, so compare the float patterns too.
            assert_eq!(
                x.cost.off_chip_power_mw.to_bits(),
                y.cost.off_chip_power_mw.to_bits()
            );
            assert_eq!(
                x.cost.on_chip_area_mm2.to_bits(),
                y.cost.on_chip_area_mm2.to_bits()
            );
            assert_eq!(
                x.cost.on_chip_power_mw.to_bits(),
                y.cost.on_chip_power_mw.to_bits()
            );
        }
        assert_eq!(
            a.cost.on_chip_area_mm2.to_bits(),
            b.cost.on_chip_area_mm2.to_bits()
        );
        assert_eq!(
            a.cost.on_chip_power_mw.to_bits(),
            b.cost.on_chip_power_mw.to_bits()
        );
        assert_eq!(
            a.cost.off_chip_power_mw.to_bits(),
            b.cost.off_chip_power_mw.to_bits()
        );
    }

    #[test]
    fn alloc_round_trip_is_bit_identical() {
        let dir = tempdir("alloc-roundtrip");
        let cache = EvalCache::open(&dir).unwrap();
        let (org, stats, lib) = alloc_solution();
        assert!(
            org.off_chip_count() >= 1,
            "fixture must exercise the off-chip arm"
        );
        let key = CacheKey::alloc(0x5EED, &lib, &AllocOptions::default());
        assert!(cache.load_alloc(&key).is_none());
        cache.store_alloc(&key, &org, &stats);
        let (loaded_org, loaded_stats) = cache.load_alloc(&key).unwrap();
        assert_same_org(&org, &loaded_org);
        assert_eq!(stats, loaded_stats);
        assert_eq!(cache.stats().write_failures(), 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn alloc_stale_key_misses() {
        let dir = tempdir("alloc-stale");
        let cache = EvalCache::open(&dir).unwrap();
        let (org, stats, lib) = alloc_solution();
        let options = AllocOptions::default();
        let key = CacheKey::alloc(7, &lib, &options);
        cache.store_alloc(&key, &org, &stats);
        assert!(cache.load_alloc(&key).is_some());
        // A recalibrated model constant moves the model fingerprint.
        let recalibrated = CacheKey {
            model_fingerprint: key.model_fingerprint ^ 1,
            ..key
        };
        assert!(cache.load_alloc(&recalibrated).is_none());
        // A different bound is a different knobs fingerprint…
        let other_bound = CacheKey::alloc(
            7,
            &lib,
            &AllocOptions {
                bound: BoundKind::Solo,
                ..options.clone()
            },
        );
        assert_ne!(key.knobs_fingerprint, other_bound.knobs_fingerprint);
        assert!(cache.load_alloc(&other_bound).is_none());
        // …as is toggling the dominance rule (replayed node counts and
        // dominance-cut stats differ even though the organization is
        // identical)…
        let no_dominance = CacheKey::alloc(
            7,
            &lib,
            &AllocOptions {
                off_chip_dominance: false,
                ..options.clone()
            },
        );
        assert_ne!(key.knobs_fingerprint, no_dominance.knobs_fingerprint);
        assert!(cache.load_alloc(&no_dominance).is_none());
        // …and a different node limit a different budget slot.
        let other_limit = CacheKey::alloc(
            7,
            &lib,
            &AllocOptions {
                node_limit: options.node_limit + 1,
                ..options.clone()
            },
        );
        assert_ne!(key.budget, other_limit.budget);
        assert!(cache.load_alloc(&other_limit).is_none());
        // Worker count is *not* keyed: the solver is bit-identical per
        // worker count, so one entry serves them all.
        let other_workers = CacheKey::alloc(
            7,
            &lib,
            &AllocOptions {
                workers: 8,
                ..options
            },
        );
        assert_eq!(key, other_workers);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn alloc_corrupt_entries_degrade_to_miss() {
        let dir = tempdir("alloc-corrupt");
        let cache = EvalCache::open(&dir).unwrap();
        let (org, stats, lib) = alloc_solution();
        let key = CacheKey::alloc(11, &lib, &AllocOptions::default());
        cache.store_alloc(&key, &org, &stats);
        let path = cache.alloc_path(&key);
        let good = fs::read(&path).unwrap();
        for keep in [0, 4, MAGIC.len(), 20, good.len() / 2, good.len() - 1] {
            fs::write(&path, &good[..keep]).unwrap();
            assert!(
                cache.load_alloc(&key).is_none(),
                "truncation to {keep} bytes must read as a miss"
            );
        }
        fs::write(&path, b"not a cache entry").unwrap();
        assert!(cache.load_alloc(&key).is_none());
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        fs::write(&path, &flipped).unwrap();
        assert!(cache.load_alloc(&key).is_none());
        // A re-store repairs the entry.
        cache.store_alloc(&key, &org, &stats);
        assert!(cache.load_alloc(&key).is_some());
        // A kind mixup — a block-catalog entry copied over an allocation
        // entry's filename — is rejected by the kind discriminant.
        let bkey = CacheKey::off_chip_blocks(11, &lib);
        cache.store_off_chip_blocks(&bkey, &[(1, Some(2.0))]);
        fs::copy(cache.blocks_path(&bkey), &path).unwrap();
        assert!(cache.load_alloc(&key).is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn alloc_checksum_consistent_giant_count_is_rejected() {
        let dir = tempdir("alloc-giant");
        let cache = EvalCache::open(&dir).unwrap();
        let (_, _, lib) = alloc_solution();
        let key = CacheKey::alloc(13, &lib, &AllocOptions::default());
        for claimed in [u64::MAX / 2, 1 << 32, 1 << 20, 2] {
            let mut payload = Vec::new();
            push_u64(&mut payload, claimed); // memory count, nothing behind it
            let bytes = encode_entry(&key, KIND_ALLOC, payload);
            fs::write(cache.alloc_path(&key), &bytes).unwrap();
            assert!(
                cache.load_alloc(&key).is_none(),
                "claimed count {claimed} must be a miss"
            );
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn blocks_round_trip_preserves_price_bits() {
        let dir = tempdir("blocks-roundtrip");
        let cache = EvalCache::open(&dir).unwrap();
        let (_, _, lib) = alloc_solution();
        let key = CacheKey::off_chip_blocks(42, &lib);
        // Include infeasible (None) prices and awkward float patterns:
        // the memo must round trip bit for bit.
        let entries: Vec<(u64, Option<f64>)> = vec![
            (0b01, Some(3.5)),
            (0b10, None),
            (0b11, Some(-0.0)),
            (u64::MAX, Some(f64::MIN_POSITIVE)),
        ];
        assert!(cache.load_off_chip_blocks(&key).is_none());
        cache.store_off_chip_blocks(&key, &entries);
        let loaded = cache.load_off_chip_blocks(&key).unwrap();
        assert_eq!(entries.len(), loaded.len());
        for ((m, p), (lm, lp)) in entries.iter().zip(&loaded) {
            assert_eq!(m, lm);
            assert_eq!(p.map(f64::to_bits), lp.map(f64::to_bits));
        }
        // Corrupt presence flag: a miss, not a misparse.
        let path = cache.blocks_path(&key);
        let mut bytes = fs::read(&path).unwrap();
        let flag_pos = bytes.len() - 8 /* checksum */ - 8 /* price */ - 1;
        bytes[flag_pos] = 7;
        fs::write(&path, &bytes).unwrap();
        assert!(cache.load_off_chip_blocks(&key).is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_unusable_roots() {
        // A root that is a *file* cannot hold a cache.
        let file = std::env::temp_dir().join(format!("memx-cache-file-{}", std::process::id()));
        fs::write(&file, b"x").unwrap();
        let err = EvalCache::open(&file).unwrap_err();
        assert!(err.to_string().contains("unusable"));
        assert!(err.source().is_some());
        fs::remove_file(&file).ok();
    }
}
