//! Custom memory-hierarchy insertion (§4.4, Figure 3, Table 2).
//!
//! "In a memory hierarchy, like in a cache, the heavily accessed data is
//! copied into a smaller memory" — but here the hierarchy is **fully
//! custom**: every copy is expressed at compile time, every access is
//! directed to one specific layer, and each basic group gets its own
//! layer decision based on its data-reuse possibilities.
//!
//! [`apply_hierarchy`] transforms a specification: reads of the target
//! group are redirected to the innermost layer, and explicit copy loops
//! are added that fill each layer from its source (the next layer out,
//! or the target itself). Because every copy is known at compile time,
//! fills from off-chip memory stream as page-mode bursts (that is
//! precisely the advantage of the custom, software-managed hierarchy
//! over a demand-miss cache): they occupy one cycle per word and pay the
//! discounted burst energy.

use memx_ir::{AccessKind, AppSpec, AppSpecBuilder, BasicGroupId, Placement};

use crate::ExploreError;

/// One candidate layer of a custom memory hierarchy, ordered from the
/// data-path side outwards (layer 0 first, like Figure 3's `ylocal`).
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyLayer {
    /// Name of the new basic group (e.g. `"yhier"`).
    pub name: String,
    /// Layer capacity in words.
    pub words: u64,
    /// Ports the layer memory must offer (Figure 3's `yhier` is
    /// "5K 2-port": it is filled while being read).
    pub ports: u32,
    /// Cumulative data reuse: how many original reads one word served by
    /// this layer covers. Fill traffic into the layer is
    /// `original reads / reuse`.
    pub reuse: f64,
}

impl HierarchyLayer {
    /// Creates a layer.
    pub fn new(name: impl Into<String>, words: u64, ports: u32, reuse: f64) -> Self {
        HierarchyLayer {
            name: name.into(),
            words,
            ports,
            reuse,
        }
    }
}

/// Result of a hierarchy transform.
#[derive(Debug, Clone)]
pub struct HierarchySpec {
    /// The transformed specification.
    pub spec: AppSpec,
    /// The new layer groups, innermost first.
    pub layers: Vec<BasicGroupId>,
}

/// Inserts a custom memory hierarchy for `target`.
///
/// All read accesses to `target` are redirected to `layers[0]`; each
/// layer gains a copy loop filling it from the next layer out (or from
/// `target` for the outermost). Writes to `target` are unaffected
/// (write-through, as in Figure 3 where the arrows point from the large
/// memory towards the data paths).
///
/// Passing an empty `layers` returns the spec unchanged (the "no
/// hierarchy" alternative of Table 2).
///
/// # Errors
///
/// Returns [`ExploreError::BadTransform`] when a layer is not smaller
/// than the target, reuse factors are not at least 1 and increasing
/// outwards, or the target has no reads to serve.
pub fn apply_hierarchy(
    spec: &AppSpec,
    target: BasicGroupId,
    layers: &[HierarchyLayer],
) -> Result<HierarchySpec, ExploreError> {
    if layers.is_empty() {
        return Ok(HierarchySpec {
            spec: spec.clone(),
            layers: Vec::new(),
        });
    }
    let target_group = spec.group(target);
    for l in layers {
        if l.words >= target_group.words() {
            return Err(ExploreError::BadTransform {
                reason: format!(
                    "layer `{}` ({} words) not smaller than target `{}` ({})",
                    l.name,
                    l.words,
                    target_group.name(),
                    target_group.words()
                ),
            });
        }
        if l.reuse < 1.0 {
            return Err(ExploreError::BadTransform {
                reason: format!("layer `{}` reuse {} below 1", l.name, l.reuse),
            });
        }
        if l.ports == 0 {
            return Err(ExploreError::BadTransform {
                reason: format!("layer `{}` needs at least one port", l.name),
            });
        }
    }
    for pair in layers.windows(2) {
        if pair[1].words <= pair[0].words || pair[1].reuse < pair[0].reuse {
            return Err(ExploreError::BadTransform {
                reason: "layers must grow in size and reuse towards the target".into(),
            });
        }
    }
    let (reads, _writes) = spec.total_accesses(target);
    if reads <= 0.0 {
        return Err(ExploreError::BadTransform {
            reason: format!("target `{}` has no reads to serve", target_group.name()),
        });
    }

    // Rebuild: original groups + one new group per layer.
    let mut b = AppSpecBuilder::new(spec.name());
    for g in spec.basic_groups() {
        b.basic_group_full(
            g.name(),
            g.words(),
            g.bitwidth(),
            g.placement(),
            g.min_ports(),
        )?;
    }
    let mut layer_ids = Vec::with_capacity(layers.len());
    for l in layers {
        layer_ids.push(b.basic_group_full(
            &l.name,
            l.words,
            target_group.bitwidth(),
            Placement::OnChip,
            l.ports,
        )?);
    }

    // Copy the nests, redirecting target reads to the innermost layer.
    let inner = layer_ids[0];
    for nest in spec.loop_nests() {
        let nid = b.loop_nest(nest.name(), nest.iterations())?;
        for a in nest.accesses() {
            let group = if a.group() == target && a.kind().is_read() {
                inner
            } else {
                a.group()
            };
            b.access_full(nid, group, a.kind(), a.weight(), a.is_burst())?;
        }
        for e in nest.dependencies() {
            b.depend(nid, e.from, e.to)?;
        }
    }

    // Copy loops, innermost first: layer i fills from layer i+1 (or the
    // target), with fill traffic = original reads / cumulative reuse.
    for (i, l) in layers.iter().enumerate() {
        let fills = (reads / l.reuse).round().max(1.0) as u64;
        let (src, src_off_chip) = if i + 1 < layers.len() {
            (layer_ids[i + 1], false)
        } else {
            (target, target_group.placement() == Placement::OffChip)
        };
        let burst = src_off_chip;
        let nid = b.loop_nest(format!("copy_{}", l.name), fills)?;
        let r = b.access_full(nid, src, AccessKind::Read, 1.0, burst)?;
        let w = b.access_full(nid, layer_ids[i], AccessKind::Write, 1.0, false)?;
        b.depend(nid, r, w)?;
    }

    b.cycle_budget(spec.cycle_budget())
        .real_time_seconds(spec.real_time_seconds());
    Ok(HierarchySpec {
        spec: b.build()?,
        layers: layer_ids,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use memx_ir::AppSpecBuilder;

    fn frame_spec() -> (AppSpec, BasicGroupId) {
        let mut b = AppSpecBuilder::new("t");
        let image = b
            .basic_group_placed("image", 1 << 20, 8, Placement::OffChip)
            .unwrap();
        let n = b.loop_nest("scan", 1 << 20).unwrap();
        for _ in 0..4 {
            b.access(n, image, AccessKind::Read).unwrap();
        }
        b.access(n, image, AccessKind::Write).unwrap();
        b.cycle_budget(40 << 20);
        (b.build().unwrap(), image)
    }

    fn ylocal() -> HierarchyLayer {
        HierarchyLayer::new("ylocal", 12, 2, 2.0)
    }

    fn yhier() -> HierarchyLayer {
        HierarchyLayer::new("yhier", 5 * 1024, 2, 4.0)
    }

    #[test]
    fn empty_layer_list_is_identity() {
        let (spec, image) = frame_spec();
        let h = apply_hierarchy(&spec, image, &[]).unwrap();
        assert_eq!(h.spec, spec);
        assert!(h.layers.is_empty());
    }

    #[test]
    fn reads_are_redirected_to_inner_layer() {
        let (spec, image) = frame_spec();
        let h = apply_hierarchy(&spec, image, &[ylocal()]).unwrap();
        let local = h.layers[0];
        let (lr, lw) = h.spec.total_accesses(local);
        // All 4 reads/iteration served by the layer.
        assert_eq!(lr, 4.0 * (1 << 20) as f64);
        // Fills: reads / reuse 2.
        assert_eq!(lw, 2.0 * (1 << 20) as f64);
        // The target keeps its writes plus the fill reads.
        let (tr, tw) = h.spec.total_accesses(image);
        assert_eq!(tw, (1 << 20) as f64);
        assert_eq!(tr, 2.0 * (1 << 20) as f64);
    }

    #[test]
    fn two_layer_chain_routes_fills_through_outer_layer() {
        let (spec, image) = frame_spec();
        let h = apply_hierarchy(&spec, image, &[ylocal(), yhier()]).unwrap();
        let (inner, outer) = (h.layers[0], h.layers[1]);
        let reads = 4.0 * (1 << 20) as f64;
        let (ir, iw) = h.spec.total_accesses(inner);
        assert_eq!(ir, reads);
        assert_eq!(iw, reads / 2.0);
        let (or_, ow) = h.spec.total_accesses(outer);
        // Outer serves the inner fills and is filled at reads/4.
        assert_eq!(or_, reads / 2.0);
        assert_eq!(ow, reads / 4.0);
        // Off-chip read traffic shrinks to reads/4.
        let (tr, _) = h.spec.total_accesses(image);
        assert_eq!(tr, reads / 4.0);
    }

    #[test]
    fn off_chip_fills_are_bursts_on_chip_fills_are_not() {
        let (spec, image) = frame_spec();
        let single = apply_hierarchy(&spec, image, &[ylocal()]).unwrap();
        let copy_nest = single
            .spec
            .loop_nests()
            .iter()
            .find(|n| n.name() == "copy_ylocal")
            .unwrap();
        // Fill from the off-chip frame store: page-mode burst.
        assert!(copy_nest.accesses()[0].is_burst());
        let chain = apply_hierarchy(&spec, image, &[ylocal(), yhier()]).unwrap();
        let inner_copy = chain
            .spec
            .loop_nests()
            .iter()
            .find(|n| n.name() == "copy_ylocal")
            .unwrap();
        // Fill from the on-chip yhier layer: plain SRAM access.
        assert!(!inner_copy.accesses()[0].is_burst());
        let outer_copy = chain
            .spec
            .loop_nests()
            .iter()
            .find(|n| n.name() == "copy_yhier")
            .unwrap();
        assert!(outer_copy.accesses()[0].is_burst());
    }

    #[test]
    fn layer_groups_are_on_chip_with_declared_ports() {
        let (spec, image) = frame_spec();
        let h = apply_hierarchy(&spec, image, &[yhier()]).unwrap();
        let g = h.spec.group(h.layers[0]);
        assert_eq!(g.placement(), Placement::OnChip);
        assert_eq!(g.min_ports(), 2);
        assert_eq!(g.bitwidth(), 8);
    }

    #[test]
    fn invalid_layers_rejected() {
        let (spec, image) = frame_spec();
        // Not smaller than target.
        let huge = HierarchyLayer::new("huge", 1 << 20, 1, 2.0);
        assert!(apply_hierarchy(&spec, image, &[huge]).is_err());
        // Reuse below 1.
        let silly = HierarchyLayer::new("s", 16, 1, 0.5);
        assert!(apply_hierarchy(&spec, image, &[silly]).is_err());
        // Wrong ordering (outer smaller than inner).
        assert!(apply_hierarchy(&spec, image, &[yhier(), ylocal()]).is_err());
        // Zero ports.
        let dead = HierarchyLayer::new("d", 16, 0, 2.0);
        assert!(apply_hierarchy(&spec, image, &[dead]).is_err());
    }

    #[test]
    fn write_only_target_rejected() {
        let mut b = AppSpecBuilder::new("t");
        let g = b
            .basic_group_placed("g", 1024, 8, Placement::OffChip)
            .unwrap();
        let n = b.loop_nest("l", 10).unwrap();
        b.access(n, g, AccessKind::Write).unwrap();
        b.cycle_budget(1000);
        let spec = b.build().unwrap();
        assert!(apply_hierarchy(&spec, g, &[ylocal()]).is_err());
    }
}
