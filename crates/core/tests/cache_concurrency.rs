//! Cross-process robustness of the persistent evaluation cache: two
//! *real* processes hammering the same key must never make a reader
//! observe a torn entry, and the surviving entry must be valid — for
//! schedule entries and for allocation entries alike.
//!
//! The writer processes are this test binary re-executed with
//! `MEMX_CACHE_TEST_CHILD_DIR` (or `MEMX_CACHE_TEST_ALLOC_CHILD_DIR`)
//! set, filtered to the matching `*_writer_child` helper (which is a
//! no-op under a normal test run).

use std::path::PathBuf;
use std::process::Command;

use memx_core::alloc::{alloc_cache_key, assign_with_stats, AllocOptions};
use memx_core::cache::{CacheKey, EvalCache};
use memx_core::scbd;
use memx_ir::{AccessKind, AppSpec, AppSpecBuilder};
use memx_memlib::MemLibrary;

const CHILD_DIR_ENV: &str = "MEMX_CACHE_TEST_CHILD_DIR";
const ALLOC_CHILD_DIR_ENV: &str = "MEMX_CACHE_TEST_ALLOC_CHILD_DIR";
const BUDGET: u64 = 10_000;
/// Stores per writer process: enough rename races to matter, few enough
/// to finish instantly.
const CHILD_STORES: usize = 300;

/// The spec both processes agree on (same content hash ⇒ same key).
fn shared_spec() -> AppSpec {
    let mut b = AppSpecBuilder::new("concurrency");
    let x = b.basic_group("x", 128, 8).unwrap();
    let y = b.basic_group("y", 64, 16).unwrap();
    let n = b.loop_nest("l", 500).unwrap();
    let rx = b.access(n, x, AccessKind::Read).unwrap();
    let ry = b.access(n, y, AccessKind::Read).unwrap();
    let w = b.access(n, y, AccessKind::Write).unwrap();
    b.depend(n, rx, w).unwrap();
    b.depend(n, ry, w).unwrap();
    b.cycle_budget(BUDGET);
    b.build().unwrap()
}

/// Writer-process body, dressed as a test so the re-executed binary can
/// be filtered straight to it. Under a normal run the environment
/// variable is absent and this passes as a no-op.
#[test]
fn concurrent_writer_child() {
    let Some(dir) = std::env::var_os(CHILD_DIR_ENV) else {
        return;
    };
    let cache = EvalCache::open(&dir).expect("child opens the shared cache");
    let spec = shared_spec();
    let key = CacheKey::scbd(&spec, BUDGET);
    let result = scbd::distribute_with_budget(&spec, BUDGET).expect("schedulable");
    for _ in 0..CHILD_STORES {
        cache.store_scbd(&key, &result);
    }
    assert_eq!(cache.stats().write_failures(), 0, "child writes must land");
}

/// The allocation instance both processes agree on: the shared spec's
/// schedule solved with one worker (fully deterministic, so both
/// writers publish byte-identical entries).
fn shared_alloc_options() -> AllocOptions {
    AllocOptions {
        workers: 1,
        ..AllocOptions::default()
    }
}

/// Allocation-entry writer-process body (see [`concurrent_writer_child`]).
#[test]
fn concurrent_alloc_writer_child() {
    let Some(dir) = std::env::var_os(ALLOC_CHILD_DIR_ENV) else {
        return;
    };
    let cache = EvalCache::open(&dir).expect("child opens the shared cache");
    let spec = shared_spec();
    let lib = MemLibrary::default_07um();
    let options = shared_alloc_options();
    let schedule = scbd::distribute_with_budget(&spec, BUDGET).expect("schedulable");
    let key = alloc_cache_key(&spec, &schedule, &lib, &options).expect("splittable");
    let (org, stats) = assign_with_stats(&spec, &schedule, &lib, &options).expect("assignable");
    for _ in 0..CHILD_STORES {
        cache.store_alloc(&key, &org, &stats);
    }
    assert_eq!(cache.stats().write_failures(), 0, "child writes must land");
}

#[test]
fn concurrent_alloc_writers_two_processes_same_key() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("memx-cache-alloc-2proc-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cache = EvalCache::open(&dir).expect("parent opens the cache");
    let spec = shared_spec();
    let lib = MemLibrary::default_07um();
    let options = shared_alloc_options();
    let schedule = scbd::distribute_with_budget(&spec, BUDGET).expect("schedulable");
    let key = alloc_cache_key(&spec, &schedule, &lib, &options).expect("splittable");
    let (ref_org, ref_stats) =
        assign_with_stats(&spec, &schedule, &lib, &options).expect("assignable");

    let exe = std::env::current_exe().expect("test binary path");
    let spawn = || {
        Command::new(&exe)
            .args(["--exact", "concurrent_alloc_writer_child", "--nocapture"])
            .env(ALLOC_CHILD_DIR_ENV, &dir)
            .spawn()
            .expect("spawn writer process")
    };
    let mut children = [spawn(), spawn()];

    // While both processes race renames onto the same path, every read
    // must be all-or-nothing: a miss, or a fully valid entry identical
    // to the reference solution (stats included — hits replay them).
    let mut observed_hit = false;
    loop {
        let running = children
            .iter_mut()
            .any(|c| c.try_wait().expect("child wait").is_none());
        if let Some((org, stats)) = cache.load_alloc(&key) {
            observed_hit = true;
            assert_eq!(org, ref_org);
            assert_eq!(stats, ref_stats);
        }
        if !running {
            break;
        }
    }
    for child in &mut children {
        let status = child.wait().expect("child exits");
        assert!(status.success(), "writer process failed: {status}");
    }

    // Whoever won the last rename, the surviving entry is complete.
    let (survivor, survivor_stats) = cache
        .load_alloc(&key)
        .expect("a valid entry survives the race");
    assert_eq!(survivor, ref_org);
    assert_eq!(survivor_stats, ref_stats);
    assert!(
        observed_hit,
        "the race window never produced a readable entry"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_writers_two_processes_same_key() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("memx-cache-2proc-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cache = EvalCache::open(&dir).expect("parent opens the cache");
    let spec = shared_spec();
    let key = CacheKey::scbd(&spec, BUDGET);
    let reference = scbd::distribute_with_budget(&spec, BUDGET).expect("schedulable");

    let exe = std::env::current_exe().expect("test binary path");
    let spawn = || {
        Command::new(&exe)
            .args(["--exact", "concurrent_writer_child", "--nocapture"])
            .env(CHILD_DIR_ENV, &dir)
            .spawn()
            .expect("spawn writer process")
    };
    let mut children = [spawn(), spawn()];

    // While both processes race renames onto the same path, every read
    // must be all-or-nothing: a miss, or a fully valid entry identical
    // to the reference schedule.
    let mut observed_hit = false;
    loop {
        let running = children
            .iter_mut()
            .any(|c| c.try_wait().expect("child wait").is_none());
        if let Some(read) = cache.load_scbd(&key) {
            observed_hit = true;
            assert_eq!(read.used_cycles, reference.used_cycles);
            assert_eq!(read.total_budget, reference.total_budget);
            for (a, b) in read.bodies.iter().zip(&reference.bodies) {
                assert_eq!(a.placements(), b.placements());
            }
        }
        if !running {
            break;
        }
    }
    for child in &mut children {
        let status = child.wait().expect("child exits");
        assert!(status.success(), "writer process failed: {status}");
    }

    // Whoever won the last rename, the surviving entry is complete.
    let survivor = cache
        .load_scbd(&key)
        .expect("a valid entry survives the race");
    assert_eq!(survivor.used_cycles, reference.used_cycles);
    assert!(
        observed_hit,
        "the race window never produced a readable entry"
    );
    std::fs::remove_dir_all(&dir).ok();
}
